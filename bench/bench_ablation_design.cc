// Ablations over the design choices behind the reproduction (DESIGN.md
// §4): each section isolates one mechanism and shows its effect on the
// paper-facing metrics, so the causal stories told in EXPERIMENTS.md are
// checkable rather than asserted.

#include <vector>

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

// 1. Flink's buffer-quota penalty is pure latency: sweeping the cycle
//    cost moves large-batch closed-loop latency but leaves saturated
//    throughput untouched (it must — Table 4 is measured saturated).
void AblateFlinkBufferCycle() {
  core::ReportTable table(
      "Ablation 1: Flink buffer-cycle cost (ONNX, FFNN)",
      {"buffer_cycle ms", "latency@bsz=128 ms", "sat. throughput ev/s"});
  const double cycles_ms[] = {0.0, 3.0, 7.0};
  std::vector<core::ExperimentConfig> configs;  // (lat, thr) pairs
  for (double cycle_ms : cycles_ms) {
    core::ExperimentConfig lat = ClosedLoopConfig("flink", "onnx", 128);
    lat.engine_overrides.SetDouble("flink.buffer_cycle_s",
                                   cycle_ms / 1000.0);
    lat.duration_s = 30.0;
    core::ExperimentConfig thr = ThroughputConfig("flink", "onnx", "ffnn");
    thr.engine_overrides.SetDouble("flink.buffer_cycle_s",
                                   cycle_ms / 1000.0);
    thr.duration_s = 8.0;
    configs.push_back(std::move(lat));
    configs.push_back(std::move(thr));
  }
  auto results = RunAll(configs);
  for (size_t i = 0; i < std::size(cycles_ms); ++i) {
    table.AddRow({core::ReportTable::Num(cycles_ms[i], 1),
                  core::ReportTable::Num(
                      results[2 * i].summary.latency_mean_ms),
                  core::ReportTable::Num(
                      results[2 * i + 1].summary.throughput_eps)});
  }
  Emit(table, "ablation1_flink_buffer_cycle.csv");
}

// 2. Spark's per-trigger rate limit explains the paper's own Table 5
//    (~4k ev/s) vs Fig. 11 (~23k ev/s) discrepancy: capped triggers pay
//    the fixed micro-batch cost more often.
void AblateSparkTriggerCap() {
  core::ReportTable table(
      "Ablation 2: Spark maxOffsetsPerTrigger (ONNX, FFNN, ir=30k)",
      {"cap", "throughput ev/s"});
  const int64_t caps[] = {256, 768, 0};
  std::vector<core::ExperimentConfig> configs;
  for (int64_t cap : caps) {
    core::ExperimentConfig cfg = ThroughputConfig("spark", "onnx", "ffnn");
    cfg.duration_s = 8.0;
    if (cap > 0) {
      cfg.engine_overrides.SetInt("spark.max_offsets_per_trigger", cap);
    }
    configs.push_back(std::move(cfg));
  }
  auto results = RunAll(configs);
  for (size_t i = 0; i < std::size(caps); ++i) {
    table.AddRow({caps[i] == 0 ? "unbounded" : std::to_string(caps[i]),
                  core::ReportTable::Num(results[i].summary.throughput_eps)});
  }
  Emit(table, "ablation2_spark_trigger_cap.csv");
}

// 3. Kafka topic partitions bound the engines' parallelism fan-out:
//    fewer partitions than scoring tasks starve the extra tasks.
void AblateTopicPartitions() {
  core::ReportTable table(
      "Ablation 3: topic partitions vs scoring parallelism "
      "(Flink + ONNX, mp=16)",
      {"partitions", "throughput ev/s"});
  const int partition_counts[] = {4, 8, 16, 32};
  std::vector<core::ExperimentConfig> configs;
  for (int partitions : partition_counts) {
    core::ExperimentConfig cfg = ThroughputConfig("flink", "onnx", "ffnn");
    cfg.parallelism = 16;
    cfg.topic_partitions = partitions;
    cfg.duration_s = 8.0;
    configs.push_back(std::move(cfg));
  }
  auto results = RunAll(configs);
  for (size_t i = 0; i < std::size(partition_counts); ++i) {
    table.AddRow({std::to_string(partition_counts[i]),
                  core::ReportTable::Num(results[i].summary.throughput_eps)});
  }
  Emit(table, "ablation3_topic_partitions.csv");
}

// 4. Spark's checkpoint cost is its latency floor (Fig. 10's "Spark
//    highest across the board").
void AblateSparkCheckpoint() {
  core::ReportTable table(
      "Ablation 4: Spark offset-checkpoint cost (ONNX, FFNN, closed loop)",
      {"checkpoint ms", "latency@bsz=32 ms"});
  const double cps_ms[] = {50.0, 100.0, 150.0};
  std::vector<core::ExperimentConfig> configs;
  for (double cp_ms : cps_ms) {
    core::ExperimentConfig cfg = ClosedLoopConfig("spark", "onnx", 32);
    cfg.engine_overrides.SetDouble("spark.checkpoint_s", cp_ms / 1000.0);
    cfg.duration_s = 30.0;
    configs.push_back(std::move(cfg));
  }
  auto results = RunAll(configs);
  for (size_t i = 0; i < std::size(cps_ms); ++i) {
    table.AddRow({core::ReportTable::Num(cps_ms[i], 0),
                  core::ReportTable::Num(
                      results[i].summary.latency_mean_ms)});
  }
  Emit(table, "ablation4_spark_checkpoint.csv");
}

// 5. Kafka Streams' idle-pickup cost is a closed-loop phenomenon only: it
//    sets KS's latency floor (Fig. 10) without touching throughput.
void AblateKsIdlePickup() {
  core::ReportTable table(
      "Ablation 5: Kafka Streams idle-pickup cost (ONNX, FFNN)",
      {"idle_pickup ms", "latency@bsz=32 ms", "sat. throughput ev/s"});
  const double pickups_ms[] = {0.0, 40.0, 80.0};
  std::vector<core::ExperimentConfig> configs;  // (lat, thr) pairs
  for (double pickup_ms : pickups_ms) {
    core::ExperimentConfig lat =
        ClosedLoopConfig("kafka-streams", "onnx", 32);
    lat.engine_overrides.SetDouble("kafka_streams.idle_pickup_s",
                                   pickup_ms / 1000.0);
    lat.duration_s = 30.0;
    core::ExperimentConfig thr =
        ThroughputConfig("kafka-streams", "onnx", "ffnn");
    thr.engine_overrides.SetDouble("kafka_streams.idle_pickup_s",
                                   pickup_ms / 1000.0);
    thr.duration_s = 8.0;
    configs.push_back(std::move(lat));
    configs.push_back(std::move(thr));
  }
  auto results = RunAll(configs);
  for (size_t i = 0; i < std::size(pickups_ms); ++i) {
    table.AddRow({core::ReportTable::Num(pickups_ms[i], 0),
                  core::ReportTable::Num(
                      results[2 * i].summary.latency_mean_ms),
                  core::ReportTable::Num(
                      results[2 * i + 1].summary.throughput_eps)});
  }
  Emit(table, "ablation5_ks_idle_pickup.csv");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::AblateFlinkBufferCycle();
  crayfish::bench::AblateSparkTriggerCap();
  crayfish::bench::AblateTopicPartitions();
  crayfish::bench::AblateSparkCheckpoint();
  crayfish::bench::AblateKsIdlePickup();
  return 0;
}
