#ifndef CRAYFISH_BENCH_BENCH_COMMON_H_
#define CRAYFISH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep.h"
#include "serving/calibration.h"
#include "serving/external_server.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish::bench {

/// Harness options shared by every bench binary, set once by Init().
struct BenchOptions {
  /// Sweep parallelism; 0 = hardware concurrency, 1 = serial.
  int jobs = 0;
  /// Directory CSVs are written to (created on demand).
  std::string out_dir = "results";
};

inline BenchOptions& Options() {
  static BenchOptions options;
  return options;
}

/// Parses the common bench flags (`--jobs N`, `--out_dir PATH`, both also
/// in `--flag=value` form) and installs the sweep default. Unknown
/// arguments are ignored so binaries can keep their own flags.
inline void Init(int argc, char** argv) {
  BenchOptions& opts = Options();
  const auto value_of = [&](int& i, const char* name) -> const char* {
    const size_t len = std::strlen(name);
    if (std::strncmp(argv[i], name, len) != 0) return nullptr;
    if (argv[i][len] == '=') return argv[i] + len + 1;
    if (argv[i][len] == '\0' && i + 1 < argc) return argv[++i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of(i, "--jobs")) {
      opts.jobs = std::atoi(v);
    } else if (const char* v = value_of(i, "--out_dir")) {
      opts.out_dir = v;
    }
  }
  core::SetDefaultSweepJobs(opts.jobs);
}

/// Runs one configuration, CHECK-failing on setup errors (bench configs
/// are static, so failures are programmer errors).
inline core::ExperimentResult Run(const core::ExperimentConfig& config) {
  auto result = core::RunExperiment(config);
  CRAYFISH_CHECK(result.ok()) << config.Label() << ": "
                              << result.status().ToString();
  return std::move(*result);
}

/// Runs a batch of independent configurations through the sweep pool
/// (Options().jobs threads); results come back in submission order.
inline std::vector<core::ExperimentResult> RunAll(
    const std::vector<core::ExperimentConfig>& configs) {
  auto results = core::RunExperiments(configs, Options().jobs);
  CRAYFISH_CHECK(results.ok()) << results.status().ToString();
  CRAYFISH_CHECK_EQ(results->size(), configs.size());
  return std::move(*results);
}

/// Runs the paper's protocol: two repeats, aggregated.
inline std::vector<core::ExperimentResult> Run2(
    core::ExperimentConfig config) {
  auto results = core::RunRepeated(config, 2);
  CRAYFISH_CHECK(results.ok()) << config.Label() << ": "
                               << results.status().ToString();
  return std::move(*results);
}

/// Batched Run2: every (config, repeat) pair is an independent simulation,
/// so the whole sweep is flattened into one pool submission; group i of
/// the returned vector holds config i's repeats, in repeat order.
inline std::vector<std::vector<core::ExperimentResult>> Run2All(
    const std::vector<core::ExperimentConfig>& configs, int repeats = 2) {
  std::vector<core::ExperimentConfig> flat;
  flat.reserve(configs.size() * static_cast<size_t>(repeats));
  for (const core::ExperimentConfig& config : configs) {
    for (core::ExperimentConfig& repeat :
         core::MakeRepeatedConfigs(config, repeats)) {
      flat.push_back(std::move(repeat));
    }
  }
  std::vector<core::ExperimentResult> all = RunAll(flat);
  std::vector<std::vector<core::ExperimentResult>> grouped(configs.size());
  size_t next = 0;
  for (size_t i = 0; i < configs.size(); ++i) {
    for (int r = 0; r < repeats; ++r) {
      grouped[i].push_back(std::move(all[next++]));
    }
  }
  return grouped;
}

/// "measured (paper: reference)" cell.
inline std::string VsPaper(double measured, double paper, int precision = 2) {
  return core::ReportTable::Num(measured, precision) + " (paper " +
         core::ReportTable::Num(paper, precision) + ")";
}

/// Base throughput-experiment config shared by the open-loop benches
/// (Table 4/5, Fig. 6/7/11/12): overload the SUT and measure the
/// sustained output rate.
inline core::ExperimentConfig ThroughputConfig(const std::string& engine,
                                               const std::string& serving,
                                               const std::string& model) {
  core::ExperimentConfig cfg;
  cfg.engine = engine;
  cfg.serving = serving;
  cfg.model = model;
  cfg.batch_size = 1;
  cfg.parallelism = 1;
  cfg.input_rate = 30000.0;
  cfg.duration_s = 12.0;
  cfg.drain_s = 1.0;
  return cfg;
}

/// Base closed-loop latency config (Fig. 5/10): low rate, latency
/// dominated by the inference path.
inline core::ExperimentConfig ClosedLoopConfig(const std::string& engine,
                                               const std::string& serving,
                                               int batch_size) {
  core::ExperimentConfig cfg;
  cfg.engine = engine;
  cfg.serving = serving;
  cfg.model = "ffnn";
  cfg.batch_size = batch_size;
  cfg.parallelism = 1;
  cfg.input_rate = 1.0;
  cfg.duration_s = 60.0;
  cfg.drain_s = 10.0;
  return cfg;
}

/// Writes the table's CSV into Options().out_dir (created on demand, so
/// benches no longer litter the working directory) and prints it.
inline void Emit(core::ReportTable& table, const std::string& csv_name) {
  table.Print();
  std::string path = csv_name;
  const std::string& dir = Options().out_dir;
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      CRAYFISH_LOG(Warning) << "cannot create " << dir << ": "
                            << ec.message();
    } else {
      path = (std::filesystem::path(dir) / csv_name).string();
    }
  }
  crayfish::Status s = table.WriteCsv(path);
  if (!s.ok()) {
    CRAYFISH_LOG(Warning) << "CSV not written: " << s.ToString();
  } else {
    std::printf("[csv: %s]\n\n", path.c_str());
  }
}

}  // namespace crayfish::bench

#endif  // CRAYFISH_BENCH_BENCH_COMMON_H_
