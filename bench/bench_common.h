#ifndef CRAYFISH_BENCH_BENCH_COMMON_H_
#define CRAYFISH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "core/experiment.h"
#include "core/report.h"
#include "serving/calibration.h"
#include "serving/external_server.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish::bench {

/// Runs one configuration, CHECK-failing on setup errors (bench configs
/// are static, so failures are programmer errors).
inline core::ExperimentResult Run(const core::ExperimentConfig& config) {
  auto result = core::RunExperiment(config);
  CRAYFISH_CHECK(result.ok()) << config.Label() << ": "
                              << result.status().ToString();
  return std::move(*result);
}

/// Runs the paper's protocol: two repeats, aggregated.
inline std::vector<core::ExperimentResult> Run2(
    core::ExperimentConfig config) {
  auto results = core::RunRepeated(config, 2);
  CRAYFISH_CHECK(results.ok()) << config.Label() << ": "
                               << results.status().ToString();
  return std::move(*results);
}

/// "measured (paper: reference)" cell.
inline std::string VsPaper(double measured, double paper, int precision = 2) {
  return core::ReportTable::Num(measured, precision) + " (paper " +
         core::ReportTable::Num(paper, precision) + ")";
}

/// Base throughput-experiment config shared by the open-loop benches
/// (Table 4/5, Fig. 6/7/11/12): overload the SUT and measure the
/// sustained output rate.
inline core::ExperimentConfig ThroughputConfig(const std::string& engine,
                                               const std::string& serving,
                                               const std::string& model) {
  core::ExperimentConfig cfg;
  cfg.engine = engine;
  cfg.serving = serving;
  cfg.model = model;
  cfg.batch_size = 1;
  cfg.parallelism = 1;
  cfg.input_rate = 30000.0;
  cfg.duration_s = 12.0;
  cfg.drain_s = 1.0;
  return cfg;
}

/// Base closed-loop latency config (Fig. 5/10): low rate, latency
/// dominated by the inference path.
inline core::ExperimentConfig ClosedLoopConfig(const std::string& engine,
                                               const std::string& serving,
                                               int batch_size) {
  core::ExperimentConfig cfg;
  cfg.engine = engine;
  cfg.serving = serving;
  cfg.model = "ffnn";
  cfg.batch_size = batch_size;
  cfg.parallelism = 1;
  cfg.input_rate = 1.0;
  cfg.duration_s = 60.0;
  cfg.drain_s = 10.0;
  return cfg;
}

/// Writes the table's CSV next to the binary for downstream plotting and
/// prints it.
inline void Emit(core::ReportTable& table, const std::string& csv_name) {
  table.Print();
  crayfish::Status s = table.WriteCsv(csv_name);
  if (!s.ok()) {
    CRAYFISH_LOG(Warning) << "CSV not written: " << s.ToString();
  } else {
    std::printf("[csv: %s]\n\n", csv_name.c_str());
  }
}

}  // namespace crayfish::bench

#endif  // CRAYFISH_BENCH_BENCH_COMMON_H_
