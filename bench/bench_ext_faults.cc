// Extension beyond the paper (companion to Fig. 8's burst recovery):
// recovery under injected *faults* rather than load bursts. The paper
// only stresses the pipelines with overload; here the broker crashes,
// the serving tool straggles, and the serving tool goes down outright,
// and we measure downtime, time-to-recover, retry volume, and the
// goodput each pipeline sustains through the incident.
//
// Matrix: Flink + FFNN at 70% of each tool's sustainable throughput,
// ONNX (embedded) vs TF-Serving (external). Serving-side faults only
// apply to the external tool — an embedded library has no server to
// degrade, which is itself a finding the table makes visible.

#include <iterator>

#include "bench/bench_common.h"
#include "fault/plan.h"

namespace crayfish::bench {
namespace {

struct Scenario {
  const char* name;
  /// Whether the scenario needs an external serving process.
  bool external_only;
  fault::FaultSpec spec;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "broker-crash";
    s.external_only = false;
    s.spec.kind = fault::FaultKind::kBrokerCrash;
    s.spec.name = "crash0";
    s.spec.at_s = 30.0;
    s.spec.until_s = 45.0;
    s.spec.broker = 0;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "serving-straggler";
    s.external_only = true;
    s.spec.kind = fault::FaultKind::kServingSlowdown;
    s.spec.name = "slow0";
    s.spec.at_s = 30.0;
    s.spec.until_s = 45.0;
    s.spec.factor = 3.0;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "serving-outage";
    s.external_only = true;
    s.spec.kind = fault::FaultKind::kServingDown;
    s.spec.name = "down0";
    s.spec.at_s = 30.0;
    s.spec.until_s = 34.0;
    out.push_back(s);
  }
  return out;
}

void RunExtFaults() {
  core::ReportTable table(
      "Ext: fault recovery, Flink + FFNN (70% ST, fault at t=30s)",
      {"Tool", "Scenario", "Downtime s", "TTR s", "Retries", "Dups",
       "Losses", "Goodput ev/s", "Baseline ev/s"});

  const char* tools[] = {"onnx", "tf-serving"};

  // Phase 1: sustainable throughput per tool (as Fig. 8 does before the
  // burst runs), one short overloaded probe each.
  std::vector<core::ExperimentConfig> probes;
  for (const char* tool : tools) {
    core::ExperimentConfig cfg = ThroughputConfig("flink", tool, "ffnn");
    cfg.duration_s = 10.0;
    probes.push_back(std::move(cfg));
  }
  const std::vector<core::ExperimentResult> probe_results = RunAll(probes);

  // Phase 2: one fault-free baseline plus every applicable fault
  // scenario per tool, all at 70% of that tool's ST. Runs are seeded
  // simulations, so a single run per cell is exactly reproducible.
  const std::vector<Scenario> scenarios = Scenarios();
  struct Cell {
    const char* tool;
    const char* scenario;
    double baseline_eps;
  };
  std::vector<Cell> cells;
  std::vector<core::ExperimentConfig> configs;
  for (size_t t = 0; t < std::size(tools); ++t) {
    const double st = probe_results[t].summary.throughput_eps;
    core::ExperimentConfig base;
    base.engine = "flink";
    base.serving = tools[t];
    base.model = "ffnn";
    base.input_rate = 0.7 * st;
    base.duration_s = 90.0;
    base.drain_s = 15.0;

    cells.push_back({tools[t], "none", 0.0});
    configs.push_back(base);
    for (const Scenario& s : scenarios) {
      if (s.external_only && std::string(tools[t]) == "onnx") continue;
      core::ExperimentConfig cfg = base;
      cfg.fault_plan.faults.push_back(s.spec);
      cells.push_back({tools[t], s.name, 0.0});
      configs.push_back(std::move(cfg));
    }
  }
  const std::vector<core::ExperimentResult> results = RunAll(configs);

  // Fault-free baselines first so every faulted row can cite its tool's.
  double baseline_eps[std::size(tools)] = {};
  for (size_t i = 0; i < cells.size(); ++i) {
    if (std::string(cells[i].scenario) != "none") continue;
    for (size_t t = 0; t < std::size(tools); ++t) {
      if (std::string(cells[i].tool) == tools[t]) {
        baseline_eps[t] = results[i].summary.throughput_eps;
      }
    }
  }

  for (size_t i = 0; i < cells.size(); ++i) {
    const core::ExperimentResult& r = results[i];
    double base_eps = 0.0;
    for (size_t t = 0; t < std::size(tools); ++t) {
      if (std::string(cells[i].tool) == tools[t]) base_eps = baseline_eps[t];
    }
    if (!r.has_fault_metrics) {
      table.AddRow({cells[i].tool, cells[i].scenario, "0", "-", "0", "0",
                    "0", core::ReportTable::Num(r.summary.throughput_eps),
                    core::ReportTable::Num(base_eps)});
      continue;
    }
    const fault::FaultMetrics& f = r.fault_metrics;
    table.AddRow(
        {cells[i].tool, cells[i].scenario,
         core::ReportTable::Num(f.downtime_s, 2),
         f.mean_time_to_recover_s < 0
             ? "-"
             : core::ReportTable::Num(f.mean_time_to_recover_s, 3),
         std::to_string(f.retries), std::to_string(f.duplicates),
         std::to_string(f.losses), core::ReportTable::Num(f.goodput_eps),
         core::ReportTable::Num(base_eps)});
  }
  Emit(table, "ext_faults.csv");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunExtFaults();
  return 0;
}
