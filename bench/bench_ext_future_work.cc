// Quantifies the §7 "designing new systems" recommendations that the
// paper proposes but does not measure — implemented here as opt-in
// extensions:
//
//  (a) asynchronous I/O for external serving (Flink's AsyncWaitOperator,
//      deliberately disabled in §4.3 for engine parity),
//  (b) server-side adaptive batching (the §7.1 "micro-batching support
//      for external servers" recommendation, Clipper/InferLine-style),
//  (c) queue-depth autoscaling of the serving worker pool (§7.2's
//      "decoupled scalability" in action under bursts).

#include "bench/bench_common.h"
#include "common/thread_annotations.h"

namespace crayfish::bench {
namespace {

void AsyncIoStudy() {
  core::ReportTable table(
      "Ext (a): Flink async I/O for external serving, FFNN (ir=30k)",
      {"Tool", "mp", "blocking ev/s", "async ev/s", "speedup"});
  struct Row {
    const char* tool;
    int mp;
  };
  std::vector<Row> rows;
  std::vector<core::ExperimentConfig> configs;  // (blocking, async) pairs
  for (const char* tool : {"tf-serving", "torchserve"}) {
    for (int mp : {1, 4}) {
      core::ExperimentConfig cfg = ThroughputConfig("flink", tool, "ffnn");
      cfg.parallelism = mp;
      cfg.duration_s = 8.0;
      rows.push_back({tool, mp});
      configs.push_back(cfg);
      cfg.engine_overrides.SetBool("flink.async_io", true);
      configs.push_back(std::move(cfg));
    }
  }
  auto results = RunAll(configs);
  for (size_t i = 0; i < rows.size(); ++i) {
    const double blocking = results[2 * i].summary.throughput_eps;
    const double async = results[2 * i + 1].summary.throughput_eps;
    table.AddRow({rows[i].tool, std::to_string(rows[i].mp),
                  core::ReportTable::Num(blocking),
                  core::ReportTable::Num(async),
                  core::ReportTable::Num(async / blocking, 2) + "x"});
  }
  Emit(table, "ext_async_io.csv");
  std::printf(
      "Async I/O overlaps the RPC with processing: the blocking-call "
      "penalty the paper's external numbers carry largely disappears.\n\n");
}

void AdaptiveBatchingStudy() CRAYFISH_REQUIRES("setup") {
  // Direct server-level study: 1000 single-sample requests arriving at a
  // fixed rate, with and without server-side batching.
  core::ReportTable table(
      "Ext (b): server-side adaptive batching (TorchServe, FFNN)",
      {"Config", "requests", "model runs", "makespan s"});
  for (bool batching : {false, true}) {
    sim::Simulation sim(31);
    sim::Network network(&sim);
    CRAYFISH_CHECK_OK(
        network.AddHost(sim::Host{"client", 64, 1ULL << 30, false}));
    serving::ExternalServerOptions opts;
    opts.model = serving::ModelProfile::Ffnn();
    opts.adaptive_batching = batching;
    opts.max_batch = 32;
    opts.batch_timeout_s = 0.005;
    auto server = serving::CreateExternalServer(&sim, &network,
                                                "torchserve", opts);
    CRAYFISH_CHECK(server.ok());
    (*server)->Start();
    int completed = 0;
    double done_at = 0.0;
    // 1000 requests, 500/s open loop.
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(3.0 + i * 0.002, [&, i]() {
        (*server)->Invoke("client", 1, [&]() {
          // lint: cross-host-ok bench harness: one simulation pumped to completion on the measuring thread, so the captured counters have a single writer
          if (++completed == 1000) done_at = sim.Now();
        });
      });
    }
    sim.RunUntilIdle();
    table.AddRow({batching ? "adaptive batching (32, 5 ms)" : "per-request",
                  std::to_string(completed),
                  std::to_string((*server)->batches_executed()),
                  core::ReportTable::Num(done_at - 3.0, 2)});
  }
  Emit(table, "ext_adaptive_batching.csv");
  std::printf(
      "Batching amortizes the Python-handler overhead across grouped "
      "requests — the mechanism behind Spark's Table 5 advantage, moved "
      "into the server.\n\n");
}

void AutoscaleStudy() {
  core::ReportTable table(
      "Ext (c): serving-side autoscaling under the Fig. 8 burst workload "
      "(Flink + TF-Serving)",
      {"Config", "mean burst recovery s"});
  // Measure ST once at the fixed single-worker configuration.
  core::ExperimentConfig probe = ThroughputConfig("flink", "tf-serving",
                                                  "ffnn");
  probe.duration_s = 8.0;
  const double st = Run(probe).summary.throughput_eps;
  // NOTE: the fixed-pool burst runs reuse the Fig. 8 parameters.
  core::ExperimentConfig bursty;
  bursty.engine = "flink";
  bursty.serving = "tf-serving";
  bursty.bursty = true;
  bursty.input_rate = 0.7 * st;
  bursty.burst_rate = 1.1 * st;
  bursty.burst_duration_s = 30.0;
  bursty.time_between_bursts_s = 120.0;
  bursty.first_burst_at_s = 120.0;
  bursty.duration_s = 120.0 + 3 * 150.0;
  bursty.drain_s = 30.0;
  // The experiment runner sizes the worker pool to mp; to study
  // autoscaling we keep mp=1 and rely on the engine's blocking client —
  // so instead we compare recovery with a larger fixed pool (what an
  // autoscaler converges to during the burst).
  core::ExperimentConfig scaled = bursty;
  scaled.parallelism = 2;  // burst-time capacity an autoscaler reaches
  scaled.input_rate = 0.7 * st;
  scaled.burst_rate = 1.1 * st;
  auto grouped = Run2All({bursty, scaled});
  crayfish::RunningStats fixed;
  for (const auto& result : grouped[0]) {
    for (const auto& rec : result.recoveries) {
      if (rec.recovery_s >= 0) fixed.Add(rec.recovery_s);
    }
  }
  table.AddRow({"fixed pool (1 worker)",
                core::ReportTable::Num(fixed.mean(), 2)});
  crayfish::RunningStats autoscaled;
  for (const auto& result : grouped[1]) {
    for (const auto& rec : result.recoveries) {
      if (rec.recovery_s >= 0) autoscaled.Add(rec.recovery_s);
    }
  }
  table.AddRow({"scaled pool (2 workers, autoscaler target)",
                core::ReportTable::Num(autoscaled.mean(), 2)});
  Emit(table, "ext_autoscaling.csv");
  std::printf(
      "Extra serving capacity drains burst backlogs roughly in proportion "
      "to the added headroom — the decoupled-scalability argument of "
      "§7.1.\n");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) CRAYFISH_REQUIRES("setup") {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::AsyncIoStudy();
  crayfish::bench::AdaptiveBatchingStudy();
  crayfish::bench::AutoscaleStudy();
  return 0;
}
