// Reproduces Fig. 5: end-to-end request latency (ms/batch) on Apache
// Flink for increasing batch sizes, FFNN, closed loop (ir = 1 ev/s,
// mp = 1), all five serving tools.
//
// Paper reference points at bsz = 128: TF-Serving 191 ms, DL4J 229 ms,
// SavedModel 188 ms. Expected shape: latency grows with batch size;
// TF-Serving is comparable to — and sometimes below — the embedded
// options; ONNX is the fastest embedded tool; standard deviation grows
// with batch size.

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig5() {
  const char* tools[] = {"dl4j", "onnx", "savedmodel", "tf-serving",
                         "torchserve"};
  const int batch_sizes[] = {32, 128, 512};

  core::ReportTable table(
      "Fig. 5: e2e latency vs batch size, Flink + FFNN (ir=1, mp=1)",
      {"Tool", "bsz", "Latency ms", "StdDev ms", "p95 ms"});
  struct Row {
    const char* tool;
    int bsz;
  };
  std::vector<Row> rows;
  std::vector<core::ExperimentConfig> configs;
  for (const char* tool : tools) {
    for (int bsz : batch_sizes) {
      rows.push_back({tool, bsz});
      configs.push_back(ClosedLoopConfig("flink", tool, bsz));
    }
  }
  auto grouped = Run2All(configs);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& results = grouped[i];
    core::Aggregate lat = core::AggregateLatencyMean(results);
    table.AddRow({rows[i].tool, std::to_string(rows[i].bsz),
                  core::ReportTable::Num(lat.mean),
                  core::ReportTable::Num(lat.stddev),
                  core::ReportTable::Num(results[0].summary.latency_p95_ms)});
  }
  Emit(table, "fig05_latency_batch.csv");
  std::printf(
      "Paper reference @bsz=128: TF-Serving 191 ms, DL4J 229 ms, "
      "SavedModel 188 ms\n");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig5();
  return 0;
}
