// Reproduces Fig. 6: vertical scalability of the serving tools on Apache
// Flink with the FFNN model (ir = 30k ev/s, bsz = 1), mp in {1..16}.
//
// Paper reference peaks: DL4J ~2.8k @ mp=8 (plateaus after); ONNX ~13.6k
// @ 16; SavedModel ~10.4k @ 16; TF-Serving ~9.8k; TorchServe ~2.8k;
// external tools keep scaling with added resources; embedded tools show
// higher run-to-run deviation at high mp (SavedModel ~2.3k @ 16).

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig6() {
  const char* tools[] = {"dl4j", "onnx", "savedmodel", "tf-serving",
                         "torchserve"};
  const int parallelism[] = {1, 2, 4, 8, 16};

  core::ReportTable table(
      "Fig. 6: scaling up FFNN serving on Flink (ir=30k, bsz=1)",
      {"Tool", "mp", "Throughput ev/s", "StdDev"});
  struct Row {
    const char* tool;
    int mp;
  };
  std::vector<Row> rows;
  std::vector<core::ExperimentConfig> configs;
  for (const char* tool : tools) {
    for (int mp : parallelism) {
      core::ExperimentConfig cfg = ThroughputConfig("flink", tool, "ffnn");
      cfg.parallelism = mp;
      cfg.duration_s = 8.0;
      rows.push_back({tool, mp});
      configs.push_back(std::move(cfg));
    }
  }
  auto grouped = Run2All(configs);
  for (size_t i = 0; i < rows.size(); ++i) {
    core::Aggregate thr = core::AggregateThroughput(grouped[i]);
    table.AddRow({rows[i].tool, std::to_string(rows[i].mp),
                  core::ReportTable::Num(thr.mean),
                  core::ReportTable::Num(thr.stddev)});
  }
  Emit(table, "fig06_scaleup_ffnn.csv");
  std::printf(
      "Paper reference peaks: DL4J 2.8k@8 (flat after), ONNX 13.6k@16, "
      "SavedModel 10.4k@16, TF-Serving 9.8k, TorchServe 2.8k\n");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig6();
  return 0;
}
