// Reproduces Fig. 6: vertical scalability of the serving tools on Apache
// Flink with the FFNN model (ir = 30k ev/s, bsz = 1), mp in {1..16}.
//
// Paper reference peaks: DL4J ~2.8k @ mp=8 (plateaus after); ONNX ~13.6k
// @ 16; SavedModel ~10.4k @ 16; TF-Serving ~9.8k; TorchServe ~2.8k;
// external tools keep scaling with added resources; embedded tools show
// higher run-to-run deviation at high mp (SavedModel ~2.3k @ 16).

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig6() {
  const char* tools[] = {"dl4j", "onnx", "savedmodel", "tf-serving",
                         "torchserve"};
  const int parallelism[] = {1, 2, 4, 8, 16};

  core::ReportTable table(
      "Fig. 6: scaling up FFNN serving on Flink (ir=30k, bsz=1)",
      {"Tool", "mp", "Throughput ev/s", "StdDev"});
  for (const char* tool : tools) {
    for (int mp : parallelism) {
      core::ExperimentConfig cfg = ThroughputConfig("flink", tool, "ffnn");
      cfg.parallelism = mp;
      cfg.duration_s = 8.0;
      auto results = Run2(cfg);
      core::Aggregate thr = core::AggregateThroughput(results);
      table.AddRow({tool, std::to_string(mp),
                    core::ReportTable::Num(thr.mean),
                    core::ReportTable::Num(thr.stddev)});
    }
  }
  Emit(table, "fig06_scaleup_ffnn.csv");
  std::printf(
      "Paper reference peaks: DL4J 2.8k@8 (flat after), ONNX 13.6k@16, "
      "SavedModel 10.4k@16, TF-Serving 9.8k, TorchServe 2.8k\n");
}

}  // namespace
}  // namespace crayfish::bench

int main() {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::RunFig6();
  return 0;
}
