// Reproduces Fig. 7: vertical scalability of ResNet50 serving on Apache
// Flink (ir = 256 ev/s, bsz = 1).
//
// Paper reference shape: ONNX scales like in Fig. 6; TF-Serving shows
// *negligible* gains (its pinned single intra-op pool serializes the big
// model); TorchServe starts below TF-Serving but overtakes it after
// mp = 8 (worker processes own their compute).

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig7() {
  const char* tools[] = {"onnx", "tf-serving", "torchserve"};
  const int parallelism[] = {1, 2, 4, 8, 16};

  core::ReportTable table(
      "Fig. 7: scaling up ResNet50 serving on Flink (ir=256, bsz=1)",
      {"Tool", "mp", "Throughput ev/s", "StdDev"});
  struct Row {
    const char* tool;
    int mp;
  };
  std::vector<Row> rows;
  std::vector<core::ExperimentConfig> configs;
  for (const char* tool : tools) {
    for (int mp : parallelism) {
      core::ExperimentConfig cfg = ThroughputConfig("flink", tool,
                                                    "resnet50");
      cfg.parallelism = mp;
      cfg.input_rate = 256.0;
      cfg.duration_s = 240.0;
      cfg.drain_s = 2.0;
      rows.push_back({tool, mp});
      configs.push_back(std::move(cfg));
    }
  }
  auto grouped = Run2All(configs);
  for (size_t i = 0; i < rows.size(); ++i) {
    core::Aggregate thr = core::AggregateThroughput(grouped[i]);
    table.AddRow({rows[i].tool, std::to_string(rows[i].mp),
                  core::ReportTable::Num(thr.mean),
                  core::ReportTable::Num(thr.stddev)});
  }
  Emit(table, "fig07_scaleup_resnet.csv");
  std::printf(
      "Paper reference shape: ONNX scales; TF-Serving ~flat; TorchServe "
      "overtakes TF-Serving past mp=8\n");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig7();
  return 0;
}
