// Reproduces Fig. 8: bursty workloads on Apache Flink + FFNN (bsz = 1,
// mp = 1, bd = 30 s, tbb = 120 s), comparing ONNX (embedded) and
// TF-Serving (external). Bursts run at 110% of the configuration's
// sustainable throughput (ST), the base load at 70%.
//
// Paper reference: best recovery 41.37 s (ONNX) / 34.16 s (TF-Serving);
// average recovery 46.52 s (ONNX) / 56.15 s (TF-Serving). TF-Serving can
// recover faster but varies much more between bursts; ONNX is steadier.

#include <cmath>
#include <iterator>

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig8() {
  core::ReportTable table(
      "Fig. 8: burst recovery, Flink + FFNN (bsz=1, mp=1, bd=30s, "
      "tbb=120s)",
      {"Tool", "ST ev/s", "Burst#", "Recovery s"});
  core::ReportTable summary(
      "Fig. 8 summary",
      {"Tool", "Best recovery s", "Mean recovery s", "StdDev s",
       "Paper best", "Paper mean"});

  struct Ref {
    const char* tool;
    double paper_best;
    double paper_mean;
  };
  const Ref refs[] = {Ref{"onnx", 41.37, 46.52},
                      Ref{"tf-serving", 34.16, 56.15}};

  // Phase 1: measure each configuration's sustainable throughput (short
  // overloaded runs), as the paper does before each bursty experiment —
  // one sweep for all tools.
  std::vector<core::ExperimentConfig> probes;
  for (const Ref& ref : refs) {
    core::ExperimentConfig cfg = ThroughputConfig("flink", ref.tool, "ffnn");
    cfg.duration_s = 10.0;
    probes.push_back(std::move(cfg));
  }
  const std::vector<core::ExperimentResult> probe_results = RunAll(probes);

  // Phase 2: bursty runs at rates derived from each tool's ST.
  std::vector<double> sts;
  std::vector<core::ExperimentConfig> burst_configs;
  for (size_t i = 0; i < std::size(refs); ++i) {
    const double st = probe_results[i].summary.throughput_eps;
    sts.push_back(st);
    core::ExperimentConfig cfg;
    cfg.engine = "flink";
    cfg.serving = refs[i].tool;
    cfg.model = "ffnn";
    cfg.bursty = true;
    cfg.input_rate = 0.7 * st;
    cfg.burst_rate = 1.1 * st;
    cfg.burst_duration_s = 30.0;
    cfg.time_between_bursts_s = 120.0;
    cfg.first_burst_at_s = 120.0;
    // Three bursts per run (warmup + 3 cycles), two runs.
    cfg.duration_s = 120.0 + 3 * 150.0;
    cfg.drain_s = 30.0;
    burst_configs.push_back(std::move(cfg));
  }
  auto grouped = Run2All(burst_configs);

  for (size_t i = 0; i < std::size(refs); ++i) {
    const Ref& ref = refs[i];
    const double st = sts[i];
    const core::ExperimentConfig& cfg = burst_configs[i];
    crayfish::RunningStats recovery_stats;
    double best = -1.0;
    int burst_no = 0;
    for (const core::ExperimentResult& result : grouped[i]) {
      // Re-analyze with a fine window and a strict stabilization
      // criterion: latency must hold within 15% of the pre-burst baseline
      // for 3 consecutive seconds.
      const std::vector<core::BurstRecovery> recoveries =
          core::MetricsAnalyzer::BurstRecoveryTimes(
              result.measurements, cfg.Schedule(), result.sim_end_s,
              /*window_s=*/0.5, /*threshold_factor=*/1.15,
              /*stable_windows=*/6);
      for (const core::BurstRecovery& rec : recoveries) {
        ++burst_no;
        table.AddRow({ref.tool, core::ReportTable::Num(st, 1),
                      std::to_string(burst_no),
                      rec.recovery_s < 0
                          ? "not recovered"
                          : core::ReportTable::Num(rec.recovery_s, 2)});
        if (rec.recovery_s >= 0) {
          recovery_stats.Add(rec.recovery_s);
          if (best < 0 || rec.recovery_s < best) best = rec.recovery_s;
        }
      }
    }
    summary.AddRow({ref.tool, core::ReportTable::Num(best, 2),
                    core::ReportTable::Num(recovery_stats.mean(), 2),
                    core::ReportTable::Num(recovery_stats.stddev(), 2),
                    core::ReportTable::Num(ref.paper_best, 2),
                    core::ReportTable::Num(ref.paper_mean, 2)});
  }
  Emit(table, "fig08_bursts.csv");
  summary.Print();
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig8();
  return 0;
}
