// Reproduces Fig. 8: bursty workloads on Apache Flink + FFNN (bsz = 1,
// mp = 1, bd = 30 s, tbb = 120 s), comparing ONNX (embedded) and
// TF-Serving (external). Bursts run at 110% of the configuration's
// sustainable throughput (ST), the base load at 70%.
//
// Paper reference: best recovery 41.37 s (ONNX) / 34.16 s (TF-Serving);
// average recovery 46.52 s (ONNX) / 56.15 s (TF-Serving). TF-Serving can
// recover faster but varies much more between bursts; ONNX is steadier.

#include <cmath>

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

/// Measures the sustainable throughput of a configuration (short
/// overloaded run), as the paper does before each bursty experiment.
double MeasureSustainable(const std::string& tool) {
  core::ExperimentConfig cfg = ThroughputConfig("flink", tool, "ffnn");
  cfg.duration_s = 10.0;
  return Run(cfg).summary.throughput_eps;
}

void RunFig8() {
  core::ReportTable table(
      "Fig. 8: burst recovery, Flink + FFNN (bsz=1, mp=1, bd=30s, "
      "tbb=120s)",
      {"Tool", "ST ev/s", "Burst#", "Recovery s"});
  core::ReportTable summary(
      "Fig. 8 summary",
      {"Tool", "Best recovery s", "Mean recovery s", "StdDev s",
       "Paper best", "Paper mean"});

  struct Ref {
    const char* tool;
    double paper_best;
    double paper_mean;
  };
  for (const Ref& ref : {Ref{"onnx", 41.37, 46.52},
                         Ref{"tf-serving", 34.16, 56.15}}) {
    const double st = MeasureSustainable(ref.tool);
    core::ExperimentConfig cfg;
    cfg.engine = "flink";
    cfg.serving = ref.tool;
    cfg.model = "ffnn";
    cfg.bursty = true;
    cfg.input_rate = 0.7 * st;
    cfg.burst_rate = 1.1 * st;
    cfg.burst_duration_s = 30.0;
    cfg.time_between_bursts_s = 120.0;
    cfg.first_burst_at_s = 120.0;
    // Three bursts per run (warmup + 3 cycles), two runs.
    cfg.duration_s = 120.0 + 3 * 150.0;
    cfg.drain_s = 30.0;
    crayfish::RunningStats recovery_stats;
    double best = -1.0;
    int burst_no = 0;
    for (const core::ExperimentResult& result : Run2(cfg)) {
      // Re-analyze with a fine window and a strict stabilization
      // criterion: latency must hold within 15% of the pre-burst baseline
      // for 3 consecutive seconds.
      const std::vector<core::BurstRecovery> recoveries =
          core::MetricsAnalyzer::BurstRecoveryTimes(
              result.measurements, cfg.Schedule(), result.sim_end_s,
              /*window_s=*/0.5, /*threshold_factor=*/1.15,
              /*stable_windows=*/6);
      for (const core::BurstRecovery& rec : recoveries) {
        ++burst_no;
        table.AddRow({ref.tool, core::ReportTable::Num(st, 1),
                      std::to_string(burst_no),
                      rec.recovery_s < 0
                          ? "not recovered"
                          : core::ReportTable::Num(rec.recovery_s, 2)});
        if (rec.recovery_s >= 0) {
          recovery_stats.Add(rec.recovery_s);
          if (best < 0 || rec.recovery_s < best) best = rec.recovery_s;
        }
      }
    }
    summary.AddRow({ref.tool, core::ReportTable::Num(best, 2),
                    core::ReportTable::Num(recovery_stats.mean(), 2),
                    core::ReportTable::Num(recovery_stats.stddev(), 2),
                    core::ReportTable::Num(ref.paper_best, 2),
                    core::ReportTable::Num(ref.paper_mean, 2)});
  }
  Emit(table, "fig08_bursts.csv");
  summary.Print();
}

}  // namespace
}  // namespace crayfish::bench

int main() {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::RunFig8();
  return 0;
}
