// Reproduces Fig. 9: GPU acceleration of ResNet50 on Apache Flink,
// closed loop (ir = 0.2 ev/s, mp = 1, bsz = 8), comparing onnx-cpu /
// onnx-gpu / tf-serving-cpu / tf-serving-gpu.
//
// Paper reference (ms/batch): onnx-cpu 3698 -> onnx-gpu 3089 (-16.4%);
// tf-serving-cpu 3974 -> tf-serving-gpu 3016 (-24.1%). tf-serving-gpu
// edges out onnx-gpu and beats onnx-cpu by 18.4%.

#include <iterator>

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig9() {
  struct Ref {
    const char* tool;
    bool gpu;
    double paper_ms;
  };
  const Ref refs[] = {
      {"onnx", false, 3698.0},
      {"onnx", true, 3089.0},
      {"tf-serving", false, 3974.0},
      {"tf-serving", true, 3016.0},
  };

  core::ReportTable table(
      "Fig. 9: GPU acceleration, Flink + ResNet50 (ir=0.2, mp=1, bsz=8)",
      {"Config", "Latency ms", "StdDev ms", "Paper ms"});
  std::vector<core::ExperimentConfig> configs;
  for (const Ref& ref : refs) {
    core::ExperimentConfig cfg;
    cfg.engine = "flink";
    cfg.serving = ref.tool;
    cfg.model = "resnet50";
    cfg.batch_size = 8;
    cfg.input_rate = 0.2;
    cfg.parallelism = 1;
    cfg.use_gpu = ref.gpu;
    cfg.duration_s = 300.0;
    cfg.drain_s = 20.0;
    configs.push_back(std::move(cfg));
  }
  auto grouped = Run2All(configs);
  double cpu_latency[2] = {0.0, 0.0};
  for (size_t idx = 0; idx < std::size(refs); ++idx) {
    const Ref& ref = refs[idx];
    core::Aggregate lat = core::AggregateLatencyMean(grouped[idx]);
    const std::string name =
        std::string(ref.tool) + (ref.gpu ? "-gpu" : "-cpu");
    table.AddRow({name, core::ReportTable::Num(lat.mean),
                  core::ReportTable::Num(lat.stddev),
                  core::ReportTable::Num(ref.paper_ms)});
    if (!ref.gpu) {
      cpu_latency[idx / 2] = lat.mean;
    } else {
      const double improvement =
          100.0 * (1.0 - lat.mean / cpu_latency[idx / 2]);
      std::printf("%s improvement vs cpu: %.1f%% (paper %.1f%%)\n",
                  name.c_str(), improvement,
                  std::string(ref.tool) == "onnx" ? 16.4 : 24.1);
    }
  }
  Emit(table, "fig09_gpu.csv");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig9();
  return 0;
}
