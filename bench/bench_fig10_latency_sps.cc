// Reproduces Fig. 10: end-to-end latency of the four stream processors
// for increasing batch sizes, FFNN, closed loop (ir = 1 ev/s, mp = 1),
// with ONNX (embedded) and TF-Serving / Ray Serve (external).
//
// Paper reference shape: Flink lowest at bsz 32 and 128 but beaten by
// Kafka Streams at 512 (Flink's buffer quota hurts large records); Spark
// highest across the board (micro-batching); Ray competitive — 169.7 ms
// vs Flink's 167.44 ms at bsz = 128 with external serving.

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig10() {
  const char* engines[] = {"flink", "kafka-streams", "spark", "ray"};
  const int batch_sizes[] = {32, 128, 512};

  core::ReportTable table(
      "Fig. 10: e2e latency of the SPSs vs batch size, FFNN (ir=1, mp=1)",
      {"SPS", "Serving", "bsz", "Latency ms", "StdDev ms"});
  struct Row {
    const char* engine;
    std::string serving;
    int bsz;
  };
  std::vector<Row> rows;
  std::vector<core::ExperimentConfig> configs;
  for (const char* engine : engines) {
    for (bool external : {false, true}) {
      // Ray cannot reach TF-Serving natively; it uses Ray Serve (the
      // paper plots it dotted for this reason).
      const std::string serving =
          external ? (std::string(engine) == "ray" ? "ray-serve"
                                                   : "tf-serving")
                   : "onnx";
      for (int bsz : batch_sizes) {
        rows.push_back({engine, serving, bsz});
        configs.push_back(ClosedLoopConfig(engine, serving, bsz));
      }
    }
  }
  auto grouped = Run2All(configs);
  for (size_t i = 0; i < rows.size(); ++i) {
    core::Aggregate lat = core::AggregateLatencyMean(grouped[i]);
    table.AddRow({rows[i].engine, rows[i].serving,
                  std::to_string(rows[i].bsz),
                  core::ReportTable::Num(lat.mean),
                  core::ReportTable::Num(lat.stddev)});
  }
  Emit(table, "fig10_latency_sps.csv");
  std::printf(
      "Paper reference: Flink lowest @32/128, KS wins @512, Spark highest; "
      "external @128: Ray 169.7 ms vs Flink 167.44 ms\n");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig10();
  return 0;
}
