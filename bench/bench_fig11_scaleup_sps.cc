// Reproduces Fig. 11: vertical scalability of the four stream processors
// with ONNX and TF-Serving / Ray Serve, FFNN (ir = 30k ev/s, bsz = 1).
//
// Paper reference shape: Spark ~23k flat regardless of mp (10.2k with
// TF-Serving at mp=2 — 7.2x Kafka Streams' at the same point); Kafka
// Streams peaks ~23k (ONNX, mp=16) with steady gains; Flink peaks 13k
// (ONNX) / 9.8k (TF-Serving); Ray peaks ~1.2k (embedded) and ~455 ev/s
// through Ray Serve's single HTTP proxy.

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig11() {
  const char* engines[] = {"flink", "kafka-streams", "spark", "ray"};
  const int parallelism[] = {1, 2, 4, 8, 16};

  core::ReportTable table(
      "Fig. 11: scaling up the SPSs, FFNN (ir=30k, bsz=1)",
      {"SPS", "Serving", "mp", "Throughput ev/s", "StdDev"});
  struct Row {
    const char* engine;
    std::string serving;
    int mp;
  };
  std::vector<Row> rows;
  std::vector<core::ExperimentConfig> configs;
  for (const char* engine : engines) {
    for (bool external : {false, true}) {
      const std::string serving =
          external ? (std::string(engine) == "ray" ? "ray-serve"
                                                   : "tf-serving")
                   : "onnx";
      for (int mp : parallelism) {
        core::ExperimentConfig cfg = ThroughputConfig(engine, serving,
                                                      "ffnn");
        cfg.parallelism = mp;
        cfg.duration_s = 8.0;
        rows.push_back({engine, serving, mp});
        configs.push_back(std::move(cfg));
      }
    }
  }
  auto grouped = Run2All(configs);
  for (size_t i = 0; i < rows.size(); ++i) {
    core::Aggregate thr = core::AggregateThroughput(grouped[i]);
    table.AddRow({rows[i].engine, rows[i].serving,
                  std::to_string(rows[i].mp),
                  core::ReportTable::Num(thr.mean),
                  core::ReportTable::Num(thr.stddev)});
  }
  Emit(table, "fig11_scaleup_sps.csv");
  std::printf(
      "Paper reference peaks: Spark ~23k flat (10.2k TF-Serving @mp=2), "
      "KS 23k@16, Flink 13k/9.8k, Ray 1.2k/455\n");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig11();
  return 0;
}
