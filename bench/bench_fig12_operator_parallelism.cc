// Reproduces Fig. 12 (§6.1): decoupling source/sink parallelism from the
// scoring task in Apache Flink. flink[N-N-N] uses the default (chained)
// parallelism; flink[32-N-32] pins source and sink to the 32 Kafka
// partitions and scales only the scoring operator.
//
// Paper reference: at N=1, flink[N-N-N] sustains ~1393 ev/s while
// flink[32-N-32] reaches ~5373 ev/s (~3.8x); the unchained configuration
// stays consistently ahead while scaling. Shown for ONNX and TF-Serving.

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunFig12() {
  const char* tools[] = {"onnx", "tf-serving"};
  const int parallelism[] = {1, 2, 4, 8, 16};

  core::ReportTable table(
      "Fig. 12: flink[N-N-N] vs flink[32-N-32], FFNN (ir=30k, bsz=1)",
      {"Tool", "N", "flink[N-N-N] ev/s", "flink[32-N-32] ev/s", "Ratio"});
  struct Row {
    const char* tool;
    int n;
  };
  std::vector<Row> rows;
  std::vector<core::ExperimentConfig> configs;  // chained/unchained pairs
  for (const char* tool : tools) {
    for (int n : parallelism) {
      core::ExperimentConfig chained = ThroughputConfig("flink", tool,
                                                        "ffnn");
      chained.parallelism = n;
      chained.duration_s = 8.0;
      core::ExperimentConfig unchained = chained;
      unchained.source_parallelism = 32;
      unchained.sink_parallelism = 32;
      rows.push_back({tool, n});
      configs.push_back(std::move(chained));
      configs.push_back(std::move(unchained));
    }
  }
  auto grouped = Run2All(configs);
  for (size_t i = 0; i < rows.size(); ++i) {
    const double thr_chained =
        core::AggregateThroughput(grouped[2 * i]).mean;
    const double thr_unchained =
        core::AggregateThroughput(grouped[2 * i + 1]).mean;
    table.AddRow({rows[i].tool, std::to_string(rows[i].n),
                  core::ReportTable::Num(thr_chained),
                  core::ReportTable::Num(thr_unchained),
                  core::ReportTable::Num(thr_unchained /
                                         thr_chained, 2)});
  }
  Emit(table, "fig12_operator_parallelism.csv");
  std::printf(
      "Paper reference @N=1 (onnx): 1393 vs 5373 ev/s (~3.8x)\n");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig12();
  return 0;
}
