// Reproduces Fig. 13 (§6.2): the overhead Crayfish introduces by routing
// input/output through Kafka, versus a self-contained standalone Flink
// pipeline that generates data in-process (ONNX + FFNN, operator-level
// parallelism, ir = 1 ev/s, mp = 1 for latency; overloaded for
// throughput).
//
// Paper reference: ~2.42% throughput overhead; up to 59% lower latency in
// the standalone configuration.

#include "bench/bench_common.h"
#include "core/standalone.h"

namespace crayfish::bench {
namespace {

void RunFig13() {
  // --- latency, closed loop over batch sizes ---
  core::ReportTable latency_table(
      "Fig. 13: e2e latency, Crayfish (kafka) vs standalone Flink "
      "(no-kafka), ONNX + FFNN (ir=1, mp=1)",
      {"bsz", "kafka ms", "no-kafka ms", "reduction %"});
  const int batch_sizes[] = {1, 32, 128, 512};
  std::vector<core::ExperimentConfig> configs;
  for (int bsz : batch_sizes) {
    configs.push_back(ClosedLoopConfig("flink", "onnx", bsz));
  }
  // The throughput config rides in the same sweep (last slot).
  core::ExperimentConfig thr_cfg = ThroughputConfig("flink", "onnx",
                                                    "ffnn");
  thr_cfg.source_parallelism = 32;
  thr_cfg.sink_parallelism = 32;
  thr_cfg.duration_s = 10.0;
  configs.push_back(thr_cfg);
  auto grouped = Run2All(configs);

  size_t idx = 0;
  for (int bsz : batch_sizes) {
    const core::ExperimentConfig& cfg = configs[idx];
    const double kafka_ms =
        core::AggregateLatencyMean(grouped[idx]).mean;
    ++idx;
    auto standalone = core::RunStandaloneFlink(cfg);
    CRAYFISH_CHECK(standalone.ok()) << standalone.status().ToString();
    const double nokafka_ms = standalone->summary.latency_mean_ms;
    latency_table.AddRow(
        {std::to_string(bsz), core::ReportTable::Num(kafka_ms),
         core::ReportTable::Num(nokafka_ms),
         core::ReportTable::Num(100.0 * (1.0 - nokafka_ms / kafka_ms),
                                1)});
  }
  Emit(latency_table, "fig13_kafka_overhead_latency.csv");

  // --- throughput, overloaded, operator-level parallelism ---
  const double kafka_thr =
      core::AggregateThroughput(grouped[idx]).mean;
  core::ExperimentConfig standalone_cfg = thr_cfg;
  // The standalone pipeline has no stage decoupling knob; its scoring
  // stage is the bottleneck either way.
  auto standalone_thr = core::RunStandaloneFlink(standalone_cfg);
  CRAYFISH_CHECK(standalone_thr.ok());
  core::ReportTable thr_table(
      "Fig. 13 (throughput): kafka vs no-kafka, flink[32-1-32]",
      {"Config", "Throughput ev/s"});
  thr_table.AddRow({"kafka (Crayfish)", core::ReportTable::Num(kafka_thr)});
  thr_table.AddRow({"no-kafka (standalone)",
                    core::ReportTable::Num(
                        standalone_thr->summary.throughput_eps)});
  Emit(thr_table, "fig13_kafka_overhead_throughput.csv");
  std::printf(
      "Paper reference: throughput overhead ~2.42%%; standalone latency up "
      "to 59%% lower\n");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunFig13();
  return 0;
}
