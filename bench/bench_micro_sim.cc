// Micro-benchmarks of the simulation substrate itself: how many simulated
// events per wall-clock second the kernel, broker, and full pipelines
// sustain. These document the "whole suite in minutes on a laptop"
// property rather than any paper figure.

#include <benchmark/benchmark.h>

#include "broker/cluster.h"
#include "broker/consumer.h"
#include "broker/producer.h"
#include "common/logging.h"
#include "core/experiment.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "common/thread_annotations.h"

namespace {

using namespace crayfish;

void BM_SimulationEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    uint64_t fired = 0;
    for (int i = 0; i < 10000; ++i) {
      // lint: cross-host-ok bench harness: one simulation pumped to completion on the measuring thread, so the captured counter has a single writer
      sim.Schedule(i * 1e-4, [&fired]() { ++fired; });
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulationEventDispatch);

void BM_NetworkTransfers(benchmark::State& state)
    CRAYFISH_REQUIRES("setup") {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Network net(&sim);
    CRAYFISH_CHECK_OK(net.AddHost(sim::Host{"a", 4, 1ULL << 30, false}));
    CRAYFISH_CHECK_OK(net.AddHost(sim::Host{"b", 4, 1ULL << 30, false}));
    for (int i = 0; i < 5000; ++i) {
      net.Send("a", "b", 3300, nullptr);
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(net.total_bytes_sent());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_NetworkTransfers);

void BM_BrokerProduceConsume(benchmark::State& state)
    CRAYFISH_REQUIRES("setup") {
  for (auto _ : state) {
    sim::Simulation sim(1);
    sim::Network net(&sim);
    broker::KafkaCluster cluster(&sim, &net, {});
    CRAYFISH_CHECK_OK(cluster.CreateTopic("t", 8));
    CRAYFISH_CHECK_OK(net.AddHost(sim::Host{"c", 4, 1ULL << 30, false}));
    broker::KafkaProducer producer(&cluster, "c");
    broker::KafkaConsumer consumer(&cluster, "c", "g");
    CRAYFISH_CHECK_OK(consumer.Assign("t", {0, 1, 2, 3, 4, 5, 6, 7}));
    for (int i = 0; i < 2000; ++i) {
      broker::Record r;
      r.batch_id = static_cast<uint64_t>(i);
      r.wire_size = 3300;
      CRAYFISH_CHECK_OK(producer.Send("t", std::move(r)));
    }
    producer.Flush();
    uint64_t received = 0;
    std::function<void()> poll = [&]() {
      consumer.Poll(0.5, [&](std::vector<broker::Record> records) {
        received += records.size();
        if (received < 2000) poll();
      });
    };
    poll();
    sim.Run(30.0);
    CRAYFISH_CHECK_EQ(received, 2000u);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_BrokerProduceConsume);

void BM_FullPipelineExperiment(benchmark::State& state) {
  // One complete Flink+ONNX experiment: ~2.5k scored events per run.
  for (auto _ : state) {
    core::ExperimentConfig cfg;
    cfg.engine = "flink";
    cfg.serving = "onnx";
    cfg.input_rate = 500.0;
    cfg.duration_s = 5.0;
    cfg.drain_s = 1.0;
    auto r = core::RunExperiment(cfg);
    CRAYFISH_CHECK(r.ok());
    benchmark::DoNotOptimize(r->summary.throughput_eps);
    state.counters["sim_events"] = static_cast<double>(
        r->sim_events_executed);
  }
}
BENCHMARK(BM_FullPipelineExperiment)->Unit(benchmark::kMillisecond);

}  // namespace
