// Supporting micro-benchmarks (google-benchmark) for the real compute
// substrate: tensor kernels, model forward passes, serialization codecs.
// These do not correspond to a paper figure; they document the real-math
// path that backs the CrayfishModel load/apply contract.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/data_batch.h"
#include "core/generator.h"
#include "model/executor.h"
#include "model/formats.h"
#include "model/graph.h"
#include "tensor/ops.h"

namespace {

using crayfish::Rng;
using crayfish::core::CrayfishDataBatch;
using crayfish::model::BuildFfnn;
using crayfish::model::BuildTinyResNet;
using crayfish::model::Executor;
using crayfish::model::ModelFormat;
using crayfish::model::ModelGraph;
using crayfish::tensor::Conv2D;
using crayfish::tensor::MatMul;
using crayfish::tensor::Padding;
using crayfish::tensor::Shape;
using crayfish::tensor::Softmax;
using crayfish::tensor::Tensor;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Random(Shape{n, n}, &rng);
  Tensor b = Tensor::Random(Shape{n, n}, &rng);
  for (auto _ : state) {
    auto c = MatMul(a, b);
    benchmark::DoNotOptimize(c->data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128)->Arg(256);

void BM_Conv2D(benchmark::State& state) {
  const int64_t hw = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::Random(Shape{1, hw, hw, 16}, &rng);
  Tensor k = Tensor::Random(Shape{3, 3, 16, 32}, &rng);
  for (auto _ : state) {
    auto y = Conv2D(x, k, 1, Padding::kSame);
    benchmark::DoNotOptimize(y->data());
  }
}
BENCHMARK(BM_Conv2D)->Arg(16)->Arg(32);

void BM_Softmax(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::Random(Shape{64, 1000}, &rng);
  for (auto _ : state) {
    Tensor y = Softmax(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Softmax);

void BM_FfnnForward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  ModelGraph g = BuildFfnn();
  Rng rng(4);
  g.InitializeWeights(&rng);
  Executor exec(&g);
  Tensor input = Tensor::Random(Shape{batch, 28, 28}, &rng);
  for (auto _ : state) {
    auto out = exec.Run(input);
    benchmark::DoNotOptimize(out->data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_FfnnForward)->Arg(1)->Arg(32)->Arg(128);

void BM_TinyResNetForward(benchmark::State& state) {
  ModelGraph g = BuildTinyResNet(32, 10);
  Rng rng(5);
  g.InitializeWeights(&rng);
  Executor exec(&g);
  Tensor input = Tensor::Random(Shape{1, 32, 32, 3}, &rng);
  for (auto _ : state) {
    auto out = exec.Run(input);
    benchmark::DoNotOptimize(out->data());
  }
}
BENCHMARK(BM_TinyResNetForward);

void BM_SerializeOnnx(benchmark::State& state) {
  ModelGraph g = BuildFfnn();
  Rng rng(6);
  g.InitializeWeights(&rng);
  for (auto _ : state) {
    auto bytes = crayfish::model::Serialize(g, ModelFormat::kOnnx);
    benchmark::DoNotOptimize(bytes->data());
  }
}
BENCHMARK(BM_SerializeOnnx);

void BM_DeserializeOnnx(benchmark::State& state) {
  ModelGraph g = BuildFfnn();
  Rng rng(7);
  g.InitializeWeights(&rng);
  auto bytes = crayfish::model::Serialize(g, ModelFormat::kOnnx);
  for (auto _ : state) {
    auto back = crayfish::model::Deserialize(*bytes);
    benchmark::DoNotOptimize(back->layers());
  }
}
BENCHMARK(BM_DeserializeOnnx);

void BM_DataBatchJsonRoundTrip(benchmark::State& state) {
  Rng rng(8);
  crayfish::core::DataGenerator gen({28, 28},
                                    static_cast<int>(state.range(0)), rng);
  CrayfishDataBatch batch = gen.NextMaterialized(0.0);
  for (auto _ : state) {
    const std::string json = batch.ToJson();
    auto back = CrayfishDataBatch::FromJson(json);
    benchmark::DoNotOptimize(back->data);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(batch.ToJson().size()));
}
BENCHMARK(BM_DataBatchJsonRoundTrip)->Arg(1)->Arg(8);

}  // namespace
