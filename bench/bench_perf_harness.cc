// Performance harness for the simulator's host-side hot paths. Three
// measurements, each against an in-binary baseline that reproduces the
// pre-optimization implementation:
//
//  1. DES micro — events/sec through the event queue. Baseline: the old
//     std::function action + std::priority_queue design. Optimized: the
//     real sim::EventQueue (InlineAction SBO + implicit 4-ary min-heap
//     with a reused backing store).
//  2. Records — records/sec through a producer → log → fan-out-consumer
//     delivery chain. Baseline: payload bytes copied per delivery (the
//     old Bytes-by-value Record). Optimized: the real broker::Record,
//     whose payload is a shared immutable buffer.
//  3. Sweep — wall-clock for a small figure-style sweep, --jobs=1 vs all
//     hardware threads through core::SweepRunner.
//
// Emits BENCH_perf.json (in --out, default the working directory) so the
// numbers are tracked per commit. Wall-clock reads are fine here: this
// binary measures the host, it never runs inside a simulation.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "broker/record.h"
#include "core/sweep.h"
#include "sim/event_queue.h"

namespace crayfish::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// 1. DES micro
// ---------------------------------------------------------------------------

/// The pre-optimization event-queue design, kept verbatim as the baseline:
/// type-erased std::function actions (heap-allocating for captures beyond
/// ~16 bytes) ordered by a binary std::priority_queue that cannot reuse its
/// storage across pops.
struct LegacyEvent {
  double time = 0.0;
  uint64_t seq = 0;
  std::function<void()> action;
};

struct LegacyAfter {
  bool operator()(const LegacyEvent& a, const LegacyEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// The workload both queues execute: a self-rescheduling event mesh. Each
// handler captures 32 bytes (context pointer, two doubles, one counter —
// the shape of the simulator's timer closures: above std::function's
// 16-byte inline buffer, inside InlineAction's 48-byte one) and
// reschedules itself until kMicroEvents have run, with kMicroWidth events
// in flight so the heap stays populated.
constexpr uint64_t kMicroEvents = 2'000'000;
constexpr int kMicroWidth = 256;

struct LegacyCtx {
  std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, LegacyAfter>
      queue;
  uint64_t executed = 0;
  uint64_t sum = 0;
  uint64_t seq = 0;

  void Schedule(double time, uint64_t payload) {
    LegacyCtx* self = this;
    const double a = time * 1.5;
    const double b = time + 0.25;
    const uint64_t c = payload;
    queue.push({time, seq++, [self, a, b, c]() {
                  self->sum += c + static_cast<uint64_t>(a < b);
                  ++self->executed;
                  if (self->executed + self->queue.size() < kMicroEvents) {
                    self->Schedule(a + b, c + 1);
                  }
                }});
  }
};

double LegacyEventsPerSec(uint64_t* checksum) {
  LegacyCtx ctx;
  const auto start = Clock::now();
  for (int i = 0; i < kMicroWidth; ++i) {
    ctx.Schedule(1.0 + 0.001 * i, static_cast<uint64_t>(i));
  }
  while (!ctx.queue.empty()) {
    // priority_queue::top() is const — the pre-optimization code paid a
    // copy of the std::function here, exactly as reproduced.
    LegacyEvent e = ctx.queue.top();
    ctx.queue.pop();
    e.action();
  }
  const double elapsed = SecondsSince(start);
  *checksum = ctx.sum;
  return static_cast<double>(ctx.executed) / elapsed;
}

struct OptimizedCtx {
  sim::EventQueue queue;
  uint64_t executed = 0;
  uint64_t sum = 0;

  void Schedule(double time, uint64_t payload) {
    OptimizedCtx* self = this;
    const double a = time * 1.5;
    const double b = time + 0.25;
    const uint64_t c = payload;
    queue.Push(time, sim::InlineAction([self, a, b, c]() {
                 self->sum += c + static_cast<uint64_t>(a < b);
                 ++self->executed;
                 if (self->executed + self->queue.size() < kMicroEvents) {
                   self->Schedule(a + b, c + 1);
                 }
               }));
  }
};

double OptimizedEventsPerSec(uint64_t* checksum) {
  OptimizedCtx ctx;
  ctx.queue.Reserve(kMicroWidth + 1);
  const auto start = Clock::now();
  for (int i = 0; i < kMicroWidth; ++i) {
    ctx.Schedule(1.0 + 0.001 * i, static_cast<uint64_t>(i));
  }
  while (!ctx.queue.empty()) {
    sim::Event e = ctx.queue.Pop();
    e.action();
  }
  const double elapsed = SecondsSince(start);
  *checksum = ctx.sum;
  return static_cast<double>(ctx.executed) / elapsed;
}

// ---------------------------------------------------------------------------
// 2. Record fan-out
// ---------------------------------------------------------------------------

constexpr int kRecordCount = 200'000;
constexpr int kFanOut = 4;
constexpr size_t kPayloadBytes = 512;

/// The old ownership model: every delivery materializes its own copy of
/// the payload bytes (producer → log append, then log → each consumer).
struct CopyRecord {
  uint64_t batch_id = 0;
  Bytes payload;
};

double CopyRecordsPerSec(uint64_t* checksum) {
  const Bytes payload(kPayloadBytes, 0x5a);
  std::vector<CopyRecord> log;
  log.reserve(kRecordCount);
  uint64_t sum = 0;
  const auto start = Clock::now();
  for (int i = 0; i < kRecordCount; ++i) {
    CopyRecord produced{static_cast<uint64_t>(i), payload};  // producer copy
    log.push_back({produced.batch_id, produced.payload});    // append copy
    for (int c = 0; c < kFanOut; ++c) {
      CopyRecord delivered{log.back().batch_id, log.back().payload};
      sum += delivered.payload[static_cast<size_t>(c)];
    }
  }
  const double elapsed = SecondsSince(start);
  *checksum = sum;
  return static_cast<double>(kRecordCount) / elapsed;
}

double SharedRecordsPerSec(uint64_t* checksum) {
  std::vector<broker::Record> log;
  log.reserve(kRecordCount);
  uint64_t sum = 0;
  const auto start = Clock::now();
  for (int i = 0; i < kRecordCount; ++i) {
    broker::Record produced;
    produced.batch_id = static_cast<uint64_t>(i);
    produced.SetPayload(Bytes(kPayloadBytes, 0x5a));  // materialized once
    log.push_back(produced);                          // refcount bump
    for (int c = 0; c < kFanOut; ++c) {
      broker::Record delivered = log.back();  // refcount bump per consumer
      sum += (*delivered.payload)[static_cast<size_t>(c)];
    }
  }
  const double elapsed = SecondsSince(start);
  *checksum = sum;
  return static_cast<double>(kRecordCount) / elapsed;
}

// ---------------------------------------------------------------------------
// 3. Sweep wall-clock
// ---------------------------------------------------------------------------

std::vector<core::ExperimentConfig> SweepConfigs() {
  // A Fig. 6-style slice: one engine/tool, parallelism swept, two repeats
  // per point — eight independent simulations.
  std::vector<core::ExperimentConfig> configs;
  for (int mp : {1, 2, 4, 8}) {
    core::ExperimentConfig cfg = ThroughputConfig("flink", "onnx", "ffnn");
    cfg.parallelism = mp;
    cfg.duration_s = 6.0;
    for (core::ExperimentConfig& rep : core::MakeRepeatedConfigs(cfg, 2)) {
      configs.push_back(std::move(rep));
    }
  }
  return configs;
}

double SweepWallClock(const std::vector<core::ExperimentConfig>& configs,
                      int jobs) {
  const auto start = Clock::now();
  auto results = core::RunExperiments(configs, jobs);
  CRAYFISH_CHECK(results.ok()) << results.status().ToString();
  CRAYFISH_CHECK(results->size() == configs.size());
  return SecondsSince(start);
}

// ---------------------------------------------------------------------------

void RunHarness() {
  std::printf("bench_perf_harness: DES micro (%llu events, width %d)...\n",
              static_cast<unsigned long long>(kMicroEvents), kMicroWidth);
  uint64_t legacy_sum = 0;
  uint64_t optimized_sum = 0;
  // Warm-up pass each, then the measured pass.
  (void)LegacyEventsPerSec(&legacy_sum);
  (void)OptimizedEventsPerSec(&optimized_sum);
  const double legacy_eps = LegacyEventsPerSec(&legacy_sum);
  const double optimized_eps = OptimizedEventsPerSec(&optimized_sum);
  CRAYFISH_CHECK(legacy_sum == optimized_sum)
      << "baseline and optimized queues executed different workloads";
  const double micro_speedup = optimized_eps / legacy_eps;
  std::printf("  legacy    %12.0f events/s\n", legacy_eps);
  std::printf("  optimized %12.0f events/s   (%.2fx)\n", optimized_eps,
              micro_speedup);

  std::printf("bench_perf_harness: record fan-out (%d records x %d "
              "consumers, %zu B payload)...\n",
              kRecordCount, kFanOut, kPayloadBytes);
  uint64_t copy_sum = 0;
  uint64_t shared_sum = 0;
  (void)CopyRecordsPerSec(&copy_sum);
  (void)SharedRecordsPerSec(&shared_sum);
  const double copy_rps = CopyRecordsPerSec(&copy_sum);
  const double shared_rps = SharedRecordsPerSec(&shared_sum);
  CRAYFISH_CHECK(copy_sum == shared_sum);
  const double record_speedup = shared_rps / copy_rps;
  std::printf("  copy      %12.0f records/s\n", copy_rps);
  std::printf("  shared    %12.0f records/s   (%.2fx)\n", shared_rps,
              record_speedup);

  const unsigned hw = std::thread::hardware_concurrency();
  const int parallel_jobs = core::ResolveSweepJobs(0);
  const std::vector<core::ExperimentConfig> configs = SweepConfigs();
  std::printf("bench_perf_harness: sweep wall-clock (%zu sims, jobs=1 vs "
              "jobs=%d, %u hardware threads)...\n",
              configs.size(), parallel_jobs, hw);
  const double serial_s = SweepWallClock(configs, 1);
  const double parallel_s = SweepWallClock(configs, parallel_jobs);
  const double sweep_speedup = serial_s / parallel_s;
  std::printf("  jobs=1    %8.2f s\n", serial_s);
  std::printf("  jobs=%-4d %8.2f s   (%.2fx)\n", parallel_jobs, parallel_s,
              sweep_speedup);

  // The JSON lands in the working directory, not out_dir: unlike the
  // generated CSVs it is committed, so the perf trajectory is diffable
  // per PR.
  const std::string path = "BENCH_perf.json";
  std::ofstream out(path, std::ios::trunc);
  CRAYFISH_CHECK(static_cast<bool>(out)) << "cannot open " << path;
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"des_micro\": {\n"
      "    \"events\": %llu,\n"
      "    \"legacy_events_per_s\": %.0f,\n"
      "    \"optimized_events_per_s\": %.0f,\n"
      "    \"speedup\": %.3f\n"
      "  },\n"
      "  \"record_fanout\": {\n"
      "    \"records\": %d,\n"
      "    \"fan_out\": %d,\n"
      "    \"payload_bytes\": %zu,\n"
      "    \"copy_records_per_s\": %.0f,\n"
      "    \"shared_records_per_s\": %.0f,\n"
      "    \"speedup\": %.3f\n"
      "  },\n"
      "  \"sweep\": {\n"
      "    \"simulations\": %zu,\n"
      "    \"parallel_jobs\": %d,\n"
      "    \"serial_wall_s\": %.3f,\n"
      "    \"parallel_wall_s\": %.3f,\n"
      "    \"speedup\": %.3f\n"
      "  }\n"
      "}\n",
      hw, static_cast<unsigned long long>(kMicroEvents), legacy_eps,
      optimized_eps, micro_speedup, kRecordCount, kFanOut, kPayloadBytes,
      copy_rps, shared_rps, record_speedup, configs.size(), parallel_jobs,
      serial_s, parallel_s, sweep_speedup);
  out << buf;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunHarness();
  return 0;
}
