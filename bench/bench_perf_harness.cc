// Performance harness for the simulator's host-side hot paths. Three
// measurements, each against an in-binary baseline that reproduces the
// pre-optimization implementation:
//
//  1. DES micro — events/sec through the event queue. Baseline: the old
//     std::function action + std::priority_queue design. Optimized: the
//     real sim::EventQueue (InlineAction SBO + implicit 4-ary min-heap
//     with a reused backing store).
//  2. Records — records/sec through a producer → log → fan-out-consumer
//     delivery chain. Baseline: payload bytes copied per delivery (the
//     old Bytes-by-value Record). Optimized: the real broker::Record,
//     whose payload is a shared immutable buffer.
//  3. Sweep — wall-clock for a small figure-style sweep, --jobs=1 vs all
//     hardware threads through core::SweepRunner.
//  4. Partitioned DES — one fixed workload (64 hosts, CPU-bound confined
//     ticks plus cross-host ring messages through the mailbox path) run at
//     sim_threads 1/2/4/8. Checksums must match across thread counts (the
//     engine's byte-for-byte determinism contract); wall-clock scaling is
//     recorded together with hardware_concurrency so a 1-core runner's
//     numbers are read as protocol overhead, not scaling.
//  5. Confined pipeline — the full RQ1-style experiment (producer → Kafka
//     → Flink → external serving) after the confinement-planner migration,
//     run at sim_threads 1/2/4/8. A fingerprint over the result (counts,
//     clock bits, metric summary) must be identical at every thread count;
//     wall-clock per point shows what host-confined scheduling buys the
//     real pipeline, subject to the same hardware_concurrency caveat.
//
// Emits BENCH_perf.json (in --out, default the working directory) so the
// numbers are tracked per commit. Wall-clock reads are fine here: this
// binary measures the host, it never runs inside a simulation.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "broker/cluster.h"
#include "broker/record.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// 1. DES micro
// ---------------------------------------------------------------------------

/// The pre-optimization event-queue design, kept verbatim as the baseline:
/// type-erased std::function actions (heap-allocating for captures beyond
/// ~16 bytes) ordered by a binary std::priority_queue that cannot reuse its
/// storage across pops.
struct LegacyEvent {
  double time = 0.0;
  uint64_t seq = 0;
  std::function<void()> action;
};

struct LegacyAfter {
  bool operator()(const LegacyEvent& a, const LegacyEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// The workload both queues execute: a self-rescheduling event mesh. Each
// handler captures 32 bytes (context pointer, two doubles, one counter —
// the shape of the simulator's timer closures: above std::function's
// 16-byte inline buffer, inside InlineAction's 48-byte one) and
// reschedules itself until kMicroEvents have run, with kMicroWidth events
// in flight so the heap stays populated.
constexpr uint64_t kMicroEvents = 2'000'000;
constexpr int kMicroWidth = 256;

struct LegacyCtx {
  std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, LegacyAfter>
      queue;
  uint64_t executed = 0;
  uint64_t sum = 0;
  uint64_t seq = 0;

  void Schedule(double time, uint64_t payload) {
    LegacyCtx* self = this;
    const double a = time * 1.5;
    const double b = time + 0.25;
    const uint64_t c = payload;
    queue.push({time, seq++, [self, a, b, c]() {
                  self->sum += c + static_cast<uint64_t>(a < b);
                  ++self->executed;
                  if (self->executed + self->queue.size() < kMicroEvents) {
                    self->Schedule(a + b, c + 1);
                  }
                }});
  }
};

double LegacyEventsPerSec(uint64_t* checksum) {
  LegacyCtx ctx;
  const auto start = Clock::now();
  for (int i = 0; i < kMicroWidth; ++i) {
    ctx.Schedule(1.0 + 0.001 * i, static_cast<uint64_t>(i));
  }
  while (!ctx.queue.empty()) {
    // priority_queue::top() is const — the pre-optimization code paid a
    // copy of the std::function here, exactly as reproduced.
    LegacyEvent e = ctx.queue.top();
    ctx.queue.pop();
    e.action();
  }
  const double elapsed = SecondsSince(start);
  *checksum = ctx.sum;
  return static_cast<double>(ctx.executed) / elapsed;
}

struct OptimizedCtx {
  sim::EventQueue queue;
  uint64_t executed = 0;
  uint64_t sum = 0;

  void Schedule(double time, uint64_t payload) {
    OptimizedCtx* self = this;
    const double a = time * 1.5;
    const double b = time + 0.25;
    const uint64_t c = payload;
    queue.Push(time, sim::InlineAction([self, a, b, c]() {
                 self->sum += c + static_cast<uint64_t>(a < b);
                 ++self->executed;
                 if (self->executed + self->queue.size() < kMicroEvents) {
                   self->Schedule(a + b, c + 1);
                 }
               }));
  }
};

double OptimizedEventsPerSec(uint64_t* checksum) {
  OptimizedCtx ctx;
  ctx.queue.Reserve(kMicroWidth + 1);
  const auto start = Clock::now();
  for (int i = 0; i < kMicroWidth; ++i) {
    ctx.Schedule(1.0 + 0.001 * i, static_cast<uint64_t>(i));
  }
  while (!ctx.queue.empty()) {
    sim::Event e = ctx.queue.Pop();
    e.action();
  }
  const double elapsed = SecondsSince(start);
  *checksum = ctx.sum;
  return static_cast<double>(ctx.executed) / elapsed;
}

// ---------------------------------------------------------------------------
// 2. Record fan-out
// ---------------------------------------------------------------------------

constexpr int kRecordCount = 200'000;
constexpr int kFanOut = 4;
constexpr size_t kPayloadBytes = 512;

/// The old ownership model: every delivery materializes its own copy of
/// the payload bytes (producer → log append, then log → each consumer).
struct CopyRecord {
  uint64_t batch_id = 0;
  Bytes payload;
};

double CopyRecordsPerSec(uint64_t* checksum) {
  const Bytes payload(kPayloadBytes, 0x5a);
  std::vector<CopyRecord> log;
  log.reserve(kRecordCount);
  uint64_t sum = 0;
  const auto start = Clock::now();
  for (int i = 0; i < kRecordCount; ++i) {
    CopyRecord produced{static_cast<uint64_t>(i), payload};  // producer copy
    log.push_back({produced.batch_id, produced.payload});    // append copy
    for (int c = 0; c < kFanOut; ++c) {
      CopyRecord delivered{log.back().batch_id, log.back().payload};
      sum += delivered.payload[static_cast<size_t>(c)];
    }
  }
  const double elapsed = SecondsSince(start);
  *checksum = sum;
  return static_cast<double>(kRecordCount) / elapsed;
}

double SharedRecordsPerSec(uint64_t* checksum) {
  std::vector<broker::Record> log;
  log.reserve(kRecordCount);
  uint64_t sum = 0;
  const auto start = Clock::now();
  for (int i = 0; i < kRecordCount; ++i) {
    broker::Record produced;
    produced.batch_id = static_cast<uint64_t>(i);
    produced.SetPayload(Bytes(kPayloadBytes, 0x5a));  // materialized once
    log.push_back(produced);                          // refcount bump
    for (int c = 0; c < kFanOut; ++c) {
      broker::Record delivered = log.back();  // refcount bump per consumer
      sum += (*delivered.payload)[static_cast<size_t>(c)];
    }
  }
  const double elapsed = SecondsSince(start);
  *checksum = sum;
  return static_cast<double>(kRecordCount) / elapsed;
}

// ---------------------------------------------------------------------------
// 3. Sweep wall-clock
// ---------------------------------------------------------------------------

std::vector<core::ExperimentConfig> SweepConfigs() {
  // A Fig. 6-style slice: one engine/tool, parallelism swept, two repeats
  // per point — eight independent simulations.
  std::vector<core::ExperimentConfig> configs;
  for (int mp : {1, 2, 4, 8}) {
    core::ExperimentConfig cfg = ThroughputConfig("flink", "onnx", "ffnn");
    cfg.parallelism = mp;
    cfg.duration_s = 6.0;
    for (core::ExperimentConfig& rep : core::MakeRepeatedConfigs(cfg, 2)) {
      configs.push_back(std::move(rep));
    }
  }
  return configs;
}

double SweepWallClock(const std::vector<core::ExperimentConfig>& configs,
                      int jobs) {
  const auto start = Clock::now();
  auto results = core::RunExperiments(configs, jobs);
  CRAYFISH_CHECK(results.ok()) << results.status().ToString();
  CRAYFISH_CHECK(results->size() == configs.size());
  return SecondsSince(start);
}

// ---------------------------------------------------------------------------
// 4. Partitioned DES scaling
// ---------------------------------------------------------------------------

constexpr int kPartHosts = 64;
constexpr int kPartTicks = 400;           // self-rescheduling ticks per host
constexpr int kPartSpin = 2'000;          // xorshift rounds per tick (CPU load)
constexpr int kPartSendEvery = 8;         // cross-host send cadence, in ticks
constexpr double kPartStep = 0.0005;      // same-host reschedule step, seconds
constexpr double kPartLookahead = 0.002;  // cross-host latency bound, seconds

/// Per-host state, cache-line padded so neighbouring hosts owned by
/// different partitions never share a line.
struct alignas(64) PartHostState {
  uint64_t sum = 0;
  int ticks = 0;
};

/// Fixed workload, variable thread count: every host runs a CPU-bound
/// self-rescheduling tick and messages its ring neighbour every
/// kPartSendEvery ticks at exactly the lookahead bound, so the mailbox
/// merge path is exercised, not just independent per-host queues. The
/// checksum folds per-host sums in host-id order with a non-commutative
/// mix, so equality across thread counts means equal per-host event
/// histories, not merely equal totals.
class PartitionedWorkload {
 public:
  explicit PartitionedWorkload(int threads) : state_(kPartHosts) {
    sim_.SetThreads(threads);
    sim_.SetLookahead(kPartLookahead);
    for (int h = 0; h < kPartHosts; ++h) {
      char name[16];
      std::snprintf(name, sizeof(name), "h%02d", h);
      sim_.RegisterHost(name);
    }
    for (int h = 0; h < kPartHosts; ++h) {
      sim_.ScheduleAtOnHost(h, kPartStep * (1 + h % 4),
                            sim::InlineAction([this, h]() { Tick(h); }));
    }
  }

  uint64_t Run() { return sim_.RunUntilIdle(); }

  uint64_t Checksum() const {
    uint64_t sum = 0;
    for (const PartHostState& st : state_) {
      sum = sum * 1099511628211ull + st.sum;
    }
    return sum;
  }

 private:
  void Tick(int h) {
    PartHostState& st = state_[static_cast<size_t>(h)];
    uint64_t x = st.sum ^ (0x9e3779b97f4a7c15ull + static_cast<uint64_t>(h));
    for (int i = 0; i < kPartSpin; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    st.sum = st.sum * 31 + x;
    ++st.ticks;
    if (st.ticks >= kPartTicks) return;
    sim_.ScheduleOnHost(h, kPartStep,
                        sim::InlineAction([this, h]() { Tick(h); }));
    if (st.ticks % kPartSendEvery == 0) {
      const int to = (h + 1) % kPartHosts;
      const uint64_t payload = st.sum;
      sim_.ScheduleAtOnHost(
          to, sim_.Now() + kPartLookahead,
          sim::InlineAction([this, to, payload]() {
            PartHostState& dst = state_[static_cast<size_t>(to)];
            dst.sum = dst.sum * 33 + payload;
          }));
    }
  }

  sim::Simulation sim_{42};
  std::vector<PartHostState> state_;
};

struct PartitionedPoint {
  int threads = 1;
  double wall_s = 0.0;
  double events_per_s = 0.0;
};

std::vector<PartitionedPoint> PartitionedScaling(uint64_t* checksum,
                                                 uint64_t* events) {
  std::vector<PartitionedPoint> out;
  uint64_t ref_sum = 0;
  uint64_t ref_events = 0;
  for (int n : {1, 2, 4, 8}) {
    {
      PartitionedWorkload warm(n);  // warm-up pass per point
      warm.Run();
    }
    PartitionedWorkload w(n);
    const auto start = Clock::now();
    const uint64_t ran = w.Run();
    const double elapsed = SecondsSince(start);
    const uint64_t sum = w.Checksum();
    if (out.empty()) {
      ref_sum = sum;
      ref_events = ran;
    }
    CRAYFISH_CHECK(sum == ref_sum)
        << "partitioned run at " << n
        << " threads diverged from the serial checksum";
    CRAYFISH_CHECK(ran == ref_events)
        << "partitioned run at " << n << " threads executed " << ran
        << " events, serial executed " << ref_events;
    out.push_back({n, elapsed, static_cast<double>(ran) / elapsed});
  }
  *checksum = ref_sum;
  *events = ref_events;
  return out;
}

// ---------------------------------------------------------------------------
// 5. Confined pipeline
// ---------------------------------------------------------------------------

core::ExperimentConfig PipelineConfig(int threads) {
  core::ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "tf-serving";
  cfg.model = "ffnn";
  cfg.batch_size = 4;
  cfg.input_rate = 500.0;
  cfg.duration_s = 12.0;
  cfg.drain_s = 4.0;
  cfg.seed = 42;
  cfg.sim_threads = threads;
  return cfg;
}

/// FNV-1a over the run's observable surface: event counts, the end-of-run
/// clock bits, and the metric summary JSON. Any cross-thread-count
/// divergence in scheduling order lands in at least one of these.
uint64_t PipelineFingerprint(const core::ExperimentResult& r) {
  std::string surface = r.summary.ToJson();
  surface += std::to_string(r.events_sent);
  surface += std::to_string(r.events_scored);
  surface += std::to_string(r.sim_events_executed);
  uint64_t clock_bits = 0;
  std::memcpy(&clock_bits, &r.sim_end_s, sizeof(clock_bits));
  surface += std::to_string(clock_bits);
  uint64_t h = 1469598103934665603ull;
  for (const char c : surface) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<PartitionedPoint> PipelineScaling(uint64_t* checksum,
                                              uint64_t* events) {
  std::vector<PartitionedPoint> out;
  uint64_t ref_sum = 0;
  uint64_t ref_events = 0;
  for (int n : {1, 2, 4, 8}) {
    const auto start = Clock::now();
    const auto r = core::RunExperiment(PipelineConfig(n));
    const double elapsed = SecondsSince(start);
    CRAYFISH_CHECK(r.ok()) << r.status().ToString();
    const uint64_t sum = PipelineFingerprint(*r);
    if (out.empty()) {
      ref_sum = sum;
      ref_events = r->sim_events_executed;
    }
    CRAYFISH_CHECK(sum == ref_sum)
        << "confined pipeline at sim_threads=" << n
        << " diverged from the serial fingerprint";
    CRAYFISH_CHECK(r->sim_events_executed == ref_events)
        << "confined pipeline at sim_threads=" << n << " executed "
        << r->sim_events_executed << " events, serial executed "
        << ref_events;
    out.push_back(
        {n, elapsed, static_cast<double>(ref_events) / elapsed});
  }
  *checksum = ref_sum;
  *events = ref_events;
  return out;
}

// --- section 6: lean cluster construction ----------------------------------
// Cost of standing up the autoscaler's cluster-scale topology: a 1000-host
// fleet with a 256-partition topic. With lazy per-partition bookkeeping and
// per-source link buckets this is linear in hosts + partitions; the
// live-link count doubles as evidence that nothing quadratic materialized.

constexpr int kClusterHosts = 1000;
constexpr int kClusterPartitions = 256;

struct ClusterConstructResult {
  double wall_s = 0.0;
  size_t live_links = 0;
};

ClusterConstructResult ClusterConstruct() {
  const auto start = Clock::now();
  sim::Simulation sim(7);
  sim::Network network(&sim);
  for (int i = 0; i < kClusterHosts; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "fleet-%04d", i);
    const auto s = network.AddHost(sim::Host{name, /*vcpus=*/4,
                                             /*memory_bytes=*/15ULL << 30,
                                             /*has_gpu=*/false});
    CRAYFISH_CHECK(s.ok()) << s.ToString();
  }
  broker::KafkaCluster cluster(&sim, &network, broker::ClusterConfig{});
  const auto created = cluster.CreateTopic("wide", kClusterPartitions);
  CRAYFISH_CHECK(created.ok()) << created.ToString();
  network.FreezeTopology();
  ClusterConstructResult r;
  r.wall_s = SecondsSince(start);
  r.live_links = network.live_link_count();
  CRAYFISH_CHECK(r.live_links == 0)
      << "lean construction materialized " << r.live_links << " links";
  return r;
}

// ---------------------------------------------------------------------------

void RunHarness() {
  std::printf("bench_perf_harness: DES micro (%llu events, width %d)...\n",
              static_cast<unsigned long long>(kMicroEvents), kMicroWidth);
  uint64_t legacy_sum = 0;
  uint64_t optimized_sum = 0;
  // Warm-up pass each, then the measured pass.
  (void)LegacyEventsPerSec(&legacy_sum);
  (void)OptimizedEventsPerSec(&optimized_sum);
  const double legacy_eps = LegacyEventsPerSec(&legacy_sum);
  const double optimized_eps = OptimizedEventsPerSec(&optimized_sum);
  CRAYFISH_CHECK(legacy_sum == optimized_sum)
      << "baseline and optimized queues executed different workloads";
  const double micro_speedup = optimized_eps / legacy_eps;
  std::printf("  legacy    %12.0f events/s\n", legacy_eps);
  std::printf("  optimized %12.0f events/s   (%.2fx)\n", optimized_eps,
              micro_speedup);

  std::printf("bench_perf_harness: record fan-out (%d records x %d "
              "consumers, %zu B payload)...\n",
              kRecordCount, kFanOut, kPayloadBytes);
  uint64_t copy_sum = 0;
  uint64_t shared_sum = 0;
  (void)CopyRecordsPerSec(&copy_sum);
  (void)SharedRecordsPerSec(&shared_sum);
  const double copy_rps = CopyRecordsPerSec(&copy_sum);
  const double shared_rps = SharedRecordsPerSec(&shared_sum);
  CRAYFISH_CHECK(copy_sum == shared_sum);
  const double record_speedup = shared_rps / copy_rps;
  std::printf("  copy      %12.0f records/s\n", copy_rps);
  std::printf("  shared    %12.0f records/s   (%.2fx)\n", shared_rps,
              record_speedup);

  const unsigned hw = std::thread::hardware_concurrency();
  const int parallel_jobs = core::ResolveSweepJobs(0);
  const std::vector<core::ExperimentConfig> configs = SweepConfigs();
  std::printf("bench_perf_harness: sweep wall-clock (%zu sims, jobs=1 vs "
              "jobs=%d, %u hardware threads)...\n",
              configs.size(), parallel_jobs, hw);
  const double serial_s = SweepWallClock(configs, 1);
  const double parallel_s = SweepWallClock(configs, parallel_jobs);
  const double sweep_speedup = serial_s / parallel_s;
  std::printf("  jobs=1    %8.2f s\n", serial_s);
  std::printf("  jobs=%-4d %8.2f s   (%.2fx)\n", parallel_jobs, parallel_s,
              sweep_speedup);

  std::printf("bench_perf_harness: partitioned DES (%d hosts, %d ticks/host, "
              "sim_threads 1/2/4/8)...\n",
              kPartHosts, kPartTicks);
  uint64_t part_checksum = 0;
  uint64_t part_events = 0;
  const std::vector<PartitionedPoint> part =
      PartitionedScaling(&part_checksum, &part_events);
  for (const PartitionedPoint& p : part) {
    std::printf("  threads=%-2d %8.3f s  %12.0f events/s   (%.2fx)\n",
                p.threads, p.wall_s, p.events_per_s,
                part[0].wall_s / p.wall_s);
  }
  const double part_speedup_4 = part[0].wall_s / part[2].wall_s;
  // Scaling claims are only meaningful when the machine actually has the
  // cores; on a 1-core runner every extra partition timeshares the same
  // core and the numbers measure windowing overhead, which is worth
  // tracking but must not be read as a regression.
  const char* part_note =
      hw >= 4
          ? "measured on >=4 hardware threads; speedup_at_4_threads is a "
            "real scaling figure"
          : "hardware_concurrency < 4: partitions timeshare the available "
            "core(s), so these points record determinism and protocol "
            "overhead, not scaling";
  if (hw < 4) {
    std::printf("  note: %s\n", part_note);
  }

  std::printf("bench_perf_harness: confined pipeline (flink + tf-serving, "
              "sim_threads 1/2/4/8)...\n");
  uint64_t pipe_checksum = 0;
  uint64_t pipe_events = 0;
  const std::vector<PartitionedPoint> pipe =
      PipelineScaling(&pipe_checksum, &pipe_events);
  for (const PartitionedPoint& p : pipe) {
    std::printf("  threads=%-2d %8.3f s  %12.0f events/s   (%.2fx)\n",
                p.threads, p.wall_s, p.events_per_s,
                pipe[0].wall_s / p.wall_s);
  }
  const double pipe_speedup_4 = pipe[0].wall_s / pipe[2].wall_s;

  std::printf("bench_perf_harness: cluster construct (%d hosts, "
              "%d partitions, lazy broker state)...\n",
              kClusterHosts, kClusterPartitions);
  (void)ClusterConstruct();
  const ClusterConstructResult cluster = ClusterConstruct();
  std::printf("  construct  %8.3f s  %zu live links\n", cluster.wall_s,
              cluster.live_links);

  // The JSON lands in the working directory, not out_dir: unlike the
  // generated CSVs it is committed, so the perf trajectory is diffable
  // per PR.
  const std::string path = "BENCH_perf.json";
  std::ofstream out(path, std::ios::trunc);
  CRAYFISH_CHECK(static_cast<bool>(out)) << "cannot open " << path;
  char buf[4096];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"des_micro\": {\n"
      "    \"events\": %llu,\n"
      "    \"legacy_events_per_s\": %.0f,\n"
      "    \"optimized_events_per_s\": %.0f,\n"
      "    \"speedup\": %.3f\n"
      "  },\n"
      "  \"record_fanout\": {\n"
      "    \"records\": %d,\n"
      "    \"fan_out\": %d,\n"
      "    \"payload_bytes\": %zu,\n"
      "    \"copy_records_per_s\": %.0f,\n"
      "    \"shared_records_per_s\": %.0f,\n"
      "    \"speedup\": %.3f\n"
      "  },\n"
      "  \"sweep\": {\n"
      "    \"simulations\": %zu,\n"
      "    \"parallel_jobs\": %d,\n"
      "    \"serial_wall_s\": %.3f,\n"
      "    \"parallel_wall_s\": %.3f,\n"
      "    \"speedup\": %.3f\n"
      "  },\n"
      "  \"partitioned_des\": {\n"
      "    \"hosts\": %d,\n"
      "    \"events\": %llu,\n"
      "    \"checksum\": %llu,\n"
      "    \"threads\": [%d, %d, %d, %d],\n"
      "    \"wall_s\": [%.3f, %.3f, %.3f, %.3f],\n"
      "    \"events_per_s\": [%.0f, %.0f, %.0f, %.0f],\n"
      "    \"speedup_at_4_threads\": %.3f,\n"
      "    \"note\": \"%s\"\n"
      "  },\n"
      "  \"pipeline_confined\": {\n"
      "    \"engine\": \"flink\",\n"
      "    \"serving\": \"tf-serving\",\n"
      "    \"events\": %llu,\n"
      "    \"checksum\": %llu,\n"
      "    \"threads\": [%d, %d, %d, %d],\n"
      "    \"wall_s\": [%.3f, %.3f, %.3f, %.3f],\n"
      "    \"events_per_s\": [%.0f, %.0f, %.0f, %.0f],\n"
      "    \"speedup_at_4_threads\": %.3f,\n"
      "    \"note\": \"%s\"\n"
      "  },\n"
      "  \"cluster_construct\": {\n"
      "    \"hosts\": %d,\n"
      "    \"partitions\": %d,\n"
      "    \"wall_s\": %.3f,\n"
      "    \"live_links\": %zu,\n"
      "    \"note\": \"per-source link buckets and null partition slots: "
      "construction is linear in hosts + partitions, no host-pair links or "
      "eager partition state\"\n"
      "  }\n"
      "}\n",
      hw, static_cast<unsigned long long>(kMicroEvents), legacy_eps,
      optimized_eps, micro_speedup, kRecordCount, kFanOut, kPayloadBytes,
      copy_rps, shared_rps, record_speedup, configs.size(), parallel_jobs,
      serial_s, parallel_s, sweep_speedup, kPartHosts,
      static_cast<unsigned long long>(part_events),
      static_cast<unsigned long long>(part_checksum), part[0].threads,
      part[1].threads, part[2].threads, part[3].threads, part[0].wall_s,
      part[1].wall_s, part[2].wall_s, part[3].wall_s, part[0].events_per_s,
      part[1].events_per_s, part[2].events_per_s, part[3].events_per_s,
      part_speedup_4, part_note,
      static_cast<unsigned long long>(pipe_events),
      static_cast<unsigned long long>(pipe_checksum), pipe[0].threads,
      pipe[1].threads, pipe[2].threads, pipe[3].threads, pipe[0].wall_s,
      pipe[1].wall_s, pipe[2].wall_s, pipe[3].wall_s, pipe[0].events_per_s,
      pipe[1].events_per_s, pipe[2].events_per_s, pipe[3].events_per_s,
      pipe_speedup_4, part_note, kClusterHosts, kClusterPartitions,
      cluster.wall_s, cluster.live_links);
  out << buf;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunHarness();
  return 0;
}
