// Extension beyond the paper (ROADMAP item 2, Theodolite-style): the
// *demand metric* — for each engine x load intensity, the minimal serving
// replica count whose SLO holds (Henning & Hasselbring's scalability
// benchmark formulation). The paper reports sustainable throughput at a
// fixed deployment; the demand table answers the dual question, "how much
// of the resource does each load level require", which is what an elastic
// deployment actually provisions.
//
// Matrix: SPS engines x load intensities against TorchServe + FFNN (the
// worker-count-bound serving tool, ~350 ev/s per replica), p95 < 250 ms.
// Each cell is a deterministic bisection over replica counts; every
// still-searching cell contributes its midpoint probe to one wave, and the
// wave runs through the sweep pool (`core::RunExperiments`).

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/slo.h"
#include "scale/demand.h"

namespace crayfish::bench {
namespace {

void RunScaleDemand() {
  scale::DemandConfig dcfg;
  dcfg.engines = {"flink", "kafka-streams", "spark"};
  dcfg.loads_eps = {200.0, 500.0, 800.0};
  dcfg.min_replicas = 1;
  dcfg.max_replicas = 8;

  auto slo = obs::SloConfig::FromJsonText(
      R"({"slos": [{"name": "p95", "metric": "p95_latency_s",
                    "max": 0.25, "error_budget": 0.1}]})");
  CRAYFISH_CHECK(slo.ok()) << slo.status().ToString();

  scale::DemandProbeBatch probe =
      [&slo](const std::vector<scale::DemandQuery>& queries) {
        std::vector<core::ExperimentConfig> configs;
        for (const scale::DemandQuery& q : queries) {
          core::ExperimentConfig cfg;
          cfg.engine = q.engine;
          cfg.serving = "torchserve";
          cfg.model = "ffnn";
          cfg.input_rate = q.load_eps;
          cfg.parallelism = q.replicas;
          cfg.duration_s = 20.0;
          cfg.drain_s = 5.0;
          cfg.slo = *slo;
          configs.push_back(std::move(cfg));
        }
        const std::vector<core::ExperimentResult> results = RunAll(configs);
        std::vector<scale::DemandProbeResult> out;
        for (const core::ExperimentResult& r : results) {
          scale::DemandProbeResult pr;
          pr.slo_ok = r.has_slo_report && r.slo_report.passed;
          pr.achieved_eps = r.summary.throughput_eps;
          if (r.has_slo_report) pr.detail = r.slo_report.Summary();
          out.push_back(std::move(pr));
        }
        return out;
      };

  auto table = scale::RunDemandSearch(dcfg, probe);
  CRAYFISH_CHECK(table.ok()) << table.status().ToString();

  core::ReportTable report(
      "Ext: demand metric, TorchServe + FFNN (p95 < 250 ms)",
      {"Engine", "Load ev/s", "Demand (replicas)", "Probes",
       "Achieved ev/s"});
  for (const scale::DemandCell& c : table->cells) {
    report.AddRow({c.engine, core::ReportTable::Num(c.load_eps, 0),
                   c.feasible ? std::to_string(c.demand) : "infeasible",
                   std::to_string(c.probes),
                   core::ReportTable::Num(c.achieved_eps)});
  }
  Emit(report, "scale_demand.csv");

  // The machine-readable demand table itself (the artifact CI uploads).
  const std::string dir = Options().out_dir.empty() ? "." : Options().out_dir;
  crayfish::Status s = table->WriteCsv(dir + "/scale_demand_table.csv");
  CRAYFISH_CHECK(s.ok()) << s.ToString();
  s = table->WriteJson(dir + "/scale_demand_table.json");
  CRAYFISH_CHECK(s.ok()) << s.ToString();
  std::printf("[demand table: %s/scale_demand_table.{csv,json}]\n",
              dir.c_str());
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunScaleDemand();
  return 0;
}
