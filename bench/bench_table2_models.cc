// Reproduces Table 2: the two pre-trained models' shapes, parameter
// counts, and serialized file sizes across the four export formats.
//
// Paper reference: FFNN 28K params; sizes ONNX 113 KB / SavedModel 508 KB /
// Torch 115 KB / H5 133 KB. ResNet50 23M params (canonical architecture
// carries 25.6M); sizes ONNX 97 MB / SavedModel 101 MB / Torch 98 MB /
// H5 98 MB.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "model/formats.h"
#include "model/graph.h"

namespace crayfish::bench {
namespace {

std::string Kb(size_t bytes) {
  return core::ReportTable::Num(static_cast<double>(bytes) / 1024.0, 1) +
         " KB";
}

std::string Mb(size_t bytes) {
  return core::ReportTable::Num(
             static_cast<double>(bytes) / (1024.0 * 1024.0), 1) +
         " MB";
}

void RunTable2() {
  crayfish::Rng rng(2024);
  core::ReportTable table(
      "Table 2: pre-trained model statistics and export sizes",
      {"Model", "Input", "Output", "Params", "ONNX", "SavedModel", "Torch",
       "H5"});

  {
    model::ModelGraph ffnn = model::BuildFfnn();
    ffnn.InitializeWeights(&rng);
    const size_t onnx = model::Serialize(ffnn, model::ModelFormat::kOnnx)
                            ->size();
    const size_t saved =
        model::Serialize(ffnn, model::ModelFormat::kSavedModel)->size();
    const size_t torch =
        model::Serialize(ffnn, model::ModelFormat::kTorch)->size();
    const size_t h5 = model::Serialize(ffnn, model::ModelFormat::kH5)
                          ->size();
    table.AddRow({"FFNN", "28x28", "10x1",
                  std::to_string(ffnn.ParamCount()) + " (paper 28K)",
                  Kb(onnx) + " (paper 113 KB)",
                  Kb(saved) + " (paper 508 KB)",
                  Kb(torch) + " (paper 115 KB)",
                  Kb(h5) + " (paper 133 KB)"});
  }
  {
    model::ModelGraph resnet = model::BuildResNet50();
    resnet.InitializeWeights(&rng);
    const size_t onnx =
        model::Serialize(resnet, model::ModelFormat::kOnnx)->size();
    const size_t saved =
        model::Serialize(resnet, model::ModelFormat::kSavedModel)->size();
    const size_t torch =
        model::Serialize(resnet, model::ModelFormat::kTorch)->size();
    const size_t h5 =
        model::Serialize(resnet, model::ModelFormat::kH5)->size();
    table.AddRow({"ResNet50", "224x224x3", "1000x1",
                  std::to_string(resnet.ParamCount()) + " (paper 23M)",
                  Mb(onnx) + " (paper 97 MB)",
                  Mb(saved) + " (paper 101 MB)",
                  Mb(torch) + " (paper 98 MB)",
                  Mb(h5) + " (paper 98 MB)"});
  }
  Emit(table, "table2_models.csv");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunTable2();
  return 0;
}
