// Reproduces Table 4: throughput of the serving tools on Apache Flink
// (bsz = 1, mp = 1), FFNN and ResNet50.
//
// Paper reference (events/s):
//   FFNN:     DL4J 787.53 | ONNX 1373.07 | SavedModel 1289.68 |
//             TorchServe 225.09 | TF-Serving 617.2
//   ResNet50: ONNX 2.85 | TorchServe 0.91 | TF-Serving 2.62

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunTable4() {
  const std::map<std::string, double> paper_ffnn = {
      {"dl4j", 787.53},       {"onnx", 1373.07},  {"savedmodel", 1289.68},
      {"torchserve", 225.09}, {"tf-serving", 617.2},
  };
  const std::map<std::string, double> paper_resnet = {
      {"onnx", 2.85},
      {"torchserve", 0.91},
      {"tf-serving", 2.62},
  };

  core::ReportTable table(
      "Table 4: serving-tool throughput on Apache Flink (bsz=1, mp=1)",
      {"Model", "Tool", "Type", "Throughput ev/s", "StdDev", "Paper ev/s"});

  struct Row {
    std::string model;
    std::string tool;
    double paper;
  };
  std::vector<Row> rows;
  std::vector<core::ExperimentConfig> configs;
  for (const auto& [tool, paper] : paper_ffnn) {
    rows.push_back({"FFNN", tool, paper});
    configs.push_back(ThroughputConfig("flink", tool, "ffnn"));
  }
  for (const auto& [tool, paper] : paper_resnet) {
    core::ExperimentConfig cfg = ThroughputConfig("flink", tool, "resnet50");
    // ResNet50 sustains < 3 ev/s; a 16 ev/s offered load saturates it
    // without flooding the simulated broker.
    cfg.input_rate = 16.0;
    cfg.duration_s = 300.0;
    cfg.drain_s = 2.0;
    rows.push_back({"ResNet50", tool, paper});
    configs.push_back(std::move(cfg));
  }
  auto grouped = Run2All(configs);
  for (size_t i = 0; i < rows.size(); ++i) {
    core::Aggregate thr = core::AggregateThroughput(grouped[i]);
    table.AddRow({rows[i].model, rows[i].tool,
                  serving::IsExternalTool(rows[i].tool) ? "external"
                                                        : "embedded",
                  core::ReportTable::Num(thr.mean),
                  core::ReportTable::Num(thr.stddev),
                  core::ReportTable::Num(rows[i].paper)});
  }
  Emit(table, "table4_serving_throughput.csv");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunTable4();
  return 0;
}
