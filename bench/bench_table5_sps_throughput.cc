// Reproduces Table 5: FFNN throughput across the four stream processors
// with ONNX (embedded) and TF-Serving (external), bsz = 1, mp = 1.
//
// Paper reference (events/s):
//   Flink  ONNX 1373.07 / TF-Serving 617.2
//   KS     ONNX 2054.21 / TF-Serving 702.12
//   Spark  ONNX 4044.99 / TF-Serving 3924.49
//   Ray    ONNX 157.4   / TF-Serving 122.44  (Ray Serve stands in for
//                                             TF-Serving, see Fig. 4)

#include <iterator>
#include <map>

#include "bench/bench_common.h"

namespace crayfish::bench {
namespace {

void RunTable5() {
  struct Entry {
    const char* engine;
    const char* serving;
    double paper;
  };
  const Entry entries[] = {
      {"flink", "onnx", 1373.07},        {"flink", "tf-serving", 617.2},
      {"kafka-streams", "onnx", 2054.21}, {"kafka-streams", "tf-serving", 702.12},
      {"spark", "onnx", 4044.99},        {"spark", "tf-serving", 3924.49},
      {"ray", "onnx", 157.4},            {"ray", "ray-serve", 122.44},
  };

  core::ReportTable table(
      "Table 5: SPS throughput, FFNN (bsz=1, mp=1)",
      {"SPS", "Serving", "Throughput ev/s", "StdDev", "Paper ev/s"});
  std::vector<core::ExperimentConfig> configs;
  for (const Entry& e : entries) {
    core::ExperimentConfig cfg = ThroughputConfig(e.engine, e.serving,
                                                  "ffnn");
    if (std::string(e.engine) == "spark") {
      // The paper's Table 5 Spark runs are rate-limited per trigger
      // relative to the Fig. 11 sweeps (see EXPERIMENTS.md discussion of
      // the 4k vs 23k discrepancy in the paper itself).
      cfg.engine_overrides.SetInt("spark.max_offsets_per_trigger", 768);
    }
    configs.push_back(std::move(cfg));
  }
  auto grouped = Run2All(configs);
  for (size_t i = 0; i < std::size(entries); ++i) {
    const Entry& e = entries[i];
    core::Aggregate thr = core::AggregateThroughput(grouped[i]);
    table.AddRow({e.engine, e.serving, core::ReportTable::Num(thr.mean),
                  core::ReportTable::Num(thr.stddev),
                  core::ReportTable::Num(e.paper)});
  }
  Emit(table, "table5_sps_throughput.csv");
}

}  // namespace
}  // namespace crayfish::bench

int main(int argc, char** argv) {
  crayfish::SetLogLevel(crayfish::LogLevel::kWarning);
  crayfish::bench::Init(argc, argv);
  crayfish::bench::RunTable5();
  return 0;
}
