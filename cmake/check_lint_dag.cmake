# Gate: the module DAG documented in DESIGN.md §4.3 must be the include
# graph crayfish_lint actually observes over src/. Run as
#   cmake -DLINT_BIN=... -DSRC_DIR=... -DDESIGN_MD=... -P check_lint_dag.cmake
# The doc embeds the edges inside a fenced block opened by
# ```crayfish-lint-dag ... ``` and the comparison is verbatim, so adding or
# removing a cross-module include without updating the doc fails the build.

if(NOT LINT_BIN OR NOT SRC_DIR OR NOT DESIGN_MD)
  message(FATAL_ERROR "usage: cmake -DLINT_BIN=... -DSRC_DIR=... -DDESIGN_MD=... -P check_lint_dag.cmake")
endif()

execute_process(
  COMMAND ${LINT_BIN} --dump-dag ${SRC_DIR}
  OUTPUT_VARIABLE observed
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crayfish_lint --dump-dag failed with exit code ${rc}")
endif()

file(READ ${DESIGN_MD} doc)
string(REGEX MATCH "```crayfish-lint-dag\n([^`]*)```" m "${doc}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "DESIGN.md has no ```crayfish-lint-dag fenced block; add one containing the output of `crayfish_lint --dump-dag src`")
endif()
set(documented "${CMAKE_MATCH_1}")

# Normalize trailing whitespace on both sides.
string(STRIP "${observed}" observed)
string(STRIP "${documented}" documented)

if(NOT observed STREQUAL documented)
  message(FATAL_ERROR "DESIGN.md §4.3 DAG is out of date.\n--- documented ---\n${documented}\n--- observed (crayfish_lint --dump-dag) ---\n${observed}\nUpdate the fenced block to match the observed edges (or fix the stray include).")
endif()

message(STATUS "DESIGN.md §4.3 DAG matches the observed include graph")
