# Gate: crayfish_lint's exit-code contract. CI keys off the distinction:
#   0 = clean, 1 = findings, 2 = usage / internal / IO error.
# Run as: cmake -DLINT_BIN=... -DSRC_DIR=... -P check_lint_exit_codes.cmake

if(NOT LINT_BIN OR NOT SRC_DIR)
  message(FATAL_ERROR "usage: cmake -DLINT_BIN=... -DSRC_DIR=... -P check_lint_exit_codes.cmake")
endif()

# A missing input is an internal error (2), never a silent pass and never
# "findings".
execute_process(
  COMMAND ${LINT_BIN} ${SRC_DIR}/definitely_not_a_real_path_for_lint
  RESULT_VARIABLE rc_missing
  OUTPUT_QUIET ERROR_QUIET)
if(NOT rc_missing EQUAL 2)
  message(FATAL_ERROR "expected exit 2 for a missing path, got ${rc_missing}")
endif()

# No inputs at all is a usage error (2).
execute_process(
  COMMAND ${LINT_BIN}
  RESULT_VARIABLE rc_noargs
  OUTPUT_QUIET ERROR_QUIET)
if(NOT rc_noargs EQUAL 2)
  message(FATAL_ERROR "expected exit 2 with no inputs, got ${rc_noargs}")
endif()

# --help is informational (0).
execute_process(
  COMMAND ${LINT_BIN} --help
  RESULT_VARIABLE rc_help
  OUTPUT_QUIET ERROR_QUIET)
if(NOT rc_help EQUAL 0)
  message(FATAL_ERROR "expected exit 0 for --help, got ${rc_help}")
endif()

# A clean tree exits 0, and --jobs must not change the output bytes.
execute_process(
  COMMAND ${LINT_BIN} ${SRC_DIR}
  RESULT_VARIABLE rc_serial
  OUTPUT_VARIABLE out_serial
  ERROR_QUIET)
execute_process(
  COMMAND ${LINT_BIN} --jobs=4 ${SRC_DIR}
  RESULT_VARIABLE rc_jobs
  OUTPUT_VARIABLE out_jobs
  ERROR_QUIET)
if(NOT rc_serial EQUAL rc_jobs)
  message(FATAL_ERROR "exit code differs under --jobs: ${rc_serial} vs ${rc_jobs}")
endif()
if(NOT out_serial STREQUAL out_jobs)
  message(FATAL_ERROR "stdout differs between serial and --jobs=4 runs; parallel output must be deterministic")
endif()

message(STATUS "crayfish_lint exit codes and --jobs determinism verified")
