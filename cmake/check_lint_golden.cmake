# Gate: the whole-program dumps over src/sim must match the checked-in
# goldens byte for byte. The goldens double as reviewable documentation of
# the call graph and effect summaries the parallel-DES migration leans on —
# a diff here means the interprocedural model changed and a human should
# look at how.
#
# Run as: cmake -DLINT_BIN=... -DREPO_DIR=... -P check_lint_golden.cmake
#
# Regenerate (from the repo root, so paths in the dumps stay repo-relative):
#   ./build/tools/crayfish_lint --dump-callgraph src/sim \
#       > tools/crayfish_lint/golden/callgraph_sim.json
#   ./build/tools/crayfish_lint --dump-effects src/sim \
#       > tools/crayfish_lint/golden/effects_sim.json
#   ./build/tools/crayfish_lint --dump-confinement src \
#       > tools/crayfish_lint/golden/confinement_src.json

if(NOT LINT_BIN OR NOT REPO_DIR)
  message(FATAL_ERROR "usage: cmake -DLINT_BIN=... -DREPO_DIR=... -P check_lint_golden.cmake")
endif()

set(golden_dir "${REPO_DIR}/tools/crayfish_lint/golden")

function(check_dump flag scan_dir golden)
  execute_process(
    COMMAND ${LINT_BIN} ${flag} ${scan_dir}
    WORKING_DIRECTORY ${REPO_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE live
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${flag} exited ${rc}: ${err}")
  endif()
  if(NOT EXISTS "${golden_dir}/${golden}")
    message(FATAL_ERROR "missing golden ${golden_dir}/${golden}; see the regen command at the top of check_lint_golden.cmake")
  endif()
  file(READ "${golden_dir}/${golden}" want)
  if(NOT live STREQUAL want)
    file(WRITE "${CMAKE_CURRENT_BINARY_DIR}/lint_golden_${golden}.live" "${live}")
    message(FATAL_ERROR
      "${flag} output differs from tools/crayfish_lint/golden/${golden} "
      "(live copy written next to this script's working dir as "
      "lint_golden_${golden}.live). If the change is intentional, regenerate "
      "with the command at the top of cmake/check_lint_golden.cmake and "
      "commit the new golden.")
  endif()
endfunction()

check_dump(--dump-callgraph src/sim callgraph_sim.json)
check_dump(--dump-effects src/sim effects_sim.json)
# The confinement plan spans the whole pipeline (broker, engines, serving):
# a diff here means a scheduling site changed planes and the partitioned
# engine's parallelism — or determinism — story changed with it.
check_dump(--dump-confinement src confinement_src.json)

message(STATUS "crayfish_lint whole-program dumps match the goldens")
