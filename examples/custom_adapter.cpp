// Extending Crayfish (§3.2): adding a new stream processor and a new
// embedded serving library without touching the framework.
//
//  * MiniBatchEngine — a toy "Storm-like" SPS that pulls records and
//    scores them in fixed mini-groups. It subclasses sps::StreamEngine and
//    implements the inputOp -> scoringOp -> outputOp contract.
//  * TvmLibrary — a hypothetical embedded compiler-runtime with its own
//    cost profile, subclassing serving::EmbeddedLibrary.
//
// The example wires both into a hand-assembled deployment (the same
// topology core::RunExperiment builds) and benchmarks the new pair
// against the stock Flink + ONNX configuration.
//
// Run: ./custom_adapter

#include <cstdio>
#include <memory>

#include "broker/cluster.h"
#include "broker/consumer.h"
#include "broker/producer.h"
#include "common/logging.h"
#include "core/generator.h"
#include "core/input_producer.h"
#include "core/metrics.h"
#include "core/output_consumer.h"
#include "serving/embedded_library.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "sps/engine.h"

namespace {

using namespace crayfish;

/// A hypothetical TVM-style embedded runtime: higher load cost (model
/// compilation) but a fast compiled apply path.
class TvmLibrary : public serving::EmbeddedLibrary {
 public:
  TvmLibrary() : EmbeddedLibrary("tvm", MakeCosts()) {}
  model::ModelFormat native_format() const override {
    return model::ModelFormat::kOnnx;  // consumes ONNX exports
  }

 private:
  static serving::EmbeddedCosts MakeCosts() {
    serving::EmbeddedCosts c;
    c.load_fixed_s = 2.0;  // ahead-of-time compilation
    c.ffi_overhead_s = 20e-6;
    c.per_sample_s = {{"ffnn", 40e-6}};
    c.fallback_flops_per_s = 2.0e9;
    c.contention_alpha = 0.03;
    return c;
  }
};

/// A pull-based toy engine that scores records in mini-groups of 4. One
/// consumer thread; the point is the *contract*, not the performance.
class MiniBatchEngine : public sps::StreamEngine {
 public:
  MiniBatchEngine(sim::Simulation* sim, sim::Network* network,
                  broker::KafkaCluster* cluster, sps::EngineConfig config,
                  sps::ScoringConfig scoring)
      : StreamEngine(sim, network, cluster, std::move(config),
                     std::move(scoring)) {}

  const char* name() const override { return "mini-batch"; }

  crayfish::Status Start() override {
    CRAYFISH_ASSIGN_OR_RETURN(int partitions,
                              cluster_->NumPartitions(config_.input_topic));
    std::vector<int> all(static_cast<size_t>(partitions));
    for (int p = 0; p < partitions; ++p) all[static_cast<size_t>(p)] = p;
    consumer_ = std::make_unique<broker::KafkaConsumer>(
        cluster_, config_.host, "mini-batch");
    CRAYFISH_RETURN_IF_ERROR(consumer_->Assign(config_.input_topic, all));
    producer_ = std::make_unique<broker::KafkaProducer>(cluster_,
                                                        config_.host);
    const double load = scoring_.library->LoadTimeSeconds(scoring_.model);
    sim_->Schedule(load, [this]() { PollLoop(); });
    return crayfish::Status::Ok();
  }

  void Stop() override {
    stopped_ = true;
    if (consumer_) consumer_->Close();
  }

 private:
  void PollLoop() {
    if (stopped_) return;
    consumer_->Poll(0.1, [this](std::vector<broker::Record> records) {
      if (stopped_) return;
      if (records.empty()) {
        PollLoop();
        return;
      }
      auto batch = std::make_shared<std::vector<broker::Record>>(
          std::move(records));
      ProcessGroup(batch, 0);
    });
  }

  /// Scores 4 records per apply() call — one FFI hop amortized over the
  /// group (this engine's gimmick).
  void ProcessGroup(std::shared_ptr<std::vector<broker::Record>> records,
                    size_t begin) {
    if (stopped_) return;
    if (begin >= records->size()) {
      PollLoop();
      return;
    }
    const size_t end = std::min(records->size(), begin + 4);
    int samples = 0;
    for (size_t i = begin; i < end; ++i) {
      samples += static_cast<int>((*records)[i].batch_size);
    }
    const double apply = scoring_.library->ApplyTimeSeconds(
        scoring_.model, samples, config_.parallelism, false, 0, &rng_);
    sim_->Schedule(apply + 100e-6, [this, records, begin, end]() {
      if (stopped_) return;
      for (size_t i = begin; i < end; ++i) {
        ++events_scored_;
        CRAYFISH_CHECK_OK(EmitScored(producer_.get(), (*records)[i]));
      }
      ProcessGroup(records, end);
    });
  }

  std::unique_ptr<broker::KafkaConsumer> consumer_;
  std::unique_ptr<broker::KafkaProducer> producer_;
};

/// Hand-assembled deployment around a caller-provided engine.
double MeasureSustainedThroughput(bool use_custom) {
  sim::Simulation sim(17);
  sim::Network network(&sim);
  broker::KafkaCluster cluster(&sim, &network, {});
  CRAYFISH_CHECK_OK(cluster.CreateTopic("crayfish-in", 32));
  CRAYFISH_CHECK_OK(cluster.CreateTopic("crayfish-out", 32));
  CRAYFISH_CHECK_OK(cluster.SetTopicRetention("crayfish-in", 20000));

  std::unique_ptr<serving::EmbeddedLibrary> library;
  if (use_custom) {
    library = std::make_unique<TvmLibrary>();
  } else {
    library = std::move(*serving::CreateEmbeddedLibrary("onnx"));
  }
  sps::ScoringConfig scoring;
  scoring.library = library.get();
  scoring.model = serving::ModelProfile::Ffnn();

  std::unique_ptr<sps::StreamEngine> engine;
  if (use_custom) {
    engine = std::make_unique<MiniBatchEngine>(&sim, &network, &cluster,
                                               sps::EngineConfig{}, scoring);
  } else {
    engine = std::move(*sps::CreateEngine("flink", &sim, &network, &cluster,
                                          {}, scoring));
  }

  core::OutputConsumer output(&sim, &cluster, {});
  core::DataGenerator generator({28, 28}, 1, sim.ForkRng());
  core::InputProducer::Options ip;
  ip.schedule.base_rate = 30000.0;
  ip.stop_at_s = 10.0;
  core::InputProducer producer(&sim, &cluster, std::move(generator), ip);

  CRAYFISH_CHECK_OK(engine->Start());
  output.Start();
  producer.Start();
  sim.Run(11.0);
  engine->Stop();
  output.Stop();
  return core::MetricsAnalyzer::Summarize(output.measurements())
      .throughput_eps;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  const double stock = MeasureSustainedThroughput(false);
  const double custom = MeasureSustainedThroughput(true);
  std::printf("stock  flink + onnx          : %8.1f ev/s\n", stock);
  std::printf("custom mini-batch + tvm      : %8.1f ev/s\n", custom);
  std::printf(
      "\nBoth ran through the same Crayfish measurement pipeline — the\n"
      "adapters only implemented the three-operator contract (§3.2).\n");
  return 0;
}
