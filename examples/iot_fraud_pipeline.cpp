// IoT anomaly-scoring pipeline under bursty traffic — the motivating
// scenario of §2.2.2: real-time predictions with stringent latency
// requirements and periodic load spikes (device wake-ups, flash events).
//
// The example sizes a deployment: it measures the sustainable throughput
// of the candidate configurations, then replays a bursty day-in-the-life
// workload (30 s bursts at 110% of ST every 2 minutes) and reports how
// long each serving option needs to re-stabilize — the Fig. 8 methodology
// applied to a capacity-planning question.
//
// Run: ./iot_fraud_pipeline

#include <cstdio>

#include "common/logging.h"
#include "common/stats.h"
#include "core/experiment.h"
#include "core/report.h"

int main() {
  using namespace crayfish;
  SetLogLevel(LogLevel::kWarning);

  std::printf(
      "IoT anomaly scoring: choosing a serving tier for bursty sensor "
      "traffic\n\n");

  core::ReportTable table(
      "Candidate deployments (Flink host SPS, FFNN anomaly scorer)",
      {"Serving", "Sustainable ev/s", "Burst recovery mean s",
       "Recovery stddev s", "p99 latency (steady) ms"});

  for (const char* tool : {"onnx", "savedmodel", "tf-serving"}) {
    // 1. capacity probe.
    core::ExperimentConfig probe;
    probe.engine = "flink";
    probe.serving = tool;
    probe.input_rate = 30000.0;
    probe.duration_s = 10.0;
    probe.drain_s = 1.0;
    auto st_result = core::RunExperiment(probe);
    CRAYFISH_CHECK(st_result.ok());
    const double st = st_result->summary.throughput_eps;

    // 2. steady-state latency at the expected base load (70% of ST).
    core::ExperimentConfig steady;
    steady.engine = "flink";
    steady.serving = tool;
    steady.input_rate = 0.7 * st;
    steady.duration_s = 30.0;
    auto steady_result = core::RunExperiment(steady);
    CRAYFISH_CHECK(steady_result.ok());

    // 3. bursty replay.
    core::ExperimentConfig bursty = steady;
    bursty.bursty = true;
    bursty.burst_rate = 1.1 * st;
    bursty.burst_duration_s = 30.0;
    bursty.time_between_bursts_s = 120.0;
    bursty.first_burst_at_s = 60.0;
    bursty.duration_s = 60.0 + 3 * 150.0;
    bursty.drain_s = 30.0;
    auto bursty_result = core::RunExperiment(bursty);
    CRAYFISH_CHECK(bursty_result.ok());
    RunningStats recovery;
    for (const core::BurstRecovery& rec : bursty_result->recoveries) {
      if (rec.recovery_s >= 0) recovery.Add(rec.recovery_s);
    }

    table.AddRow({tool, core::ReportTable::Num(st, 1),
                  core::ReportTable::Num(recovery.mean(), 1),
                  core::ReportTable::Num(recovery.stddev(), 1),
                  core::ReportTable::Num(
                      steady_result->summary.latency_p99_ms, 1)});
  }
  table.Print();
  std::printf(
      "\nReading the table: higher ST gives headroom; lower and *steadier* "
      "recovery keeps SLOs during spikes (§5.1.4's takeaway 6).\n");
  return 0;
}
