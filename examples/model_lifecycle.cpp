// Model lifecycle management on an external serving tier — the §7
// capabilities that make external serving "the more attractive
// alternative" in the paper's discussion: multi-model serving, hot
// version swaps without touching the stream processor, and queue-depth
// autoscaling. Also shows a non-paper model (a GRU sequence classifier)
// benchmarked through the FLOP-fallback cost model.
//
// Run: ./model_lifecycle

#include <cstdio>

#include "common/logging.h"
#include "core/experiment.h"
#include "model/graph.h"
#include "serving/external_server.h"
#include "serving/model_profile.h"
#include "sim/network.h"
#include "sim/simulation.h"

int main() {
  using namespace crayfish;
  SetLogLevel(LogLevel::kWarning);

  // --- 1. one server, several models, hot redeploys -----------------------
  sim::Simulation sim(2026);
  sim::Network network(&sim);
  CRAYFISH_CHECK_OK(
      network.AddHost(sim::Host{"app", 16, 8ULL << 30, false}));

  serving::ExternalServerOptions opts;
  opts.model = serving::ModelProfile::Ffnn();
  opts.autoscale = true;
  opts.max_workers = 8;
  opts.scale_up_queue_depth = 16;
  opts.autoscale_interval_s = 1.0;
  auto server =
      serving::CreateExternalServer(&sim, &network, "tf-serving", opts);
  CRAYFISH_CHECK(server.ok());
  (*server)->Start();

  // Deploy a GRU sequence scorer next to the FFNN (no SPS redeploy).
  model::ModelGraph gru = model::BuildGruClassifier(32, 16, 64, 5);
  (*server)->DeployModel(serving::ModelProfile::FromGraph(gru));

  int ffnn_ok = 0;
  int gru_ok = 0;
  sim.Schedule(10.0, [&]() {
    for (int i = 0; i < 50; ++i) {
      (*server)->InvokeModel("app", "ffnn", 1, [&](bool ok) {
        if (ok) ++ffnn_ok;
      });
      (*server)->InvokeModel("app", "gru_classifier", 1, [&](bool ok) {
        if (ok) ++gru_ok;
      });
    }
  });
  // Mid-traffic: ship a fine-tuned FFNN (version 2).
  sim.Schedule(10.01, [&]() {
    (*server)->DeployModel(serving::ModelProfile::Ffnn());
  });
  sim.Run(60.0);
  std::printf("multi-model server: ffnn answered %d, gru answered %d\n",
              ffnn_ok, gru_ok);
  std::printf("ffnn version after hot swap: v%d\n",
              (*server)->ModelVersion("ffnn"));
  std::printf("autoscaler settled at %d worker(s)\n\n",
              (*server)->workers());

  // --- 2. benchmark the GRU model inside the streaming pipeline -----------
  core::ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "onnx";
  cfg.custom_model = serving::ModelProfile::FromGraph(gru);
  cfg.custom_shape = {32, 16};  // [timesteps, features]
  cfg.input_rate = 30000.0;
  cfg.duration_s = 10.0;
  cfg.drain_s = 1.0;
  auto result = core::RunExperiment(cfg);
  CRAYFISH_CHECK(result.ok()) << result.status().ToString();
  std::printf(
      "GRU classifier (%lld params, %.2f MFLOPs/seq) on flink+onnx: "
      "ST = %.1f ev/s\n",
      static_cast<long long>(cfg.custom_model->parameter_count),
      static_cast<double>(cfg.custom_model->flops_per_sample) / 1e6,
      result->summary.throughput_eps);
  std::printf(
      "\nEverything above ran against the serving tier alone — the SPS "
      "never restarted (the §7 argument for external serving).\n");
  return 0;
}
