// The latency-accuracy trade-off (§2.2.2): Crayfish as testing grounds
// during model fine-tuning.
//
// A data scientist has several candidate classifiers of increasing
// capacity (wider hidden layers => higher validation accuracy, more
// FLOPs). Before committing to one, they ask: which candidates meet a
// 50 ms p99 latency budget at the expected production rate, inside the
// actual streaming pipeline (Flink + ONNX)?
//
// This uses the custom-model hook: any ModelGraph can be profiled with
// ModelProfile::FromGraph and benchmarked; unknown models derive their
// service time from real FLOP counts.
//
// Run: ./model_selection

#include <cstdio>

#include "common/logging.h"
#include "core/experiment.h"
#include "core/report.h"
#include "model/graph.h"
#include "serving/model_profile.h"

namespace {

/// Builds an FFNN variant with three hidden layers of the given width.
crayfish::model::ModelGraph BuildCandidate(int64_t width) {
  using crayfish::model::ModelGraph;
  ModelGraph g("ffnn_w" + std::to_string(width));
  int x = g.AddInput(crayfish::tensor::Shape{28, 28}, "image");
  x = g.AddFlatten(x, "flatten");
  for (int i = 1; i <= 3; ++i) {
    x = g.AddDense(x, width, "dense" + std::to_string(i));
    x = g.AddRelu(x, "relu" + std::to_string(i));
  }
  x = g.AddDense(x, 10, "logits");
  g.AddSoftmax(x, "probabilities");
  CRAYFISH_CHECK_OK(g.InferShapes());
  return g;
}

/// Stand-in for the fine-tuning notebook's validation accuracy per
/// candidate (more capacity, diminishing returns).
double ValidationAccuracy(int64_t width) {
  switch (width) {
    case 32: return 0.872;
    case 128: return 0.891;
    case 512: return 0.903;
    case 2048: return 0.909;
    default: return 0.0;
  }
}

}  // namespace

int main() {
  using namespace crayfish;
  SetLogLevel(LogLevel::kWarning);

  constexpr double kLatencyBudgetMs = 50.0;
  constexpr double kProductionRate = 500.0;  // events/s, bsz=8

  core::ReportTable table(
      "Candidate models at ir=500 ev/s, bsz=8 (Flink + ONNX)",
      {"Model", "Params", "MFLOPs/sample", "Val. accuracy", "p99 ms",
       "Meets 50 ms budget"});

  for (int64_t width : {32L, 128L, 512L, 2048L}) {
    model::ModelGraph candidate = BuildCandidate(width);
    serving::ModelProfile profile =
        serving::ModelProfile::FromGraph(candidate);

    core::ExperimentConfig cfg;
    cfg.engine = "flink";
    cfg.serving = "onnx";
    cfg.custom_model = profile;
    cfg.custom_shape = {28, 28};
    cfg.batch_size = 8;
    cfg.input_rate = kProductionRate / 8.0;  // events carry 8 samples
    cfg.duration_s = 30.0;
    cfg.drain_s = 10.0;
    auto result = core::RunExperiment(cfg);
    CRAYFISH_CHECK(result.ok()) << result.status().ToString();

    const double p99 = result->summary.latency_p99_ms;
    table.AddRow({profile.name, std::to_string(profile.parameter_count),
                  core::ReportTable::Num(
                      static_cast<double>(profile.flops_per_sample) / 1e6,
                      2),
                  core::ReportTable::Num(ValidationAccuracy(width), 3),
                  core::ReportTable::Num(p99, 1),
                  p99 <= kLatencyBudgetMs ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nPick the most accurate candidate that still meets the budget — "
      "quantified *in the pipeline*, not on an isolated model server.\n");
  return 0;
}
