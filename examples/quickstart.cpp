// Quickstart: the full Crayfish loop in one file.
//
//  1. Build and export a pre-trained model (real weights, real files).
//  2. Load it through an embedded interoperability library and run real
//     inference (the CrayfishModel `load`/`apply` contract).
//  3. Benchmark the model inside a simulated stream processing pipeline
//     (Flink + ONNX vs Flink + TF-Serving) and print the metrics the
//     paper reports: sustained throughput and end-to-end latency.
//
// Run: ./quickstart

#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "model/graph.h"
#include "model/repository.h"
#include "serving/embedded_library.h"
#include "tensor/tensor.h"

int main() {
  using namespace crayfish;

  // --- 1. a pre-trained model -------------------------------------------
  model::ModelGraph ffnn = model::BuildFfnn();
  Rng rng(7);
  ffnn.InitializeWeights(&rng);
  std::printf("%s", ffnn.Summary().c_str());

  model::ModelRepository repo("/tmp/crayfish_models");
  auto path = repo.Save(ffnn, model::ModelFormat::kOnnx);
  CRAYFISH_CHECK(path.ok()) << path.status().ToString();
  std::printf("exported model: %s\n\n", path->c_str());

  // --- 2. embedded serving: load + apply, for real ----------------------
  serving::OnnxRuntimeLibrary onnx;
  auto loaded = model::ModelRepository::LoadFromFile(*path);
  CRAYFISH_CHECK(loaded.ok());
  CRAYFISH_CHECK_OK(onnx.LoadGraph(std::move(*loaded)));
  tensor::Tensor batch = tensor::Tensor::Random(
      tensor::Shape{4, 28, 28}, &rng);
  auto probs = onnx.Apply(batch);
  CRAYFISH_CHECK(probs.ok());
  std::printf("real inference on a 4-image batch -> %s\n\n",
              probs->shape().ToString().c_str());

  // --- 3. benchmark it in a streaming pipeline --------------------------
  for (const char* serving_tool : {"onnx", "tf-serving"}) {
    core::ExperimentConfig cfg;
    cfg.engine = "flink";
    cfg.serving = serving_tool;
    cfg.model = "ffnn";
    cfg.input_rate = 30000.0;  // overload: measure sustainable throughput
    cfg.duration_s = 10.0;
    cfg.drain_s = 1.0;
    auto result = core::RunExperiment(cfg);
    CRAYFISH_CHECK(result.ok()) << result.status().ToString();
    std::printf("flink + %-11s  ST = %7.1f ev/s   (scored %llu batches)\n",
                serving_tool, result->summary.throughput_eps,
                static_cast<unsigned long long>(result->events_scored));
  }

  // Validation mode: the pipeline really computes — every scored batch
  // runs a true forward pass inside the scoring operator.
  core::ExperimentConfig validate_cfg;
  validate_cfg.engine = "flink";
  validate_cfg.serving = "onnx";
  validate_cfg.input_rate = 100.0;
  validate_cfg.duration_s = 5.0;
  validate_cfg.validate_real_inference = true;
  auto validated = core::RunExperiment(validate_cfg);
  CRAYFISH_CHECK(validated.ok());
  std::printf(
      "\nvalidation mode: %llu real forward passes executed inside the "
      "pipeline\n",
      static_cast<unsigned long long>(validated->real_inferences));

  core::ExperimentConfig latency_cfg;
  latency_cfg.engine = "flink";
  latency_cfg.serving = "onnx";
  latency_cfg.input_rate = 1.0;  // closed loop
  latency_cfg.batch_size = 32;
  latency_cfg.duration_s = 30.0;
  auto latency = core::RunExperiment(latency_cfg);
  CRAYFISH_CHECK(latency.ok());
  std::printf(
      "\nclosed-loop latency (bsz=32): mean %.2f ms, p99 %.2f ms over %llu "
      "batches\n",
      latency->summary.latency_mean_ms, latency->summary.latency_p99_ms,
      static_cast<unsigned long long>(latency->summary.measurements));
  return 0;
}
