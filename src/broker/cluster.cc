#include "broker/cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::broker {

KafkaCluster::KafkaCluster(sim::Simulation* sim, sim::Network* network,
                           ClusterConfig config)
    : sim_(sim), network_(network), config_(std::move(config)) {
  CRAYFISH_CHECK_GT(config_.num_brokers, 0);
  broker_up_.assign(static_cast<size_t>(config_.num_brokers), true);
  for (int i = 0; i < config_.num_brokers; ++i) {
    const std::string host = config_.host_prefix + std::to_string(i);
    broker_hosts_.push_back(host);
    if (!network_->HasHost(host)) {
      CRAYFISH_CHECK_OK(network_->AddHost(
          sim::Host{host, /*vcpus=*/4, /*memory_bytes=*/15ULL << 30,
                    /*has_gpu=*/false}));
    }
  }
}

crayfish::Status KafkaCluster::CreateTopic(const std::string& name,
                                           int partitions) {
  if (partitions <= 0) {
    return crayfish::Status::InvalidArgument("partitions must be > 0");
  }
  if (topics_.count(name) > 0) {
    return crayfish::Status::AlreadyExists("topic: " + name);
  }
  TopicState state;
  state.partition_count = partitions;
  // Null slots only: per-partition state materializes on first
  // produce/fetch (EnsurePart), so creating a 256-partition topic on a
  // thousand-host fleet allocates 256 pointers, nothing more.
  state.parts.resize(static_cast<size_t>(partitions));
  topics_[name] = std::move(state);
  return crayfish::Status::Ok();
}

KafkaCluster::PartitionState& KafkaCluster::EnsurePart(TopicState& state,
                                                       int partition) {
  auto& slot = state.parts[static_cast<size_t>(partition)];
  if (slot == nullptr) {
    slot = std::make_unique<PartitionState>();
    if (state.has_retention) {
      slot->log.SetRetentionRecords(state.retention_records);
    }
  }
  return *slot;
}

crayfish::Status KafkaCluster::SetTopicRetention(
    const std::string& name, size_t records_per_partition) {
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    return crayfish::Status::NotFound("topic: " + name);
  }
  it->second.retention_records = records_per_partition;
  it->second.has_retention = true;
  for (auto& slot : it->second.parts) {
    if (slot != nullptr) slot->log.SetRetentionRecords(records_per_partition);
  }
  return crayfish::Status::Ok();
}

bool KafkaCluster::HasTopic(const std::string& name) const {
  return topics_.count(name) > 0;
}

crayfish::StatusOr<int> KafkaCluster::NumPartitions(
    const std::string& name) const {
  auto it = topics_.find(name);
  if (it == topics_.end()) return crayfish::Status::NotFound("topic: " + name);
  return it->second.partition_count;
}

const std::string& KafkaCluster::LeaderHost(const TopicPartition& tp) const {
  // Round-robin leadership: partition p of any topic lives on broker
  // p % num_brokers, which spreads a 32-partition topic evenly over the
  // 4-broker cluster.
  const size_t idx =
      static_cast<size_t>(tp.partition) % broker_hosts_.size();
  return broker_hosts_[idx];
}

bool KafkaCluster::IsBrokerUp(int broker_index) const {
  CRAYFISH_CHECK_GE(broker_index, 0);
  CRAYFISH_CHECK_LT(broker_index, static_cast<int>(broker_up_.size()));
  return broker_up_[static_cast<size_t>(broker_index)];
}

bool KafkaCluster::LeaderAvailable(const TopicPartition& tp) const {
  return IsBrokerUp(tp.partition % static_cast<int>(broker_hosts_.size()));
}

void KafkaCluster::SetClientDefaults(crayfish::RetryPolicy retry,
                                     double auto_commit_interval_s) {
  CRAYFISH_CHECK_OK(retry.Validate());
  CRAYFISH_CHECK_GE(auto_commit_interval_s, 0.0);
  client_retry_ = retry;
  auto_commit_interval_s_ = auto_commit_interval_s;
}

void KafkaCluster::CrashBroker(int broker_index) {
  if (!IsBrokerUp(broker_index)) return;
  broker_up_[static_cast<size_t>(broker_index)] = false;
  CRAYFISH_LOG(Info) << "broker "
                     << broker_hosts_[static_cast<size_t>(broker_index)]
                     << " crashed at t=" << sim_->Now();
  FlushWaitersOfBroker(broker_index);
  // Crash-triggered rebalance: every dynamic group loses its sessions
  // through the crashed broker and re-syncs. Members keep their callbacks;
  // new owners resume from committed offsets (at-least-once).
  for (const auto& [key, state] : groups_) {
    const size_t slash = key.rfind('/');
    CRAYFISH_CHECK(slash != std::string::npos);
    Rebalance(key.substr(0, slash), key.substr(slash + 1));
  }
}

void KafkaCluster::RestartBroker(int broker_index) {
  if (IsBrokerUp(broker_index)) return;
  broker_up_[static_cast<size_t>(broker_index)] = true;
  CRAYFISH_LOG(Info) << "broker "
                     << broker_hosts_[static_cast<size_t>(broker_index)]
                     << " restarted at t=" << sim_->Now();
}

void KafkaCluster::FlushWaitersOfBroker(int broker_index) {
  const int brokers = static_cast<int>(broker_hosts_.size());
  for (auto& [topic, state] : topics_) {
    for (size_t p = 0; p < state.parts.size(); ++p) {
      if (static_cast<int>(p) % brokers != broker_index) continue;
      if (state.parts[p] == nullptr) continue;  // never touched: no waiters
      auto& waiters = state.parts[p]->waiters;
      if (waiters.empty()) continue;
      std::vector<PendingFetch> flushed;
      flushed.swap(waiters);
      for (PendingFetch& fetch : flushed) {
        if (*fetch.done) continue;
        *fetch.done = true;
        // The connection died with the broker: the client sees an empty
        // response after the error delay; no network traffic is modelled.
        sim_->Schedule(config_.unavailable_error_delay_s,
                       [on_records = std::move(fetch.on_records)]() mutable {
                         if (on_records) on_records({});
                       });
      }
    }
  }
}

uint64_t KafkaCluster::BatchWireSize(const std::vector<Record>& batch) const {
  uint64_t total = 0;
  for (const Record& r : batch) total += r.wire_size + kRecordEnvelopeBytes;
  return total;
}

void KafkaCluster::Produce(const std::string& client_host,
                           const TopicPartition& tp,
                           std::vector<Record> batch,
                           std::function<void(crayfish::Status)> on_ack) {
  auto it = topics_.find(tp.topic);
  if (it == topics_.end() || tp.partition >= it->second.partition_count) {
    // Error acks never leave the client host: confine them there.
    ScheduleOnHost(client_host, 0.0, [on_ack = std::move(on_ack), tp]() {
      if (on_ack) on_ack(crayfish::Status::NotFound(tp.ToString()));
    });
    return;
  }
  const uint64_t request_bytes = BatchWireSize(batch);
  if (request_bytes > config_.max_request_bytes) {
    ScheduleOnHost(client_host, 0.0, [on_ack = std::move(on_ack)]() {
      if (on_ack) {
        on_ack(crayfish::Status::InvalidArgument(
            "produce request exceeds max.request.size"));
      }
    });
    return;
  }
  const std::string leader = LeaderHost(tp);
  if (!LeaderAvailable(tp)) {
    // Connection refused: the leader is down, nothing crosses the network.
    ScheduleOnHost(client_host, config_.unavailable_error_delay_s,
                   [on_ack = std::move(on_ack), leader]() {
                     if (on_ack) {
                       on_ack(crayfish::Status::Unavailable(
                           "broker down: " + leader));
                     }
                   });
    return;
  }
  if (obs::MetricsRegistry* reg = sim_->metrics()) {
    reg->Counter("broker_bytes_in", {{"broker", leader}})
        ->Increment(static_cast<double>(request_bytes));
    reg->Counter("broker_records_in", {{"broker", leader}})
        ->Increment(static_cast<double>(batch.size()));
  }
  // Client -> broker transfer, then broker-side append, then ack back.
  network_->Send(
      client_host, leader, request_bytes,
      [this, tp, leader, client_host, batch = std::move(batch),
       on_ack = std::move(on_ack)]() mutable {
        const double process =
            config_.request_overhead_s +
            config_.append_per_record_s * static_cast<double>(batch.size());
        // Broker-side processing happens on the leader (the delivery
        // callback already runs there; pinning the host keeps it true).
        ScheduleOnHost(
            leader, process,
            [this, tp, leader, client_host, batch = std::move(batch),
             on_ack = std::move(on_ack)]() mutable {
              if (!LeaderAvailable(tp)) {
                // The broker died while the request was in flight: the
                // batch was never appended; the client sees the dropped
                // connection as a retriable error. The ack lands on the
                // client host (a dead leader sends no traffic, so this is
                // the one leader->client hop that skips the network).
                ScheduleOnHost(
                    client_host, config_.unavailable_error_delay_s,
                    [on_ack = std::move(on_ack), leader]() {
                      if (on_ack) {
                        on_ack(crayfish::Status::Unavailable(
                            "broker crashed mid-produce: " + leader));
                      }
                    });
                return;
              }
              auto topic_it = topics_.find(tp.topic);
              CRAYFISH_CHECK(topic_it != topics_.end());
              Partition& part =
                  EnsurePart(topic_it->second, tp.partition).log;
              // LogAppendTime: broker local time at append (§3.3 step 5).
              obs::TraceRecorder* tracer = sim_->tracer();
              for (Record& r : batch) {
                const uint64_t batch_id = r.batch_id;
                part.Append(std::move(r), sim_->Now());
                // MarkAppend resolves input vs. output topic by append
                // count; the second append completes the batch's trace.
                if (tracer) tracer->MarkAppend(batch_id, sim_->Now());
              }
              WakeWaiters(tp);
              network_->Send(leader, client_host, /*ack bytes=*/64,
                             [on_ack = std::move(on_ack)]() {
                               if (on_ack) on_ack(crayfish::Status::Ok());
                             });
            });
      });
}

void KafkaCluster::Fetch(const std::string& client_host,
                         const TopicPartition& tp, int64_t offset,
                         size_t max_records, uint64_t max_bytes,
                         double max_wait_s,
                         std::function<void(std::vector<Record>)> on_records) {
  auto it = topics_.find(tp.topic);
  CRAYFISH_CHECK(it != topics_.end()) << "fetch from unknown " << tp.topic;
  CRAYFISH_CHECK_LT(tp.partition, it->second.partition_count);
  const std::string leader = LeaderHost(tp);
  if (!LeaderAvailable(tp)) {
    // Connection refused: empty response after the error delay.
    ScheduleOnHost(client_host, config_.unavailable_error_delay_s,
                   [on_records = std::move(on_records)]() mutable {
                     if (on_records) on_records({});
                   });
    return;
  }
  // Fetch request (small) travels to the leader.
  network_->Send(
      client_host, leader, /*request bytes=*/128,
      [this, tp, leader, offset, max_records, max_bytes, max_wait_s,
       client_host, on_records = std::move(on_records)]() mutable {
        // Request processing stays on the leader broker.
        ScheduleOnHost(
            leader, config_.request_overhead_s,
            [this, tp, offset, max_records, max_bytes, max_wait_s,
             client_host = std::move(client_host),
             on_records = std::move(on_records)]() mutable {
              if (!LeaderAvailable(tp)) {
                // Crashed while the request was in flight: the empty
                // response materializes on the client host directly (the
                // dead leader sends nothing over the network).
                ScheduleOnHost(
                    client_host, config_.unavailable_error_delay_s,
                    [on_records = std::move(on_records)]() mutable {
                      if (on_records) on_records({});
                    });
                return;
              }
              auto topic_it = topics_.find(tp.topic);
              CRAYFISH_CHECK(topic_it != topics_.end());
              PartitionState& ps = EnsurePart(topic_it->second, tp.partition);
              PendingFetch fetch{offset, max_records, max_bytes,
                                 std::move(client_host),
                                 std::move(on_records),
                                 std::make_shared<bool>(false)};
              if (ps.log.end_offset() > offset) {
                AnswerFetch(tp, std::move(fetch));
                return;
              }
              // Long-poll: park until append or timeout. The timeout event
              // captures only the done token; the parked fetch itself is
              // moved into the waiter list and re-located on expiry, so the
              // callback and host string are never copied.
              auto done = fetch.done;
              ps.waiters.push_back(std::move(fetch));
              sim_->Schedule(max_wait_s, [this, tp, done]() {
                if (*done) return;
                *done = true;
                auto wt_it = topics_.find(tp.topic);
                CRAYFISH_CHECK(wt_it != topics_.end());
                auto& waiters =
                    EnsurePart(wt_it->second, tp.partition).waiters;
                for (auto w = waiters.begin(); w != waiters.end(); ++w) {
                  if (w->done == done) {
                    PendingFetch parked = std::move(*w);
                    waiters.erase(w);
                    AnswerFetch(tp, std::move(parked));
                    return;
                  }
                }
                CRAYFISH_CHECK(false)
                    << "pending fetch missing for " << tp.ToString();
              });
            });
      });
}

void KafkaCluster::AnswerFetch(const TopicPartition& tp, PendingFetch fetch) {
  auto topic_it = topics_.find(tp.topic);
  CRAYFISH_CHECK(topic_it != topics_.end());
  Partition& part = EnsurePart(topic_it->second, tp.partition).log;
  std::vector<Record> records;
  int64_t offset = fetch.offset;
  if (offset < part.log_start_offset()) {
    // The consumer fell behind retention: auto-reset to the earliest
    // retained record (auto.offset.reset=earliest); the skipped records
    // are lost to this consumer, as in Kafka.
    offset = part.log_start_offset();
  }
  crayfish::Status s =
      part.Fetch(offset, fetch.max_records, fetch.max_bytes, &records);
  if (!s.ok()) records.clear();
  const uint64_t response_bytes = 256 + BatchWireSize(records);
  const std::string leader = LeaderHost(tp);
  if (obs::MetricsRegistry* reg = sim_->metrics()) {
    reg->Counter("broker_bytes_out", {{"broker", leader}})
        ->Increment(static_cast<double>(response_bytes));
    reg->Counter("broker_records_out", {{"broker", leader}})
        ->Increment(static_cast<double>(records.size()));
  }
  network_->Send(leader, fetch.client_host, response_bytes,
                 [on_records = std::move(fetch.on_records),
                  records = std::move(records)]() mutable {
                   if (on_records) on_records(std::move(records));
                 });
}

void KafkaCluster::WakeWaiters(const TopicPartition& tp) {
  auto topic_it = topics_.find(tp.topic);
  CRAYFISH_CHECK(topic_it != topics_.end());
  auto& slot = topic_it->second.parts[static_cast<size_t>(tp.partition)];
  if (slot == nullptr) return;  // never touched: nothing parked
  auto& waiters = slot->waiters;
  if (waiters.empty()) return;
  std::vector<PendingFetch> to_answer;
  to_answer.swap(waiters);
  for (PendingFetch& fetch : to_answer) {
    if (*fetch.done) continue;
    *fetch.done = true;
    AnswerFetch(tp, std::move(fetch));
  }
}

crayfish::StatusOr<int> KafkaCluster::JoinGroup(
    const std::string& group, const std::string& topic,
    RebalanceCallback on_assignment) {
  if (!HasTopic(topic)) {
    return crayfish::Status::NotFound("topic: " + topic);
  }
  GroupState& state = groups_[group + "/" + topic];
  const int id = state.next_member_id++;
  state.members.push_back(GroupMember{id, std::move(on_assignment)});
  Rebalance(group, topic);
  return id;
}

void KafkaCluster::LeaveGroup(const std::string& group,
                              const std::string& topic, int member_id) {
  auto it = groups_.find(group + "/" + topic);
  if (it == groups_.end()) return;
  auto& members = it->second.members;
  const size_t before = members.size();
  members.erase(std::remove_if(members.begin(), members.end(),
                               [member_id](const GroupMember& m) {
                                 return m.id == member_id;
                               }),
                members.end());
  if (members.size() != before) Rebalance(group, topic);
}

int KafkaCluster::GroupSize(const std::string& group,
                            const std::string& topic) const {
  auto it = groups_.find(group + "/" + topic);
  return it == groups_.end() ? 0
                             : static_cast<int>(it->second.members.size());
}

void KafkaCluster::Rebalance(const std::string& group,
                             const std::string& topic) {
  auto git = groups_.find(group + "/" + topic);
  CRAYFISH_CHECK(git != groups_.end());
  auto pit = topics_.find(topic);
  CRAYFISH_CHECK(pit != topics_.end());
  const int partitions = pit->second.partition_count;
  const int member_count = static_cast<int>(git->second.members.size());
  // Eager rebalance: every member gets its new assignment after the
  // coordinator round trip (~50 ms, a fraction of a real rebalance since
  // we do not model the sync barrier in detail).
  for (int idx = 0; idx < member_count; ++idx) {
    const GroupMember& member =
        git->second.members[static_cast<size_t>(idx)];
    std::vector<int> assignment =
        RangeAssign(partitions, member_count, idx);
    sim_->Schedule(0.05, [cb = member.on_assignment,
                          assignment = std::move(assignment)]() mutable {
      if (cb) cb(std::move(assignment));
    });
  }
}

void KafkaCluster::ScheduleOnHost(const std::string& host,
                                  sim::SimTime delay,
                                  sim::InlineAction action) {
  if (sim_->host_scheduling_active()) {
    sim_->ScheduleOnHost(host, delay, std::move(action));
  } else {
    sim_->Schedule(delay, std::move(action));
  }
}

int KafkaCluster::CoordinatorBroker(const std::string& group) const {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (const char c : group) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return static_cast<int>(h % broker_hosts_.size());
}

void KafkaCluster::EnsureCommitSlot(const std::string& group,
                                    const TopicPartition& tp) {
  // emplace keeps an already-committed offset (rebalance re-assignment).
  committed_[group].emplace(tp.ToString(), 0);
}

void KafkaCluster::CommitOffset(const std::string& group,
                                const TopicPartition& tp, int64_t offset) {
  if (!broker_up_[static_cast<size_t>(CoordinatorBroker(group))]) return;
  // Hot path is a value-only write on a slot EnsureCommitSlot pre-created
  // during assignment; commits from host-confined poll loops therefore
  // never mutate map structure. The insert fallback serves direct test
  // usage that skips Assign.
  auto git = committed_.find(group);
  if (git != committed_.end()) {
    auto oit = git->second.find(tp.ToString());
    if (oit != git->second.end()) {
      oit->second = offset;
      return;
    }
  }
  committed_[group][tp.ToString()] = offset;
}

int64_t KafkaCluster::CommittedOffset(const std::string& group,
                                      const TopicPartition& tp) const {
  auto git = committed_.find(group);
  if (git == committed_.end()) return 0;
  auto oit = git->second.find(tp.ToString());
  return oit == git->second.end() ? 0 : oit->second;
}

crayfish::StatusOr<Partition*> KafkaCluster::GetPartition(
    const TopicPartition& tp) {
  auto it = topics_.find(tp.topic);
  if (it == topics_.end()) {
    return crayfish::Status::NotFound("topic: " + tp.topic);
  }
  if (tp.partition < 0 || tp.partition >= it->second.partition_count) {
    return crayfish::Status::NotFound("partition: " + tp.ToString());
  }
  // Callers run in global context (tests, the metrics analyzer, setup), so
  // materializing an untouched partition here cannot race a leader thread.
  return &EnsurePart(it->second, tp.partition).log;
}

crayfish::Status KafkaCluster::TrimPartition(const TopicPartition& tp,
                                             int64_t offset) {
  CRAYFISH_ASSIGN_OR_RETURN(Partition * part, GetPartition(tp));
  part->TrimTo(offset);
  return crayfish::Status::Ok();
}

std::vector<int> KafkaCluster::RangeAssign(int partitions, int member_count,
                                           int member_index) {
  CRAYFISH_CHECK_GT(member_count, 0);
  CRAYFISH_CHECK_GE(member_index, 0);
  CRAYFISH_CHECK_LT(member_index, member_count);
  std::vector<int> mine;
  for (int p = member_index; p < partitions; p += member_count) {
    mine.push_back(p);
  }
  return mine;
}

}  // namespace crayfish::broker
