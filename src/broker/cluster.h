#ifndef CRAYFISH_BROKER_CLUSTER_H_
#define CRAYFISH_BROKER_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/partition.h"
#include "broker/record.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish::broker {

/// Cluster-level configuration, matching the paper's deployment (§4.2/§4.3):
/// 4 brokers, 32 partitions per topic, LogAppendTime timestamps, 50 MB max
/// request size.
struct ClusterConfig {
  int num_brokers = 4;
  int default_partitions = 32;
  /// Broker-side processing overhead per produce/fetch request.
  double request_overhead_s = 100e-6;
  /// Additional broker-side cost per record appended.
  double append_per_record_s = 2e-6;
  /// Maximum produce/fetch request payload (paper: raised to 50 MB to
  /// allow large latency-experiment batches).
  uint64_t max_request_bytes = 50ULL * 1024 * 1024;
  /// Host-name prefix for broker VMs ("kafka-0".."kafka-3").
  std::string host_prefix = "kafka-";
  /// How long a client waits before its request against a down broker
  /// fails (connection-refused style error, no network traffic).
  double unavailable_error_delay_s = 0.01;
};

/// A simulated Apache Kafka cluster.
///
/// Topics are partitioned logs; each partition has a leader broker (round-
/// robin assignment). Produce and fetch requests travel over the simulated
/// network to the leader host, pay a broker-side processing delay, and
/// answer back over the network. Fetches long-poll: an empty partition
/// parks the request until an append arrives or `max_wait` elapses —
/// exactly the mechanism that makes pull-based clients efficient.
class KafkaCluster {
 public:
  /// Registers broker hosts on the network (4 vCPUs / 15 GB each, as in
  /// the paper's environment).
  KafkaCluster(sim::Simulation* sim, sim::Network* network,
               ClusterConfig config);

  KafkaCluster(const KafkaCluster&) = delete;
  KafkaCluster& operator=(const KafkaCluster&) = delete;

  crayfish::Status CreateTopic(const std::string& name, int partitions);

  /// Applies per-partition size-based retention (records) to a topic.
  crayfish::Status SetTopicRetention(const std::string& name,
                                     size_t records_per_partition);
  bool HasTopic(const std::string& name) const;
  crayfish::StatusOr<int> NumPartitions(const std::string& name) const;

  /// Leader broker host for a partition; CHECK-fails on unknown topic.
  const std::string& LeaderHost(const TopicPartition& tp) const;

  // --- fault injection (broker host crash/restart) ---
  //
  // There is no leader failover: a crashed broker's partitions stay
  // unavailable until RestartBroker, which keeps outage windows exactly as
  // long as the fault plan says (deterministic, and the worst case the
  // paper's single-replica deployment would see). Produce/fetch requests
  // against a down leader fail with retriable errors after
  // `unavailable_error_delay_s`; parked long-poll fetches are flushed with
  // empty responses; every dynamic consumer group rebalances (the crash
  // severs member sessions, as losing a coordinator/leader does in Kafka).

  /// Marks broker `broker_index` down. Idempotent.
  void CrashBroker(int broker_index);
  /// Brings a crashed broker back; its partition logs survived (clean
  /// restart from disk). Idempotent.
  void RestartBroker(int broker_index);
  bool IsBrokerUp(int broker_index) const;
  /// Whether the leader broker of `tp` is up.
  bool LeaderAvailable(const TopicPartition& tp) const;

  /// Client-side robustness defaults: producers/consumers constructed with
  /// a disabled retry policy inherit these (set by the fault subsystem
  /// before clients are built, so every client in an experiment is covered
  /// without per-component plumbing). `auto_commit_interval_s > 0` makes
  /// consumers periodically commit delivered offsets.
  void SetClientDefaults(crayfish::RetryPolicy retry,
                         double auto_commit_interval_s)
      CRAYFISH_REQUIRES("setup");
  const crayfish::RetryPolicy& default_client_retry() const {
    return client_retry_;
  }
  double default_auto_commit_interval_s() const {
    return auto_commit_interval_s_;
  }

  /// Produce a batch of records to one partition. The callback fires when
  /// the client receives the broker ack. Requests above
  /// `max_request_bytes` fail fast with InvalidArgument (delivered on the
  /// next sim instant).
  void Produce(const std::string& client_host, const TopicPartition& tp,
               std::vector<Record> batch,
               std::function<void(crayfish::Status)> on_ack);

  /// Long-polling fetch from one partition starting at `offset`.
  /// Responds with up to `max_records`/`max_bytes` records once data is
  /// available, or with an empty vector after `max_wait_s`.
  void Fetch(const std::string& client_host, const TopicPartition& tp,
             int64_t offset, size_t max_records, uint64_t max_bytes,
             double max_wait_s,
             std::function<void(std::vector<Record>)> on_records);

  // --- consumer-group offset store ---
  //
  // Offsets live on the group's coordinator broker (Kafka keeps them in
  // __consumer_offsets, owned by one broker per group). A commit while
  // the coordinator is down is lost — the consumer re-reads from the
  // last offset that did land, which is exactly the duplicate window
  // at-least-once delivery permits.

  /// Broker index hosting `group`'s coordinator (FNV-1a of the group
  /// name, so it is stable across runs and platforms).
  int CoordinatorBroker(const std::string& group) const;
  /// Stores the offset; silently dropped while the coordinator is down.
  /// Pre-creates the committed-offset slot for (group, tp), keeping any
  /// offset already stored. Consumers call this while assigning partitions
  /// (setup or a rebalance — both on the global plane), so later
  /// CommitOffset calls from confined poll loops are value-only writes on
  /// pre-existing entries: no structural map mutation off the global plane.
  void EnsureCommitSlot(const std::string& group, const TopicPartition& tp);

  void CommitOffset(const std::string& group, const TopicPartition& tp,
                    int64_t offset);
  /// Committed offset or 0 when none.
  int64_t CommittedOffset(const std::string& group,
                          const TopicPartition& tp) const;

  // --- group coordinator (dynamic membership) ---
  //
  // Members join a (group, topic) pair and receive their partition
  // assignment through the callback; every join/leave triggers an eager
  // rebalance that re-invokes every member's callback with its new
  // assignment (range strategy). Delivery is at-least-once across
  // rebalances: new owners resume from committed offsets.

  using RebalanceCallback =
      std::function<void(std::vector<int> partitions)>;

  /// Joins; returns the member id used for LeaveGroup. The callback fires
  /// (asynchronously, after the rebalance delay) on this and every later
  /// membership change.
  crayfish::StatusOr<int> JoinGroup(const std::string& group,
                                    const std::string& topic,
                                    RebalanceCallback on_assignment);

  /// Leaves; remaining members are rebalanced. Unknown ids are ignored.
  void LeaveGroup(const std::string& group, const std::string& topic,
                  int member_id);

  /// Current member count of a (group, topic) pair.
  int GroupSize(const std::string& group, const std::string& topic) const;

  /// Direct partition access for tests and the metrics analyzer (reads the
  /// output topic log "at the broker", per the SUT-separation rule).
  crayfish::StatusOr<Partition*> GetPartition(const TopicPartition& tp);

  /// Drops consumed records below `offset` (retention).
  crayfish::Status TrimPartition(const TopicPartition& tp, int64_t offset);

  const ClusterConfig& config() const { return config_; }
  const std::vector<std::string>& broker_hosts() const {
    return broker_hosts_;
  }
  sim::Simulation* simulation() { return sim_; }
  sim::Network* network() { return network_; }

  /// Range assignment of a topic's partitions among `member_count` group
  /// members; returns the partitions of member `member_index`.
  static std::vector<int> RangeAssign(int partitions, int member_count,
                                      int member_index);

 private:
  struct PendingFetch {
    int64_t offset;
    size_t max_records;
    uint64_t max_bytes;
    std::string client_host;
    std::function<void(std::vector<Record>)> on_records;
    /// Set when the waiter has been answered (by data or timeout).
    std::shared_ptr<bool> done;
  };

  /// Per-partition broker state: the log plus its parked long-poll
  /// fetches. Materialized lazily on first produce/fetch so a wide topic
  /// (hundreds of partitions across a thousand-host fleet) costs one null
  /// pointer per untouched partition, not a Partition object.
  struct PartitionState {
    Partition log;
    /// Parked long-poll fetches.
    std::vector<PendingFetch> waiters;
  };

  struct TopicState {
    int partition_count = 0;
    /// Retention configured before the partition materialized; applied in
    /// EnsurePart so late-created slots behave identically.
    size_t retention_records = 0;
    bool has_retention = false;
    /// Slot i is null until partition i's first produce/fetch. The slot is
    /// only written by partition i's leader thread (confined context) or
    /// with every partition quiescent (global/exclusive context) — the
    /// vector itself never changes shape after CreateTopic, so lazy
    /// materialization is race-free without locks.
    std::vector<std::unique_ptr<PartitionState>> parts;
  };

  /// Materializes (or returns) partition `partition`'s state.
  PartitionState& EnsurePart(TopicState& state, int partition);

  /// Completes a fetch at the broker and sends the response back. Takes the
  /// fetch by value so the records callback moves end-to-end (a PendingFetch
  /// copy would copy its std::function and client-host string).
  void AnswerFetch(const TopicPartition& tp, PendingFetch fetch);
  void WakeWaiters(const TopicPartition& tp);
  uint64_t BatchWireSize(const std::vector<Record>& batch) const;

  struct GroupMember {
    int id;
    RebalanceCallback on_assignment;
  };
  struct GroupState {
    std::vector<GroupMember> members;
    int next_member_id = 0;
  };

  /// Host-confined scheduling shim: pushes onto `host`'s partition queue
  /// when the experiment armed host scheduling (lookahead set), and falls
  /// back to the legacy global queue otherwise so unit tests and
  /// single-threaded tools keep their exact event order.
  void ScheduleOnHost(const std::string& host, sim::SimTime delay,
                      sim::InlineAction action);

  void Rebalance(const std::string& group, const std::string& topic);

  /// Flushes parked fetch waiters for all partitions led by a (newly
  /// crashed) broker with empty responses.
  void FlushWaitersOfBroker(int broker_index);

  sim::Simulation* sim_;
  sim::Network* network_;
  ClusterConfig config_;
  std::vector<std::string> broker_hosts_;
  std::vector<bool> broker_up_;
  /// Guarded (lint R11): set once during single-threaded setup, before any
  /// client exists; clients read them at construction only.
  crayfish::RetryPolicy client_retry_ CRAYFISH_GUARDED_BY("setup");
  double auto_commit_interval_s_ CRAYFISH_GUARDED_BY("setup") = 0.0;
  /// Ordered maps on purpose (lint R3): rebalance and fetch scheduling
  /// iterate these, so the container must enumerate in a stable order for
  /// runs to be reproducible. Do not switch to unordered_map.
  std::map<std::string, TopicState> topics_;
  std::map<std::string, std::map<std::string, int64_t>> committed_;
  /// Keyed by "group/topic".
  std::map<std::string, GroupState> groups_;
};

}  // namespace crayfish::broker

#endif  // CRAYFISH_BROKER_CLUSTER_H_
