#include "broker/consumer.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::broker {

KafkaConsumer::KafkaConsumer(KafkaCluster* cluster, std::string client_host,
                             std::string group, ConsumerConfig config)
    : cluster_(cluster), client_host_(std::move(client_host)),
      group_(std::move(group)), config_(config),
      generation_(std::make_shared<uint64_t>(0)),
      alive_(std::make_shared<bool>(true)) {
  CRAYFISH_CHECK(cluster != nullptr);
  CRAYFISH_CHECK(cluster->network()->HasHost(client_host_))
      << "consumer host " << client_host_ << " not on the network";
}

KafkaConsumer::~KafkaConsumer() {
  *alive_ = false;
  Unsubscribe();
}

crayfish::Status KafkaConsumer::Assign(const std::string& topic,
                                       const std::vector<int>& partitions,
                                       int64_t start_offset) {
  CRAYFISH_ASSIGN_OR_RETURN(int total, cluster_->NumPartitions(topic));
  for (int p : partitions) {
    if (p < 0 || p >= total) {
      return crayfish::Status::InvalidArgument(
          "partition out of range: " + topic + "-" + std::to_string(p));
    }
    TopicPartition tp{topic, p};
    assignment_.push_back(tp);
    const int64_t pos = start_offset >= 0
                            ? start_offset
                            : cluster_->CommittedOffset(group_, tp);
    positions_[tp.ToString()] = pos;
    paused_[tp.ToString()] = false;
    StartFetchLoop(tp);
  }
  return crayfish::Status::Ok();
}

crayfish::Status KafkaConsumer::Subscribe(const std::string& topic,
                                          int member_count,
                                          int member_index) {
  CRAYFISH_ASSIGN_OR_RETURN(int total, cluster_->NumPartitions(topic));
  return Assign(topic,
                KafkaCluster::RangeAssign(total, member_count, member_index));
}

crayfish::Status KafkaConsumer::SubscribeDynamic(const std::string& topic) {
  if (group_member_id_ >= 0) {
    return crayfish::Status::FailedPrecondition(
        "already dynamically subscribed");
  }
  auto alive = alive_;
  CRAYFISH_ASSIGN_OR_RETURN(
      group_member_id_,
      cluster_->JoinGroup(group_, topic,
                          [this, alive, topic](std::vector<int> partitions) {
                            if (!*alive || closed_) return;
                            Reassign(topic, std::move(partitions));
                          }));
  dynamic_topic_ = topic;
  return crayfish::Status::Ok();
}

void KafkaConsumer::Unsubscribe() {
  if (group_member_id_ < 0) return;
  cluster_->LeaveGroup(group_, dynamic_topic_, group_member_id_);
  group_member_id_ = -1;
  dynamic_topic_.clear();
}

void KafkaConsumer::Reassign(const std::string& topic,
                             std::vector<int> partitions) {
  ++rebalances_seen_;
  // Eager rebalance: commit what we have consumed, stop the old fetch
  // sessions, drop prefetched-but-undelivered records (their new owner
  // refetches them from the committed offsets), adopt the assignment.
  CommitPositions();
  ++(*generation_);
  assignment_.clear();
  positions_.clear();
  paused_.clear();
  buffer_.clear();
  crayfish::Status s = Assign(topic, partitions);
  CRAYFISH_CHECK(s.ok()) << s.ToString();
}

void KafkaConsumer::StartFetchLoop(const TopicPartition& tp) {
  FetchOnce(tp);
}

void KafkaConsumer::FetchOnce(const TopicPartition& tp) {
  if (closed_) return;
  if (buffer_.size() >= config_.max_buffered_records) {
    paused_[tp.ToString()] = true;
    return;
  }
  const int64_t offset = positions_[tp.ToString()];
  auto generation = generation_;
  const uint64_t my_generation = *generation;
  cluster_->Fetch(
      client_host_, tp, offset, config_.fetch_max_records,
      config_.fetch_max_bytes, config_.fetch_max_wait_s,
      [this, tp, generation, my_generation](std::vector<Record> records) {
        if (*generation != my_generation) return;  // closed/reassigned
        if (!records.empty()) {
          positions_[tp.ToString()] = records.back().offset + 1;
          // The fetch response has reached the client: the long-poll /
          // transfer stage of each carried batch ends here.
          if (obs::TraceRecorder* tracer =
                  cluster_->simulation()->tracer()) {
            const double now = cluster_->simulation()->Now();
            for (const Record& r : records) {
              tracer->Mark(r.batch_id, obs::Stage::kFetchPoll, now);
            }
          }
          // Client-side deserialization before records become visible.
          const double deser = config_.deserialize_per_record_s *
                               static_cast<double>(records.size());
          cluster_->simulation()->Schedule(
              deser, [this, generation, my_generation, tp,
                      records = std::move(records)]() mutable {
                if (*generation != my_generation) return;
                if (obs::TraceRecorder* tracer =
                        cluster_->simulation()->tracer()) {
                  const double now = cluster_->simulation()->Now();
                  for (const Record& r : records) {
                    tracer->Mark(r.batch_id, obs::Stage::kDeserialize, now);
                  }
                }
                for (Record& r : records) buffer_.push_back(std::move(r));
                MaybeDeliver();
                FetchOnce(tp);
              });
          return;
        }
        FetchOnce(tp);
      });
}

void KafkaConsumer::Poll(double timeout_s, PollCallback on_records) {
  CRAYFISH_CHECK(!pending_poll_) << "only one outstanding Poll is allowed";
  pending_poll_ = std::move(on_records);
  pending_poll_done_ = std::make_shared<bool>(false);
  poll_armed_at_ = cluster_->simulation()->Now();
  auto done = pending_poll_done_;
  // Deliver immediately when buffered data exists (still async: next sim
  // instant), otherwise arm the timeout.
  if (!buffer_.empty()) {
    cluster_->simulation()->Schedule(0.0, [this, done]() {
      if (*done) return;
      MaybeDeliver();
    });
    return;
  }
  cluster_->simulation()->Schedule(timeout_s, [this, done]() {
    if (*done) return;
    *done = true;
    poll_armed_at_ = -1.0;
    PollCallback cb = std::move(pending_poll_);
    pending_poll_ = nullptr;
    pending_poll_done_ = nullptr;
    if (cb) cb({});
  });
}

void KafkaConsumer::MaybeDeliver() {
  if (!pending_poll_ || buffer_.empty()) return;
  if (obs::MetricsRegistry* reg = cluster_->simulation()->metrics()) {
    if (!poll_wait_hist_) {
      poll_wait_hist_ =
          reg->Histogram("consumer_poll_wait_s", {{"group", group_}});
      buffer_hist_ =
          reg->Histogram("consumer_buffer_depth", {{"group", group_}});
    }
    if (poll_armed_at_ >= 0.0) {
      poll_wait_hist_->Observe(cluster_->simulation()->Now() -
                               poll_armed_at_);
    }
    buffer_hist_->Observe(static_cast<double>(buffer_.size()));
  }
  poll_armed_at_ = -1.0;
  std::vector<Record> out;
  const size_t n = std::min(buffer_.size(), config_.max_poll_records);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
  records_consumed_ += out.size();
  *pending_poll_done_ = true;
  PollCallback cb = std::move(pending_poll_);
  pending_poll_ = nullptr;
  pending_poll_done_ = nullptr;
  ResumePausedLoops();
  cb(std::move(out));
}

void KafkaConsumer::ResumePausedLoops() {
  if (buffer_.size() >= config_.max_buffered_records) return;
  for (const TopicPartition& tp : assignment_) {
    bool& paused = paused_[tp.ToString()];
    if (paused) {
      paused = false;
      FetchOnce(tp);
    }
  }
}

void KafkaConsumer::CommitPositions() {
  for (const TopicPartition& tp : assignment_) {
    cluster_->CommitOffset(group_, tp, positions_[tp.ToString()]);
  }
}

void KafkaConsumer::Close() {
  closed_ = true;
  Unsubscribe();
  ++(*generation_);
  if (pending_poll_) {
    *pending_poll_done_ = true;
    pending_poll_ = nullptr;
    pending_poll_done_ = nullptr;
  }
}

int64_t KafkaConsumer::position(const TopicPartition& tp) const {
  auto it = positions_.find(tp.ToString());
  return it == positions_.end() ? -1 : it->second;
}

}  // namespace crayfish::broker
