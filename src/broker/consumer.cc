#include "broker/consumer.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::broker {

KafkaConsumer::KafkaConsumer(KafkaCluster* cluster, std::string client_host,
                             std::string group, ConsumerConfig config)
    : cluster_(cluster), client_host_(std::move(client_host)),
      group_(std::move(group)), config_(config),
      generation_(std::make_shared<uint64_t>(0)),
      alive_(std::make_shared<bool>(true)) {
  CRAYFISH_CHECK(cluster != nullptr);
  CRAYFISH_CHECK(cluster->network()->HasHost(client_host_))
      << "consumer host " << client_host_ << " not on the network";
  retry_ = config_.retry.enabled() ? config_.retry
                                   : cluster->default_client_retry();
  if (retry_.enabled()) {
    CRAYFISH_CHECK_OK(retry_.Validate());
    rng_.emplace(cluster->simulation()->ForkRng());
  }
  auto_commit_interval_s_ = config_.auto_commit_interval_s > 0.0
                                ? config_.auto_commit_interval_s
                                : cluster->default_auto_commit_interval_s();
  if (auto_commit_interval_s_ > 0.0) ScheduleAutoCommit();
}

void KafkaConsumer::ScheduleOnHost(sim::SimTime delay,
                                   sim::InlineAction action) {
  sim::Simulation* sim = cluster_->simulation();
  if (sim->host_scheduling_active()) {
    sim->ScheduleOnHost(client_host_, delay, std::move(action));
  } else {
    sim->Schedule(delay, std::move(action));
  }
}

void KafkaConsumer::ScheduleAutoCommit() {
  auto alive = alive_;
  // The first tick is armed from the constructor (setup context, before
  // the experiment sets the lookahead) and lands on the global queue;
  // every re-arm from inside the callback then confines itself to the
  // consumer's host — the same hand-off at every thread count.
  ScheduleOnHost(auto_commit_interval_s_, [this, alive]() {
    if (!*alive || closed_) return;
    CommitPositions();
    ScheduleAutoCommit();
  });
}

KafkaConsumer::~KafkaConsumer() {
  *alive_ = false;
  Unsubscribe();
}

crayfish::Status KafkaConsumer::Assign(const std::string& topic,
                                       const std::vector<int>& partitions,
                                       int64_t start_offset) {
  CRAYFISH_ASSIGN_OR_RETURN(int total, cluster_->NumPartitions(topic));
  for (int p : partitions) {
    if (p < 0 || p >= total) {
      return crayfish::Status::InvalidArgument(
          "partition out of range: " + topic + "-" + std::to_string(p));
    }
    TopicPartition tp{topic, p};
    assignment_.push_back(tp);
    const int64_t pos = start_offset >= 0
                            ? start_offset
                            : cluster_->CommittedOffset(group_, tp);
    positions_[tp.ToString()] = pos;
    delivered_[tp.ToString()] = pos;
    paused_[tp.ToString()] = false;
    // Pre-create the coordinator's offset slot while still on the global
    // plane, so confined-loop commits are value-only writes.
    cluster_->EnsureCommitSlot(group_, tp);
    StartFetchLoop(tp);
  }
  return crayfish::Status::Ok();
}

crayfish::Status KafkaConsumer::Subscribe(const std::string& topic,
                                          int member_count,
                                          int member_index) {
  CRAYFISH_ASSIGN_OR_RETURN(int total, cluster_->NumPartitions(topic));
  return Assign(topic,
                KafkaCluster::RangeAssign(total, member_count, member_index));
}

crayfish::Status KafkaConsumer::SubscribeDynamic(const std::string& topic) {
  if (group_member_id_ >= 0) {
    return crayfish::Status::FailedPrecondition(
        "already dynamically subscribed");
  }
  auto alive = alive_;
  CRAYFISH_ASSIGN_OR_RETURN(
      group_member_id_,
      cluster_->JoinGroup(group_, topic,
                          [this, alive, topic](std::vector<int> partitions) {
                            if (!*alive || closed_) return;
                            Reassign(topic, std::move(partitions));
                          }));
  dynamic_topic_ = topic;
  return crayfish::Status::Ok();
}

void KafkaConsumer::Unsubscribe() {
  if (group_member_id_ < 0) return;
  cluster_->LeaveGroup(group_, dynamic_topic_, group_member_id_);
  group_member_id_ = -1;
  dynamic_topic_.clear();
}

void KafkaConsumer::Reassign(const std::string& topic,
                             std::vector<int> partitions) {
  ++rebalances_seen_;
  // Eager rebalance: commit what we have consumed, stop the old fetch
  // sessions, drop prefetched-but-undelivered records (their new owner
  // refetches them from the committed offsets), adopt the assignment.
  CommitPositions();
  ++(*generation_);
  assignment_.clear();
  positions_.clear();
  delivered_.clear();
  paused_.clear();
  fetch_attempts_.clear();
  buffer_.clear();
  crayfish::Status s = Assign(topic, partitions);
  CRAYFISH_CHECK(s.ok()) << s.ToString();
}

void KafkaConsumer::FailAndRestart(double restart_delay_s) {
  CRAYFISH_CHECK_GE(restart_delay_s, 0.0);
  if (closed_) return;
  ++restarts_;
  // The task dies without committing: everything since the last commit
  // (including prefetched and delivered-but-uncommitted records) will be
  // refetched after the restart — duplicates, never loss.
  ++(*generation_);
  std::map<std::string, std::vector<int>> topics;
  for (const TopicPartition& tp : assignment_) {
    topics[tp.topic].push_back(tp.partition);
  }
  assignment_.clear();
  positions_.clear();
  delivered_.clear();
  paused_.clear();
  fetch_attempts_.clear();
  buffer_.clear();
  auto alive = alive_;
  if (pending_poll_) {
    // The engine's outstanding Poll sees an empty result once the task is
    // back (never before: the task is down in between).
    *pending_poll_done_ = true;
    poll_armed_at_ = -1.0;
    PollCallback cb = std::move(pending_poll_);
    pending_poll_ = nullptr;
    pending_poll_done_ = nullptr;
    cluster_->simulation()->Schedule(restart_delay_s,
                                     [cb = std::move(cb)]() { cb({}); });
  }
  cluster_->simulation()->Schedule(
      restart_delay_s, [this, alive, topics = std::move(topics)]() {
        if (!*alive || closed_) return;
        for (const auto& [topic, parts] : topics) {
          // start_offset -1: resume from the group's committed offsets.
          crayfish::Status s = Assign(topic, parts);
          CRAYFISH_CHECK(s.ok()) << s.ToString();
        }
      });
}

void KafkaConsumer::StartFetchLoop(const TopicPartition& tp) {
  FetchOnce(tp);
}

void KafkaConsumer::FetchOnce(const TopicPartition& tp) {
  if (closed_) return;
  const std::string key = tp.ToString();
  if (buffer_.size() >= config_.max_buffered_records) {
    paused_[key] = true;
    return;
  }
  auto generation = generation_;
  const uint64_t my_generation = *generation;
  if (retry_.enabled() && !cluster_->LeaderAvailable(tp)) {
    // Leader down: back off instead of hammering the dead broker. The loop
    // never gives up — max_retries only caps the backoff exponent.
    const int attempt = std::min(fetch_attempts_[key],
                                 retry_.max_retries - 1);
    ++fetch_attempts_[key];
    ++retries_;
    if (obs::MetricsRegistry* reg = cluster_->simulation()->metrics()) {
      reg->Counter("fault_retries", {{"component", "consumer"}})
          ->Increment(1.0);
    }
    if (obs::TimelineSampler* tl = cluster_->simulation()->timeline()) {
      tl->Count("fetch_retries", cluster_->simulation()->Now());
    }
    ScheduleOnHost(retry_.BackoffFor(attempt, &*rng_),
                   [this, generation, my_generation, tp]() {
                     if (*generation != my_generation) return;
                     FetchOnce(tp);
                   });
    return;
  }
  fetch_attempts_[key] = 0;
  const int64_t offset = positions_[key];
  cluster_->Fetch(
      client_host_, tp, offset, config_.fetch_max_records,
      config_.fetch_max_bytes, config_.fetch_max_wait_s,
      [this, tp, generation, my_generation](std::vector<Record> records) {
        if (*generation != my_generation) return;  // closed/reassigned
        if (!records.empty()) {
          positions_[tp.ToString()] = records.back().offset + 1;
          // The fetch response has reached the client: the long-poll /
          // transfer stage of each carried batch ends here.
          if (obs::TraceRecorder* tracer =
                  cluster_->simulation()->tracer()) {
            const double now = cluster_->simulation()->Now();
            for (const Record& r : records) {
              tracer->Mark(r.batch_id, obs::Stage::kFetchPoll, now);
            }
          }
          // Client-side deserialization before records become visible.
          const double deser = config_.deserialize_per_record_s *
                               static_cast<double>(records.size());
          ScheduleOnHost(
              deser, [this, generation, my_generation, tp,
                      records = std::move(records)]() mutable {
                if (*generation != my_generation) return;
                if (obs::TraceRecorder* tracer =
                        cluster_->simulation()->tracer()) {
                  const double now = cluster_->simulation()->Now();
                  for (const Record& r : records) {
                    tracer->Mark(r.batch_id, obs::Stage::kDeserialize, now);
                  }
                }
                const std::string key = tp.ToString();
                for (Record& r : records) {
                  buffer_.push_back(BufferedRecord{key, std::move(r)});
                }
                MaybeDeliver();
                FetchOnce(tp);
              });
          return;
        }
        FetchOnce(tp);
      });
}

void KafkaConsumer::Poll(double timeout_s, PollCallback on_records) {
  CRAYFISH_CHECK(!pending_poll_) << "only one outstanding Poll is allowed";
  pending_poll_ = std::move(on_records);
  pending_poll_done_ = std::make_shared<bool>(false);
  poll_armed_at_ = cluster_->simulation()->Now();
  auto done = pending_poll_done_;
  // Deliver immediately when buffered data exists (still async: next sim
  // instant), otherwise arm the timeout.
  if (!buffer_.empty()) {
    ScheduleOnHost(0.0, [this, done]() {
      if (*done) return;
      MaybeDeliver();
    });
    return;
  }
  ScheduleOnHost(timeout_s, [this, done]() {
    if (*done) return;
    *done = true;
    poll_armed_at_ = -1.0;
    PollCallback cb = std::move(pending_poll_);
    pending_poll_ = nullptr;
    pending_poll_done_ = nullptr;
    if (cb) cb({});
  });
}

void KafkaConsumer::MaybeDeliver() {
  if (!pending_poll_ || buffer_.empty()) return;
  if (obs::MetricsRegistry* reg = cluster_->simulation()->metrics()) {
    if (!poll_wait_hist_) {
      poll_wait_hist_ =
          reg->Histogram("consumer_poll_wait_s", {{"group", group_}});
      buffer_hist_ =
          reg->Histogram("consumer_buffer_depth", {{"group", group_}});
    }
    if (poll_armed_at_ >= 0.0) {
      poll_wait_hist_->Observe(cluster_->simulation()->Now() -
                               poll_armed_at_);
    }
    buffer_hist_->Observe(static_cast<double>(buffer_.size()));
  }
  poll_armed_at_ = -1.0;
  std::vector<Record> out;
  const size_t n = std::min(buffer_.size(), config_.max_poll_records);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BufferedRecord& front = buffer_.front();
    // Fetch responses arrive in offset order per partition, so the
    // delivered high-water mark only ever advances.
    delivered_[front.tp_key] =
        std::max(delivered_[front.tp_key], front.record.offset + 1);
    out.push_back(std::move(front.record));
    buffer_.pop_front();
  }
  records_consumed_ += out.size();
  *pending_poll_done_ = true;
  PollCallback cb = std::move(pending_poll_);
  pending_poll_ = nullptr;
  pending_poll_done_ = nullptr;
  ResumePausedLoops();
  cb(std::move(out));
}

void KafkaConsumer::ResumePausedLoops() {
  if (buffer_.size() >= config_.max_buffered_records) return;
  for (const TopicPartition& tp : assignment_) {
    bool& paused = paused_[tp.ToString()];
    if (paused) {
      paused = false;
      FetchOnce(tp);
    }
  }
}

void KafkaConsumer::CommitPositions() {
  for (const TopicPartition& tp : assignment_) {
    cluster_->CommitOffset(group_, tp, delivered_[tp.ToString()]);
  }
}

void KafkaConsumer::Close() {
  closed_ = true;
  Unsubscribe();
  ++(*generation_);
  if (pending_poll_) {
    *pending_poll_done_ = true;
    pending_poll_ = nullptr;
    pending_poll_done_ = nullptr;
  }
}

int64_t KafkaConsumer::position(const TopicPartition& tp) const {
  auto it = positions_.find(tp.ToString());
  return it == positions_.end() ? -1 : it->second;
}

int64_t KafkaConsumer::delivered_position(const TopicPartition& tp) const {
  auto it = delivered_.find(tp.ToString());
  return it == delivered_.end() ? -1 : it->second;
}

int64_t KafkaConsumer::PartitionLag(const TopicPartition& tp) const {
  auto it = delivered_.find(tp.ToString());
  if (it == delivered_.end()) return 0;
  auto part_or = cluster_->GetPartition(tp);
  if (!part_or.ok()) return 0;
  const int64_t lag = (*part_or)->end_offset() - it->second;
  return lag > 0 ? lag : 0;
}

int64_t KafkaConsumer::TotalLag() const {
  int64_t total = 0;
  for (const TopicPartition& tp : assignment_) total += PartitionLag(tp);
  return total;
}

int64_t KafkaConsumer::MaxPartitionLag() const {
  int64_t worst = 0;
  for (const TopicPartition& tp : assignment_) {
    worst = std::max(worst, PartitionLag(tp));
  }
  return worst;
}

}  // namespace crayfish::broker
