#ifndef CRAYFISH_BROKER_CONSUMER_H_
#define CRAYFISH_BROKER_CONSUMER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/cluster.h"
#include "broker/record.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"

namespace crayfish::obs {
class HistogramMetric;
}  // namespace crayfish::obs

namespace crayfish::broker {

struct ConsumerConfig {
  /// Maximum records returned by one Poll.
  size_t max_poll_records = 500;
  /// Per-partition fetch size limits.
  size_t fetch_max_records = 500;
  uint64_t fetch_max_bytes = 50ULL * 1024 * 1024;
  /// Broker-side long-poll timeout (Kafka fetch.max.wait.ms).
  double fetch_max_wait_s = 0.5;
  /// Prefetch buffer bound; fetch loops pause above this (models
  /// max.partition.fetch.bytes-style client memory bounding and provides
  /// backpressure to the broker).
  size_t max_buffered_records = 5000;
  /// Client-side deserialization cost per record.
  double deserialize_per_record_s = 8e-6;
  /// Backoff policy for fetch sessions against an unavailable leader.
  /// Disabled policies inherit the cluster's client defaults. A consumer
  /// never gives up (its fetch loop must outlive the outage); max_retries
  /// only caps the backoff exponent.
  crayfish::RetryPolicy retry;
  /// When > 0, commit delivered offsets every interval (Kafka
  /// enable.auto.commit); <= 0 inherits the cluster default (off unless
  /// the fault subsystem enables it).
  double auto_commit_interval_s = 0.0;
};

/// Kafka consumer client with background fetch sessions.
///
/// After Assign() the consumer runs one long-poll fetch loop per assigned
/// partition, buffering records client-side; Poll() drains the buffer (or
/// parks until data arrives / the poll timeout fires). This mirrors the
/// real client's prefetching and gives pull-based engines their
/// efficiency.
class KafkaConsumer {
 public:
  using PollCallback = std::function<void(std::vector<Record>)>;

  KafkaConsumer(KafkaCluster* cluster, std::string client_host,
                std::string group, ConsumerConfig config = {});

  /// Manual partition assignment (the engines map tasks to partitions
  /// deterministically). Starts fetch loops at the committed offset (or
  /// `start_offset` when >= 0).
  crayfish::Status Assign(const std::string& topic,
                          const std::vector<int>& partitions,
                          int64_t start_offset = -1);

  /// Subscribe-with-group: range-assigns `member_index` of `member_count`
  /// consumers across all partitions of the topic (static membership, as
  /// the engines use).
  crayfish::Status Subscribe(const std::string& topic, int member_count,
                             int member_index);

  /// Dynamic group membership through the cluster's coordinator: the
  /// assignment (and every future rebalance) is adopted automatically —
  /// current fetch sessions stop, positions are committed, and new
  /// sessions resume from the group's committed offsets. Delivery is
  /// at-least-once across rebalances (undelivered prefetched records are
  /// dropped and refetched by their new owner).
  crayfish::Status SubscribeDynamic(const std::string& topic);

  /// Leaves a dynamic group (no-op otherwise); also invoked by Close().
  void Unsubscribe();

  /// Delivers up to max_poll_records buffered records. If the buffer is
  /// empty, parks until data arrives or `timeout_s` elapses (then delivers
  /// an empty vector). At most one outstanding Poll at a time.
  void Poll(double timeout_s, PollCallback on_records);

  /// Synchronously commits the *delivered* positions for all assigned
  /// partitions (offset bookkeeping only; no simulated round trip, as
  /// commits piggyback on fetch sessions). Prefetched-but-undelivered
  /// records are deliberately not covered: committing past them would lose
  /// them across a rebalance or restart (at-least-once requires the commit
  /// high-water mark to trail delivery, never lead it).
  void CommitPositions();

  /// Fault hook: simulates the crash of the task driving this consumer.
  /// Nothing is committed (in-flight progress dies with the task); after
  /// `restart_delay_s` the same assignment is re-adopted and fetch sessions
  /// resume from the group's committed offsets, re-processing anything
  /// uncommitted (at-least-once, duplicates possible, no loss). An
  /// outstanding Poll completes empty once the restart delay elapses.
  /// Reached only through FaultHooks at exclusive sync points, so its
  /// restart events stay on the coordinator's global queue.
  void FailAndRestart(double restart_delay_s)
      CRAYFISH_GLOBAL_PLANE("fault hook; runs at exclusive sync points");

  /// Stops fetch loops; outstanding fetches are dropped on arrival.
  void Close();

  int64_t position(const TopicPartition& tp) const;
  /// Next offset after the last record handed out by Poll (-1 if the
  /// partition is not assigned).
  int64_t delivered_position(const TopicPartition& tp) const;
  /// Consumer lag of one assigned partition: records appended to the log
  /// but not yet delivered by Poll (`end_offset - delivered_position`,
  /// floored at 0; 0 when unassigned). The partition log is readable even
  /// while its leader is crashed, so lag keeps growing — and stays
  /// observable — during a broker outage.
  int64_t PartitionLag(const TopicPartition& tp) const;
  /// Sum of PartitionLag over the current assignment (Theodolite-style
  /// consumer-lag demand signal; sampled by the telemetry timeline).
  int64_t TotalLag() const;
  /// Largest single-partition lag in the current assignment.
  int64_t MaxPartitionLag() const;
  size_t buffered() const { return buffer_.size(); }
  uint64_t records_consumed() const { return records_consumed_; }
  uint64_t retries() const { return retries_; }
  uint64_t restarts() const { return restarts_; }
  const std::string& group() const { return group_; }
  const std::vector<TopicPartition>& assignment() const {
    return assignment_;
  }

  /// Consumers must be destroyed only after the simulation stops running
  /// or after Close(); scheduled callbacks guard on a lifetime token.
  ~KafkaConsumer();

 private:
  /// Confines client-side work (poll delivery, deserialization, backoff)
  /// to this consumer's host when the experiment armed host scheduling;
  /// falls back to the global queue so unit tests keep their event order.
  void ScheduleOnHost(sim::SimTime delay, sim::InlineAction action);

  void StartFetchLoop(const TopicPartition& tp);
  void FetchOnce(const TopicPartition& tp);
  /// Periodic delivered-offset commit (enable.auto.commit).
  void ScheduleAutoCommit();
  void MaybeDeliver();
  void ResumePausedLoops();
  /// Adopts a coordinator assignment (dynamic membership).
  void Reassign(const std::string& topic, std::vector<int> partitions);

  /// A prefetched record plus the partition it came from, so delivery can
  /// advance that partition's delivered offset.
  struct BufferedRecord {
    std::string tp_key;
    Record record;
  };

  KafkaCluster* cluster_;
  std::string client_host_;
  std::string group_;
  ConsumerConfig config_;
  std::vector<TopicPartition> assignment_;
  /// Next offset to fetch per partition. Ordered (lint R3): commit order and
  /// paused-loop pickup follow map iteration and must be deterministic.
  std::map<std::string, int64_t> positions_;
  /// Next offset after the last *delivered* record per partition; what
  /// CommitPositions commits. Ordered (lint R3), same reason as above.
  std::map<std::string, int64_t> delivered_;
  /// Partitions whose fetch loop is paused on buffer pressure.
  std::map<std::string, bool> paused_;
  /// Consecutive unavailable-leader backoffs per partition (reset on a
  /// healthy fetch). Ordered (lint R3), same reason as above.
  std::map<std::string, int> fetch_attempts_;
  std::deque<BufferedRecord> buffer_;
  /// Effective retry policy (config override or cluster default).
  crayfish::RetryPolicy retry_;
  /// Jitter RNG; forked only when retries are enabled so fault-free runs
  /// draw exactly the same RNG streams as before this feature existed.
  std::optional<crayfish::Rng> rng_;
  double auto_commit_interval_s_ = 0.0;
  bool closed_ = false;
  /// Generation counter: Close() bumps it so stale fetch responses are
  /// ignored.
  std::shared_ptr<uint64_t> generation_;

  PollCallback pending_poll_;
  std::shared_ptr<bool> pending_poll_done_;
  /// Simulated instant the outstanding Poll was armed (-1 when none);
  /// feeds the poll-wait histogram.
  double poll_armed_at_ = -1.0;
  /// Lazily resolved from the simulation's metrics registry.
  obs::HistogramMetric* poll_wait_hist_ = nullptr;
  obs::HistogramMetric* buffer_hist_ = nullptr;
  uint64_t records_consumed_ = 0;
  uint64_t retries_ = 0;
  uint64_t restarts_ = 0;
  /// Guards coordinator callbacks against consumer destruction.
  std::shared_ptr<bool> alive_;
  /// Dynamic-membership state (-1 = not dynamically subscribed).
  int group_member_id_ = -1;
  std::string dynamic_topic_;
  uint64_t rebalances_seen_ = 0;

 public:
  uint64_t rebalances_seen() const { return rebalances_seen_; }
};

}  // namespace crayfish::broker

#endif  // CRAYFISH_BROKER_CONSUMER_H_
