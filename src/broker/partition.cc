#include "broker/partition.h"

#include "common/logging.h"

namespace crayfish::broker {

int64_t Partition::Append(Record record, sim::SimTime log_append_time) {
  record.offset = end_offset();
  record.log_append_time = log_append_time;
  total_bytes_ += record.wire_size;
  ++total_appended_;
  log_.push_back(std::move(record));
  const int64_t assigned = log_.back().offset;
  if (retention_records_ > 0) {
    while (log_.size() > retention_records_) {
      log_.pop_front();
      ++start_offset_;
    }
  }
  return assigned;
}

crayfish::Status Partition::Fetch(int64_t offset, size_t max_records,
                                  uint64_t max_bytes,
                                  std::vector<Record>* out) const {
  if (offset < start_offset_) {
    return crayfish::Status::OutOfRange(
        "offset " + std::to_string(offset) + " below log start " +
        std::to_string(start_offset_));
  }
  uint64_t bytes = 0;
  for (int64_t o = offset; o < end_offset(); ++o) {
    if (out->size() >= max_records) break;
    const Record& r = log_[static_cast<size_t>(o - start_offset_)];
    if (!out->empty() && bytes + r.wire_size > max_bytes) break;
    out->push_back(r);
    bytes += r.wire_size;
  }
  return crayfish::Status::Ok();
}

void Partition::TrimTo(int64_t offset) {
  while (!log_.empty() && start_offset_ < offset) {
    log_.pop_front();
    ++start_offset_;
  }
}

}  // namespace crayfish::broker
