#ifndef CRAYFISH_BROKER_PARTITION_H_
#define CRAYFISH_BROKER_PARTITION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "broker/record.h"
#include "common/status.h"

namespace crayfish::broker {

/// One partition: an append-only log with offset-addressed reads and
/// low-watermark truncation (retention).
class Partition {
 public:
  Partition() = default;

  /// Appends the record, assigning its offset and LogAppendTime.
  /// Returns the assigned offset.
  int64_t Append(Record record, sim::SimTime log_append_time);

  /// Copies up to `max_records` records starting at `offset` into `out`,
  /// subject to a total `max_bytes` budget (at least one record is
  /// returned when available regardless of size, as in Kafka).
  /// Offsets below the low watermark return OutOfRange.
  crayfish::Status Fetch(int64_t offset, size_t max_records,
                         uint64_t max_bytes, std::vector<Record>* out) const;

  /// First retained offset.
  int64_t log_start_offset() const { return start_offset_; }
  /// Offset one past the last appended record.
  int64_t end_offset() const {
    return start_offset_ + static_cast<int64_t>(log_.size());
  }
  uint64_t total_appended() const { return total_appended_; }
  uint64_t total_bytes() const { return total_bytes_; }

  /// Drops records with offset < `offset` (retention / manual trim).
  void TrimTo(int64_t offset);

  /// Size-based retention: appends beyond this many records evict the
  /// oldest (0 = unlimited). Mirrors Kafka's retention.bytes for the
  /// simulation's memory bound.
  void SetRetentionRecords(size_t max_records) {
    retention_records_ = max_records;
  }
  size_t retention_records() const { return retention_records_; }

 private:
  std::deque<Record> log_;
  size_t retention_records_ = 0;
  int64_t start_offset_ = 0;
  uint64_t total_appended_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace crayfish::broker

#endif  // CRAYFISH_BROKER_PARTITION_H_
