#include "broker/producer.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::broker {

KafkaProducer::KafkaProducer(KafkaCluster* cluster, std::string client_host,
                             ProducerConfig config)
    : cluster_(cluster), client_host_(std::move(client_host)),
      config_(config), alive_(std::make_shared<bool>(true)) {
  CRAYFISH_CHECK(cluster != nullptr);
  CRAYFISH_CHECK(cluster->network()->HasHost(client_host_))
      << "producer host " << client_host_ << " not on the network";
  retry_ = config_.retry.enabled() ? config_.retry
                                   : cluster->default_client_retry();
  if (retry_.enabled()) {
    CRAYFISH_CHECK_OK(retry_.Validate());
    rng_.emplace(cluster->simulation()->ForkRng());
  }
}

KafkaProducer::~KafkaProducer() { *alive_ = false; }

void KafkaProducer::ScheduleOnHost(sim::SimTime delay,
                                   sim::InlineAction action) {
  sim::Simulation* sim = cluster_->simulation();
  if (sim->host_scheduling_active()) {
    sim->ScheduleOnHost(client_host_, delay, std::move(action));
  } else {
    sim->Schedule(delay, std::move(action));
  }
}

crayfish::Status KafkaProducer::Send(const std::string& topic, Record record,
                                     AckCallback on_ack) {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions, cluster_->NumPartitions(topic));
  int& rr = round_robin_[topic];
  const int partition = rr;
  rr = (rr + 1) % partitions;
  return SendToPartition(TopicPartition{topic, partition}, std::move(record),
                         std::move(on_ack));
}

crayfish::Status KafkaProducer::SendToPartition(const TopicPartition& tp,
                                                Record record,
                                                AckCallback on_ack) {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions, cluster_->NumPartitions(tp.topic));
  if (tp.partition < 0 || tp.partition >= partitions) {
    return crayfish::Status::InvalidArgument("partition out of range: " +
                                             tp.ToString());
  }
  const uint64_t record_bytes = record.wire_size + kRecordEnvelopeBytes;
  if (record_bytes > cluster_->config().max_request_bytes) {
    return crayfish::Status::InvalidArgument(
        "record larger than max.request.size");
  }
  PendingBatch& batch = pending_[tp];
  batch.records.push_back(std::move(record));
  batch.acks.push_back(std::move(on_ack));
  batch.bytes += record_bytes;
  if (batch.bytes >= config_.batch_bytes) {
    FlushPartition(tp);
    return crayfish::Status::Ok();
  }
  if (!batch.flush_scheduled) {
    batch.flush_scheduled = true;
    // linger: coalesces records produced within the window into one
    // request; linger 0 still coalesces same-instant sends.
    ScheduleOnHost(config_.linger_s, [this, tp, alive = alive_]() {
      if (*alive) FlushPartition(tp);
    });
  }
  return crayfish::Status::Ok();
}

void KafkaProducer::FlushPartition(const TopicPartition& tp) {
  auto it = pending_.find(tp);
  if (it == pending_.end() || it->second.records.empty()) return;
  PendingBatch batch = std::move(it->second);
  pending_.erase(it);

  const auto record_count = batch.records.size();
  // Client-side serialization occupies the producer before the request
  // goes out.
  const double serialize =
      config_.serialize_per_record_s * static_cast<double>(record_count);
  // The send itself proceeds even if the producer object is destroyed in
  // the meantime (records handed to Flush() are owed to the broker); only
  // the statistics counters are guarded by the lifetime token.
  KafkaCluster* cluster = cluster_;
  std::string host = client_host_;
  ScheduleOnHost(serialize, [this, cluster, host = std::move(host), tp,
                             record_count, alive = alive_,
                             batch = std::move(batch)]() mutable {
    auto acks =
        std::make_shared<std::vector<AckCallback>>(std::move(batch.acks));
    // The produce request leaves the client here: linger + client-side
    // serialization end, network transfer begins. MarkProduce resolves to
    // the input- or output-side stage from the batch's append count.
    if (obs::TraceRecorder* tracer = cluster->simulation()->tracer()) {
      const double now = cluster->simulation()->Now();
      for (const Record& r : batch.records) {
        tracer->MarkProduce(r.batch_id, now);
      }
    }
    if (*alive) {
      ++batches_sent_;
      records_sent_ += record_count;
    }
    if (*alive && retry_.enabled()) {
      SendBatch(tp, std::move(batch.records), std::move(acks), /*attempt=*/0);
      return;
    }
    // Retry disabled (or the producer is gone): the legacy single-attempt
    // path. Records handed to Flush() are still owed to the broker.
    cluster->Produce(host, tp, std::move(batch.records),
                     [this, alive, acks](crayfish::Status s) {
                       if (*alive && !s.ok()) ++send_errors_;
                       for (const AckCallback& cb : *acks) {
                         if (cb) cb(s);
                       }
                     });
  });
}

void KafkaProducer::SendBatch(const TopicPartition& tp,
                              std::vector<Record> records,
                              std::shared_ptr<std::vector<AckCallback>> acks,
                              int attempt) {
  // A retriable failure never surfaces to the ack: like Kafka's
  // retries=MAX_INT producer default, the batch re-sends until the
  // partition leader is back. `attempt` only drives the backoff exponent,
  // capped at max_retries - 1 (the re-send copy is cheap: record payloads
  // are shared_ptrs).
  auto backup = std::make_shared<std::vector<Record>>(records);

  // One attempt settles exactly once: whichever of {timeout, ack} arrives
  // first wins, the loser is ignored.
  auto settled = std::make_shared<bool>(false);
  auto fail = [this, tp, acks, attempt, backup,
               alive = alive_](crayfish::Status s) {
    if (*alive && crayfish::RetryPolicy::IsRetriable(s)) {
      ++retries_;
      if (obs::MetricsRegistry* reg = cluster_->simulation()->metrics()) {
        reg->Counter("fault_retries", {{"component", "producer"}})
            ->Increment(1.0);
      }
      if (obs::TimelineSampler* tl = cluster_->simulation()->timeline()) {
        tl->Count("produce_retries", cluster_->simulation()->Now());
      }
      const double delay = retry_.BackoffFor(
          std::min(attempt, retry_.max_retries - 1), &*rng_);
      ScheduleOnHost(delay, [this, tp, acks, attempt, backup,
                             alive]() mutable {
        if (!*alive) return;  // teardown mid-backoff: drop the re-send
        SendBatch(tp, std::move(*backup), acks, attempt + 1);
      });
      return;
    }
    if (*alive) ++send_errors_;
    for (const AckCallback& cb : *acks) {
      if (cb) cb(s);
    }
  };

  ScheduleOnHost(retry_.timeout_s, [settled, fail, tp]() {
    if (*settled) return;
    *settled = true;
    fail(crayfish::Status::Timeout("produce timed out: " + tp.ToString()));
  });

  cluster_->Produce(client_host_, tp, std::move(records),
                    [settled, fail, acks](crayfish::Status s) {
                      if (*settled) return;  // late reply after timeout
                      *settled = true;
                      if (!s.ok()) {
                        fail(s);
                        return;
                      }
                      for (const AckCallback& cb : *acks) {
                        if (cb) cb(s);
                      }
                    });
}

void KafkaProducer::Flush() {
  std::vector<TopicPartition> keys;
  keys.reserve(pending_.size());
  for (const auto& [tp, batch] : pending_) keys.push_back(tp);
  for (const TopicPartition& tp : keys) FlushPartition(tp);
}

}  // namespace crayfish::broker
