#include "broker/producer.h"

#include "common/logging.h"
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::broker {

KafkaProducer::KafkaProducer(KafkaCluster* cluster, std::string client_host,
                             ProducerConfig config)
    : cluster_(cluster), client_host_(std::move(client_host)),
      config_(config), alive_(std::make_shared<bool>(true)) {
  CRAYFISH_CHECK(cluster != nullptr);
  CRAYFISH_CHECK(cluster->network()->HasHost(client_host_))
      << "producer host " << client_host_ << " not on the network";
}

KafkaProducer::~KafkaProducer() { *alive_ = false; }

crayfish::Status KafkaProducer::Send(const std::string& topic, Record record,
                                     AckCallback on_ack) {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions, cluster_->NumPartitions(topic));
  int& rr = round_robin_[topic];
  const int partition = rr;
  rr = (rr + 1) % partitions;
  return SendToPartition(TopicPartition{topic, partition}, std::move(record),
                         std::move(on_ack));
}

crayfish::Status KafkaProducer::SendToPartition(const TopicPartition& tp,
                                                Record record,
                                                AckCallback on_ack) {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions, cluster_->NumPartitions(tp.topic));
  if (tp.partition < 0 || tp.partition >= partitions) {
    return crayfish::Status::InvalidArgument("partition out of range: " +
                                             tp.ToString());
  }
  const uint64_t record_bytes = record.wire_size + kRecordEnvelopeBytes;
  if (record_bytes > cluster_->config().max_request_bytes) {
    return crayfish::Status::InvalidArgument(
        "record larger than max.request.size");
  }
  PendingBatch& batch = pending_[tp];
  batch.records.push_back(std::move(record));
  batch.acks.push_back(std::move(on_ack));
  batch.bytes += record_bytes;
  if (batch.bytes >= config_.batch_bytes) {
    FlushPartition(tp);
    return crayfish::Status::Ok();
  }
  if (!batch.flush_scheduled) {
    batch.flush_scheduled = true;
    // linger: coalesces records produced within the window into one
    // request; linger 0 still coalesces same-instant sends.
    cluster_->simulation()->Schedule(
        config_.linger_s, [this, tp, alive = alive_]() {
          if (*alive) FlushPartition(tp);
        });
  }
  return crayfish::Status::Ok();
}

void KafkaProducer::FlushPartition(const TopicPartition& tp) {
  auto it = pending_.find(tp);
  if (it == pending_.end() || it->second.records.empty()) return;
  PendingBatch batch = std::move(it->second);
  pending_.erase(it);

  const auto record_count = batch.records.size();
  // Client-side serialization occupies the producer before the request
  // goes out.
  const double serialize =
      config_.serialize_per_record_s * static_cast<double>(record_count);
  // The send itself proceeds even if the producer object is destroyed in
  // the meantime (records handed to Flush() are owed to the broker); only
  // the statistics counters are guarded by the lifetime token.
  auto* sim = cluster_->simulation();
  KafkaCluster* cluster = cluster_;
  std::string host = client_host_;
  sim->Schedule(serialize, [this, cluster, host = std::move(host), tp,
                            record_count, alive = alive_,
                            batch = std::move(batch)]() mutable {
    auto acks = std::move(batch.acks);
    // The produce request leaves the client here: linger + client-side
    // serialization end, network transfer begins. MarkProduce resolves to
    // the input- or output-side stage from the batch's append count.
    if (obs::TraceRecorder* tracer = cluster->simulation()->tracer()) {
      const double now = cluster->simulation()->Now();
      for (const Record& r : batch.records) {
        tracer->MarkProduce(r.batch_id, now);
      }
    }
    cluster->Produce(
        host, tp, std::move(batch.records),
        [this, alive, acks = std::move(acks)](crayfish::Status s) {
          if (*alive && !s.ok()) ++send_errors_;
          for (const AckCallback& cb : acks) {
            if (cb) cb(s);
          }
        });
    if (*alive) {
      ++batches_sent_;
      records_sent_ += record_count;
    }
  });
}

void KafkaProducer::Flush() {
  std::vector<TopicPartition> keys;
  keys.reserve(pending_.size());
  for (const auto& [tp, batch] : pending_) keys.push_back(tp);
  for (const TopicPartition& tp : keys) FlushPartition(tp);
}

}  // namespace crayfish::broker
