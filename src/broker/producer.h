#ifndef CRAYFISH_BROKER_PRODUCER_H_
#define CRAYFISH_BROKER_PRODUCER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/cluster.h"
#include "broker/record.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"

namespace crayfish::broker {

struct ProducerConfig {
  /// Accumulate up to this many payload bytes per partition before
  /// flushing (Kafka batch.size).
  uint64_t batch_bytes = 16 * 1024;
  /// Flush partially filled batches after this delay (Kafka linger.ms;
  /// 0 keeps same-instant sends coalesced but flushes immediately after).
  double linger_s = 0.0;
  /// Client-side serialization cost per record (JSON encode).
  double serialize_per_record_s = 8e-6;
  /// Timeout/backoff policy for produce requests. Disabled by default; a
  /// disabled policy inherits the cluster's client defaults (set by the
  /// fault subsystem). When active, retriable failures (broker down,
  /// request timeout) re-send the batch — possibly duplicating an append
  /// whose ack was lost, i.e. at-least-once delivery.
  crayfish::RetryPolicy retry;
};

/// Kafka producer client: partitions records, batches per partition, and
/// sends produce requests to the leader broker over the network.
class KafkaProducer {
 public:
  using AckCallback = std::function<void(crayfish::Status)>;

  KafkaProducer(KafkaCluster* cluster, std::string client_host,
                ProducerConfig config = {});
  /// Scheduled flushes and in-flight acks referencing this producer are
  /// silently dropped once it is destroyed.
  ~KafkaProducer();

  /// Sends one record to `topic`, choosing a partition round-robin.
  /// `on_ack` (optional) fires when the broker acknowledges the batch
  /// containing this record.
  crayfish::Status Send(const std::string& topic, Record record,
                        AckCallback on_ack = nullptr);

  /// Sends to an explicit partition.
  crayfish::Status SendToPartition(const TopicPartition& tp, Record record,
                                   AckCallback on_ack = nullptr);

  /// Flushes all pending batches immediately.
  void Flush();

  uint64_t records_sent() const { return records_sent_; }
  uint64_t batches_sent() const { return batches_sent_; }
  uint64_t send_errors() const { return send_errors_; }
  uint64_t retries() const { return retries_; }
  const std::string& client_host() const { return client_host_; }
  const crayfish::RetryPolicy& retry_policy() const { return retry_; }

 private:
  /// Confines client-side work (linger flush, serialization, retry timers)
  /// to this producer's host when the experiment armed host scheduling;
  /// falls back to the global queue so unit tests keep their event order.
  void ScheduleOnHost(sim::SimTime delay, sim::InlineAction action);

  struct PendingBatch {
    std::vector<Record> records;
    std::vector<AckCallback> acks;
    uint64_t bytes = 0;
    bool flush_scheduled = false;
  };

  void FlushPartition(const TopicPartition& tp);
  /// Sends one produce attempt (0-based `attempt`), arming a timeout and
  /// re-sending with backoff on retriable failure.
  void SendBatch(const TopicPartition& tp, std::vector<Record> records,
                 std::shared_ptr<std::vector<AckCallback>> acks, int attempt);

  KafkaCluster* cluster_;
  std::string client_host_;
  ProducerConfig config_;
  /// Lifetime token: scheduled lambdas hold a copy and bail out when the
  /// producer is gone (simulated callbacks may outlive client objects).
  std::shared_ptr<bool> alive_;
  /// Ordered (lint R3): flushes walk `pending_`, so batch emission order —
  /// and therefore broker append order — must not depend on hash order.
  std::map<std::string, int> round_robin_;
  std::map<TopicPartition, PendingBatch> pending_;
  /// Effective retry policy (config override or cluster default).
  crayfish::RetryPolicy retry_;
  /// Jitter RNG, forked only when retries are enabled so fault-free runs
  /// draw exactly the same RNG streams as before this feature existed.
  std::optional<crayfish::Rng> rng_;
  uint64_t records_sent_ = 0;
  uint64_t batches_sent_ = 0;
  uint64_t send_errors_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace crayfish::broker

#endif  // CRAYFISH_BROKER_PRODUCER_H_
