#ifndef CRAYFISH_BROKER_RECORD_H_
#define CRAYFISH_BROKER_RECORD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "sim/simulation.h"

namespace crayfish::broker {

/// A Kafka record as Crayfish uses it.
///
/// `create_time` is the producer-side generation timestamp (Crayfish step 1
/// in Fig. 3); `log_append_time` is stamped by the broker when the record
/// is appended to a partition log (Kafka's LogAppendTime, Crayfish step 5).
/// End-to-end latency of a batch is `log_append_time` on the *output* topic
/// minus `create_time` carried from the *input* topic.
///
/// `wire_size` is the serialized size used for all network/time accounting;
/// `payload` carries the actual (usually small) metadata bytes, so large
/// synthetic tensor payloads cost simulated time without costing host
/// memory.
struct Record {
  uint64_t batch_id = 0;
  /// Producer-side creation timestamp (seconds, simulated clock).
  sim::SimTime create_time = -1.0;
  /// Broker-side append timestamp; -1 until appended.
  sim::SimTime log_append_time = -1.0;
  /// Offset within its partition; -1 until appended.
  int64_t offset = -1;
  /// Nominal serialized bytes on the wire (JSON payload + envelope).
  uint64_t wire_size = 0;
  /// Number of data points in the carried CrayfishDataBatch.
  uint32_t batch_size = 1;
  /// Optional real payload (JSON CrayfishDataBatch); null for synthetic
  /// sized-only records. Shared immutably: the producer materializes the
  /// bytes once, and the partition log, fetch responses, and every fan-out
  /// consumer reference that same buffer — copying a Record copies one
  /// refcounted pointer, never the payload bytes.
  std::shared_ptr<const Bytes> payload;

  bool has_payload() const { return payload != nullptr && !payload->empty(); }
  /// Takes ownership of `bytes` as this record's immutable payload.
  void SetPayload(Bytes bytes) {
    payload = std::make_shared<const Bytes>(std::move(bytes));
  }
};

/// Fixed per-record envelope bytes (headers, CRC, timestamps) added on top
/// of the payload when computing wire sizes.
inline constexpr uint64_t kRecordEnvelopeBytes = 64;

/// Identifies one partition of one topic.
struct TopicPartition {
  std::string topic;
  int partition = 0;

  bool operator<(const TopicPartition& other) const {
    if (topic != other.topic) return topic < other.topic;
    return partition < other.partition;
  }
  bool operator==(const TopicPartition& other) const {
    return topic == other.topic && partition == other.partition;
  }
  std::string ToString() const {
    return topic + "-" + std::to_string(partition);
  }
};

}  // namespace crayfish::broker

#endif  // CRAYFISH_BROKER_RECORD_H_
