#include "common/bytes.h"

namespace crayfish {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutF32(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutBlock(const uint8_t* data, size_t len) {
  PutU64(len);
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::PutRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::PutF32Array(const float* data, size_t len) {
  PutU64(len);
  const size_t offset = buf_.size();
  buf_.resize(offset + len * sizeof(float));
  std::memcpy(buf_.data() + offset, data, len * sizeof(float));
}

Status ByteReader::Need(size_t n) const {
  if (pos_ + n > len_) {
    return Status::Corruption("byte buffer truncated");
  }
  return Status::Ok();
}

StatusOr<uint8_t> ByteReader::GetU8() {
  CRAYFISH_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

StatusOr<uint32_t> ByteReader::GetU32() {
  CRAYFISH_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> ByteReader::GetU64() {
  CRAYFISH_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<int64_t> ByteReader::GetI64() {
  CRAYFISH_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

StatusOr<float> ByteReader::GetF32() {
  CRAYFISH_ASSIGN_OR_RETURN(uint32_t bits, GetU32());
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<double> ByteReader::GetF64() {
  CRAYFISH_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> ByteReader::GetString() {
  CRAYFISH_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  CRAYFISH_RETURN_IF_ERROR(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

StatusOr<Bytes> ByteReader::GetBlock() {
  CRAYFISH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  CRAYFISH_RETURN_IF_ERROR(Need(n));
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

StatusOr<std::vector<float>> ByteReader::GetF32Array() {
  CRAYFISH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  CRAYFISH_RETURN_IF_ERROR(Need(n * sizeof(float)));
  std::vector<float> out(n);
  std::memcpy(out.data(), data_ + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return out;
}

}  // namespace crayfish
