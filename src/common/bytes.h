#ifndef CRAYFISH_COMMON_BYTES_H_
#define CRAYFISH_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace crayfish {

using Bytes = std::vector<uint8_t>;

/// Little-endian binary encoder. Used by the model-format serializers and
/// broker record codecs.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  /// Length-prefixed (u32) string.
  void PutString(const std::string& s);
  /// Length-prefixed (u64) raw block.
  void PutBlock(const uint8_t* data, size_t len);
  void PutRaw(const uint8_t* data, size_t len);
  /// Length-prefixed (u64) array of f32.
  void PutF32Array(const float* data, size_t len);

  const Bytes& bytes() const { return buf_; }
  Bytes Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Little-endian binary decoder over a borrowed buffer. All getters return
/// Status on truncation instead of reading out of bounds.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const Bytes& b) : data_(b.data()), len_(b.size()) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int64_t> GetI64();
  StatusOr<float> GetF32();
  StatusOr<double> GetF64();
  StatusOr<std::string> GetString();
  StatusOr<Bytes> GetBlock();
  StatusOr<std::vector<float>> GetF32Array();

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace crayfish

#endif  // CRAYFISH_COMMON_BYTES_H_
