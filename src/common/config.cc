#include "common/config.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace crayfish {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

void FlattenJson(const std::string& prefix, const JsonValue& v, Config* out) {
  if (v.is_object()) {
    for (const auto& [k, child] : v.as_object()) {
      FlattenJson(prefix.empty() ? k : prefix + "." + k, child, out);
    }
    return;
  }
  if (v.is_string()) {
    out->Set(prefix, v.as_string());
  } else if (v.is_bool()) {
    out->SetBool(prefix, v.as_bool());
  } else if (v.is_number()) {
    out->SetDouble(prefix, v.as_number());
  } else if (v.is_null()) {
    out->Set(prefix, "");
  }
  // Arrays are rendered as their JSON text so callers can re-parse.
  if (v.is_array()) out->Set(prefix, v.Dump());
}

}  // namespace

StatusOr<Config> Config::FromProperties(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("config line " + std::to_string(lineno) +
                                     " has no '='");
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("config line " + std::to_string(lineno) +
                                     " has empty key");
    }
    cfg.Set(key, value);
  }
  return cfg;
}

StatusOr<Config> Config::FromJson(const std::string& text) {
  CRAYFISH_ASSIGN_OR_RETURN(JsonValue v, JsonValue::Parse(text));
  if (!v.is_object()) {
    return Status::InvalidArgument("config JSON must be an object");
  }
  Config cfg;
  FlattenJson("", v, &cfg);
  return cfg;
}

StatusOr<Config> Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromProperties(buf.str());
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::SetInt(const std::string& key, int64_t value) {
  values_[key] = std::to_string(value);
}

void Config::SetDouble(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  values_[key] = buf;
}

void Config::SetBool(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

StatusOr<std::string> Config::GetString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("config key: " + key);
  return it->second;
}

StatusOr<int64_t> Config::GetInt(const std::string& key) const {
  CRAYFISH_ASSIGN_OR_RETURN(std::string s, GetString(key));
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    // Allow doubles that are integral ("16.0").
    char* dend = nullptr;
    const double d = std::strtod(s.c_str(), &dend);
    if (dend != s.c_str() && *dend == '\0' &&
        d == static_cast<double>(static_cast<int64_t>(d))) {
      return static_cast<int64_t>(d);
    }
    return Status::InvalidArgument("config key " + key +
                                   " is not an integer: " + s);
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> Config::GetDouble(const std::string& key) const {
  CRAYFISH_ASSIGN_OR_RETURN(std::string s, GetString(key));
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("config key " + key +
                                   " is not a number: " + s);
  }
  return v;
}

StatusOr<bool> Config::GetBool(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("config key: " + key);
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  return Status::InvalidArgument("config key " + key + " is not a bool: " + s);
}

std::string Config::GetStringOr(const std::string& key,
                                const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::GetIntOr(const std::string& key, int64_t fallback) const {
  auto v = GetInt(key);
  return v.ok() ? *v : fallback;
}

double Config::GetDoubleOr(const std::string& key, double fallback) const {
  auto v = GetDouble(key);
  return v.ok() ? *v : fallback;
}

bool Config::GetBoolOr(const std::string& key, bool fallback) const {
  auto v = GetBool(key);
  return v.ok() ? *v : fallback;
}

Config Config::Scope(const std::string& prefix) const {
  Config out;
  for (const auto& [k, v] : values_) {
    if (k.rfind(prefix, 0) == 0) {
      out.Set(k.substr(prefix.size()), v);
    }
  }
  return out;
}

void Config::Merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, v] : values_) keys.push_back(k);
  return keys;
}

std::string Config::ToString() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace crayfish
