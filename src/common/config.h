#ifndef CRAYFISH_COMMON_CONFIG_H_
#define CRAYFISH_COMMON_CONFIG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace crayfish {

/// Flat key/value experiment configuration, in the spirit of Crayfish's
/// per-experiment configuration files (Table 1 parameters such as isz, bsz,
/// ir, bd, tbb, mp plus free-form SUT settings).
///
/// Keys are dotted strings ("producer.input.rate"); values are stored as
/// strings and converted on read. Supports loading `key = value` properties
/// text (with '#' comments) and JSON objects.
class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines. Blank lines and lines starting with '#'
  /// are skipped. Later keys override earlier ones.
  static StatusOr<Config> FromProperties(const std::string& text);

  /// Parses a flat JSON object {"key": value, ...}. Nested objects are
  /// flattened with '.' separators.
  static StatusOr<Config> FromJson(const std::string& text);

  /// Reads a properties file from disk.
  static StatusOr<Config> FromFile(const std::string& path);

  void Set(const std::string& key, const std::string& value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);
  void SetBool(const std::string& key, bool value);

  bool Has(const std::string& key) const;

  StatusOr<std::string> GetString(const std::string& key) const;
  StatusOr<int64_t> GetInt(const std::string& key) const;
  StatusOr<double> GetDouble(const std::string& key) const;
  StatusOr<bool> GetBool(const std::string& key) const;

  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  double GetDoubleOr(const std::string& key, double fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;

  /// All keys with the given prefix, e.g. Scope("flink.") -> keys without
  /// the prefix.
  Config Scope(const std::string& prefix) const;

  /// Merges `other` into this config; `other` wins on conflicts.
  void Merge(const Config& other);

  std::vector<std::string> Keys() const;
  size_t size() const { return values_.size(); }

  /// Properties-style rendering, keys sorted.
  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace crayfish

#endif  // CRAYFISH_COMMON_CONFIG_H_
