#ifndef CRAYFISH_COMMON_DEFER_HOOK_H_
#define CRAYFISH_COMMON_DEFER_HOOK_H_

#include "common/inline_action.h"

namespace crayfish::common {

/// Barrier-deferral seam between the observability collectors and the
/// partitioned DES. Declared here — the bottom layer — so obs/ can call it
/// without an obs -> sim include edge (the module include graph must stay
/// a DAG, lint R7); the definition lives with the partition runtime
/// (sim/partition.cc), which owns the executing-partition thread-local the
/// hook consults. Targets that use the hook link crayfish_sim.
///
/// From a confined callback inside a parallel window: buffers `op` on the
/// executing partition (stamped with its local clock and executing host)
/// for replay at the window barrier and returns true. From global or setup
/// context: returns false without buffering — the caller applies the
/// mutation inline.
bool DeferToBarrier(InlineAction op);

}  // namespace crayfish::common

#endif  // CRAYFISH_COMMON_DEFER_HOOK_H_
