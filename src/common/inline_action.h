#ifndef CRAYFISH_COMMON_INLINE_ACTION_H_
#define CRAYFISH_COMMON_INLINE_ACTION_H_

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace crayfish::common {

/// A move-only `void()` callable with small-buffer optimization.
///
/// The DES kernel schedules millions of events per experiment; wrapping each
/// action in `std::function` costs a heap allocation for any capture larger
/// than the (implementation-defined, typically 16-byte) SBO and a second
/// copy when the event is popped. InlineAction stores captures up to
/// kInlineBytes directly inside the event, falls back to the heap only for
/// oversized captures, and is move-only so actions relocate instead of
/// copying as they travel through the event heap.
class InlineAction {
 public:
  /// Captures up to this many bytes live inline (no allocation). Sized for
  /// the common scheduling lambdas: a `this` pointer, a couple of doubles,
  /// and a lifetime-token shared_ptr fit comfortably.
  static constexpr size_t kInlineBytes = 48;

  InlineAction() = default;
  InlineAction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineAction> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    // A null std::function must stay "empty" (callers test `if (action)`
    // before invoking), not become a non-null wrapper that throws.
    if constexpr (std::is_same_v<D, std::function<void()>>) {
      if (!f) return;
    }
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vtable_ = &InlineOps<D>::kVTable;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      vtable_ = &HeapOps<D>::kVTable;
    }
  }

  InlineAction(InlineAction&& other) noexcept { MoveFrom(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(void* buf);
    /// Move-constructs the callable into `dst` from `src` and destroys the
    /// source (a destructive move, so the heap slot moves as one pointer).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* buf);
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  struct InlineOps {
    static void Invoke(void* buf) { (*std::launder(reinterpret_cast<D*>(buf)))(); }
    static void Relocate(void* dst, void* src) {
      D* s = std::launder(reinterpret_cast<D*>(src));
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void Destroy(void* buf) {
      std::launder(reinterpret_cast<D*>(buf))->~D();
    }
    static constexpr VTable kVTable = {&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapOps {
    static D* Ptr(void* buf) { return *reinterpret_cast<D**>(buf); }
    static void Invoke(void* buf) { (*Ptr(buf))(); }
    static void Relocate(void* dst, void* src) {
      *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
    }
    static void Destroy(void* buf) { delete Ptr(buf); }
    static constexpr VTable kVTable = {&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(InlineAction& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(buf_, other.buf_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace crayfish::common

#endif  // CRAYFISH_COMMON_INLINE_ACTION_H_
