#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace crayfish {

namespace {

void AppendNumber(std::string* out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

/// Recursive-descent JSON parser over a raw character range.
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  StatusOr<JsonValue> ParseDocument() {
    CRAYFISH_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (p_ != end_) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWhitespace();
    if (p_ == end_) return Status::InvalidArgument("unexpected end of JSON");
    switch (*p_) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        CRAYFISH_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue(true));
      case 'f':
        return ParseLiteral("false", JsonValue(false));
      case 'n':
        return ParseLiteral("null", JsonValue());
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseLiteral(const char* lit, JsonValue value) {
    const size_t len = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < len ||
        std::strncmp(p_, lit, len) != 0) {
      return Status::InvalidArgument(std::string("invalid literal, expected ") +
                                     lit);
    }
    p_ += len;
    return value;
  }

  StatusOr<JsonValue> ParseNumber() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool any = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      ++p_;
      any = true;
    }
    if (!any) return Status::InvalidArgument("invalid number");
    const std::string text(start, p_);
    char* parse_end = nullptr;
    const double d = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) {
      return Status::InvalidArgument("invalid number: " + text);
    }
    return JsonValue(d);
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Status::InvalidArgument("expected '\"'");
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) return Status::InvalidArgument("bad escape at end");
      char e = *p_++;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end_ - p_ < 4) return Status::InvalidArgument("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::InvalidArgument("bad \\u escape digit");
          }
          // Encode as UTF-8 (basic multilingual plane only; surrogate pairs
          // are not needed for Crayfish payloads).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape");
      }
    }
    if (!Consume('"')) return Status::InvalidArgument("unterminated string");
    return out;
  }

  StatusOr<JsonValue> ParseArray() {
    Consume('[');
    JsonValue::Array arr;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(arr));
    for (;;) {
      CRAYFISH_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(arr));
  }

  StatusOr<JsonValue> ParseObject() {
    Consume('{');
    JsonValue::Object obj;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(obj));
    for (;;) {
      SkipWhitespace();
      CRAYFISH_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Status::InvalidArgument("expected ':' in object");
      }
      CRAYFISH_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj[std::move(key)] = std::move(v);
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(obj));
  }

  const char* p_;
  const char* end_;
};

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::GetNumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

int64_t JsonValue::GetIntOr(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

bool JsonValue::GetBoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string JsonValue::GetStringOr(const std::string& key,
                                   const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

size_t JsonValue::size() const {
  switch (type_) {
    case Type::kArray:
      return array_.size();
    case Type::kObject:
      return object_.size();
    default:
      return 0;
  }
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad(pretty ? static_cast<size_t>(indent * (depth + 1)) : 0,
                        ' ');
  const std::string closing_pad(
      pretty ? static_cast<size_t>(indent * depth) : 0, ' ');
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      out->append(JsonEscape(string_));
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        if (pretty) {
          out->push_back('\n');
          out->append(pad);
        }
        v.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out->push_back('\n');
        out->append(closing_pad);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        if (pretty) {
          out->push_back('\n');
          out->append(pad);
        }
        out->append(JsonEscape(k));
        out->push_back(':');
        if (pretty) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out->push_back('\n');
        out->append(closing_pad);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string JsonValue::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

}  // namespace crayfish
