#ifndef CRAYFISH_COMMON_JSON_H_
#define CRAYFISH_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace crayfish {

/// Minimal JSON document model. Crayfish uses JSON serialization throughout
/// the data pipeline (paper §3.1) — CrayfishDataBatch payloads, configs, and
/// reports are all JSON.
///
/// JsonValue is a tagged union over null / bool / number / string / array /
/// object. Numbers are stored as double (sufficient for the payloads and
/// configs we carry; integral values round-trip exactly up to 2^53).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  // std::map keeps key order deterministic, which keeps serialized batch
  // sizes and golden tests stable.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}              // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}        // NOLINT
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}           // NOLINT
  JsonValue(int64_t i)                                             // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(uint64_t i)                                            // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}   // NOLINT
  JsonValue(std::string s)                                         // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  JsonValue(Object o)                                              // NOLINT
      : type_(Type::kObject), object_(std::move(o)) {}

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object member access; inserting when absent (object type required).
  JsonValue& operator[](const std::string& key) { return object_[key]; }
  /// Returns nullptr when the key is absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Typed lookups with defaults — used by config parsing.
  double GetNumberOr(const std::string& key, double fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;

  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  size_t size() const;

  /// Compact single-line serialization.
  std::string Dump() const;
  /// Pretty-printed serialization with 2-space indentation.
  std::string DumpPretty() const;

  /// Parses a JSON text. Rejects trailing garbage.
  static StatusOr<JsonValue> Parse(const std::string& text);

  bool operator==(const JsonValue& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes a string for embedding in JSON (adds surrounding quotes).
std::string JsonEscape(const std::string& s);

}  // namespace crayfish

#endif  // CRAYFISH_COMMON_JSON_H_
