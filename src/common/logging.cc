#include "common/logging.h"

#include <cstdio>

#include "common/status.h"

namespace crayfish {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal_logging {

bool LevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_min_level);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace crayfish
