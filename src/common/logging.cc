#include "common/logging.h"

#include <cstdio>

#include "common/status.h"

namespace crayfish {

namespace {
LogLevel g_min_level = LogLevel::kInfo;
LogSink g_sink;  // nullptr => stderr
thread_local LogSimClock t_sim_clock;  // nullptr => no timestamp

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

LogSink SetLogSink(LogSink sink) {
  LogSink prev = std::move(g_sink);
  g_sink = std::move(sink);
  return prev;
}

LogSimClock SetLogSimClock(LogSimClock clock) {
  LogSimClock prev = std::move(t_sim_clock);
  t_sim_clock = std::move(clock);
  return prev;
}

namespace internal_logging {

bool LevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_min_level);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level);
  if (t_sim_clock) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), " @ %.6fs", t_sim_clock());
    stream_ << ts;
  }
  stream_ << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (g_sink) {
    g_sink(level_, stream_.str());
  } else {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace crayfish
