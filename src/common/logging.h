#ifndef CRAYFISH_COMMON_LOGGING_H_
#define CRAYFISH_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace crayfish {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level below which log statements are discarded.
/// Defaults to kInfo; tests lower it to kDebug, benchmarks raise it.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for fully formatted log lines (no trailing newline). The
/// default sink is nullptr, which means stderr; tests install a capturing
/// sink instead of scraping stderr. Returns the previously installed sink
/// so callers can restore it.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;
LogSink SetLogSink(LogSink sink);

/// Thread-local clock consulted by LogMessage: when set, log lines carry
/// the simulated timestamp ("@ 12.345s") after the level tag.
/// `sim::Simulation::Run` installs its own clock for the duration of the
/// run and restores the previous one on return. Pass nullptr to clear.
/// Returns the previously installed clock.
using LogSimClock = std::function<double()>;
LogSimClock SetLogSimClock(LogSimClock clock);

namespace internal_logging {

/// Stream-style log line collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting. Used by CHECK macros.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

struct Voidify {
  void operator&(std::ostream&) {}
  void operator&(NullStream&) {}
};

bool LevelEnabled(LogLevel level);

}  // namespace internal_logging
}  // namespace crayfish

#define CRAYFISH_LOG_INTERNAL(level)                                        \
  ::crayfish::internal_logging::LogMessage(level, __FILE__, __LINE__)      \
      .stream()

#define CRAYFISH_LOG(severity)                                              \
  !::crayfish::internal_logging::LevelEnabled(                              \
      ::crayfish::LogLevel::k##severity)                                    \
      ? (void)0                                                             \
      : ::crayfish::internal_logging::Voidify() &                           \
            CRAYFISH_LOG_INTERNAL(::crayfish::LogLevel::k##severity)

/// Aborts the process with a message when `cond` is false. Active in all
/// build modes; use for programmer errors, not data-dependent failures.
#define CRAYFISH_CHECK(cond)                                                \
  (cond) ? (void)0                                                          \
         : ::crayfish::internal_logging::Voidify() &                        \
               ::crayfish::internal_logging::FatalLogMessage(__FILE__,      \
                                                             __LINE__)      \
                   .stream()                                                \
               << "Check failed: " #cond " "

#define CRAYFISH_CHECK_OK(expr)                                             \
  do {                                                                      \
    const ::crayfish::Status& _s = (expr);                                  \
    CRAYFISH_CHECK(_s.ok()) << _s.ToString();                               \
  } while (0)

#define CRAYFISH_CHECK_EQ(a, b) CRAYFISH_CHECK((a) == (b))
#define CRAYFISH_CHECK_NE(a, b) CRAYFISH_CHECK((a) != (b))
#define CRAYFISH_CHECK_LT(a, b) CRAYFISH_CHECK((a) < (b))
#define CRAYFISH_CHECK_LE(a, b) CRAYFISH_CHECK((a) <= (b))
#define CRAYFISH_CHECK_GT(a, b) CRAYFISH_CHECK((a) > (b))
#define CRAYFISH_CHECK_GE(a, b) CRAYFISH_CHECK((a) >= (b))

#endif  // CRAYFISH_COMMON_LOGGING_H_
