#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace crayfish {

double RetryPolicy::BackoffFor(int attempt, Rng* rng) const {
  double delay = initial_backoff_s * std::pow(backoff_multiplier, attempt);
  delay = std::min(delay, max_backoff_s);
  if (jitter > 0.0 && rng != nullptr) {
    delay *= rng->Uniform(1.0 - jitter, 1.0 + jitter);
  }
  return std::max(delay, 0.0);
}

Status RetryPolicy::Validate() const {
  if (max_retries < 0) {
    return Status::InvalidArgument("retry.max_retries must be >= 0");
  }
  if (timeout_s <= 0.0) {
    return Status::InvalidArgument("retry.timeout_s must be > 0");
  }
  if (initial_backoff_s < 0.0 || max_backoff_s < 0.0) {
    return Status::InvalidArgument("retry backoff delays must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("retry.backoff_multiplier must be >= 1");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    return Status::InvalidArgument("retry.jitter must be in [0, 1)");
  }
  return Status::Ok();
}

}  // namespace crayfish
