#ifndef CRAYFISH_COMMON_RETRY_H_
#define CRAYFISH_COMMON_RETRY_H_

#include "common/rng.h"
#include "common/status.h"

namespace crayfish {

/// Client-side robustness policy: per-attempt timeout plus exponential
/// backoff with multiplicative jitter. Shared by the Kafka producer and
/// consumer clients and by the external-serving client in the stream
/// engines. Disabled by default (max_retries == 0) so baseline experiments
/// schedule exactly the same events as before this policy existed.
///
/// All randomness (the jitter) is drawn from a caller-supplied seeded
/// `crayfish::Rng`, and only on attempts that actually back off, so enabling
/// retries does not perturb the RNG streams of fault-free components.
struct RetryPolicy {
  /// Maximum number of re-attempts after the first try. 0 disables the
  /// policy entirely: no timeout events are armed and no RNG is consumed.
  int max_retries = 0;
  /// Per-attempt timeout. An attempt with no reply after this long is
  /// treated as failed (the late reply, if any, is ignored).
  double timeout_s = 1.0;
  /// Backoff before re-attempt k (0-based) is
  ///   min(initial_backoff_s * backoff_multiplier^k, max_backoff_s)
  /// scaled by a jitter factor drawn uniformly from [1 - jitter, 1 + jitter].
  double initial_backoff_s = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 2.0;
  double jitter = 0.2;

  bool enabled() const { return max_retries > 0; }

  /// Returns the jittered backoff delay before re-attempt `attempt`
  /// (0-based). Draws from `rng` only when jitter > 0.
  double BackoffFor(int attempt, Rng* rng) const;

  /// Returns OK when the fields describe a usable policy.
  Status Validate() const;

  /// True for error codes worth retrying (a restarted broker or recovered
  /// server may succeed where this attempt failed).
  static bool IsRetriable(const Status& status) {
    return status.IsUnavailable() || status.IsTimeout();
  }
};

}  // namespace crayfish

#endif  // CRAYFISH_COMMON_RETRY_H_
