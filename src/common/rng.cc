#include "common/rng.h"

#include <cmath>

namespace crayfish {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& word : s_) word = SplitMix64(x);
  // Avoid the degenerate all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

double Rng::Gamma(double shape, double scale) {
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia-Tsang trick).
    const double u = NextDouble();
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace crayfish
