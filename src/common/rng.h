#ifndef CRAYFISH_COMMON_RNG_H_
#define CRAYFISH_COMMON_RNG_H_

#include <cstdint>

namespace crayfish {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in Crayfish owns its own Rng seeded from the
/// experiment seed, so simulations are reproducible bit-for-bit and
/// independent of iteration order elsewhere.
class Rng {
 public:
  /// Seeds the four-word state via SplitMix64 so that nearby seeds give
  /// uncorrelated streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second variate).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate (events per unit time). rate > 0.
  double Exponential(double rate);

  /// Gamma(shape k, scale theta) via Marsaglia-Tsang. Used for skewed
  /// service-time distributions (e.g. TF-Serving recovery variance).
  double Gamma(double shape, double scale);

  /// Lognormal with the given *underlying* normal mu/sigma.
  double LogNormal(double mu, double sigma);

  /// Bernoulli with probability p of true.
  bool Bernoulli(double p);

  /// Derives a new independent generator; used to hand child components
  /// their own deterministic stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace crayfish

#endif  // CRAYFISH_COMMON_RNG_H_
