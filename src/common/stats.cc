#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace crayfish {

void RunningStats::Add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double s : samples_) m2 += (s - m) * (s - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void SampleSet::DiscardWarmup(double fraction) {
  CRAYFISH_CHECK_GE(fraction, 0.0);
  CRAYFISH_CHECK_LT(fraction, 1.0);
  const size_t drop =
      static_cast<size_t>(fraction * static_cast<double>(samples_.size()));
  samples_.erase(samples_.begin(),
                 samples_.begin() + static_cast<std::ptrdiff_t>(drop));
}

Histogram::Histogram(double min_value, double max_value, size_t num_buckets)
    : min_value_(min_value), counts_(num_buckets, 0) {
  CRAYFISH_CHECK_GT(min_value, 0.0);
  CRAYFISH_CHECK_GT(max_value, min_value);
  CRAYFISH_CHECK_GT(num_buckets, 0u);
  log_min_ = std::log(min_value);
  log_step_ =
      (std::log(max_value) - log_min_) / static_cast<double>(num_buckets);
}

size_t Histogram::BucketIndex(double x) const {
  if (x <= min_value_) return 0;
  const double idx = (std::log(x) - log_min_) / log_step_;
  if (idx >= static_cast<double>(counts_.size())) return counts_.size() - 1;
  return static_cast<size_t>(idx);
}

void Histogram::Add(double x) {
  ++counts_[BucketIndex(x)];
  ++total_;
}

void Histogram::Merge(const Histogram& other) {
  CRAYFISH_CHECK_EQ(counts_.size(), other.counts_.size());
  CRAYFISH_CHECK_EQ(min_value_, other.min_value_);
  CRAYFISH_CHECK_EQ(log_step_, other.log_step_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bucket_lower(size_t i) const {
  return std::exp(log_min_ + log_step_ * static_cast<double>(i));
}

double Histogram::Percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      // Bucket midpoint in log space.
      return std::exp(log_min_ + log_step_ * (static_cast<double>(i) + 0.5));
    }
  }
  return std::exp(log_min_ + log_step_ * static_cast<double>(counts_.size()));
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << "[" << bucket_lower(i) << ", " << bucket_lower(i + 1)
       << "): " << counts_[i] << "\n";
  }
  return os.str();
}

WindowedThroughput::WindowedThroughput(double window_seconds)
    : window_seconds_(window_seconds) {
  CRAYFISH_CHECK_GT(window_seconds, 0.0);
}

void WindowedThroughput::Record(double time_seconds, uint64_t events) {
  CRAYFISH_CHECK_GE(time_seconds, 0.0);
  const size_t idx = static_cast<size_t>(time_seconds / window_seconds_);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += events;
}

std::vector<double> WindowedThroughput::RatesPerSecond() const {
  std::vector<double> rates;
  rates.reserve(counts_.size());
  for (uint64_t c : counts_) {
    rates.push_back(static_cast<double>(c) / window_seconds_);
  }
  return rates;
}

double WindowedThroughput::SteadyStateRate(double warmup_fraction) const {
  if (counts_.empty()) return 0.0;
  size_t start = static_cast<size_t>(warmup_fraction *
                                     static_cast<double>(counts_.size()));
  if (start >= counts_.size()) start = counts_.size() - 1;
  uint64_t total = 0;
  for (size_t i = start; i < counts_.size(); ++i) total += counts_[i];
  const double span =
      static_cast<double>(counts_.size() - start) * window_seconds_;
  return static_cast<double>(total) / span;
}

}  // namespace crayfish
