#ifndef CRAYFISH_COMMON_STATS_H_
#define CRAYFISH_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace crayfish {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) memory; no percentiles — see Reservoir or Histogram for those.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);
  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; supports exact percentiles. Intended for per-
/// experiment latency collections (bounded by the 1M-measurement cap the
/// paper uses).
class SampleSet {
 public:
  SampleSet() = default;

  void Add(double x) { samples_.push_back(x); }
  void Reserve(size_t n) { samples_.reserve(n); }
  void Clear() { samples_.clear(); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by linear interpolation, p in [0, 100].
  /// Returns 0 for an empty set.
  double Percentile(double p) const;

  /// Drops the first `fraction` of the samples in insertion order —
  /// mirrors the paper's "discard the first 25% to eliminate warmup".
  void DiscardWarmup(double fraction);

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Fixed-boundary histogram in the style of HdrHistogram-lite: exponential
/// bucket boundaries between [min_value, max_value]. Used for latency
/// distribution summaries in reports.
class Histogram {
 public:
  /// Buckets grow geometrically from min_value to max_value over
  /// `num_buckets` buckets. Values outside the range clamp to the edge
  /// buckets.
  Histogram(double min_value, double max_value, size_t num_buckets);

  void Add(double x);
  /// Merges another histogram with identical bucket geometry (same
  /// min/max/num_buckets) into this one. Bucket-for-bucket addition, so
  /// merging per-window histograms reproduces the whole-run histogram
  /// exactly — CHECK-fails on a geometry mismatch.
  void Merge(const Histogram& other);
  size_t count() const { return total_; }
  /// Approximate percentile from bucket midpoints, p in [0, 100].
  double Percentile(double p) const;
  /// Multi-line textual rendering: one row per non-empty bucket.
  std::string ToString() const;

  size_t num_buckets() const { return counts_.size(); }
  size_t bucket_count(size_t i) const { return counts_[i]; }
  double bucket_lower(size_t i) const;

 private:
  size_t BucketIndex(double x) const;

  double min_value_;
  double log_min_;
  double log_step_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Tracks throughput as completed events per fixed-width time window.
/// Feed Record(t) for each completion; windows are [0,w), [w,2w), ...
class WindowedThroughput {
 public:
  explicit WindowedThroughput(double window_seconds);

  void Record(double time_seconds, uint64_t events = 1);

  /// Events/second per window, in order. Trailing partially filled window
  /// is included.
  std::vector<double> RatesPerSecond() const;
  /// Mean rate over the middle of the run: ignores `warmup_fraction` of the
  /// windows at the front.
  double SteadyStateRate(double warmup_fraction) const;
  double window_seconds() const { return window_seconds_; }
  const std::vector<uint64_t>& window_counts() const { return counts_; }

 private:
  double window_seconds_;
  std::vector<uint64_t> counts_;
};

}  // namespace crayfish

#endif  // CRAYFISH_COMMON_STATS_H_
