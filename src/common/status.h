#ifndef CRAYFISH_COMMON_STATUS_H_
#define CRAYFISH_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace crayfish {

/// Error categories used throughout the library. Crayfish does not use C++
/// exceptions; every fallible operation returns a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kIoError,
  kTimeout,
  kCorruption,
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic result of an operation that may fail.
///
/// Usage follows the RocksDB/Arrow idiom:
///
///   Status s = broker.CreateTopic("in", 32);
///   if (!s.ok()) return s;
///
/// The class is [[nodiscard]]: silently dropping a Status hides failures, so
/// call sites must check it, propagate it, or explicitly cast to void with a
/// comment saying why the error is impossible or irrelevant.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Dereferencing a non-OK
/// StatusOr aborts in debug builds (undefined in release, as with optional).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value makes `return value;` work.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status makes `return status;` work.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ engaged.
  std::optional<T> value_;
};

}  // namespace crayfish

/// Propagates a non-OK status out of the enclosing function.
#define CRAYFISH_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::crayfish::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                         \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors; on success binds the
/// value to `lhs`. `lhs` must be a declaration, e.g.
/// CRAYFISH_ASSIGN_OR_RETURN(auto v, Compute());
#define CRAYFISH_ASSIGN_OR_RETURN(lhs, expr)           \
  CRAYFISH_ASSIGN_OR_RETURN_IMPL(                      \
      CRAYFISH_STATUS_CONCAT(_status_or_, __LINE__), lhs, expr)

#define CRAYFISH_STATUS_CONCAT_INNER(a, b) a##b
#define CRAYFISH_STATUS_CONCAT(a, b) CRAYFISH_STATUS_CONCAT_INNER(a, b)
#define CRAYFISH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // CRAYFISH_COMMON_STATUS_H_
