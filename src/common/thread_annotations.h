#ifndef CRAYFISH_COMMON_THREAD_ANNOTATIONS_H_
#define CRAYFISH_COMMON_THREAD_ANNOTATIONS_H_

// Capability annotations for the parallel-DES migration (ROADMAP item 1),
// checked statically by tools/crayfish_lint (rules R10/R11 — see DESIGN.md
// §4.5). They follow the shape of Clang's thread-safety annotations but are
// deliberately compiler-inert: the *linter* is the analysis engine, built on
// its whole-program call graph and effect summaries, so the macros expand to
// nothing for every compiler.
//
// Model. A "channel" is a named synchronization story — not necessarily a
// mutex; under the host-partitioned event queue it may be a serialized
// mailbox, a commutative merge, or a phase of the run during which only one
// thread exists. The linter checks, whole-program:
//
//   CRAYFISH_SHARED("ch")      on a class: instances are a cross-host
//                              substrate whose mutation is safe under
//                              channel "ch". Writes into such types from
//                              event callbacks are exempt from R10.
//   CRAYFISH_GUARDED_BY("ch")  on a data member: every write must come from
//                              a function that provably holds "ch" (R11).
//   CRAYFISH_REQUIRES("ch")    on a function: callable only while "ch" is
//                              held; the obligation propagates to callers.
//                              On an entry-point (a function with no
//                              callers in the linted program) it is an
//                              assertion that the channel is held whenever
//                              that entry point runs.
//
// "Holds" is path-based: a function holds a channel when it REQUIRES it
// itself, or when every call path from an entry point passes through a
// holder. Constructors hold every channel (they initialize an object no
// other partition can see yet).
//
// Usage:
//
//   class CRAYFISH_SHARED("obs-metrics") HistogramMetric { ... };
//
//   class Network {
//     crayfish::Status AddHost(Host host) CRAYFISH_REQUIRES("setup");
//    private:
//     std::map<std::string, Host> hosts_ CRAYFISH_GUARDED_BY("setup");
//   };

//   CRAYFISH_GLOBAL_PLANE("why") on a function: asserts to the confinement
//                              planner (R13, DESIGN.md §4.7) that the
//                              function only ever runs on the coordinator's
//                              global plane — fault hooks dispatched from
//                              exclusive sync points, autoscaler ticks.
//                              Schedule sites inside it (and everything it
//                              reaches) classify as intentionally global
//                              instead of confinable.

#define CRAYFISH_SHARED(channel)
#define CRAYFISH_GUARDED_BY(channel)
#define CRAYFISH_REQUIRES(channel)
#define CRAYFISH_GLOBAL_PLANE(why)

#endif  // CRAYFISH_COMMON_THREAD_ANNOTATIONS_H_
