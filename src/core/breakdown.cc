#include "core/breakdown.h"

#include <algorithm>
#include <array>

#include "common/json.h"
#include "common/stats.h"
#include "core/report.h"

namespace crayfish::core {

LatencyBreakdown BreakdownAnalyzer::Compute(const obs::TraceRecorder& trace,
                                            const std::vector<Measurement>& ms,
                                            double warmup_fraction) {
  LatencyBreakdown out;
  if (ms.empty()) return out;

  // Identical window selection to MetricsAnalyzer::Summarize, so the
  // decomposition total matches the summary's latency mean.
  std::vector<Measurement> sorted = ms;
  std::sort(sorted.begin(), sorted.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.append_time < b.append_time;
            });
  const size_t drop = static_cast<size_t>(
      warmup_fraction * static_cast<double>(sorted.size()));
  if (drop >= sorted.size()) return out;

  std::array<double, obs::kNumStages> sums{};
  std::array<crayfish::SampleSet, obs::kNumStages> samples;
  double total_sum_ms = 0.0;
  uint64_t batches = 0;

  const auto& batch_traces = trace.batches();
  for (size_t i = drop; i < sorted.size(); ++i) {
    const auto it = batch_traces.find(sorted[i].batch_id);
    if (it == batch_traces.end() || !it->second.complete) continue;
    const obs::TraceRecorder::BatchTrace& bt = it->second;

    // A stage can be marked more than once per batch (e.g. queue waits at
    // successive operators); aggregate its intervals before sampling.
    std::array<double, obs::kNumStages> per_batch{};
    std::array<bool, obs::kNumStages> marked{};
    double prev = bt.start_s;
    for (const obs::TraceRecorder::StageMark& mark : bt.marks) {
      per_batch[static_cast<int>(mark.stage)] += mark.time_s - prev;
      marked[static_cast<int>(mark.stage)] = true;
      prev = mark.time_s;
    }
    for (int s = 0; s < obs::kNumStages; ++s) {
      sums[s] += per_batch[s] * 1000.0;
      // Zero-duration marks still count: "queue-wait: 0 ms over 3k
      // batches" is a finding, not noise.
      if (marked[s]) samples[s].Add(per_batch[s] * 1000.0);
    }
    total_sum_ms += (prev - bt.start_s) * 1000.0;
    ++batches;
  }
  if (batches == 0) return out;

  out.batches = batches;
  out.total_mean_ms = total_sum_ms / static_cast<double>(batches);
  for (obs::Stage stage : obs::AllStages()) {
    const int s = static_cast<int>(stage);
    if (samples[s].count() == 0) continue;
    StageBreakdownRow row;
    row.stage = stage;
    row.count = samples[s].count();
    row.mean_ms = sums[s] / static_cast<double>(batches);
    row.p95_ms = samples[s].Percentile(95.0);
    row.share =
        out.total_mean_ms > 0.0 ? row.mean_ms / out.total_mean_ms : 0.0;
    out.stages.push_back(row);
  }
  return out;
}

std::string LatencyBreakdown::ToString() const {
  ReportTable table("latency breakdown (" + std::to_string(batches) +
                        " batches, mean " + ReportTable::Num(total_mean_ms, 3) +
                        " ms end-to-end)",
                    {"stage", "count", "mean_ms", "p95_ms", "share_%"});
  for (const StageBreakdownRow& row : stages) {
    table.AddRow({obs::StageName(row.stage), std::to_string(row.count),
                  ReportTable::Num(row.mean_ms, 4),
                  ReportTable::Num(row.p95_ms, 4),
                  ReportTable::Num(row.share * 100.0, 1)});
  }
  return table.ToString();
}

std::string LatencyBreakdown::ToJson() const {
  JsonValue obj = JsonValue::MakeObject();
  obj["batches"] = static_cast<int64_t>(batches);
  obj["total_mean_ms"] = total_mean_ms;
  JsonValue rows = JsonValue::MakeArray();
  for (const StageBreakdownRow& row : stages) {
    JsonValue r = JsonValue::MakeObject();
    r["stage"] = std::string(obs::StageName(row.stage));
    r["count"] = static_cast<int64_t>(row.count);
    r["mean_ms"] = row.mean_ms;
    r["p95_ms"] = row.p95_ms;
    r["share"] = row.share;
    rows.Append(std::move(r));
  }
  obj["stages"] = std::move(rows);
  return obj.Dump();
}

}  // namespace crayfish::core
