#ifndef CRAYFISH_CORE_BREAKDOWN_H_
#define CRAYFISH_CORE_BREAKDOWN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/output_consumer.h"
#include "obs/stage.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::core {

/// Per-stage slice of the end-to-end latency decomposition.
struct StageBreakdownRow {
  obs::Stage stage = obs::Stage::kProduce;
  /// Batches in the analyzed window that passed through this stage.
  uint64_t count = 0;
  /// Mean stage time over *all* analyzed batches (absent = 0), so the
  /// stage means sum to `LatencyBreakdown::total_mean_ms`.
  double mean_ms = 0.0;
  /// p95 over the batches that actually hit the stage.
  double p95_ms = 0.0;
  /// mean_ms / total_mean_ms.
  double share = 0.0;
};

/// Where one config's latency goes, stage by stage (the labyrinth map the
/// paper's Fig. 5/6 discussions reason about informally). Built from the
/// trace recorder's per-batch stage marks; because consecutive marks tile
/// a batch's lifetime, the per-stage means sum to the end-to-end mean of
/// the same measurement window MetricsAnalyzer::Summarize analyzes.
struct LatencyBreakdown {
  /// Completed, post-warmup batches the decomposition is over.
  uint64_t batches = 0;
  /// Mean end-to-end latency of those batches == sum of stage means.
  double total_mean_ms = 0.0;
  /// Stages with at least one contributing batch, in pipeline order.
  std::vector<StageBreakdownRow> stages;

  bool empty() const { return batches == 0; }
  /// Aligned table rendering (via ReportTable).
  std::string ToString() const;
  /// Machine-readable rendering: {batches, total_mean_ms, stages: [...]}.
  std::string ToJson() const;
};

/// Folds trace spans into the per-stage latency decomposition.
class BreakdownAnalyzer {
 public:
  /// Applies the same window selection as MetricsAnalyzer::Summarize
  /// (sort by append time, drop the leading `warmup_fraction`) and keeps
  /// the measurements whose batch trace completed, so the total here is
  /// directly comparable with the summary's latency_mean_ms.
  static LatencyBreakdown Compute(const obs::TraceRecorder& trace,
                                  const std::vector<Measurement>& ms,
                                  double warmup_fraction = 0.25);
};

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_BREAKDOWN_H_
