#include "core/data_batch.h"

#include <cstdio>

#include "common/logging.h"

namespace crayfish::core {

int64_t CrayfishDataBatch::elements_per_sample() const {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

int64_t CrayfishDataBatch::batch_size() const {
  const int64_t per_sample = elements_per_sample();
  if (per_sample == 0) return 0;
  return static_cast<int64_t>(data.size()) / per_sample;
}

std::string CrayfishDataBatch::ToJson() const {
  std::string out;
  out.reserve(data.size() * 6 + 128);
  out += "{\"id\":";
  out += std::to_string(id);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%.6f", created_at);
  out += ",\"ts\":";
  out += ts;
  out += ",\"shape\":[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(shape[i]);
  }
  out += "],\"data\":[";
  char buf[16];
  for (size_t i = 0; i < data.size(); ++i) {
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf), "%.3f", data[i]);
    out += buf;
  }
  out += "]}";
  return out;
}

crayfish::StatusOr<CrayfishDataBatch> CrayfishDataBatch::FromJson(
    const std::string& text) {
  CRAYFISH_ASSIGN_OR_RETURN(JsonValue v, JsonValue::Parse(text));
  if (!v.is_object()) {
    return crayfish::Status::InvalidArgument("batch JSON must be an object");
  }
  CrayfishDataBatch batch;
  batch.id = static_cast<uint64_t>(v.GetIntOr("id", 0));
  batch.created_at = v.GetNumberOr("ts", 0.0);
  const JsonValue* shape = v.Find("shape");
  if (shape == nullptr || !shape->is_array()) {
    return crayfish::Status::InvalidArgument("batch JSON missing shape");
  }
  for (const JsonValue& d : shape->as_array()) {
    if (!d.is_number()) {
      return crayfish::Status::InvalidArgument("shape entries must be numbers");
    }
    batch.shape.push_back(d.as_int());
  }
  const JsonValue* data = v.Find("data");
  if (data == nullptr || !data->is_array()) {
    return crayfish::Status::InvalidArgument("batch JSON missing data");
  }
  batch.data.reserve(data->size());
  for (const JsonValue& d : data->as_array()) {
    if (!d.is_number()) {
      return crayfish::Status::InvalidArgument("data entries must be numbers");
    }
    batch.data.push_back(static_cast<float>(d.as_number()));
  }
  const int64_t per_sample = batch.elements_per_sample();
  if (per_sample == 0 ||
      static_cast<int64_t>(batch.data.size()) % per_sample != 0) {
    return crayfish::Status::InvalidArgument(
        "data length is not a multiple of the sample size");
  }
  return batch;
}

crayfish::StatusOr<tensor::Tensor> CrayfishDataBatch::ToTensor() const {
  std::vector<int64_t> dims;
  dims.push_back(batch_size());
  for (int64_t d : shape) dims.push_back(d);
  tensor::Shape t_shape(std::move(dims));
  if (t_shape.NumElements() != static_cast<int64_t>(data.size())) {
    return crayfish::Status::InvalidArgument("inconsistent batch data size");
  }
  return tensor::Tensor(std::move(t_shape), data);
}

CrayfishDataBatch CrayfishDataBatch::FromTensor(uint64_t id,
                                                double created_at,
                                                const tensor::Tensor& t) {
  CRAYFISH_CHECK_GE(t.shape().rank(), 1);
  CrayfishDataBatch batch;
  batch.id = id;
  batch.created_at = created_at;
  for (int64_t i = 1; i < t.shape().rank(); ++i) {
    batch.shape.push_back(t.shape()[i]);
  }
  batch.data = t.values();
  return batch;
}

}  // namespace crayfish::core
