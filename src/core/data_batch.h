#ifndef CRAYFISH_CORE_DATA_BATCH_H_
#define CRAYFISH_CORE_DATA_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace crayfish::core {

/// The benchmark's unit of computation (§3.1): a batch of data points plus
/// the creation timestamp used for end-to-end latency. Serialized as JSON
/// throughout the pipeline.
struct CrayfishDataBatch {
  uint64_t id = 0;
  /// Producer-side creation time, seconds on the experiment clock.
  double created_at = 0.0;
  /// Per-sample shape (e.g. [28, 28]).
  std::vector<int64_t> shape;
  /// Row-major samples, flattened: batch_size * prod(shape) floats.
  std::vector<float> data;

  int64_t batch_size() const;
  int64_t elements_per_sample() const;

  /// Full JSON serialization ({"id":..,"ts":..,"shape":[..],"data":[..]})
  /// with fixed 3-decimal values, matching the generator's wire-size
  /// accounting (~4 bytes/element).
  std::string ToJson() const;
  static crayfish::StatusOr<CrayfishDataBatch> FromJson(
      const std::string& text);

  /// Batch content as a [batch, ...shape] tensor.
  crayfish::StatusOr<tensor::Tensor> ToTensor() const;
  /// Builds a batch from a [batch, ...shape] tensor.
  static CrayfishDataBatch FromTensor(uint64_t id, double created_at,
                                      const tensor::Tensor& t);
};

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_DATA_BATCH_H_
