#include "core/dataset.h"

#include <fstream>

namespace crayfish::core {

crayfish::StatusOr<std::vector<CrayfishDataBatch>> LoadDataset(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return crayfish::Status::NotFound("dataset file: " + path);
  std::vector<CrayfishDataBatch> batches;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto batch = CrayfishDataBatch::FromJson(line);
    if (!batch.ok()) {
      return crayfish::Status::Corruption(
          path + ":" + std::to_string(lineno) + ": " +
          batch.status().ToString());
    }
    batches.push_back(std::move(*batch));
  }
  if (batches.empty()) {
    return crayfish::Status::InvalidArgument("dataset is empty: " + path);
  }
  const auto& first = batches.front();
  for (const CrayfishDataBatch& b : batches) {
    if (b.shape != first.shape || b.batch_size() != first.batch_size()) {
      return crayfish::Status::InvalidArgument(
          "dataset batches must share shape and batch size: " + path);
    }
  }
  return batches;
}

crayfish::Status WriteDataset(const std::string& path,
                              const std::vector<CrayfishDataBatch>& batches) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open: " + path);
  for (const CrayfishDataBatch& b : batches) {
    out << b.ToJson() << "\n";
  }
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return crayfish::Status::Ok();
}

}  // namespace crayfish::core
