#ifndef CRAYFISH_CORE_DATASET_H_
#define CRAYFISH_CORE_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/data_batch.h"

namespace crayfish::core {

/// Real-dataset support (§3.1: the input producer "can be configured to
/// ... read real datasets"). Datasets are JSON-lines files: one
/// CrayfishDataBatch JSON object per line.

/// Loads every batch from a JSON-lines file. All batches must share the
/// same per-sample shape and batch size (the pipeline's unit of
/// computation is fixed per experiment).
crayfish::StatusOr<std::vector<CrayfishDataBatch>> LoadDataset(
    const std::string& path);

/// Writes batches as JSON-lines (creates/truncates the file).
crayfish::Status WriteDataset(const std::string& path,
                              const std::vector<CrayfishDataBatch>& batches);

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_DATASET_H_
