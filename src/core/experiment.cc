#include "core/experiment.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "broker/cluster.h"
#include "common/logging.h"
#include "common/stats.h"
#include "core/dataset.h"
#include "core/input_producer.h"
#include "core/sweep.h"
#include "fault/injector.h"
#include "model/formats.h"
#include "model/graph.h"
#include "serving/calibration.h"
#include "serving/embedded_library.h"
#include "serving/external_server.h"
#include "serving/model_profile.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "sps/engine.h"

namespace crayfish::core {

std::vector<int64_t> ExperimentConfig::SampleShape() const {
  if (custom_model.has_value()) {
    if (!custom_shape.empty()) return custom_shape;
    return {custom_model->input_elements};
  }
  if (model == "ffnn") return {28, 28};
  if (model == "resnet50") return {224, 224, 3};
  return {serving::ModelProfile::ByName(model).input_elements};
}

RateSchedule ExperimentConfig::Schedule() const {
  RateSchedule s;
  s.base_rate = input_rate;
  s.bursty = bursty;
  s.burst_rate = burst_rate;
  s.burst_duration_s = burst_duration_s;
  s.time_between_bursts_s = time_between_bursts_s;
  s.first_burst_at_s = first_burst_at_s;
  return s;
}

std::string ExperimentConfig::Label() const {
  std::ostringstream os;
  os << engine << "/" << serving << "/" << model << " bsz=" << batch_size
     << " ir=" << input_rate << " mp=" << parallelism;
  if (use_gpu) os << " gpu";
  return os.str();
}

crayfish::StatusOr<ExperimentResult> RunExperiment(
    const ExperimentConfig& config) {
  if (config.batch_size <= 0 || config.parallelism <= 0 ||
      config.input_rate <= 0.0) {
    return crayfish::Status::InvalidArgument(
        "batch_size, parallelism and input_rate must be positive");
  }
  const bool external = serving::IsExternalTool(config.serving);
  if (!external && !serving::IsEmbeddedLibrary(config.serving)) {
    return crayfish::Status::InvalidArgument("unknown serving tool: " +
                                             config.serving);
  }
  if (config.sim_threads < 1 || config.sim_threads > 64) {
    return crayfish::Status::InvalidArgument(
        "sim_threads must be in [1, 64]");
  }
  const bool autoscaled = config.autoscaler.enabled;
  if (autoscaled) {
    CRAYFISH_RETURN_IF_ERROR(config.autoscaler.Validate());
    if (!external) {
      return crayfish::Status::InvalidArgument(
          "autoscaler requires an external serving tool (embedded "
          "libraries have no worker pool to resize)");
    }
  }
  if (config.workload.enabled) {
    CRAYFISH_RETURN_IF_ERROR(config.workload.Validate());
  }

  sim::Simulation sim(config.seed);
  // Before any host registration: partition count fixes the host ->
  // partition packing for the whole run.
  sim.SetThreads(config.sim_threads);

  // Observability is attached before any component is built, so even
  // construction-time activity (topic creation, model loading) is visible
  // to the registry and every hook sees the recorder from the first event.
  const bool faulted = config.fault_plan.active();
  std::shared_ptr<obs::TraceRecorder> trace;
  std::shared_ptr<obs::MetricsRegistry> metrics;
  if (config.enable_tracing) {
    trace = std::make_shared<obs::TraceRecorder>();
    metrics = std::make_shared<obs::MetricsRegistry>();
    sim.AttachObservability(trace.get(), metrics.get());
  } else if (faulted || autoscaled) {
    // Fault runs always carry a registry: the retry counters incremented
    // by producers/consumers/serving clients are the cross-layer channel
    // the recovery scorecard reads. Autoscaled runs carry one for the same
    // reason (the `autoscale_*` metrics and the loss scorecard that proves
    // scale-in dropped nothing). Registry updates are passive, so this
    // does not perturb the run.
    metrics = std::make_shared<obs::MetricsRegistry>();
    sim.AttachObservability(nullptr, metrics.get());
  }

  // Continuous telemetry timeline: active SLOs imply one (1 s default
  // windows). Attached before components like the tracer, and equally
  // passive — the Run loop closes windows on the DES clock without
  // scheduling events, so `sim_events_executed` and all results are
  // byte-identical with the timeline on or off.
  double timeline_interval = config.timeline_interval_s;
  if (timeline_interval <= 0.0 && config.slo.active()) {
    timeline_interval = 1.0;
  }
  const bool timed = timeline_interval > 0.0;
  std::shared_ptr<obs::TimelineSampler> timeline;
  if (timed) {
    timeline = std::make_shared<obs::TimelineSampler>(timeline_interval);
    sim.AttachTimeline(timeline.get());
  }

  sim::Network network(&sim);

  // Kafka cluster (4 brokers, 32-partition topics, LogAppendTime).
  broker::ClusterConfig cluster_config;
  broker::KafkaCluster cluster(&sim, &network, cluster_config);
  if (faulted) {
    // Before any client exists: producers, consumers, and the serving
    // client all inherit the plan's robustness policy at construction.
    CRAYFISH_RETURN_IF_ERROR(config.fault_plan.Validate());
    // lint: capability-ok setup phase: runs single-threaded before any client or event exists, which is exactly what the "setup" channel asserts
    cluster.SetClientDefaults(config.fault_plan.retry,
                              config.fault_plan.auto_commit_interval_s);
  }
  CRAYFISH_RETURN_IF_ERROR(
      cluster.CreateTopic("crayfish-in", config.topic_partitions));
  CRAYFISH_RETURN_IF_ERROR(
      cluster.CreateTopic("crayfish-out", config.topic_partitions));
  if (config.retention_records > 0) {
    CRAYFISH_RETURN_IF_ERROR(cluster.SetTopicRetention(
        "crayfish-in", config.retention_records));
    CRAYFISH_RETURN_IF_ERROR(cluster.SetTopicRetention(
        "crayfish-out", config.retention_records));
  }

  // Cluster-scale topology (scale::WorkloadSpec): idle fleet hosts plus
  // per-tenant background topics. Hosts are registered before
  // FreezeTopology, so a thousand-host fleet costs one empty link bucket
  // per host; tenant topics allocate per-partition broker state lazily on
  // first produce.
  if (config.workload.enabled) {
    for (int i = 0; i < config.workload.fleet_hosts; ++i) {
      // lint: capability-ok setup phase: fleet registration runs single-threaded before FreezeTopology and the first event, which is what the "setup" channel asserts
      CRAYFISH_RETURN_IF_ERROR(network.AddHost(
          sim::Host{config.workload.fleet_host_prefix + std::to_string(i),
                    /*vcpus=*/4, /*memory_bytes=*/15ULL << 30,
                    /*has_gpu=*/false}));
    }
    for (int t = 0; t < config.workload.tenants; ++t) {
      const std::string topic =
          config.workload.tenant_topic_prefix + std::to_string(t);
      CRAYFISH_RETURN_IF_ERROR(
          cluster.CreateTopic(topic, config.workload.tenant_partitions));
      if (config.retention_records > 0) {
        CRAYFISH_RETURN_IF_ERROR(
            cluster.SetTopicRetention(topic, config.retention_records));
      }
    }
  }

  const serving::ModelProfile profile =
      config.custom_model.has_value()
          ? *config.custom_model
          : serving::ModelProfile::ByName(config.model);

  // Serving tool.
  std::unique_ptr<serving::EmbeddedLibrary> library;
  std::unique_ptr<serving::ExternalServingServer> server;
  if (external) {
    serving::ExternalServerOptions opts;
    opts.workers = config.parallelism;
    opts.use_gpu = config.use_gpu;
    opts.model = profile;
    CRAYFISH_ASSIGN_OR_RETURN(
        server, serving::CreateExternalServer(&sim, &network,
                                              config.serving, opts));
    // Started below, after the lookahead is armed, so the model-load and
    // readiness events confine to the serving host.
  } else {
    CRAYFISH_ASSIGN_OR_RETURN(library,
                              serving::CreateEmbeddedLibrary(config.serving));
    if (config.validate_real_inference) {
      if (config.model != "ffnn") {
        return crayfish::Status::InvalidArgument(
            "validate_real_inference supports model=ffnn");
      }
      // Honest load path: a real pre-trained model serialized in the
      // library's native format, parsed by the library itself.
      model::ModelGraph graph = model::BuildFfnn();
      crayfish::Rng weight_rng(config.seed ^ 0x5eedULL);
      graph.InitializeWeights(&weight_rng);
      CRAYFISH_ASSIGN_OR_RETURN(
          Bytes serialized,
          model::Serialize(graph, library->native_format()));
      CRAYFISH_RETURN_IF_ERROR(library->Load(serialized));
    }
  }

  // Data processor (the SUT).
  sps::EngineConfig engine_config;
  engine_config.parallelism = config.parallelism;
  engine_config.source_parallelism = config.source_parallelism;
  engine_config.sink_parallelism = config.sink_parallelism;
  engine_config.overrides = config.engine_overrides;
  sps::ScoringConfig scoring;
  scoring.external = external;
  scoring.library = library.get();
  scoring.server = server.get();
  scoring.model = profile;
  scoring.use_gpu = config.use_gpu;
  if (faulted && external) scoring.retry = config.fault_plan.retry;
  CRAYFISH_ASSIGN_OR_RETURN(
      std::unique_ptr<sps::StreamEngine> engine,
      sps::CreateEngine(config.engine, &sim, &network, &cluster,
                        engine_config, scoring));

  // Measurement endpoints (outside the SUT, §3.5).
  OutputConsumer::Options oc_opts;
  oc_opts.max_measurements = config.max_measurements;
  OutputConsumer output_consumer(&sim, &cluster, oc_opts);

  std::optional<DataGenerator> generator;
  if (!config.dataset_path.empty()) {
    CRAYFISH_ASSIGN_OR_RETURN(std::vector<CrayfishDataBatch> dataset,
                              LoadDataset(config.dataset_path));
    generator.emplace(std::move(dataset), sim.ForkRng());
  } else {
    generator.emplace(config.SampleShape(), config.batch_size,
                      sim.ForkRng());
  }
  InputProducer::Options ip_opts;
  ip_opts.schedule = config.Schedule();
  if (config.workload.enabled) {
    // Workload shape drives the primary producer's instantaneous rate (a
    // pure function of sim time — see RateSchedule::rate_fn's contract).
    const scale::WorkloadShape shape = config.workload.shape;
    ip_opts.schedule.rate_fn = [shape](double t) { return shape.RateAt(t); };
  }
  ip_opts.max_events = config.max_events;
  ip_opts.stop_at_s = config.duration_s;
  ip_opts.materialize_payloads = config.validate_real_inference;
  InputProducer producer(&sim, &cluster, std::move(*generator), ip_opts);

  // Background tenants: each gets its own producer host and topic, pushing
  // the shared shape scaled by tenant_rate_factor. They load the brokers
  // and the network, not the scored pipeline (no consumer reads them), so
  // `result.events_sent` stays the primary producer's count.
  std::vector<std::unique_ptr<InputProducer>> tenant_producers;
  if (config.workload.enabled) {
    for (int t = 0; t < config.workload.tenants; ++t) {
      InputProducer::Options topts;
      topts.client_host =
          config.workload.tenant_host_prefix + std::to_string(t);
      topts.topic = config.workload.tenant_topic_prefix + std::to_string(t);
      const scale::WorkloadShape shape = config.workload.shape;
      const double factor = config.workload.tenant_rate_factor;
      topts.schedule.rate_fn = [shape, factor](double t_s) {
        return shape.RateAt(t_s) * factor;
      };
      topts.stop_at_s = config.duration_s;
      tenant_producers.push_back(std::make_unique<InputProducer>(
          &sim, &cluster,
          DataGenerator(config.SampleShape(), config.batch_size,
                        sim.ForkRng()),
          topts));
    }
  }

  // Fault schedule: armed after every component exists (hooks bind to the
  // live server/engine), before the first simulated event.
  fault::RecoveryTracker tracker;
  std::optional<fault::FaultInjector> injector;
  if (faulted) {
    injector.emplace(&sim, &network, &cluster, &tracker,
                     &config.fault_plan);
    fault::FaultHooks hooks;
    if (server != nullptr) {
      serving::ExternalServingServer* srv = server.get();
      hooks.serving_slowdown = [srv](double factor) {
        srv->InjectSlowdown(factor);
      };
      hooks.serving_down = [srv](bool down) { srv->SetServerDown(down); };
      hooks.serving_worker_delta = [srv](int delta) {
        // Scale-in drains in-flight requests before removing workers
        // (graceful resize); scale-out takes effect immediately. Deltas
        // stack on the *target* width so a resize issued mid-drain
        // composes instead of resurrecting the pre-drain width.
        const int target = std::max(1, srv->target_workers() + delta);
        if (delta < 0) {
          srv->SetWorkersGraceful(target);
        } else {
          srv->SetWorkers(target);
        }
      };
    }
    sps::StreamEngine* eng = engine.get();
    hooks.task_failure = [eng](int task_index, double restart_delay_s) {
      return eng->InjectTaskFailure(task_index, restart_delay_s);
    };
    injector->set_hooks(std::move(hooks));
    CRAYFISH_RETURN_IF_ERROR(injector->Arm());
  }

  // Elastic autoscaler: the control loop runs as exclusive events at
  // global sync points (every partition quiescent), so resizes are
  // byte-for-byte identical at any sim_threads value. All ticks are
  // pre-scheduled here, before the first simulated event.
  std::optional<scale::Actuator> actuator;
  std::optional<scale::Autoscaler> autoscaler;
  if (autoscaled) {
    serving::ExternalServingServer* srv = server.get();
    scale::ActuatorHooks ahooks;
    // The loop reasons about the *target* width: during a graceful drain
    // the pool converges to the pending target, and basing decisions on it
    // keeps the policy from re-issuing the same shrink every tick.
    ahooks.current_replicas = [srv]() { return srv->target_workers(); };
    ahooks.set_replicas = [srv](int n) {
      if (n < srv->target_workers()) {
        // Scale-in drains in-flight requests before removing workers.
        srv->SetWorkersGraceful(n);
      } else {
        srv->SetWorkers(n);
      }
    };
    actuator.emplace(&sim, config.serving, std::move(ahooks));

    // Window deltas (busy seconds, events sent) between consecutive ticks.
    // Ticks execute in strict time order on the global plane, so this
    // mutable state is single-writer and its evolution is deterministic.
    struct SamplerState {
      double prev_t = 0.0;
      double prev_busy = 0.0;
      uint64_t prev_sent = 0;
    };
    auto state = std::make_shared<SamplerState>();
    sps::StreamEngine* eng = engine.get();
    InputProducer* prod = &producer;
    auto sampler = [srv, eng, prod, state](double now_s) {
      scale::PolicyInput in;
      const sps::EngineTelemetry telemetry = eng->Telemetry();
      in.total_lag = static_cast<double>(telemetry.consumer_lag);
      in.max_partition_lag =
          static_cast<double>(telemetry.max_partition_lag);
      const double busy = srv->worker_busy_seconds();
      const uint64_t sent = prod->events_sent();
      const double dt = now_s - state->prev_t;
      if (dt > 0.0) {
        const int width = std::max(1, srv->workers());
        in.utilization = std::clamp(
            (busy - state->prev_busy) / (dt * width), 0.0, 1.0);
        in.arrival_rate_eps =
            static_cast<double>(sent - state->prev_sent) / dt;
      }
      state->prev_t = now_s;
      state->prev_busy = busy;
      state->prev_sent = sent;
      return in;
    };
    autoscaler.emplace(&sim, config.autoscaler, &*actuator,
                       std::move(sampler));
    CRAYFISH_RETURN_IF_ERROR(
        autoscaler->Arm(config.duration_s + config.drain_s));
  }

  // Timeline probes are registered centrally, over objects owned by this
  // frame (they all outlive sim.Run), and are strictly read-only.
  if (timed) {
    sim::Simulation* sim_ptr = &sim;
    timeline->AddProbe("sim_event_queue", obs::ProbeKind::kGauge,
                       [sim_ptr]() {
                         return static_cast<double>(sim_ptr->pending_events());
                       });
    sps::StreamEngine* eng = engine.get();
    timeline->AddProbe("consumer_lag", obs::ProbeKind::kGauge, [eng]() {
      return static_cast<double>(eng->Telemetry().consumer_lag);
    });
    timeline->AddProbe("max_partition_lag", obs::ProbeKind::kGauge, [eng]() {
      return static_cast<double>(eng->Telemetry().max_partition_lag);
    });
    timeline->AddProbe("sps_queue_depth", obs::ProbeKind::kGauge, [eng]() {
      return static_cast<double>(eng->Telemetry().queue_depth);
    });
    timeline->AddProbe("engine_stall_s", obs::ProbeKind::kCumulative,
                       [eng]() {
                         return eng->Telemetry().backpressure_stall_s;
                       });
    if (server != nullptr) {
      serving::ExternalServingServer* srv = server.get();
      timeline->AddProbe("serving_queue_depth", obs::ProbeKind::kGauge,
                         [srv]() {
                           return static_cast<double>(srv->queue_depth());
                         });
      timeline->AddProbe("serving_workers", obs::ProbeKind::kGauge, [srv]() {
        return static_cast<double>(srv->workers());
      });
      timeline->AddProbe("serving_busy_s", obs::ProbeKind::kCumulative,
                         [srv]() { return srv->worker_busy_seconds(); });
    }
  }

  // Parallel DES: freeze the link table so confined senders read it
  // without locks, and derive the conservative lookahead from the minimum
  // link propagation latency — the floor under every cross-host delivery.
  // Done at every thread count: threads=1 runs the same protocol, which
  // is what makes the byte-for-byte equality claim testable.
  // lint: capability-ok setup phase: last setup step before the first simulated event, single-threaded by construction
  network.FreezeTopology();
  sim.SetLookahead(network.MinLinkLatency());

  if (server != nullptr) server->Start();
  CRAYFISH_RETURN_IF_ERROR(engine->Start());
  output_consumer.Start();
  producer.Start();
  for (std::unique_ptr<InputProducer>& tp : tenant_producers) tp->Start();

  sim.Run(config.duration_s + config.drain_s);

  // Close the trailing timeline window while every probed component is
  // still live; feeds arriving during teardown are ignored.
  if (timed) timeline->Finalize(sim.Now());

  engine->Stop();
  producer.Stop();
  for (std::unique_ptr<InputProducer>& tp : tenant_producers) tp->Stop();
  output_consumer.Stop();

  ExperimentResult result;
  result.measurements = output_consumer.measurements();
  result.summary = MetricsAnalyzer::Summarize(result.measurements);
  if (config.bursty) {
    result.recoveries = MetricsAnalyzer::BurstRecoveryTimes(
        result.measurements, ip_opts.schedule, sim.Now());
  }
  result.events_sent = producer.events_sent();
  result.events_scored = engine->events_scored();
  result.real_inferences = engine->real_inferences();
  result.sim_end_s = sim.Now();
  result.sim_events_executed = sim.events_executed();
  if (timed) {
    result.timeline = timeline;
    if (config.slo.active()) {
      result.slo_report = obs::SloMonitor::Evaluate(config.slo, *timeline);
      result.has_slo_report = true;
      // SLO verdicts ride on the registry when one exists (or is created
      // for them) and on the trace's instant track when tracing.
      if (metrics == nullptr) {
        metrics = std::make_shared<obs::MetricsRegistry>();
      }
      obs::SloMonitor::PublishMetrics(result.slo_report, metrics.get());
      obs::SloMonitor::AnnotateTrace(result.slo_report, trace.get());
      if (!config.enable_tracing && !faulted) result.metrics = metrics;
    }
    sim.AttachTimeline(nullptr);
  }
  if (autoscaled) {
    result.autoscale = autoscaler->Summary();
    result.has_autoscale = true;
  }
  if (faulted || autoscaled) {
    // The loss scorecard covers autoscaled runs too: scale-in must drain,
    // never drop, and the `fault_metrics.lost` field is how tests and the
    // demand-metric runner assert that.
    for (const Measurement& m : result.measurements) {
      tracker.RecordDelivery(m.batch_id, m.append_time);
    }
    result.fault_metrics =
        tracker.Finalize(result.events_sent, sim.Now());
    for (const char* component : {"producer", "consumer", "serving-client"}) {
      result.fault_metrics.retries += static_cast<uint64_t>(
          metrics->Counter("fault_retries", {{"component", component}})
              ->value());
    }
    fault::RecoveryTracker::PublishMetrics(result.fault_metrics,
                                           metrics.get());
    result.has_fault_metrics = true;
    result.metrics = metrics;
    if (!config.enable_tracing) sim.AttachObservability(nullptr, nullptr);
  }
  if (config.enable_tracing) {
    // End-of-run gauges/counters from the serving side, then detach so
    // the recorder outlives the simulation safely.
    if (server != nullptr) server->PublishMetrics(metrics.get());
    if (library != nullptr) library->PublishMetrics(metrics.get());
    result.breakdown =
        BreakdownAnalyzer::Compute(*trace, result.measurements);
    result.trace = std::move(trace);
    result.metrics = std::move(metrics);
    sim.AttachObservability(nullptr, nullptr);
  }
  return result;
}

crayfish::StatusOr<std::vector<ExperimentResult>> RunRepeated(
    ExperimentConfig config, int repeats) {
  // The seed chain is materialized up front and the repeats run through the
  // sweep pool (serial when the resolved job count is 1); results come back
  // in submission order, so output is identical to the old serial loop.
  return RunExperiments(MakeRepeatedConfigs(std::move(config), repeats));
}

namespace {
Aggregate AggregateMetric(const std::vector<ExperimentResult>& results,
                          double (*metric)(const ExperimentResult&)) {
  crayfish::RunningStats stats;
  for (const ExperimentResult& r : results) stats.Add(metric(r));
  return Aggregate{stats.mean(), stats.stddev()};
}
}  // namespace

Aggregate AggregateThroughput(const std::vector<ExperimentResult>& results) {
  return AggregateMetric(results, [](const ExperimentResult& r) {
    return r.summary.throughput_eps;
  });
}

Aggregate AggregateLatencyMean(const std::vector<ExperimentResult>& results) {
  return AggregateMetric(results, [](const ExperimentResult& r) {
    return r.summary.latency_mean_ms;
  });
}

}  // namespace crayfish::core
