#ifndef CRAYFISH_CORE_EXPERIMENT_H_
#define CRAYFISH_CORE_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "core/breakdown.h"
#include "core/generator.h"
#include "core/metrics.h"
#include "core/output_consumer.h"
#include "fault/plan.h"
#include "fault/recovery.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/slo.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "scale/autoscaler.h"
#include "scale/policy.h"
#include "scale/workload.h"
#include "serving/model_profile.h"

namespace crayfish::core {

/// One Crayfish benchmark configuration: an SPS, a serving tool, a
/// pre-trained model, and the Table 1 workload parameters.
struct ExperimentConfig {
  // --- SUT selection ---
  std::string engine = "flink";  ///< flink|kafka-streams|spark|ray
  /// Serving tool: embedded ("dl4j"|"onnx"|"savedmodel") or external
  /// ("tf-serving"|"torchserve"|"ray-serve").
  std::string serving = "onnx";
  std::string model = "ffnn";  ///< "ffnn" | "resnet50"
  /// User-supplied model (§3.2: "users can indicate ... any stored model
  /// they wish to test"). When set, overrides `model`; unknown models
  /// derive service times from their FLOP counts. Build one with
  /// serving::ModelProfile::FromGraph on any ModelGraph.
  std::optional<serving::ModelProfile> custom_model;
  /// Per-sample tensor shape for a custom model (defaults to flat
  /// [input_elements]).
  std::vector<int64_t> custom_shape;
  /// Optional JSON-lines dataset to replay instead of synthetic data
  /// (§3.1); overrides batch_size/shape with the dataset's.
  std::string dataset_path;
  /// Validation mode: materialize real payloads and have the embedded
  /// scoring operators run *true* inference on every batch (load a real
  /// model through the library's native format, parse the JSON, forward
  /// pass) while the simulation keeps its calibrated timing. Supported
  /// for embedded serving with model="ffnn" (ResNet50's real compute is
  /// deliberately out of the simulated hot path).
  bool validate_real_inference = false;

  // --- workload (Table 1) ---
  int batch_size = 1;       ///< bsz
  double input_rate = 1.0;  ///< ir, events/s
  int parallelism = 1;      ///< mp
  bool bursty = false;
  double burst_rate = 0.0;            ///< events/s during bursts
  double burst_duration_s = 30.0;     ///< bd
  double time_between_bursts_s = 120.0;  ///< tbb
  double first_burst_at_s = 60.0;

  // --- deployment ---
  bool use_gpu = false;
  /// Flink operator-level parallelism (Fig. 12); 0 = chained default.
  int source_parallelism = 0;
  int sink_parallelism = 0;
  int topic_partitions = 32;
  /// Per-partition retention (records); bounds memory in overload runs.
  size_t retention_records = 20000;
  crayfish::Config engine_overrides;

  // --- run control ---
  double duration_s = 30.0;  ///< producer generation window (sim time)
  double drain_s = 10.0;     ///< extra time for in-flight work
  uint64_t max_events = 0;
  uint64_t max_measurements = 0;
  uint64_t seed = 42;

  /// Host partitions (and threads) for the parallel DES engine
  /// (DESIGN.md §4.6). 1 = the serial engine; N > 1 shards hosts across N
  /// threads under the conservative time-window protocol. Results are
  /// byte-for-byte identical at any value — this is a wall-clock knob,
  /// never a semantics knob (asserted by tests/determinism_test.cc).
  int sim_threads = 1;

  // --- fault injection ---
  /// Deterministic fault schedule (empty = fault-free run). When active,
  /// the cluster-wide client retry/auto-commit defaults come from
  /// `fault_plan.retry` / `fault_plan.auto_commit_interval_s`, a
  /// RecoveryTracker scores the run, and `ExperimentResult.fault_metrics`
  /// is populated.
  fault::FaultPlan fault_plan;

  // --- cluster-scale workload shaping (src/scale) ---
  /// Workload generator: when `workload.enabled`, the input producer's
  /// rate follows `workload.shape` (RateSchedule::rate_fn) instead of the
  /// constant/bursty Table 1 schedule, and the run can stand up a
  /// multi-tenant fleet (background tenant topics + idle fleet hosts).
  /// Inert by default.
  scale::WorkloadSpec workload;

  /// Elastic autoscaler: when `autoscaler.enabled`, a DES-scheduled
  /// control loop samples broker lag / serving utilization every
  /// `interval_s` and resizes the external serving worker pool through
  /// scale::Actuator. Requires an external serving tool (the embedded
  /// libraries have no worker pool to resize). A RecoveryTracker scores
  /// the run (as in fault runs) so scale-in can be asserted loss-free.
  /// Inert by default.
  scale::PolicyConfig autoscaler;

  // --- observability ---
  /// Attach a TraceRecorder + MetricsRegistry to the run. Recording is
  /// passive (simulated clock only, no events, no RNG), so enabling it
  /// does not change the run's results; disabled, every hook is a single
  /// null-pointer branch.
  bool enable_tracing = false;

  /// Tumbling-window width of the continuous telemetry timeline; <= 0
  /// disables it (unless an SLO config forces the 1 s default). Sampling
  /// is driven by the DES clock inside Simulation::Run — passive like
  /// tracing, so the timeline cannot perturb a run either.
  double timeline_interval_s = 0.0;

  /// Declarative SLOs evaluated per timeline window after the run. Active
  /// SLOs imply a timeline (default 1 s windows when timeline_interval_s
  /// is unset).
  obs::SloConfig slo;

  /// Per-sample tensor shape for the generator, by model name.
  std::vector<int64_t> SampleShape() const;
  RateSchedule Schedule() const;
  std::string Label() const;
};

/// Everything a bench needs from one run.
struct ExperimentResult {
  MetricsSummary summary;
  std::vector<Measurement> measurements;
  std::vector<BurstRecovery> recoveries;
  uint64_t events_sent = 0;
  uint64_t events_scored = 0;
  /// Real forward passes executed inside the pipeline (validation mode).
  uint64_t real_inferences = 0;
  double sim_end_s = 0.0;
  uint64_t sim_events_executed = 0;

  // --- populated only when config.fault_plan is active ---
  bool has_fault_metrics = false;
  fault::FaultMetrics fault_metrics;

  // --- populated only when config.enable_tracing is set ---
  /// Per-stage latency decomposition of the post-warmup window.
  LatencyBreakdown breakdown;
  /// The raw trace (Chrome-trace / CSV exportable) and metrics registry.
  /// shared_ptr so ExperimentResult stays copyable.
  std::shared_ptr<obs::TraceRecorder> trace;
  std::shared_ptr<obs::MetricsRegistry> metrics;

  // --- populated only when config.autoscaler is enabled ---
  bool has_autoscale = false;
  scale::AutoscaleSummary autoscale;

  // --- populated only when the telemetry timeline is active ---
  /// Finalized windowed timeline (JSONL / CSV exportable).
  std::shared_ptr<obs::TimelineSampler> timeline;
  /// SLO verdicts (populated only when config.slo is also active).
  bool has_slo_report = false;
  obs::SloReport slo_report;
};

/// Builds the full simulated deployment (9-VM-style topology: producer,
/// 4 Kafka brokers, data processor, serving VM, output consumer), runs the
/// workload, and analyzes the output log. Each call is hermetic and
/// deterministic under its seed.
crayfish::StatusOr<ExperimentResult> RunExperiment(
    const ExperimentConfig& config);

/// Runs the experiment `repeats` times with derived seeds and returns all
/// results (the paper reports mean and stddev over two runs).
crayfish::StatusOr<std::vector<ExperimentResult>> RunRepeated(
    ExperimentConfig config, int repeats);

/// Mean / stddev of a metric across repeated results.
struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
};
Aggregate AggregateThroughput(const std::vector<ExperimentResult>& results);
Aggregate AggregateLatencyMean(const std::vector<ExperimentResult>& results);

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_EXPERIMENT_H_
