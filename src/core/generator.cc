#include "core/generator.h"

#include <cmath>

#include "common/logging.h"

namespace crayfish::core {

double RateSchedule::RateAt(double t) const {
  if (rate_fn) return rate_fn(t);
  if (!bursty) return base_rate;
  return InBurst(t) ? burst_rate : base_rate;
}

bool RateSchedule::InBurst(double t) const {
  if (!bursty || t < first_burst_at_s) return false;
  const double cycle = burst_duration_s + time_between_bursts_s;
  const double phase = std::fmod(t - first_burst_at_s, cycle);
  return phase < burst_duration_s;
}

DataGenerator::DataGenerator(std::vector<int64_t> sample_shape,
                             int batch_size, crayfish::Rng rng)
    : sample_shape_(std::move(sample_shape)), batch_size_(batch_size),
      rng_(rng) {
  CRAYFISH_CHECK_GT(batch_size, 0);
  CRAYFISH_CHECK(!sample_shape_.empty());
  elements_per_sample_ = 1;
  for (int64_t d : sample_shape_) {
    CRAYFISH_CHECK_GT(d, 0);
    elements_per_sample_ *= d;
  }
}

DataGenerator::DataGenerator(std::vector<CrayfishDataBatch> dataset,
                             crayfish::Rng rng)
    : rng_(rng), dataset_(std::move(dataset)) {
  CRAYFISH_CHECK(!dataset_.empty());
  sample_shape_ = dataset_.front().shape;
  batch_size_ = static_cast<int>(dataset_.front().batch_size());
  CRAYFISH_CHECK_GT(batch_size_, 0);
  elements_per_sample_ = dataset_.front().elements_per_sample();
  uint64_t total = 0;
  for (const CrayfishDataBatch& b : dataset_) {
    CRAYFISH_CHECK(b.shape == sample_shape_);
    total += b.ToJson().size();
  }
  dataset_wire_bytes_ = total / dataset_.size();
}

CrayfishDataBatch DataGenerator::NextMetadataOnly(double created_at) {
  CrayfishDataBatch batch;
  batch.id = next_id_++;
  batch.created_at = created_at;
  batch.shape = sample_shape_;
  return batch;
}

CrayfishDataBatch DataGenerator::NextMaterialized(double created_at) {
  if (replaying_dataset()) {
    CrayfishDataBatch batch =
        dataset_[static_cast<size_t>(next_id_ % dataset_.size())];
    batch.id = next_id_++;
    batch.created_at = created_at;
    return batch;
  }
  CrayfishDataBatch batch = NextMetadataOnly(created_at);
  batch.data.resize(static_cast<size_t>(elements_per_sample_ *
                                        batch_size_));
  for (float& v : batch.data) {
    v = static_cast<float>(rng_.NextDouble());
  }
  return batch;
}

uint64_t DataGenerator::BatchWireBytes() const {
  if (replaying_dataset()) return dataset_wire_bytes_;
  // ~4 JSON characters per element plus the envelope; see
  // serving::ModelProfile for the same accounting on the model side.
  return 160 + 4ULL * static_cast<uint64_t>(elements_per_sample_) *
                   static_cast<uint64_t>(batch_size_);
}

}  // namespace crayfish::core
