#ifndef CRAYFISH_CORE_GENERATOR_H_
#define CRAYFISH_CORE_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/data_batch.h"
#include "tensor/tensor.h"

namespace crayfish::core {

/// Input-rate schedule (Table 1): constant rate, or periodic bursts of
/// `burst_rate` for `burst_duration_s` separated by `time_between_bursts_s`
/// at `base_rate`.
struct RateSchedule {
  double base_rate = 1.0;  ///< events/s (ir)
  bool bursty = false;
  double burst_rate = 0.0;          ///< events/s during a burst
  double burst_duration_s = 30.0;   ///< bd
  double time_between_bursts_s = 120.0;  ///< tbb
  /// Offset of the first burst from t=0 (lets the warmup window pass).
  double first_burst_at_s = 120.0;

  /// Workload-shape override: when set, RateAt delegates to this function
  /// of simulated time (scale::WorkloadShape plugs in here). Must stay
  /// strictly positive and be a pure function of t — the producer divides
  /// by it, and purity is what keeps shaped runs thread-count independent.
  std::function<double(double)> rate_fn;

  /// Instantaneous target rate at time t.
  double RateAt(double t) const;
  /// True when t falls inside a burst window.
  bool InBurst(double t) const;
};

/// Synthetic tensor-like data generator (§4.1): produces batches of
/// user-defined shape with uniform random content. Content is irrelevant
/// to inference cost, so by default only batch *metadata* is materialized
/// and the payload size is accounted analytically; set
/// `materialize_payload` to build real JSON payloads (tests, examples,
/// real-inference runs).
class DataGenerator {
 public:
  /// Synthetic mode: batches of `batch_size` samples of `sample_shape`.
  DataGenerator(std::vector<int64_t> sample_shape, int batch_size,
                crayfish::Rng rng);

  /// Real-dataset mode (§3.1): replays the given batches cyclically,
  /// re-stamping ids and creation timestamps. All batches must share
  /// shape and batch size (see core::LoadDataset). Wire sizes come from
  /// the batches' actual JSON serialization.
  DataGenerator(std::vector<CrayfishDataBatch> dataset, crayfish::Rng rng);

  /// Next batch with metadata only (data empty; wire size accounted).
  CrayfishDataBatch NextMetadataOnly(double created_at);
  /// Next batch with real content (random in synthetic mode; the dataset
  /// sample in replay mode).
  CrayfishDataBatch NextMaterialized(double created_at);

  /// JSON wire size of one batch from this generator (payload + envelope;
  /// mean of the real serialized sizes in dataset mode).
  uint64_t BatchWireBytes() const;

  bool replaying_dataset() const { return !dataset_.empty(); }
  int batch_size() const { return batch_size_; }
  const std::vector<int64_t>& sample_shape() const { return sample_shape_; }
  uint64_t batches_generated() const { return next_id_; }

 private:
  std::vector<int64_t> sample_shape_;
  int batch_size_;
  int64_t elements_per_sample_;
  crayfish::Rng rng_;
  uint64_t next_id_ = 0;
  std::vector<CrayfishDataBatch> dataset_;
  uint64_t dataset_wire_bytes_ = 0;
};

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_GENERATOR_H_
