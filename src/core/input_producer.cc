#include "core/input_producer.h"

#include "common/logging.h"
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::core {

InputProducer::InputProducer(sim::Simulation* sim,
                             broker::KafkaCluster* cluster,
                             DataGenerator generator, Options options)
    : sim_(sim), cluster_(cluster), generator_(std::move(generator)),
      options_(std::move(options)) {
  if (!cluster_->network()->HasHost(options_.client_host)) {
    CRAYFISH_CHECK_OK(cluster_->network()->AddHost(
        sim::Host{options_.client_host, /*vcpus=*/4,
                  /*memory_bytes=*/15ULL << 30, /*has_gpu=*/false}));
  }
  producer_ = std::make_unique<broker::KafkaProducer>(cluster_,
                                                      options_.client_host);
}

void InputProducer::Start() {
  next_emit_time_ = sim_->Now();
  EmitNext();
}

void InputProducer::ScheduleOnHost(sim::SimTime delay,
                                   sim::InlineAction action) {
  if (sim_->host_scheduling_active()) {
    sim_->ScheduleOnHost(options_.client_host, delay, std::move(action));
  } else {
    sim_->Schedule(delay, std::move(action));
  }
}

void InputProducer::ScheduleAtOnHost(sim::SimTime time,
                                     sim::InlineAction action) {
  if (sim_->host_scheduling_active()) {
    sim_->ScheduleAtOnHost(options_.client_host, time, std::move(action));
  } else {
    sim_->ScheduleAt(time, std::move(action));
  }
}

void InputProducer::EmitNext() {
  if (stopped_) return;
  if (options_.max_events > 0 && events_sent_ >= options_.max_events) {
    producer_->Flush();
    return;
  }
  const double now = sim_->Now();
  if (options_.stop_at_s > 0.0 && now >= options_.stop_at_s) {
    producer_->Flush();
    return;
  }

  // Start timestamp recorded prior to the Kafka write (§3.3 step 1).
  const double generate = options_.generate_per_sample_s *
                          static_cast<double>(generator_.batch_size());
  ScheduleOnHost(generate, [this]() {
    if (stopped_) return;
    broker::Record record;
    if (options_.materialize_payloads) {
      CrayfishDataBatch batch = generator_.NextMaterialized(sim_->Now());
      const std::string json = batch.ToJson();
      record.batch_id = batch.id;
      record.create_time = batch.created_at;
      record.SetPayload(Bytes(json.begin(), json.end()));
      record.wire_size = record.payload->size();
    } else {
      CrayfishDataBatch batch = generator_.NextMetadataOnly(sim_->Now());
      record.batch_id = batch.id;
      record.create_time = batch.created_at;
      record.wire_size = generator_.BatchWireBytes();
    }
    record.batch_size = static_cast<uint32_t>(generator_.batch_size());
    CRAYFISH_TRACE_WITH(sim_, tracer, {
      tracer->StartBatch(record.batch_id, record.create_time);
    });
    CRAYFISH_CHECK_OK(producer_->Send(options_.topic, std::move(record)));
    ++events_sent_;

    // Pace the next event from the *scheduled* emission time, not the
    // completion time, so the configured rate is maintained (open loop).
    const double rate = options_.schedule.RateAt(sim_->Now());
    CRAYFISH_CHECK_GT(rate, 0.0);
    next_emit_time_ += 1.0 / rate;
    ScheduleAtOnHost(next_emit_time_, [this]() { EmitNext(); });
  });
}

}  // namespace crayfish::core
