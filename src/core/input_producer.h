#ifndef CRAYFISH_CORE_INPUT_PRODUCER_H_
#define CRAYFISH_CORE_INPUT_PRODUCER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "broker/cluster.h"
#include "broker/producer.h"
#include "core/generator.h"
#include "sim/simulation.h"

namespace crayfish::core {

/// The input-workload producer component (Fig. 1): generates
/// CrayfishDataBatch events according to a rate schedule and writes them
/// to the Kafka input topic, recording the *start* timestamp right before
/// the write (Fig. 3 step 1).
class InputProducer {
 public:
  struct Options {
    std::string client_host = "producer";
    std::string topic = "crayfish-in";
    RateSchedule schedule;
    /// Stop after this many events (0 = unlimited).
    uint64_t max_events = 0;
    /// Stop generating at this simulated time (0 = unlimited).
    double stop_at_s = 0.0;
    /// Per-batch generation cost charged before the send (JSON encode of
    /// the synthetic tensors, ~12 us per sample).
    double generate_per_sample_s = 12e-6;
    /// Materialize real JSON payloads into the records (validation mode:
    /// scoring operators can run true inference on them). Costs host
    /// memory/time; sized-only records are the default.
    bool materialize_payloads = false;
  };

  InputProducer(sim::Simulation* sim, broker::KafkaCluster* cluster,
                DataGenerator generator, Options options);

  /// Starts the generation loop at the current simulated time.
  void Start();
  void Stop() { stopped_ = true; }

  uint64_t events_sent() const { return events_sent_; }
  const Options& options() const { return options_; }

 private:
  void EmitNext();
  /// Confine the emit loop to the producer host when the experiment armed
  /// host scheduling; fall back to the global queue so unit tests keep
  /// their exact event order.
  void ScheduleOnHost(sim::SimTime delay, sim::InlineAction action);
  void ScheduleAtOnHost(sim::SimTime time, sim::InlineAction action);

  sim::Simulation* sim_;
  broker::KafkaCluster* cluster_;
  DataGenerator generator_;
  Options options_;
  std::unique_ptr<broker::KafkaProducer> producer_;
  bool stopped_ = false;
  uint64_t events_sent_ = 0;
  double next_emit_time_ = 0.0;
};

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_INPUT_PRODUCER_H_
