#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/json.h"

#include "common/logging.h"

namespace crayfish::core {

std::string MetricsSummary::ToString() const {
  std::ostringstream os;
  os << "n=" << measurements << " thr=" << throughput_eps
     << " ev/s, latency ms: mean=" << latency_mean_ms
     << " sd=" << latency_stddev_ms << " p50=" << latency_p50_ms
     << " p95=" << latency_p95_ms << " p99=" << latency_p99_ms;
  return os.str();
}

MetricsSummary MetricsAnalyzer::Summarize(const std::vector<Measurement>& ms,
                                          double warmup_fraction) {
  MetricsSummary out;
  if (ms.empty()) return out;
  // Measurements are observed in poll order; sort by append time so the
  // warmup cut is temporal.
  std::vector<Measurement> sorted = ms;
  std::sort(sorted.begin(), sorted.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.append_time < b.append_time;
            });
  const size_t drop = static_cast<size_t>(
      warmup_fraction * static_cast<double>(sorted.size()));
  if (drop >= sorted.size()) return out;

  crayfish::SampleSet latencies;
  latencies.Reserve(sorted.size() - drop);
  for (size_t i = drop; i < sorted.size(); ++i) {
    latencies.Add(sorted[i].latency_s() * 1000.0);
  }
  out.measurements = latencies.count();
  out.latency_mean_ms = latencies.mean();
  out.latency_stddev_ms = latencies.stddev();
  out.latency_p50_ms = latencies.Percentile(50.0);
  out.latency_p95_ms = latencies.Percentile(95.0);
  out.latency_p99_ms = latencies.Percentile(99.0);
  out.latency_min_ms = latencies.min();
  out.latency_max_ms = latencies.max();

  const double span =
      sorted.back().append_time - sorted[drop].append_time;
  out.window_s = span;
  if (span > 0.0) {
    out.throughput_eps =
        static_cast<double>(sorted.size() - drop - 1) / span;
  }
  return out;
}

std::string MetricsSummary::ToJson() const {
  JsonValue obj = JsonValue::MakeObject();
  obj["measurements"] = static_cast<int64_t>(measurements);
  obj["throughput_eps"] = throughput_eps;
  obj["latency_mean_ms"] = latency_mean_ms;
  obj["latency_stddev_ms"] = latency_stddev_ms;
  obj["latency_p50_ms"] = latency_p50_ms;
  obj["latency_p95_ms"] = latency_p95_ms;
  obj["latency_p99_ms"] = latency_p99_ms;
  obj["latency_min_ms"] = latency_min_ms;
  obj["latency_max_ms"] = latency_max_ms;
  obj["window_s"] = window_s;
  return obj.Dump();
}

std::vector<WindowStats> MetricsAnalyzer::TimeSeries(
    const std::vector<Measurement>& ms, double window_s) {
  std::map<uint64_t, crayfish::SampleSet> windows;
  for (const Measurement& m : ms) {
    if (m.append_time < 0.0) continue;
    windows[static_cast<uint64_t>(m.append_time / window_s)].Add(
        m.latency_s() * 1000.0);
  }
  std::vector<WindowStats> out;
  out.reserve(windows.size());
  for (const auto& [idx, samples] : windows) {
    WindowStats w;
    w.window_start_s = static_cast<double>(idx) * window_s;
    w.count = samples.count();
    w.throughput_eps = static_cast<double>(samples.count()) / window_s;
    w.latency_mean_ms = samples.mean();
    w.latency_p95_ms = samples.Percentile(95.0);
    out.push_back(w);
  }
  return out;
}

crayfish::Status MetricsAnalyzer::WriteMeasurementsCsv(
    const std::string& path, const std::vector<Measurement>& ms) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open: " + path);
  out << "batch_id,create_time_s,append_time_s,latency_ms,batch_size\n";
  char line[160];
  for (const Measurement& m : ms) {
    std::snprintf(line, sizeof(line), "%llu,%.6f,%.6f,%.3f,%u\n",
                  static_cast<unsigned long long>(m.batch_id),
                  m.create_time, m.append_time, m.latency_s() * 1000.0,
                  m.batch_size);
    out << line;
  }
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return crayfish::Status::Ok();
}

std::vector<double> MetricsAnalyzer::ThroughputSeries(
    const std::vector<Measurement>& ms, double window_s) {
  crayfish::WindowedThroughput wt(window_s);
  for (const Measurement& m : ms) {
    if (m.append_time >= 0.0) wt.Record(m.append_time);
  }
  return wt.RatesPerSecond();
}

std::vector<BurstRecovery> MetricsAnalyzer::BurstRecoveryTimes(
    const std::vector<Measurement>& ms, const RateSchedule& schedule,
    double run_end_s, double window_s, double threshold_factor,
    int stable_windows) {
  std::vector<BurstRecovery> out;
  if (!schedule.bursty || ms.empty()) return out;

  // Windowed mean latency over append time.
  const size_t windows =
      static_cast<size_t>(run_end_s / window_s) + 1;
  std::vector<double> sum(windows, 0.0);
  std::vector<uint64_t> count(windows, 0);
  for (const Measurement& m : ms) {
    const size_t w = static_cast<size_t>(m.append_time / window_s);
    if (w >= windows) continue;
    sum[w] += m.latency_s();
    ++count[w];
  }
  auto window_latency = [&](size_t w) -> double {
    return count[w] == 0 ? -1.0 : sum[w] / static_cast<double>(count[w]);
  };

  const double cycle =
      schedule.burst_duration_s + schedule.time_between_bursts_s;
  for (double start = schedule.first_burst_at_s;
       start + schedule.burst_duration_s < run_end_s; start += cycle) {
    BurstRecovery rec;
    rec.burst_start_s = start;
    rec.burst_end_s = start + schedule.burst_duration_s;

    // Baseline: mean latency over the 20 s preceding the burst.
    double base_sum = 0.0;
    int base_n = 0;
    for (double t = std::max(0.0, start - 20.0); t < start;
         t += window_s) {
      const double l = window_latency(static_cast<size_t>(t / window_s));
      if (l >= 0.0) {
        base_sum += l;
        ++base_n;
      }
    }
    if (base_n == 0) {
      out.push_back(rec);
      continue;
    }
    const double baseline = base_sum / base_n;
    const double threshold = baseline * threshold_factor;

    const size_t first_w =
        static_cast<size_t>(rec.burst_end_s / window_s);
    int stable = 0;
    for (size_t w = first_w; w < windows; ++w) {
      const double l = window_latency(w);
      // Empty windows during recovery mean the pipeline is still draining
      // backlog or fully idle; treat idle (no data at all) as stable.
      const bool ok = l < 0.0 ? true : l <= threshold;
      stable = ok ? stable + 1 : 0;
      if (stable >= stable_windows) {
        const double recovered_at =
            static_cast<double>(w + 1 - static_cast<size_t>(stable)) *
            window_s;
        rec.recovery_s =
            std::max(0.0, recovered_at - rec.burst_end_s);
        break;
      }
    }
    out.push_back(rec);
  }
  return out;
}

}  // namespace crayfish::core
