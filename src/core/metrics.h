#ifndef CRAYFISH_CORE_METRICS_H_
#define CRAYFISH_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/generator.h"
#include "core/output_consumer.h"

namespace crayfish::core {

/// Summary statistics of one experiment run, produced by the metrics
/// analyzer from the output consumer's measurement log.
struct MetricsSummary {
  uint64_t measurements = 0;
  /// Mean sustained events/s over the post-warmup window.
  double throughput_eps = 0.0;
  /// Latency statistics in milliseconds (post-warmup).
  double latency_mean_ms = 0.0;
  double latency_stddev_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_min_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Simulated time span of the analyzed window (seconds).
  double window_s = 0.0;

  std::string ToString() const;
  /// Machine-readable rendering for tooling (keys match the fields).
  std::string ToJson() const;
};

/// Per-window latency/throughput statistics over append time.
struct WindowStats {
  double window_start_s = 0.0;
  uint64_t count = 0;
  double throughput_eps = 0.0;
  double latency_mean_ms = 0.0;
  double latency_p95_ms = 0.0;
};

/// Recovery analysis of one burst (Fig. 8): time from the burst's end
/// until the measured latency stabilizes back at the pre-burst level.
struct BurstRecovery {
  double burst_start_s = 0.0;
  double burst_end_s = 0.0;
  /// -1 when the system never recovered within the run.
  double recovery_s = -1.0;
};

/// The metrics-analyzer component (Fig. 1).
class MetricsAnalyzer {
 public:
  /// `warmup_fraction`: leading fraction of measurements discarded
  /// (paper: 25%).
  static MetricsSummary Summarize(const std::vector<Measurement>& ms,
                                  double warmup_fraction = 0.25);

  /// Per-window output rates (events/s) over append time.
  static std::vector<double> ThroughputSeries(
      const std::vector<Measurement>& ms, double window_s);

  /// Per-window latency + throughput time series (empty windows omitted).
  /// The raw material of the Fig. 8-style plots.
  static std::vector<WindowStats> TimeSeries(
      const std::vector<Measurement>& ms, double window_s);

  /// Writes the raw measurement log as CSV
  /// (batch_id,create_time_s,append_time_s,latency_ms,batch_size).
  static crayfish::Status WriteMeasurementsCsv(
      const std::string& path, const std::vector<Measurement>& ms);

  /// Recovery time per burst: latency is "recovered" at the first time
  /// after the burst end where the windowed mean latency stays within
  /// `threshold_factor` x the pre-burst baseline for `stable_windows`
  /// consecutive windows.
  static std::vector<BurstRecovery> BurstRecoveryTimes(
      const std::vector<Measurement>& ms, const RateSchedule& schedule,
      double run_end_s, double window_s = 1.0,
      double threshold_factor = 1.5, int stable_windows = 3);
};

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_METRICS_H_
