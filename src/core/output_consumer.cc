#include "core/output_consumer.h"

#include "common/logging.h"
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::core {

OutputConsumer::OutputConsumer(sim::Simulation* sim,
                               broker::KafkaCluster* cluster,
                               Options options)
    : sim_(sim), cluster_(cluster), options_(std::move(options)) {
  if (!cluster_->network()->HasHost(options_.client_host)) {
    CRAYFISH_CHECK_OK(cluster_->network()->AddHost(
        sim::Host{options_.client_host, /*vcpus=*/4,
                  /*memory_bytes=*/15ULL << 30, /*has_gpu=*/false}));
  }
  broker::ConsumerConfig cc;
  cc.max_poll_records = 2000;
  cc.max_buffered_records = 20000;
  consumer_ = std::make_unique<broker::KafkaConsumer>(
      cluster_, options_.client_host, "crayfish-metrics", cc);
}

void OutputConsumer::Start() {
  auto partitions_or = cluster_->NumPartitions(options_.topic);
  CRAYFISH_CHECK(partitions_or.ok()) << partitions_or.status().ToString();
  const int partitions = *partitions_or;
  std::vector<int> all(static_cast<size_t>(partitions));
  for (int p = 0; p < partitions; ++p) all[static_cast<size_t>(p)] = p;
  CRAYFISH_CHECK_OK(consumer_->Assign(options_.topic, all));
  PollLoop();
}

void OutputConsumer::PollLoop() {
  if (stopped_) return;
  consumer_->Poll(0.5, [this](std::vector<broker::Record> records) {
    if (stopped_) return;
    for (const broker::Record& r : records) {
      Measurement m;
      m.batch_id = r.batch_id;
      m.create_time = r.create_time;
      m.append_time = r.log_append_time;
      m.batch_size = r.batch_size;
      if (obs::TimelineSampler* tl = sim_->timeline()) {
        // Completion instant = output-topic append time, so windows line up
        // with the paper's end-to-end latency definition.
        tl->ObserveLatency(m.append_time, m.latency_s(), m.batch_size);
      }
      measurements_.push_back(m);
      if (options_.max_measurements > 0 &&
          measurements_.size() >= options_.max_measurements) {
        done_ = true;
        Stop();
        return;
      }
    }
    PollLoop();
  });
}

void OutputConsumer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  consumer_->Close();
}

}  // namespace crayfish::core
