#ifndef CRAYFISH_CORE_OUTPUT_CONSUMER_H_
#define CRAYFISH_CORE_OUTPUT_CONSUMER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broker/cluster.h"
#include "broker/consumer.h"
#include "sim/simulation.h"

namespace crayfish::core {

/// One completed measurement: a scored batch observed on the output topic.
struct Measurement {
  uint64_t batch_id = 0;
  double create_time = 0.0;
  /// Output-topic LogAppendTime (§3.3 step 5) — the end timestamp.
  double append_time = 0.0;
  uint32_t batch_size = 1;

  double latency_s() const { return append_time - create_time; }
};

/// The output-consumer component (Fig. 1): reads the Kafka output topic
/// and extracts per-batch end-to-end latencies. Runs on its own host —
/// measurement collection stays outside the SUT (§3.5).
class OutputConsumer {
 public:
  struct Options {
    std::string client_host = "consumer";
    std::string topic = "crayfish-out";
    /// Stop collecting after this many measurements (0 = unlimited) —
    /// the paper caps runs at 1M measurements.
    uint64_t max_measurements = 0;
  };

  OutputConsumer(sim::Simulation* sim, broker::KafkaCluster* cluster,
                 Options options);

  void Start();
  void Stop();

  const std::vector<Measurement>& measurements() const {
    return measurements_;
  }
  uint64_t count() const { return measurements_.size(); }
  bool done() const { return done_; }

 private:
  void PollLoop();

  sim::Simulation* sim_;
  broker::KafkaCluster* cluster_;
  Options options_;
  std::unique_ptr<broker::KafkaConsumer> consumer_;
  std::vector<Measurement> measurements_;
  bool stopped_ = false;
  bool done_ = false;
};

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_OUTPUT_CONSUMER_H_
