#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace crayfish::core {

ReportTable::ReportTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  CRAYFISH_CHECK(!columns_.empty());
}

void ReportTable::AddRow(std::vector<std::string> cells) {
  CRAYFISH_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      os << cells[c];
      for (size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << "\n";
  };
  emit_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void ReportTable::Print() const { std::fputs(ToString().c_str(), stdout); }

namespace {
std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}
}  // namespace

std::string ReportTable::ToCsv() const {
  std::ostringstream out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out << ",";
    out << CsvEscape(columns_[c]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

crayfish::Status ReportTable::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open " + path);
  out << ToCsv();
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return crayfish::Status::Ok();
}

}  // namespace crayfish::core
