#ifndef CRAYFISH_CORE_REPORT_H_
#define CRAYFISH_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace crayfish::core {

/// Aligned plain-text table builder for bench output (one per paper
/// table/figure) with CSV export for downstream plotting.
class ReportTable {
 public:
  ReportTable(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  /// Renders the aligned table with title and column rule.
  std::string ToString() const;
  /// Prints ToString() to stdout.
  void Print() const;
  /// Renders RFC-4180-ish CSV (quoted only when needed) as a string —
  /// exactly the bytes WriteCsv would put on disk.
  std::string ToCsv() const;
  /// Writes ToCsv() to `path`.
  crayfish::Status WriteCsv(const std::string& path) const;

  size_t rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_REPORT_H_
