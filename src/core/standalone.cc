#include "core/standalone.h"

#include <deque>
#include <memory>

#include "common/logging.h"
#include "core/generator.h"
#include "serving/calibration.h"
#include "serving/embedded_library.h"
#include "serving/model_profile.h"
#include "sim/simulation.h"
#include "sps/flink_engine.h"

namespace crayfish::core {

namespace {

/// One self-contained Flink slot: a serial loop over its share of the
/// generated events, charging source + apply + sink times.
struct StandaloneSlot {
  std::deque<broker::Record> queue;
  bool busy = false;
};

}  // namespace

crayfish::StatusOr<ExperimentResult> RunStandaloneFlink(
    const ExperimentConfig& config) {
  if (config.engine != "flink" ||
      !serving::IsEmbeddedLibrary(config.serving)) {
    return crayfish::Status::InvalidArgument(
        "standalone mode supports flink with embedded serving only");
  }
  sim::Simulation sim(config.seed);
  const serving::ModelProfile profile =
      serving::ModelProfile::ByName(config.model);
  CRAYFISH_ASSIGN_OR_RETURN(
      std::unique_ptr<serving::EmbeddedLibrary> library,
      serving::CreateEmbeddedLibrary(config.serving));
  crayfish::Rng jitter_rng = sim.ForkRng();

  sps::FlinkCosts costs;  // identical operator costs as the Kafka pipeline
  DataGenerator generator(config.SampleShape(), config.batch_size,
                          sim.ForkRng());
  const uint64_t wire = generator.BatchWireBytes();
  const double generate_s =
      12e-6 * static_cast<double>(config.batch_size);

  const int n = config.parallelism;
  std::vector<StandaloneSlot> slots(static_cast<size_t>(n));
  auto measurements = std::make_shared<std::vector<Measurement>>();
  auto scored = std::make_shared<uint64_t>(0);

  // Per-slot serial processing.
  auto process_ptr = std::make_shared<std::function<void(int)>>();
  *process_ptr = [&sim, &slots, &costs, &library, &profile, &config, wire,
                  measurements, scored, process_ptr,
                  &jitter_rng](int slot_idx) {
    StandaloneSlot& slot = slots[static_cast<size_t>(slot_idx)];
    if (slot.queue.empty()) {
      slot.busy = false;
      return;
    }
    slot.busy = true;
    broker::Record r = std::move(slot.queue.front());
    slot.queue.pop_front();
    const double source =
        costs.source_fixed_s +
        costs.source_per_byte_s * static_cast<double>(wire);
    // Flush-wait latency of large records (pure latency, no occupancy —
    // matching the Kafka-based Flink adapter).
    const double buffer_penalty =
        static_cast<double>(wire / costs.network_buffer_bytes) *
        costs.buffer_cycle_s;
    const double apply = library->ApplyTimeSeconds(
        profile, config.batch_size, config.parallelism, config.use_gpu,
        slot.queue.size(), &jitter_rng);
    const uint64_t out_bytes =
        profile.OutputBatchWireBytes(config.batch_size);
    const double sink =
        costs.sink_fixed_s +
        costs.sink_per_byte_s * static_cast<double>(out_bytes);
    // Chained mode occupies the slot with the whole operator chain; with
    // operator-level parallelism (Fig. 12 style, source/sink scaled to
    // the partitions) only the scoring stage occupies this task while the
    // source/sink stages add pipeline latency without limiting its rate.
    const bool unchained = config.source_parallelism > 0;
    const double occupancy =
        costs.scoring_wrapper_s + apply + (unchained ? 0.0 : source + sink);
    const double extra_latency =
        buffer_penalty + (unchained ? source + sink : 0.0);
    sim.Schedule(occupancy, [&sim, r, measurements, scored, process_ptr,
                             extra_latency, slot_idx]() {
      Measurement m;
      m.batch_id = r.batch_id;
      m.create_time = r.create_time;
      // End timestamp at the sink itself: no broker append.
      m.append_time = sim.Now() + extra_latency;
      m.batch_size = r.batch_size;
      measurements->push_back(m);
      ++*scored;
      (*process_ptr)(slot_idx);
    });
  };

  // In-process generator loop: round-robins events over the slots.
  auto events_sent = std::make_shared<uint64_t>(0);
  auto gen_state = std::make_shared<double>(0.0);  // next emit time
  auto emit_ptr = std::make_shared<std::function<void()>>();
  *emit_ptr = [&sim, &generator, &slots, &config, gen_state, events_sent,
               generate_s, wire, emit_ptr, process_ptr]() {
    if (config.duration_s > 0.0 && sim.Now() >= config.duration_s) return;
    if (config.max_events > 0 && *events_sent >= config.max_events) return;
    sim.Schedule(generate_s, [&sim, &generator, &slots, &config, gen_state,
                              events_sent, wire, emit_ptr, process_ptr]() {
      // lint: cross-host-ok single-producer driver: the generator is owned by this callback chain and never shared with another partition
      CrayfishDataBatch batch = generator.NextMetadataOnly(sim.Now());
      broker::Record r;
      r.batch_id = batch.id;
      r.create_time = batch.created_at;
      r.batch_size = static_cast<uint32_t>(config.batch_size);
      r.wire_size = wire;
      const int target =
          static_cast<int>(batch.id % static_cast<uint64_t>(
                                          config.parallelism));
      StandaloneSlot& slot = slots[static_cast<size_t>(target)];
      slot.queue.push_back(std::move(r));
      if (!slot.busy) (*process_ptr)(target);
      ++*events_sent;
      const double rate = config.Schedule().RateAt(sim.Now());
      *gen_state += 1.0 / rate;
      sim.ScheduleAt(*gen_state, [emit_ptr]() { (*emit_ptr)(); });
    });
  };

  // Model loads into the operators before the job starts.
  const double load = library->LoadTimeSeconds(profile);
  sim.Schedule(load, [emit_ptr, gen_state, &sim]() {
    *gen_state = sim.Now();
    (*emit_ptr)();
  });
  sim.Run(config.duration_s + config.drain_s);

  ExperimentResult result;
  result.measurements = *measurements;
  result.summary = MetricsAnalyzer::Summarize(result.measurements);
  result.events_sent = *events_sent;
  result.events_scored = *scored;
  result.sim_end_s = sim.Now();
  result.sim_events_executed = sim.events_executed();
  return result;
}

}  // namespace crayfish::core
