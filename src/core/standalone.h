#ifndef CRAYFISH_CORE_STANDALONE_H_
#define CRAYFISH_CORE_STANDALONE_H_

#include "common/status.h"
#include "core/experiment.h"

namespace crayfish::core {

/// Runs the Fig. 13 comparison pipeline: a *self-contained* Flink job that
/// generates input in-process and records output timestamps at the sink —
/// no Kafka hops on either side (the paper's "no-kafka" configuration,
/// §6.2). Only engine="flink" with embedded serving is supported, exactly
/// matching the paper's experiment (standalone Flink + ONNX + FFNN).
///
/// Costs mirror the Kafka-based pipeline minus the broker legs: the
/// generator charge, Flink source/score/sink charges and the scoring
/// apply-time are identical; what disappears is producer batching/
/// serialization, two network transfers, broker processing, and the
/// consumer fetch path.
crayfish::StatusOr<ExperimentResult> RunStandaloneFlink(
    const ExperimentConfig& config);

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_STANDALONE_H_
