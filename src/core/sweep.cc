#include "core/sweep.h"

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace crayfish::core {

namespace {
/// Written only by SetDefaultSweepJobs (tool startup, before any sweep);
/// sweeps read it concurrently, hence the relaxed atomic.
// lint: global-state-ok host-level sweep default: set once at tool startup before any simulation, read via relaxed atomic; never touched from simulated code
std::atomic<int> g_default_jobs{0};
}  // namespace

void SetDefaultSweepJobs(int jobs) {
  g_default_jobs.store(jobs, std::memory_order_relaxed);
}

int DefaultSweepJobs() {
  return g_default_jobs.load(std::memory_order_relaxed);
}

int ResolveSweepJobs(int jobs) {
  if (jobs <= 0) jobs = DefaultSweepJobs();
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs <= 0) jobs = 1;
  return jobs;
}

SweepRunner::SweepRunner(int jobs) : jobs_(ResolveSweepJobs(jobs)) {}

crayfish::StatusOr<std::vector<ExperimentResult>> SweepRunner::RunAll(
    const std::vector<ExperimentConfig>& configs) const {
  const size_t n = configs.size();
  std::vector<std::optional<ExperimentResult>> slots(n);
  std::vector<crayfish::Status> statuses(n, crayfish::Status::Ok());

  const auto run_one = [&](size_t i) {
    auto result = RunExperiment(configs[i]);
    if (result.ok()) {
      slots[i] = std::move(*result);
    } else {
      statuses[i] = result.status();
    }
  };

  const int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(jobs_), n));
  if (workers <= 1) {
    // Serial path: no threads, identical to the pre-sweep behavior.
    for (size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Each worker claims the next unstarted config; slots are disjoint, so
    // the only shared write is the claim index.
    std::atomic<size_t> next{0};
    {
      std::vector<std::jthread> pool;
      pool.reserve(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&]() {
          for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            run_one(i);
          }
        });
      }
    }  // jthreads join here.
  }

  // Submission-order error propagation: the earliest failing config wins,
  // independent of which thread hit it first.
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  std::vector<ExperimentResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    CRAYFISH_CHECK(slots[i].has_value());
    results.push_back(std::move(*slots[i]));
  }
  return results;
}

crayfish::StatusOr<std::vector<ExperimentResult>> RunExperiments(
    const std::vector<ExperimentConfig>& configs, int jobs) {
  return SweepRunner(jobs).RunAll(configs);
}

std::vector<ExperimentConfig> MakeRepeatedConfigs(ExperimentConfig config,
                                                  int repeats) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(static_cast<size_t>(repeats < 0 ? 0 : repeats));
  for (int i = 0; i < repeats; ++i) {
    // Cumulative chain, matching the original serial RunRepeated loop
    // bit-for-bit: iteration i derives from iteration i-1's seed.
    config.seed = config.seed * 1000003 + static_cast<uint64_t>(i) + 1;
    configs.push_back(config);
  }
  return configs;
}

}  // namespace crayfish::core
