#ifndef CRAYFISH_CORE_SWEEP_H_
#define CRAYFISH_CORE_SWEEP_H_

#include <vector>

#include "common/status.h"
#include "core/experiment.h"

namespace crayfish::core {

/// Host parallelism for experiment sweeps.
///
/// Each ExperimentConfig run is hermetic — RunExperiment builds its own
/// Simulation, network, cluster, and RNG from the config's seed, and no
/// component touches shared mutable state — so independent configs can run
/// on separate host threads without affecting each other's event order.
/// SweepRunner exploits exactly that: a fixed pool of `jobs` threads claims
/// configs off a shared index, and results are assembled in submission
/// order, so every CSV/report built from a parallel sweep is byte-identical
/// to the serial run. The simulations themselves stay single-threaded;
/// this file (and bench/) is the only place host threading is allowed
/// (lint R6).
class SweepRunner {
 public:
  /// `jobs` <= 0 picks the process default (SetDefaultSweepJobs, else
  /// hardware concurrency). `jobs` == 1 runs inline on the calling thread —
  /// bit-for-bit today's serial behavior, no threads created.
  explicit SweepRunner(int jobs = 0);

  /// Threads actually used for a sweep of `n` configs (never more than n).
  int jobs() const { return jobs_; }

  /// Runs every config and returns the results in submission order. If any
  /// run fails, the error of the earliest-submitted failing config is
  /// returned; the remaining runs still execute (they may already be in
  /// flight on other threads).
  crayfish::StatusOr<std::vector<ExperimentResult>> RunAll(
      const std::vector<ExperimentConfig>& configs) const;

 private:
  int jobs_;
};

/// Process-wide default for sweep parallelism, used when a SweepRunner is
/// constructed with jobs <= 0. 0 = hardware concurrency (the initial
/// default); tools map their --jobs flag onto this.
void SetDefaultSweepJobs(int jobs);
int DefaultSweepJobs();

/// Resolves a jobs request: explicit positive value wins, else the process
/// default, else std::thread::hardware_concurrency(), floored at 1.
int ResolveSweepJobs(int jobs);

/// One-shot convenience over SweepRunner(jobs).RunAll(configs).
crayfish::StatusOr<std::vector<ExperimentResult>> RunExperiments(
    const std::vector<ExperimentConfig>& configs, int jobs = 0);

/// The exact config sequence RunRepeated executes: the seed derivation is
/// cumulative (each iteration rewrites config.seed from the previous
/// iteration's value), so parallel callers must materialize the chain
/// up front rather than re-deriving seeds per index.
std::vector<ExperimentConfig> MakeRepeatedConfigs(ExperimentConfig config,
                                                  int repeats);

}  // namespace crayfish::core

#endif  // CRAYFISH_CORE_SWEEP_H_
