#include "fault/injector.h"

#include <utility>

#include "common/logging.h"
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::fault {

FaultInjector::FaultInjector(sim::Simulation* sim, sim::Network* network,
                             broker::KafkaCluster* cluster,
                             RecoveryTracker* tracker, const FaultPlan* plan)
    : sim_(sim), network_(network), cluster_(cluster), tracker_(tracker),
      plan_(plan) {
  CRAYFISH_CHECK(sim_ != nullptr);
  CRAYFISH_CHECK(network_ != nullptr);
  CRAYFISH_CHECK(cluster_ != nullptr);
  CRAYFISH_CHECK(tracker_ != nullptr);
  CRAYFISH_CHECK(plan_ != nullptr);
}

Status FaultInjector::Arm() {
  if (armed_) return Status::FailedPrecondition("injector already armed");
  CRAYFISH_RETURN_IF_ERROR(plan_->Validate());
  for (const FaultSpec& spec : plan_->faults) {
    switch (spec.kind) {
      case FaultKind::kServingSlowdown:
        if (!hooks_.serving_slowdown) {
          return Status::FailedPrecondition(
              spec.name + ": no serving_slowdown hook (external serving "
                          "not in this topology?)");
        }
        break;
      case FaultKind::kServingDown:
        if (!hooks_.serving_down) {
          return Status::FailedPrecondition(spec.name +
                                            ": no serving_down hook");
        }
        break;
      case FaultKind::kWorkerResize:
        if (!hooks_.serving_worker_delta) {
          return Status::FailedPrecondition(
              spec.name + ": no serving_worker_delta hook");
        }
        break;
      case FaultKind::kTaskRestart:
        if (!hooks_.task_failure) {
          return Status::FailedPrecondition(spec.name +
                                            ": no task_failure hook");
        }
        break;
      case FaultKind::kBrokerCrash:
      case FaultKind::kLinkDegrade:
        break;
    }
  }
  armed_ = true;
  for (const FaultSpec& spec : plan_->faults) {
    // Exclusive events: executed at a global synchronization point (fault
    // actions touch cross-partition substrates), attributed to the
    // partition owning the fault's target host.
    const std::string owner = OwnerHost(spec);
    sim_->ScheduleExclusiveAt(owner, spec.at_s,
                              [this, &spec]() { Inject(spec); });
    // kTaskRestart windows end when the task is back, not at until_s.
    if (spec.kind == FaultKind::kTaskRestart) {
      sim_->ScheduleExclusiveAt(owner, spec.at_s + spec.restart_delay_s,
                                [this, &spec]() { Repair(spec); });
    } else if (spec.until_s >= 0.0) {
      sim_->ScheduleExclusiveAt(owner, spec.until_s,
                                [this, &spec]() { Repair(spec); });
    }
  }
  return Status::Ok();
}

std::string FaultInjector::OwnerHost(const FaultSpec& spec) const {
  switch (spec.kind) {
    case FaultKind::kBrokerCrash: {
      const auto& hosts = cluster_->broker_hosts();
      if (hosts.empty()) return "";
      return hosts[static_cast<size_t>(spec.broker) % hosts.size()];
    }
    case FaultKind::kLinkDegrade:
      // A directed link belongs to its source host; wildcard rules ("")
      // have no single owner and fall through to partition 0.
      return spec.from;
    case FaultKind::kServingSlowdown:
    case FaultKind::kServingDown:
    case FaultKind::kWorkerResize:
    case FaultKind::kTaskRestart:
      // Hook-based faults act on components, not hosts.
      return "";
  }
  return "";
}

void FaultInjector::Inject(const FaultSpec& spec) {
  CRAYFISH_LOG(Info) << "fault inject " << FaultKindName(spec.kind) << " \""
                     << spec.name << "\" at t=" << sim_->Now();
  // lint: cross-host-ok recovery bookkeeping: per-fault windows are keyed by fault name, so concurrent Begin/End from different faults never touch the same entry
  tracker_->BeginFault(spec, sim_->Now());
  if (obs::TimelineSampler* tl = sim_->timeline()) {
    tl->BeginFault(spec.name, sim_->Now());
    tl->Annotate(sim_->Now(), "fault-inject:" + spec.name);
  }
  switch (spec.kind) {
    case FaultKind::kBrokerCrash:
      // lint: cross-host-ok fault-plan control plane: the injector deliberately reaches into broker availability; crash events are serialized through the sim queue
      cluster_->CrashBroker(
          spec.broker %
          static_cast<int>(cluster_->broker_hosts().size()));
      break;
    case FaultKind::kLinkDegrade: {
      sim::LinkDegradation deg;
      deg.latency_mult = spec.latency_mult;
      deg.bandwidth_mult = spec.bandwidth_mult;
      deg.drop = spec.drop;
      network_->SetDegradation(spec.from, spec.to, deg);
      break;
    }
    case FaultKind::kServingSlowdown:
      hooks_.serving_slowdown(spec.factor);
      break;
    case FaultKind::kServingDown:
      hooks_.serving_down(true);
      break;
    case FaultKind::kWorkerResize:
      hooks_.serving_worker_delta(spec.workers_delta);
      break;
    case FaultKind::kTaskRestart:
      hooks_.task_failure(spec.task_index, spec.restart_delay_s);
      break;
  }
}

void FaultInjector::Repair(const FaultSpec& spec) {
  CRAYFISH_LOG(Info) << "fault repair " << FaultKindName(spec.kind) << " \""
                     << spec.name << "\" at t=" << sim_->Now();
  switch (spec.kind) {
    case FaultKind::kBrokerCrash:
      // lint: cross-host-ok fault-plan control plane: restart times come from the deterministic plan, and the restart event is serialized through the sim queue
      cluster_->RestartBroker(
          spec.broker %
          static_cast<int>(cluster_->broker_hosts().size()));
      break;
    case FaultKind::kLinkDegrade:
      network_->SetDegradation(spec.from, spec.to, sim::LinkDegradation{});
      break;
    case FaultKind::kServingSlowdown:
      hooks_.serving_slowdown(1.0);
      break;
    case FaultKind::kServingDown:
      hooks_.serving_down(false);
      break;
    case FaultKind::kWorkerResize:
      hooks_.serving_worker_delta(-spec.workers_delta);
      break;
    case FaultKind::kTaskRestart:
      // The restart itself is the repair; nothing to undo.
      break;
  }
  tracker_->EndFault(spec.name, sim_->Now());
  if (obs::TimelineSampler* tl = sim_->timeline()) {
    tl->EndFault(spec.name, sim_->Now());
    tl->Annotate(sim_->Now(), "fault-repair:" + spec.name);
  }
}

}  // namespace crayfish::fault
