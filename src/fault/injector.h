#ifndef CRAYFISH_FAULT_INJECTOR_H_
#define CRAYFISH_FAULT_INJECTOR_H_

#include <functional>

#include "broker/cluster.h"
#include "fault/plan.h"
#include "fault/recovery.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish::fault {

/// Callbacks into the layers the injector cannot include directly
/// (serving and sps sit above fault in the module DAG); the experiment
/// runner wires them to the concrete server/engine instances.
struct FaultHooks {
  /// Multiplies the external server's compute time (1.0 = nominal).
  std::function<void(double)> serving_slowdown;
  /// Adds `delta` workers to the external server (clamped to >= 1).
  std::function<void(int)> serving_worker_delta;
  /// Drops every request while down.
  std::function<void(bool)> serving_down;
  /// Crash-restarts one operator task; returns the number of tasks hit.
  std::function<int(int task_index, double restart_delay_s)> task_failure;
};

/// Turns a validated FaultPlan into DES events against the live topology.
///
/// Arm() schedules one inject event per fault (and one repair event when
/// the spec has an end), all on the simulation clock before the run
/// starts — injection consumes no randomness, so a faulted run stays
/// byte-for-byte reproducible for a fixed seed and plan.
class FaultInjector {
 public:
  FaultInjector(sim::Simulation* sim, sim::Network* network,
                broker::KafkaCluster* cluster, RecoveryTracker* tracker,
                const FaultPlan* plan);

  void set_hooks(FaultHooks hooks) { hooks_ = std::move(hooks); }

  /// Validates the plan against the wired hooks and schedules every
  /// inject/repair event. Call once, before Simulation::Run.
  Status Arm();

 private:
  void Inject(const FaultSpec& spec);
  void Repair(const FaultSpec& spec);
  /// The simulated host a fault targets (empty when the fault has no
  /// single host, e.g. serving/engine hooks or wildcard link rules).
  /// Under the parallel DES, inject/repair events are scheduled as
  /// *exclusive* events attributed to this host's partition: they still
  /// run at a global synchronization point — fault actions mutate
  /// cross-partition substrates like the broker cluster and the network
  /// degradation tables — but the attribution keeps per-partition fault
  /// accounting meaningful.
  std::string OwnerHost(const FaultSpec& spec) const;

  sim::Simulation* sim_;
  sim::Network* network_;
  broker::KafkaCluster* cluster_;
  RecoveryTracker* tracker_;
  const FaultPlan* plan_;
  FaultHooks hooks_;
  bool armed_ = false;
};

}  // namespace crayfish::fault

#endif  // CRAYFISH_FAULT_INJECTOR_H_
