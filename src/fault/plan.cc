#include "fault/plan.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace crayfish::fault {
namespace {

Status ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double d = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: " + value);
  }
  *out = d;
  return Status::Ok();
}

Status ParseInt(const std::string& value, int* out) {
  double d = 0.0;
  CRAYFISH_RETURN_IF_ERROR(ParseDouble(value, &d));
  *out = static_cast<int>(d);
  return Status::Ok();
}

Status ParseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "1") {
    *out = true;
    return Status::Ok();
  }
  if (value == "false" || value == "0") {
    *out = false;
    return Status::Ok();
  }
  return Status::InvalidArgument("not a bool: " + value);
}

/// Sets one RetryPolicy field by name.
Status ApplyRetryField(crayfish::RetryPolicy* retry, const std::string& field,
                       const std::string& value) {
  if (field == "max_retries") return ParseInt(value, &retry->max_retries);
  if (field == "timeout_s") return ParseDouble(value, &retry->timeout_s);
  if (field == "initial_backoff_s") {
    return ParseDouble(value, &retry->initial_backoff_s);
  }
  if (field == "backoff_multiplier") {
    return ParseDouble(value, &retry->backoff_multiplier);
  }
  if (field == "max_backoff_s") {
    return ParseDouble(value, &retry->max_backoff_s);
  }
  if (field == "jitter") return ParseDouble(value, &retry->jitter);
  return Status::InvalidArgument("unknown retry field: " + field);
}

/// Sets one FaultSpec field by name.
Status ApplySpecField(FaultSpec* spec, const std::string& field,
                      const std::string& value) {
  if (field == "at_s") return ParseDouble(value, &spec->at_s);
  if (field == "until_s") return ParseDouble(value, &spec->until_s);
  if (field == "broker") return ParseInt(value, &spec->broker);
  if (field == "from") {
    spec->from = value;
    return Status::Ok();
  }
  if (field == "to") {
    spec->to = value;
    return Status::Ok();
  }
  if (field == "latency_mult") return ParseDouble(value, &spec->latency_mult);
  if (field == "bandwidth_mult") {
    return ParseDouble(value, &spec->bandwidth_mult);
  }
  if (field == "drop") return ParseBool(value, &spec->drop);
  if (field == "factor") return ParseDouble(value, &spec->factor);
  if (field == "workers_delta") return ParseInt(value, &spec->workers_delta);
  if (field == "task_index") return ParseInt(value, &spec->task_index);
  if (field == "restart_delay_s") {
    return ParseDouble(value, &spec->restart_delay_s);
  }
  return Status::InvalidArgument("unknown fault field: " + field);
}

StatusOr<FaultSpec> SpecFromJson(const JsonValue& v, size_t index) {
  if (!v.is_object()) {
    return Status::InvalidArgument("fault spec must be a JSON object");
  }
  FaultSpec spec;
  const std::string kind_name = v.GetStringOr("kind", "");
  CRAYFISH_ASSIGN_OR_RETURN(spec.kind, ParseFaultKind(kind_name));
  spec.name = v.GetStringOr("name", "");
  if (spec.name.empty()) {
    spec.name = kind_name + "-" + std::to_string(index);
  }
  spec.at_s = v.GetNumberOr("at_s", spec.at_s);
  spec.until_s = v.GetNumberOr("until_s", spec.until_s);
  spec.broker = static_cast<int>(v.GetIntOr("broker", spec.broker));
  spec.from = v.GetStringOr("from", spec.from);
  spec.to = v.GetStringOr("to", spec.to);
  spec.latency_mult = v.GetNumberOr("latency_mult", spec.latency_mult);
  spec.bandwidth_mult = v.GetNumberOr("bandwidth_mult", spec.bandwidth_mult);
  spec.drop = v.GetBoolOr("drop", spec.drop);
  spec.factor = v.GetNumberOr("factor", spec.factor);
  spec.workers_delta =
      static_cast<int>(v.GetIntOr("workers_delta", spec.workers_delta));
  spec.task_index =
      static_cast<int>(v.GetIntOr("task_index", spec.task_index));
  spec.restart_delay_s =
      v.GetNumberOr("restart_delay_s", spec.restart_delay_s);
  CRAYFISH_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBrokerCrash:
      return "broker_crash";
    case FaultKind::kLinkDegrade:
      return "link_degrade";
    case FaultKind::kServingSlowdown:
      return "serving_slowdown";
    case FaultKind::kServingDown:
      return "serving_down";
    case FaultKind::kWorkerResize:
      return "worker_resize";
    case FaultKind::kTaskRestart:
      return "task_restart";
  }
  return "unknown";
}

StatusOr<FaultKind> ParseFaultKind(const std::string& name) {
  if (name == "broker_crash") return FaultKind::kBrokerCrash;
  if (name == "link_degrade") return FaultKind::kLinkDegrade;
  if (name == "serving_slowdown") return FaultKind::kServingSlowdown;
  if (name == "serving_down") return FaultKind::kServingDown;
  if (name == "worker_resize") return FaultKind::kWorkerResize;
  if (name == "task_restart") return FaultKind::kTaskRestart;
  return Status::InvalidArgument("unknown fault kind: \"" + name + "\"");
}

Status FaultSpec::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("fault spec needs a name");
  }
  if (at_s < 0.0) {
    return Status::InvalidArgument(name + ": at_s must be >= 0");
  }
  if (until_s >= 0.0 && until_s <= at_s) {
    return Status::InvalidArgument(name + ": until_s must be > at_s");
  }
  switch (kind) {
    case FaultKind::kBrokerCrash:
      if (broker < 0) {
        return Status::InvalidArgument(name + ": broker must be >= 0");
      }
      break;
    case FaultKind::kLinkDegrade:
      if (bandwidth_mult <= 0.0) {
        return Status::InvalidArgument(
            name + ": bandwidth_mult must stay strictly positive");
      }
      if (latency_mult < 0.0) {
        return Status::InvalidArgument(name +
                                       ": latency_mult must be >= 0");
      }
      break;
    case FaultKind::kServingSlowdown:
      if (factor <= 0.0) {
        return Status::InvalidArgument(name + ": factor must be > 0");
      }
      break;
    case FaultKind::kServingDown:
      break;
    case FaultKind::kWorkerResize:
      if (workers_delta == 0) {
        return Status::InvalidArgument(name +
                                       ": workers_delta must be nonzero");
      }
      break;
    case FaultKind::kTaskRestart:
      if (restart_delay_s < 0.0) {
        return Status::InvalidArgument(
            name + ": restart_delay_s must be >= 0");
      }
      if (task_index < 0) {
        return Status::InvalidArgument(name + ": task_index must be >= 0");
      }
      break;
  }
  return Status::Ok();
}

bool FaultSpec::outage() const {
  switch (kind) {
    case FaultKind::kBrokerCrash:
    case FaultKind::kServingDown:
    case FaultKind::kTaskRestart:
      return true;
    case FaultKind::kLinkDegrade:
      return drop;
    case FaultKind::kServingSlowdown:
    case FaultKind::kWorkerResize:
      return false;
  }
  return false;
}

Status FaultPlan::Validate() const {
  CRAYFISH_RETURN_IF_ERROR(retry.Validate());
  if (auto_commit_interval_s < 0.0) {
    return Status::InvalidArgument("auto_commit_interval_s must be >= 0");
  }
  for (size_t i = 0; i < faults.size(); ++i) {
    CRAYFISH_RETURN_IF_ERROR(faults[i].Validate());
    for (size_t j = 0; j < i; ++j) {
      if (faults[j].name == faults[i].name) {
        return Status::InvalidArgument("duplicate fault name: " +
                                       faults[i].name);
      }
    }
  }
  return Status::Ok();
}

StatusOr<FaultPlan> FaultPlan::FromJsonText(const std::string& text) {
  CRAYFISH_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("fault plan must be a JSON object");
  }
  FaultPlan plan;
  if (const JsonValue* retry = root.Find("retry")) {
    if (!retry->is_object()) {
      return Status::InvalidArgument("\"retry\" must be a JSON object");
    }
    plan.retry.max_retries = static_cast<int>(
        retry->GetIntOr("max_retries", plan.retry.max_retries));
    plan.retry.timeout_s =
        retry->GetNumberOr("timeout_s", plan.retry.timeout_s);
    plan.retry.initial_backoff_s =
        retry->GetNumberOr("initial_backoff_s", plan.retry.initial_backoff_s);
    plan.retry.backoff_multiplier = retry->GetNumberOr(
        "backoff_multiplier", plan.retry.backoff_multiplier);
    plan.retry.max_backoff_s =
        retry->GetNumberOr("max_backoff_s", plan.retry.max_backoff_s);
    plan.retry.jitter = retry->GetNumberOr("jitter", plan.retry.jitter);
  }
  plan.auto_commit_interval_s =
      root.GetNumberOr("auto_commit_interval_s", plan.auto_commit_interval_s);
  if (const JsonValue* faults = root.Find("faults")) {
    if (!faults->is_array()) {
      return Status::InvalidArgument("\"faults\" must be a JSON array");
    }
    for (size_t i = 0; i < faults->as_array().size(); ++i) {
      CRAYFISH_ASSIGN_OR_RETURN(FaultSpec spec,
                                SpecFromJson(faults->as_array()[i], i));
      plan.faults.push_back(std::move(spec));
    }
  }
  CRAYFISH_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

StatusOr<FaultPlan> FaultPlan::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read fault plan: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return FromJsonText(text.str());
}

Status FaultPlan::ApplyOverride(const std::string& key,
                                const std::string& value) {
  if (key == "auto_commit_interval_s") {
    return ParseDouble(value, &auto_commit_interval_s);
  }
  const size_t dot = key.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= key.size()) {
    return Status::InvalidArgument("bad fault override key: " + key);
  }
  const std::string target = key.substr(0, dot);
  const std::string field = key.substr(dot + 1);
  if (target == "retry") return ApplyRetryField(&retry, field, value);
  for (FaultSpec& spec : faults) {
    if (spec.name == target) return ApplySpecField(&spec, field, value);
  }
  // Numeric index addressing ("0.at_s").
  char* end = nullptr;
  const long idx = std::strtol(target.c_str(), &end, 10);
  if (end != target.c_str() && *end == '\0' && idx >= 0 &&
      static_cast<size_t>(idx) < faults.size()) {
    return ApplySpecField(&faults[static_cast<size_t>(idx)], field, value);
  }
  return Status::NotFound("no fault named \"" + target + "\" in plan");
}

}  // namespace crayfish::fault
