#ifndef CRAYFISH_FAULT_PLAN_H_
#define CRAYFISH_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"

namespace crayfish::fault {

/// What a single fault does to the simulated stack.
enum class FaultKind {
  /// Broker host crash at `at_s`, restart at `until_s` (its partitions are
  /// unavailable in between; producers get retriable errors; every dynamic
  /// consumer group rebalances on the crash).
  kBrokerCrash,
  /// Network degradation on a (from, to) host pair ("" = wildcard):
  /// latency/bandwidth multipliers, or a full partition with `drop`.
  kLinkDegrade,
  /// Straggler serving server: compute time multiplied by `factor`.
  kServingSlowdown,
  /// Serving process down: requests are dropped until `until_s`.
  kServingDown,
  /// Serving worker crash (negative `workers_delta`) or scale-out; the
  /// delta is reverted at `until_s`.
  kWorkerResize,
  /// SPS operator-task failure: the task's consumer session dies and
  /// restarts from committed offsets after `restart_delay_s`.
  kTaskRestart,
};

const char* FaultKindName(FaultKind kind);
StatusOr<FaultKind> ParseFaultKind(const std::string& name);

/// One scheduled fault. All times are simulated seconds from run start.
struct FaultSpec {
  FaultKind kind = FaultKind::kBrokerCrash;
  /// Unique label (auto-derived "<kind>-<index>" when absent from JSON);
  /// names fault windows in metrics and addresses the spec in overrides.
  std::string name;
  double at_s = 0.0;
  /// Repair instant; < 0 = never repaired (kTaskRestart ignores this and
  /// ends its window at `at_s + restart_delay_s`).
  double until_s = -1.0;

  // kBrokerCrash
  int broker = 0;
  // kLinkDegrade
  std::string from;
  std::string to;
  double latency_mult = 1.0;
  double bandwidth_mult = 1.0;
  bool drop = false;
  // kServingSlowdown
  double factor = 2.0;
  // kWorkerResize
  int workers_delta = -1;
  // kTaskRestart
  int task_index = 0;
  double restart_delay_s = 1.0;

  Status Validate() const;
  /// True when the fault makes part of the pipeline unavailable (counts
  /// toward downtime; degradations and slowdowns do not).
  bool outage() const;
};

/// A deterministic, JSON-loadable fault schedule plus the client-side
/// robustness policy it pairs with. Scheduling happens on the DES clock and
/// all randomness (retry jitter) flows from the experiment seed, so a
/// faulted run is byte-for-byte reproducible.
struct FaultPlan {
  std::vector<FaultSpec> faults;
  /// Applied as the cluster-wide client default for producers, consumers,
  /// and the external-serving client; enabled whenever the plan is active.
  crayfish::RetryPolicy retry{.max_retries = 10,
                              .timeout_s = 1.0,
                              .initial_backoff_s = 0.05,
                              .backoff_multiplier = 2.0,
                              .max_backoff_s = 2.0,
                              .jitter = 0.2};
  /// Consumers commit delivered offsets this often, bounding the
  /// re-processing window of task restarts (Kafka enable.auto.commit).
  double auto_commit_interval_s = 1.0;

  bool active() const { return !faults.empty(); }
  Status Validate() const;

  /// Parses the schema documented in README.md:
  ///   {"retry": {...}, "auto_commit_interval_s": 1.0,
  ///    "faults": [{"kind": "broker_crash", "at_s": 30, ...}, ...]}
  static StatusOr<FaultPlan> FromJsonText(const std::string& text);
  static StatusOr<FaultPlan> FromFile(const std::string& path);

  /// Sets one plan parameter from a dotted config key (the sweep axis
  /// mechanism): "retry.<field>", "auto_commit_interval_s", or
  /// "<fault-name-or-index>.<field>" (e.g. "crash0.at_s", "0.factor").
  Status ApplyOverride(const std::string& key, const std::string& value);
};

}  // namespace crayfish::fault

#endif  // CRAYFISH_FAULT_PLAN_H_
