#include "fault/recovery.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::fault {

std::string FaultMetrics::ToString() const {
  std::ostringstream out;
  out << "faults=" << faults_injected << " downtime_s=" << downtime_s
      << " ttr_s=" << mean_time_to_recover_s << " retries=" << retries
      << " deliveries=" << deliveries << " unique=" << unique_deliveries
      << " duplicates=" << duplicates << " losses=" << losses
      << " goodput_eps=" << goodput_eps
      << " throughput_eps=" << throughput_eps;
  return out.str();
}

void RecoveryTracker::BeginFault(const FaultSpec& spec, double now_s) {
  FaultWindow window;
  window.name = spec.name;
  window.kind = spec.kind;
  window.start_s = now_s;
  window.outage = spec.outage();
  windows_.push_back(std::move(window));
}

void RecoveryTracker::EndFault(const std::string& name, double now_s) {
  for (FaultWindow& window : windows_) {
    if (window.name == name && !window.closed()) {
      window.end_s = now_s;
      return;
    }
  }
}

void RecoveryTracker::RecordDelivery(uint64_t batch_id,
                                     double append_time_s) {
  ++deliveries_;
  if (!seen_.insert(batch_id).second) {
    ++duplicates_;
    return;
  }
  // First sight of this batch: it may recover any repaired outage window
  // that has not yet seen a post-repair delivery.
  for (FaultWindow& window : windows_) {
    if (window.outage && window.closed() && window.recovered_at_s < 0.0 &&
        append_time_s >= window.end_s) {
      window.recovered_at_s = append_time_s;
    }
  }
}

FaultMetrics RecoveryTracker::Finalize(uint64_t events_sent,
                                       double run_end_s) const {
  FaultMetrics m;
  m.faults_injected = static_cast<int>(windows_.size());
  m.deliveries = deliveries_;
  m.unique_deliveries = seen_.size();
  m.duplicates = duplicates_;
  m.losses = events_sent > seen_.size() ? events_sent - seen_.size() : 0;
  if (run_end_s > 0.0) {
    m.goodput_eps = static_cast<double>(m.unique_deliveries) / run_end_s;
    m.throughput_eps = static_cast<double>(m.deliveries) / run_end_s;
  }

  // Downtime: merge overlapping outage intervals so concurrent faults do
  // not double-count wall-clock unavailability.
  std::vector<std::pair<double, double>> intervals;
  for (const FaultWindow& window : windows_) {
    if (!window.outage) continue;
    const double end = window.closed() ? window.end_s : run_end_s;
    if (end > window.start_s) intervals.emplace_back(window.start_s, end);
  }
  std::sort(intervals.begin(), intervals.end());
  double cursor = -1.0;
  for (const auto& [start, end] : intervals) {
    const double from = std::max(start, cursor);
    if (end > from) {
      m.downtime_s += end - from;
      cursor = end;
    }
  }

  // Time-to-recover: mean over closed outage windows that saw a fresh
  // delivery after their repair instant.
  double ttr_sum = 0.0;
  int ttr_count = 0;
  for (const FaultWindow& window : windows_) {
    if (window.outage && window.closed() && window.recovered_at_s >= 0.0) {
      ttr_sum += window.recovered_at_s - window.end_s;
      ++ttr_count;
    }
  }
  if (ttr_count > 0) m.mean_time_to_recover_s = ttr_sum / ttr_count;
  m.windows = windows_;
  return m;
}

void RecoveryTracker::PublishMetrics(const FaultMetrics& metrics,
                                     obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->Gauge("fault_faults_injected")
      ->Set(static_cast<double>(metrics.faults_injected));
  registry->Gauge("fault_downtime_s")->Set(metrics.downtime_s);
  registry->Gauge("fault_mean_time_to_recover_s")
      ->Set(metrics.mean_time_to_recover_s);
  registry->Gauge("fault_deliveries")
      ->Set(static_cast<double>(metrics.deliveries));
  registry->Gauge("fault_unique_deliveries")
      ->Set(static_cast<double>(metrics.unique_deliveries));
  registry->Gauge("fault_duplicates")
      ->Set(static_cast<double>(metrics.duplicates));
  registry->Gauge("fault_losses")->Set(static_cast<double>(metrics.losses));
  registry->Gauge("fault_goodput_eps")->Set(metrics.goodput_eps);
  registry->Gauge("fault_throughput_eps")->Set(metrics.throughput_eps);
}

}  // namespace crayfish::fault
