#ifndef CRAYFISH_FAULT_RECOVERY_H_
#define CRAYFISH_FAULT_RECOVERY_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "fault/plan.h"

namespace crayfish::obs {
class MetricsRegistry;
}  // namespace crayfish::obs

namespace crayfish::fault {

/// One injected fault's lifetime, as observed by the tracker.
struct FaultWindow {
  std::string name;
  FaultKind kind = FaultKind::kBrokerCrash;
  double start_s = 0.0;
  /// Repair instant; < 0 while the fault is still active at run end.
  double end_s = -1.0;
  /// Whether the window counts toward downtime (FaultSpec::outage()).
  bool outage = false;
  /// First end-to-end delivery at or after `end_s`; < 0 if none seen.
  double recovered_at_s = -1.0;

  bool closed() const { return end_s >= 0.0; }
};

/// Recovery scorecard of one faulted run. All rates are events/second of
/// simulated time.
struct FaultMetrics {
  int faults_injected = 0;
  /// Total simulated seconds inside outage windows (overlaps merged).
  double downtime_s = 0.0;
  /// Mean over closed outage windows of (first delivery after repair -
  /// repair instant); < 0 when no outage window recovered.
  double mean_time_to_recover_s = -1.0;
  /// Client-side retries, summed over producers, consumers, and the
  /// external-serving client.
  uint64_t retries = 0;
  /// End-to-end deliveries observed at the output consumer.
  uint64_t deliveries = 0;
  uint64_t unique_deliveries = 0;
  /// Redeliveries of an already-seen batch (at-least-once re-processing).
  uint64_t duplicates = 0;
  /// Sent batches that never reached the output topic.
  uint64_t losses = 0;
  /// Unique deliveries per second — the useful work rate. `throughput_eps`
  /// counts duplicates too; the gap is the re-processing tax.
  double goodput_eps = 0.0;
  double throughput_eps = 0.0;
  /// Per-fault windows with recovery instants, in injection order.
  std::vector<FaultWindow> windows;

  std::string ToString() const;
};

/// Watches fault windows and end-to-end deliveries to derive downtime,
/// time-to-recover, duplicate, and loss numbers for a faulted run.
///
/// The experiment runner feeds it every output-topic delivery (batch id +
/// append time); dedup against the id set splits goodput from throughput
/// and counts at-least-once redeliveries.
class RecoveryTracker {
 public:
  /// Opens a window for `spec` at simulated time `now_s`.
  void BeginFault(const FaultSpec& spec, double now_s);
  /// Closes the window named `name` at `now_s` (no-op if unknown/closed).
  void EndFault(const std::string& name, double now_s);

  /// Records one delivery of `batch_id` appended to the output topic at
  /// `append_time_s`. Call in append order (the measurement log order).
  void RecordDelivery(uint64_t batch_id, double append_time_s);

  /// Computes the scorecard. `events_sent` is the number of batches the
  /// producer pushed into the input topic; `run_end_s` caps windows still
  /// open at run end.
  FaultMetrics Finalize(uint64_t events_sent, double run_end_s) const;

  /// Mirrors the scorecard into `fault_*` gauges/counters so it shows up
  /// in metrics snapshots next to the per-stage instrumentation.
  static void PublishMetrics(const FaultMetrics& metrics,
                             obs::MetricsRegistry* registry);

  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  std::vector<FaultWindow> windows_;
  /// Ordered (lint R3): iterated when computing duplicates; an unordered
  /// set would not change results here but keep the container policy
  /// uniform across scheduling-adjacent code.
  std::set<uint64_t> seen_;
  uint64_t deliveries_ = 0;
  uint64_t duplicates_ = 0;
};

}  // namespace crayfish::fault

#endif  // CRAYFISH_FAULT_RECOVERY_H_
