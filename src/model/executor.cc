#include "model/executor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "tensor/ops.h"

namespace crayfish::model {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Prepends the batch dimension to a per-sample shape.
Shape Batched(int64_t batch, const Shape& per_sample) {
  std::vector<int64_t> dims;
  dims.reserve(static_cast<size_t>(per_sample.rank()) + 1);
  dims.push_back(batch);
  for (int64_t d : per_sample.dims()) dims.push_back(d);
  return Shape(std::move(dims));
}

}  // namespace

Executor::Executor(const ModelGraph* graph) : graph_(graph) {
  CRAYFISH_CHECK(graph != nullptr);
  CRAYFISH_CHECK(graph->shapes_inferred())
      << "graph must have shapes inferred before execution";
}

crayfish::StatusOr<Tensor> Executor::Run(const Tensor& input) const {
  const auto& layers = graph_->layers();
  if (input.shape().rank() < 1) {
    return crayfish::Status::InvalidArgument("input needs a batch dimension");
  }
  const int64_t batch = input.shape()[0];
  const Shape expected = Batched(batch, graph_->input_shape());
  if (input.shape() != expected) {
    return crayfish::Status::InvalidArgument(
        "input shape " + input.shape().ToString() + " does not match " +
        expected.ToString());
  }

  std::vector<Tensor> values(layers.size());
  values[0] = input;
  for (size_t i = 1; i < layers.size(); ++i) {
    const Layer& l = layers[i];
    const Tensor& in = values[static_cast<size_t>(l.inputs[0])];
    switch (l.kind) {
      case LayerKind::kInput:
        return crayfish::Status::Internal("unexpected Input layer");
      case LayerKind::kDense: {
        CRAYFISH_ASSIGN_OR_RETURN(Tensor y,
                                  tensor::MatMul(in, l.params.at("kernel")));
        CRAYFISH_ASSIGN_OR_RETURN(values[i],
                                  tensor::BiasAdd(y, l.params.at("bias")));
        break;
      }
      case LayerKind::kConv2D: {
        CRAYFISH_ASSIGN_OR_RETURN(
            Tensor y,
            tensor::Conv2D(in, l.params.at("kernel"), l.stride, l.padding));
        CRAYFISH_ASSIGN_OR_RETURN(values[i],
                                  tensor::BiasAdd(y, l.params.at("bias")));
        break;
      }
      case LayerKind::kBatchNorm: {
        CRAYFISH_ASSIGN_OR_RETURN(
            values[i],
            tensor::BatchNorm(in, l.params.at("gamma"), l.params.at("beta"),
                              l.params.at("mean"),
                              l.params.at("variance")));
        break;
      }
      case LayerKind::kRelu:
        values[i] = tensor::Relu(in);
        break;
      case LayerKind::kMaxPool: {
        CRAYFISH_ASSIGN_OR_RETURN(
            values[i],
            tensor::MaxPool2D(in, l.kernel, l.stride, l.padding));
        break;
      }
      case LayerKind::kGlobalAvgPool: {
        CRAYFISH_ASSIGN_OR_RETURN(values[i], tensor::GlobalAvgPool(in));
        break;
      }
      case LayerKind::kAdd: {
        const Tensor& b = values[static_cast<size_t>(l.inputs[1])];
        CRAYFISH_ASSIGN_OR_RETURN(values[i], tensor::Add(in, b));
        break;
      }
      case LayerKind::kFlatten: {
        CRAYFISH_ASSIGN_OR_RETURN(values[i], tensor::FlattenBatch(in));
        break;
      }
      case LayerKind::kSoftmax:
        values[i] = tensor::Softmax(in);
        break;
      case LayerKind::kGru: {
        // in: [batch, timesteps, features] -> out: [batch, units].
        if (in.shape().rank() != 3) {
          return crayfish::Status::InvalidArgument(
              "GRU input must be [batch, timesteps, features]");
        }
        const int64_t b = in.shape()[0];
        const int64_t timesteps = in.shape()[1];
        const int64_t features = in.shape()[2];
        const int64_t h = l.units;
        const Tensor& wz = l.params.at("kernel_z");
        const Tensor& wr = l.params.at("kernel_r");
        const Tensor& wh = l.params.at("kernel_h");
        const Tensor& uz = l.params.at("recurrent_z");
        const Tensor& ur = l.params.at("recurrent_r");
        const Tensor& uh = l.params.at("recurrent_h");
        const Tensor& bz = l.params.at("bias_z");
        const Tensor& br = l.params.at("bias_r");
        const Tensor& bh = l.params.at("bias_h");
        Tensor out(tensor::Shape{b, h});
        std::vector<float> hidden(static_cast<size_t>(h));
        std::vector<float> z(static_cast<size_t>(h));
        std::vector<float> rgate(static_cast<size_t>(h));
        std::vector<float> cand(static_cast<size_t>(h));
        auto sigmoid = [](float v) {
          return 1.0f / (1.0f + std::exp(-v));
        };
        auto gate = [&](const float* x, const std::vector<float>& hprev,
                        const Tensor& w, const Tensor& u, const Tensor& bias,
                        std::vector<float>* dst, bool gate_hidden,
                        const std::vector<float>& gate_vec) {
          for (int64_t j = 0; j < h; ++j) {
            double acc = bias.at(j);
            for (int64_t f = 0; f < features; ++f) {
              acc += static_cast<double>(x[f]) * w.at2(f, j);
            }
            for (int64_t k = 0; k < h; ++k) {
              const double hk =
                  gate_hidden ? static_cast<double>(
                                    gate_vec[static_cast<size_t>(k)]) *
                                    hprev[static_cast<size_t>(k)]
                              : hprev[static_cast<size_t>(k)];
              acc += hk * u.at2(k, j);
            }
            (*dst)[static_cast<size_t>(j)] = static_cast<float>(acc);
          }
        };
        for (int64_t sample = 0; sample < b; ++sample) {
          std::fill(hidden.begin(), hidden.end(), 0.0f);
          for (int64_t t = 0; t < timesteps; ++t) {
            const float* x =
                in.data() + (sample * timesteps + t) * features;
            gate(x, hidden, wz, uz, bz, &z, false, {});
            gate(x, hidden, wr, ur, br, &rgate, false, {});
            for (auto& v : z) v = sigmoid(v);
            for (auto& v : rgate) v = sigmoid(v);
            gate(x, hidden, wh, uh, bh, &cand, true, rgate);
            for (int64_t j = 0; j < h; ++j) {
              const size_t sj = static_cast<size_t>(j);
              const float zt = z[sj];
              hidden[sj] = (1.0f - zt) * hidden[sj] +
                           zt * std::tanh(cand[sj]);
            }
          }
          std::copy(hidden.begin(), hidden.end(),
                    out.data() + sample * h);
        }
        values[i] = std::move(out);
        break;
      }
    }
  }
  return values.back();
}

crayfish::StatusOr<std::vector<int64_t>> Executor::Classify(
    const Tensor& input) const {
  CRAYFISH_ASSIGN_OR_RETURN(Tensor out, Run(input));
  return tensor::Argmax(out);
}

}  // namespace crayfish::model
