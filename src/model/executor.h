#ifndef CRAYFISH_MODEL_EXECUTOR_H_
#define CRAYFISH_MODEL_EXECUTOR_H_

#include "common/status.h"
#include "model/graph.h"
#include "tensor/tensor.h"

namespace crayfish::model {

/// Executes a model graph forward pass on real tensors.
///
/// The input carries a leading batch dimension; per-sample shape must match
/// the graph's input layer. This is the honest `apply` behind the
/// CrayfishModel contract — tests and examples run real inference through
/// it, while the simulation consumes only the graph's FLOP counts.
class Executor {
 public:
  explicit Executor(const ModelGraph* graph);

  /// Runs the forward pass; returns the last layer's output with batch
  /// dimension prepended.
  crayfish::StatusOr<tensor::Tensor> Run(const tensor::Tensor& input) const;

  /// Runs and returns the per-sample argmax class indices. Requires the
  /// final output to be rank-2 [batch, classes].
  crayfish::StatusOr<std::vector<int64_t>> Classify(
      const tensor::Tensor& input) const;

 private:
  const ModelGraph* graph_;
};

}  // namespace crayfish::model

#endif  // CRAYFISH_MODEL_EXECUTOR_H_
