#include "model/formats.h"

#include <cstring>

#include "common/json.h"
#include "common/logging.h"

namespace crayfish::model {

namespace {

constexpr char kOnnxMagic[] = "ONNX1";
constexpr char kSavedModelMagic[] = "TFSM1";
constexpr char kTorchMagic[] = "PTCH1";
constexpr char kH5Magic[] = "HDF5x";
constexpr size_t kMagicLen = 5;

// SavedModel exports carry a serialized function library / assets bundle
// whose size is roughly constant and dominates small models (Table 2:
// FFNN SavedModel is 508 KB vs 113 KB for ONNX).
constexpr size_t kSavedModelFunctionLibraryBytes = 380 * 1024;
// H5 writes one aligned object header + attribute block per layer group.
constexpr size_t kH5AttributeBlockBytes = 2048;

void PutMagic(ByteWriter* w, const char* magic) {
  w->PutRaw(reinterpret_cast<const uint8_t*>(magic), kMagicLen);
}

/// Topology of one layer without weights, shared across formats.
void EncodeLayerTopology(const Layer& l, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(l.kind));
  w->PutString(l.name);
  w->PutU32(static_cast<uint32_t>(l.inputs.size()));
  for (int in : l.inputs) w->PutU32(static_cast<uint32_t>(in));
  w->PutI64(l.units);
  w->PutI64(l.kernel);
  w->PutI64(l.stride);
  w->PutU8(l.padding == tensor::Padding::kSame ? 1 : 0);
  // Input layers persist their shape; all other shapes are re-inferred.
  if (l.kind == LayerKind::kInput) {
    w->PutU32(static_cast<uint32_t>(l.output_shape.rank()));
    for (int64_t d : l.output_shape.dims()) w->PutI64(d);
  }
}

crayfish::Status DecodeLayerTopology(ByteReader* r, Layer* l) {
  CRAYFISH_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(LayerKind::kGru)) {
    return crayfish::Status::Corruption("bad layer kind");
  }
  l->kind = static_cast<LayerKind>(kind);
  CRAYFISH_ASSIGN_OR_RETURN(l->name, r->GetString());
  CRAYFISH_ASSIGN_OR_RETURN(uint32_t nin, r->GetU32());
  l->inputs.clear();
  for (uint32_t i = 0; i < nin; ++i) {
    CRAYFISH_ASSIGN_OR_RETURN(uint32_t idx, r->GetU32());
    l->inputs.push_back(static_cast<int>(idx));
  }
  CRAYFISH_ASSIGN_OR_RETURN(l->units, r->GetI64());
  CRAYFISH_ASSIGN_OR_RETURN(l->kernel, r->GetI64());
  CRAYFISH_ASSIGN_OR_RETURN(l->stride, r->GetI64());
  CRAYFISH_ASSIGN_OR_RETURN(uint8_t same, r->GetU8());
  l->padding = same != 0 ? tensor::Padding::kSame : tensor::Padding::kValid;
  if (l->kind == LayerKind::kInput) {
    CRAYFISH_ASSIGN_OR_RETURN(uint32_t rank, r->GetU32());
    std::vector<int64_t> dims;
    for (uint32_t i = 0; i < rank; ++i) {
      CRAYFISH_ASSIGN_OR_RETURN(int64_t d, r->GetI64());
      dims.push_back(d);
    }
    l->output_shape = tensor::Shape(std::move(dims));
  }
  return crayfish::Status::Ok();
}

/// Encodes every parameter of every layer in graph order. Each format
/// calls this with a different naming convention.
void EncodeWeights(const ModelGraph& graph, bool qualified_names,
                   ByteWriter* w) {
  uint32_t tensor_count = 0;
  for (const Layer& l : graph.layers()) {
    tensor_count += static_cast<uint32_t>(l.params.size());
  }
  w->PutU32(tensor_count);
  for (const Layer& l : graph.layers()) {
    for (const auto& [pname, t] : l.params) {
      w->PutString(qualified_names ? l.name + "." + pname : pname);
      w->PutU32(static_cast<uint32_t>(t.shape().rank()));
      for (int64_t d : t.shape().dims()) w->PutI64(d);
      w->PutF32Array(t.data(), static_cast<size_t>(t.NumElements()));
    }
  }
}

crayfish::Status DecodeWeights(ByteReader* r, bool qualified_names,
                               ModelGraph* graph) {
  CRAYFISH_ASSIGN_OR_RETURN(uint32_t tensor_count, r->GetU32());
  uint32_t consumed = 0;
  for (Layer& l : graph->layers()) {
    for (auto& [pname, t] : l.params) {
      if (consumed >= tensor_count) {
        return crayfish::Status::Corruption("missing weight tensors");
      }
      CRAYFISH_ASSIGN_OR_RETURN(std::string name, r->GetString());
      const std::string expected =
          qualified_names ? l.name + "." + pname : pname;
      if (name != expected) {
        return crayfish::Status::Corruption("weight name mismatch: got " +
                                            name + " want " + expected);
      }
      CRAYFISH_ASSIGN_OR_RETURN(uint32_t rank, r->GetU32());
      std::vector<int64_t> dims;
      for (uint32_t i = 0; i < rank; ++i) {
        CRAYFISH_ASSIGN_OR_RETURN(int64_t d, r->GetI64());
        dims.push_back(d);
      }
      tensor::Shape shape(std::move(dims));
      if (shape != t.shape()) {
        return crayfish::Status::Corruption(
            "weight shape mismatch for " + name + ": " + shape.ToString() +
            " vs " + t.shape().ToString());
      }
      CRAYFISH_ASSIGN_OR_RETURN(std::vector<float> data, r->GetF32Array());
      if (static_cast<int64_t>(data.size()) != shape.NumElements()) {
        return crayfish::Status::Corruption("weight data size mismatch");
      }
      t = tensor::Tensor(shape, std::move(data));
      ++consumed;
    }
  }
  if (consumed != tensor_count) {
    return crayfish::Status::Corruption("extra weight tensors in file");
  }
  return crayfish::Status::Ok();
}

/// Per-layer JSON metadata used by the SavedModel encoding (signature
/// defs / node attributes the TF exporter emits).
std::string LayerMetadataJson(const Layer& l) {
  JsonValue obj = JsonValue::MakeObject();
  obj["op"] = LayerKindName(l.kind);
  obj["name"] = l.name;
  obj["units"] = l.units;
  obj["kernel"] = l.kernel;
  obj["stride"] = l.stride;
  obj["padding"] =
      l.padding == tensor::Padding::kSame ? "SAME" : "VALID";
  JsonValue ins = JsonValue::MakeArray();
  for (int i : l.inputs) ins.Append(i);
  obj["inputs"] = std::move(ins);
  return obj.Dump();
}

void EncodeTopologySection(const ModelGraph& graph, ByteWriter* w) {
  w->PutString(graph.name());
  w->PutU32(static_cast<uint32_t>(graph.layer_count()));
  for (const Layer& l : graph.layers()) EncodeLayerTopology(l, w);
}

crayfish::StatusOr<ModelGraph> DecodeTopologySection(ByteReader* r) {
  CRAYFISH_ASSIGN_OR_RETURN(std::string name, r->GetString());
  CRAYFISH_ASSIGN_OR_RETURN(uint32_t count, r->GetU32());
  ModelGraph graph(name);
  for (uint32_t i = 0; i < count; ++i) {
    Layer l;
    CRAYFISH_RETURN_IF_ERROR(DecodeLayerTopology(r, &l));
    graph.layers().push_back(std::move(l));
  }
  CRAYFISH_RETURN_IF_ERROR(graph.InferShapes());
  return graph;
}

}  // namespace

const char* ModelFormatName(ModelFormat format) {
  switch (format) {
    case ModelFormat::kOnnx:
      return "onnx";
    case ModelFormat::kSavedModel:
      return "savedmodel";
    case ModelFormat::kTorch:
      return "torch";
    case ModelFormat::kH5:
      return "h5";
  }
  return "unknown";
}

const char* ModelFormatExtension(ModelFormat format) {
  switch (format) {
    case ModelFormat::kOnnx:
      return ".onnx";
    case ModelFormat::kSavedModel:
      return ".pb";
    case ModelFormat::kTorch:
      return ".pt";
    case ModelFormat::kH5:
      return ".h5";
  }
  return ".bin";
}

crayfish::StatusOr<ModelFormat> ModelFormatFromName(const std::string& name) {
  if (name == "onnx") return ModelFormat::kOnnx;
  if (name == "savedmodel") return ModelFormat::kSavedModel;
  if (name == "torch") return ModelFormat::kTorch;
  if (name == "h5") return ModelFormat::kH5;
  return crayfish::Status::InvalidArgument("unknown model format: " + name);
}

crayfish::StatusOr<Bytes> Serialize(const ModelGraph& graph,
                                    ModelFormat format) {
  if (!graph.shapes_inferred()) {
    return crayfish::Status::FailedPrecondition(
        "serialize requires InferShapes()");
  }
  ByteWriter w;
  switch (format) {
    case ModelFormat::kOnnx: {
      // Leanest layout: magic, topology, unqualified weights.
      PutMagic(&w, kOnnxMagic);
      EncodeTopologySection(graph, &w);
      EncodeWeights(graph, /*qualified_names=*/false, &w);
      break;
    }
    case ModelFormat::kSavedModel: {
      // MetaGraph layout: magic, topology, per-layer JSON node metadata,
      // a function-library/assets blob, then qualified weights.
      PutMagic(&w, kSavedModelMagic);
      EncodeTopologySection(graph, &w);
      w.PutU32(static_cast<uint32_t>(graph.layer_count()));
      for (const Layer& l : graph.layers()) {
        w.PutString(LayerMetadataJson(l));
      }
      Bytes library(kSavedModelFunctionLibraryBytes, 0x7F);
      w.PutBlock(library.data(), library.size());
      EncodeWeights(graph, /*qualified_names=*/true, &w);
      break;
    }
    case ModelFormat::kTorch: {
      // state_dict layout: magic, small archive header, topology,
      // qualified weights.
      PutMagic(&w, kTorchMagic);
      w.PutString("protocol=2;archive=zipless;producer=crayfish");
      EncodeTopologySection(graph, &w);
      EncodeWeights(graph, /*qualified_names=*/true, &w);
      break;
    }
    case ModelFormat::kH5: {
      // Hierarchical layout: magic, topology, then one group per layer
      // with an aligned attribute block followed by that layer's weights.
      PutMagic(&w, kH5Magic);
      EncodeTopologySection(graph, &w);
      w.PutU32(static_cast<uint32_t>(graph.layer_count()));
      for (const Layer& l : graph.layers()) {
        w.PutString("/model_weights/" + l.name);
        Bytes attr(kH5AttributeBlockBytes, 0x00);
        const std::string meta = LayerMetadataJson(l);
        std::memcpy(attr.data(), meta.data(),
                    std::min(meta.size(), attr.size()));
        w.PutBlock(attr.data(), attr.size());
        w.PutU32(static_cast<uint32_t>(l.params.size()));
        for (const auto& [pname, t] : l.params) {
          w.PutString(pname);
          w.PutU32(static_cast<uint32_t>(t.shape().rank()));
          for (int64_t d : t.shape().dims()) w.PutI64(d);
          w.PutF32Array(t.data(), static_cast<size_t>(t.NumElements()));
        }
      }
      break;
    }
  }
  return w.Release();
}

crayfish::StatusOr<ModelFormat> DetectFormat(const Bytes& bytes) {
  if (bytes.size() < kMagicLen) {
    return crayfish::Status::Corruption("file too short for magic");
  }
  const char* p = reinterpret_cast<const char*>(bytes.data());
  if (std::memcmp(p, kOnnxMagic, kMagicLen) == 0) return ModelFormat::kOnnx;
  if (std::memcmp(p, kSavedModelMagic, kMagicLen) == 0) {
    return ModelFormat::kSavedModel;
  }
  if (std::memcmp(p, kTorchMagic, kMagicLen) == 0) return ModelFormat::kTorch;
  if (std::memcmp(p, kH5Magic, kMagicLen) == 0) return ModelFormat::kH5;
  return crayfish::Status::Corruption("unknown model file magic");
}

crayfish::StatusOr<ModelGraph> Deserialize(const Bytes& bytes) {
  CRAYFISH_ASSIGN_OR_RETURN(ModelFormat format, DetectFormat(bytes));
  ByteReader r(bytes.data() + kMagicLen, bytes.size() - kMagicLen);
  switch (format) {
    case ModelFormat::kOnnx: {
      CRAYFISH_ASSIGN_OR_RETURN(ModelGraph graph, DecodeTopologySection(&r));
      CRAYFISH_RETURN_IF_ERROR(
          DecodeWeights(&r, /*qualified_names=*/false, &graph));
      return graph;
    }
    case ModelFormat::kSavedModel: {
      CRAYFISH_ASSIGN_OR_RETURN(ModelGraph graph, DecodeTopologySection(&r));
      CRAYFISH_ASSIGN_OR_RETURN(uint32_t meta_count, r.GetU32());
      for (uint32_t i = 0; i < meta_count; ++i) {
        CRAYFISH_ASSIGN_OR_RETURN(std::string meta, r.GetString());
        (void)meta;  // Node metadata is advisory; topology is canonical.
      }
      CRAYFISH_ASSIGN_OR_RETURN(Bytes library, r.GetBlock());
      (void)library;
      CRAYFISH_RETURN_IF_ERROR(
          DecodeWeights(&r, /*qualified_names=*/true, &graph));
      return graph;
    }
    case ModelFormat::kTorch: {
      CRAYFISH_ASSIGN_OR_RETURN(std::string header, r.GetString());
      (void)header;
      CRAYFISH_ASSIGN_OR_RETURN(ModelGraph graph, DecodeTopologySection(&r));
      CRAYFISH_RETURN_IF_ERROR(
          DecodeWeights(&r, /*qualified_names=*/true, &graph));
      return graph;
    }
    case ModelFormat::kH5: {
      CRAYFISH_ASSIGN_OR_RETURN(ModelGraph graph, DecodeTopologySection(&r));
      CRAYFISH_ASSIGN_OR_RETURN(uint32_t group_count, r.GetU32());
      if (group_count != graph.layer_count()) {
        return crayfish::Status::Corruption("H5 group count mismatch");
      }
      for (Layer& l : graph.layers()) {
        CRAYFISH_ASSIGN_OR_RETURN(std::string group, r.GetString());
        if (group != "/model_weights/" + l.name) {
          return crayfish::Status::Corruption("H5 group name mismatch");
        }
        CRAYFISH_ASSIGN_OR_RETURN(Bytes attr, r.GetBlock());
        (void)attr;
        CRAYFISH_ASSIGN_OR_RETURN(uint32_t nparams, r.GetU32());
        if (nparams != l.params.size()) {
          return crayfish::Status::Corruption("H5 param count mismatch");
        }
        for (auto& [pname, t] : l.params) {
          CRAYFISH_ASSIGN_OR_RETURN(std::string name, r.GetString());
          if (name != pname) {
            return crayfish::Status::Corruption("H5 param name mismatch");
          }
          CRAYFISH_ASSIGN_OR_RETURN(uint32_t rank, r.GetU32());
          std::vector<int64_t> dims;
          for (uint32_t i = 0; i < rank; ++i) {
            CRAYFISH_ASSIGN_OR_RETURN(int64_t d, r.GetI64());
            dims.push_back(d);
          }
          tensor::Shape shape(std::move(dims));
          if (shape != t.shape()) {
            return crayfish::Status::Corruption("H5 param shape mismatch");
          }
          CRAYFISH_ASSIGN_OR_RETURN(std::vector<float> data,
                                    r.GetF32Array());
          t = tensor::Tensor(shape, std::move(data));
        }
      }
      return graph;
    }
  }
  return crayfish::Status::Internal("unreachable");
}

}  // namespace crayfish::model
