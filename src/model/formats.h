#ifndef CRAYFISH_MODEL_FORMATS_H_
#define CRAYFISH_MODEL_FORMATS_H_

#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "model/graph.h"

namespace crayfish::model {

/// On-disk model formats, mirroring the four export formats the paper
/// benchmarks (Table 2): native ONNX, TensorFlow SavedModel, native
/// PyTorch, and Keras H5. Each format is a distinct binary encoding with
/// its own metadata layout and overhead profile, so serialized sizes
/// reproduce the table's ordering (SavedModel largest; ONNX leanest).
enum class ModelFormat {
  kOnnx,
  kSavedModel,
  kTorch,
  kH5,
};

const char* ModelFormatName(ModelFormat format);
/// Conventional file extension (".onnx", ".pb", ".pt", ".h5").
const char* ModelFormatExtension(ModelFormat format);
crayfish::StatusOr<ModelFormat> ModelFormatFromName(const std::string& name);

/// Serializes a shape-inferred graph (topology + all weights) in the given
/// format.
crayfish::StatusOr<Bytes> Serialize(const ModelGraph& graph,
                                    ModelFormat format);

/// Reconstructs a graph from serialized bytes. The format is detected from
/// the leading magic; shapes are re-inferred and weights restored, so
/// Deserialize(Serialize(g)) executes identically to g.
crayfish::StatusOr<ModelGraph> Deserialize(const Bytes& bytes);

/// Detects the format of serialized bytes without full decoding.
crayfish::StatusOr<ModelFormat> DetectFormat(const Bytes& bytes);

}  // namespace crayfish::model

#endif  // CRAYFISH_MODEL_FORMATS_H_
