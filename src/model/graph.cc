#include "model/graph.h"

#include <sstream>

#include "common/logging.h"

namespace crayfish::model {

using tensor::Padding;
using tensor::Shape;
using tensor::Tensor;

int ModelGraph::Append(Layer layer) {
  for (int in : layer.inputs) {
    CRAYFISH_CHECK_GE(in, 0);
    CRAYFISH_CHECK_LT(static_cast<size_t>(in), layers_.size())
        << "layer " << layer.name << " references future layer";
  }
  layers_.push_back(std::move(layer));
  shapes_inferred_ = false;
  return static_cast<int>(layers_.size()) - 1;
}

int ModelGraph::AddInput(Shape per_sample_shape, std::string name) {
  CRAYFISH_CHECK(layers_.empty()) << "input must be the first layer";
  Layer l;
  l.kind = LayerKind::kInput;
  l.name = std::move(name);
  l.output_shape = std::move(per_sample_shape);
  return Append(std::move(l));
}

int ModelGraph::AddDense(int input, int64_t units, std::string name) {
  Layer l;
  l.kind = LayerKind::kDense;
  l.name = std::move(name);
  l.inputs = {input};
  l.units = units;
  return Append(std::move(l));
}

int ModelGraph::AddConv2D(int input, int64_t filters, int64_t kernel,
                          int64_t stride, Padding padding, std::string name) {
  Layer l;
  l.kind = LayerKind::kConv2D;
  l.name = std::move(name);
  l.inputs = {input};
  l.units = filters;
  l.kernel = kernel;
  l.stride = stride;
  l.padding = padding;
  return Append(std::move(l));
}

int ModelGraph::AddBatchNorm(int input, std::string name) {
  Layer l;
  l.kind = LayerKind::kBatchNorm;
  l.name = std::move(name);
  l.inputs = {input};
  return Append(std::move(l));
}

int ModelGraph::AddRelu(int input, std::string name) {
  Layer l;
  l.kind = LayerKind::kRelu;
  l.name = std::move(name);
  l.inputs = {input};
  return Append(std::move(l));
}

int ModelGraph::AddMaxPool(int input, int64_t window, int64_t stride,
                           Padding padding, std::string name) {
  Layer l;
  l.kind = LayerKind::kMaxPool;
  l.name = std::move(name);
  l.inputs = {input};
  l.kernel = window;
  l.stride = stride;
  l.padding = padding;
  return Append(std::move(l));
}

int ModelGraph::AddGlobalAvgPool(int input, std::string name) {
  Layer l;
  l.kind = LayerKind::kGlobalAvgPool;
  l.name = std::move(name);
  l.inputs = {input};
  return Append(std::move(l));
}

int ModelGraph::AddResidualAdd(int a, int b, std::string name) {
  Layer l;
  l.kind = LayerKind::kAdd;
  l.name = std::move(name);
  l.inputs = {a, b};
  return Append(std::move(l));
}

int ModelGraph::AddFlatten(int input, std::string name) {
  Layer l;
  l.kind = LayerKind::kFlatten;
  l.name = std::move(name);
  l.inputs = {input};
  return Append(std::move(l));
}

int ModelGraph::AddSoftmax(int input, std::string name) {
  Layer l;
  l.kind = LayerKind::kSoftmax;
  l.name = std::move(name);
  l.inputs = {input};
  return Append(std::move(l));
}

int ModelGraph::AddGru(int input, int64_t units, std::string name) {
  Layer l;
  l.kind = LayerKind::kGru;
  l.name = std::move(name);
  l.inputs = {input};
  l.units = units;
  return Append(std::move(l));
}

crayfish::Status ModelGraph::InferShapes() {
  if (layers_.empty() || layers_[0].kind != LayerKind::kInput) {
    return crayfish::Status::FailedPrecondition(
        "graph must start with an Input layer");
  }
  for (size_t i = 1; i < layers_.size(); ++i) {
    Layer& l = layers_[i];
    if (l.inputs.empty()) {
      return crayfish::Status::InvalidArgument("layer " + l.name +
                                               " has no inputs");
    }
    const Shape& in = layers_[static_cast<size_t>(l.inputs[0])].output_shape;
    switch (l.kind) {
      case LayerKind::kInput:
        return crayfish::Status::InvalidArgument(
            "only the first layer may be Input");
      case LayerKind::kDense: {
        if (in.rank() != 1) {
          return crayfish::Status::InvalidArgument(
              "Dense " + l.name + " needs rank-1 input, got " +
              in.ToString());
        }
        const int64_t in_features = in[0];
        l.params["kernel"] = Tensor(Shape{in_features, l.units});
        l.params["bias"] = Tensor(Shape{l.units});
        l.output_shape = Shape{l.units};
        break;
      }
      case LayerKind::kConv2D: {
        if (in.rank() != 3) {
          return crayfish::Status::InvalidArgument(
              "Conv2D " + l.name + " needs HWC input, got " + in.ToString());
        }
        const int64_t in_c = in[2];
        l.params["kernel"] =
            Tensor(Shape{l.kernel, l.kernel, in_c, l.units});
        l.params["bias"] = Tensor(Shape{l.units});
        const int64_t oh =
            tensor::ConvOutputSize(in[0], l.kernel, l.stride, l.padding);
        const int64_t ow =
            tensor::ConvOutputSize(in[1], l.kernel, l.stride, l.padding);
        l.output_shape = Shape{oh, ow, l.units};
        break;
      }
      case LayerKind::kBatchNorm: {
        const int64_t c = in[in.rank() - 1];
        l.params["gamma"] = Tensor(Shape{c});
        l.params["beta"] = Tensor(Shape{c});
        l.params["mean"] = Tensor(Shape{c});
        l.params["variance"] = Tensor(Shape{c});
        l.output_shape = in;
        break;
      }
      case LayerKind::kRelu:
      case LayerKind::kSoftmax:
        l.output_shape = in;
        break;
      case LayerKind::kMaxPool: {
        if (in.rank() != 3) {
          return crayfish::Status::InvalidArgument(
              "MaxPool " + l.name + " needs HWC input");
        }
        const int64_t oh =
            tensor::ConvOutputSize(in[0], l.kernel, l.stride, l.padding);
        const int64_t ow =
            tensor::ConvOutputSize(in[1], l.kernel, l.stride, l.padding);
        l.output_shape = Shape{oh, ow, in[2]};
        break;
      }
      case LayerKind::kGlobalAvgPool: {
        if (in.rank() != 3) {
          return crayfish::Status::InvalidArgument(
              "GlobalAvgPool " + l.name + " needs HWC input");
        }
        l.output_shape = Shape{in[2]};
        break;
      }
      case LayerKind::kAdd: {
        if (l.inputs.size() != 2) {
          return crayfish::Status::InvalidArgument("Add " + l.name +
                                                   " needs two inputs");
        }
        const Shape& b =
            layers_[static_cast<size_t>(l.inputs[1])].output_shape;
        if (in != b) {
          return crayfish::Status::InvalidArgument(
              "Add " + l.name + " shape mismatch: " + in.ToString() +
              " vs " + b.ToString());
        }
        l.output_shape = in;
        break;
      }
      case LayerKind::kFlatten: {
        l.output_shape = Shape{in.NumElements()};
        break;
      }
      case LayerKind::kGru: {
        if (in.rank() != 2) {
          return crayfish::Status::InvalidArgument(
              "GRU " + l.name + " needs [timesteps, features] input, got " +
              in.ToString());
        }
        const int64_t features = in[1];
        // Update (z), reset (r) and candidate (h) gates: input kernels
        // [F,H], recurrent kernels [H,H], biases [H].
        for (const char* gate : {"z", "r", "h"}) {
          l.params[std::string("kernel_") + gate] =
              Tensor(Shape{features, l.units});
          l.params[std::string("recurrent_") + gate] =
              Tensor(Shape{l.units, l.units});
          l.params[std::string("bias_") + gate] = Tensor(Shape{l.units});
        }
        l.output_shape = Shape{l.units};
        break;
      }
    }
  }
  shapes_inferred_ = true;
  return crayfish::Status::Ok();
}

void ModelGraph::InitializeWeights(crayfish::Rng* rng) {
  CRAYFISH_CHECK(shapes_inferred_) << "call InferShapes() first";
  for (Layer& l : layers_) {
    switch (l.kind) {
      case LayerKind::kDense: {
        const int64_t fan_in = l.params["kernel"].shape()[0];
        l.params["kernel"] =
            Tensor::HeNormal(l.params["kernel"].shape(), rng, fan_in);
        // bias stays zero.
        break;
      }
      case LayerKind::kConv2D: {
        const Shape& ks = l.params["kernel"].shape();
        const int64_t fan_in = ks[0] * ks[1] * ks[2];
        l.params["kernel"] = Tensor::HeNormal(ks, rng, fan_in);
        break;
      }
      case LayerKind::kBatchNorm: {
        l.params["gamma"] = Tensor::Full(l.params["gamma"].shape(), 1.0f);
        // beta/mean zero; variance one for an identity transform.
        l.params["variance"] =
            Tensor::Full(l.params["variance"].shape(), 1.0f);
        break;
      }
      case LayerKind::kGru: {
        for (const char* gate : {"z", "r", "h"}) {
          for (const char* prefix : {"kernel_", "recurrent_"}) {
            const std::string key = std::string(prefix) + gate;
            const int64_t fan_in = l.params[key].shape()[0];
            l.params[key] =
                Tensor::HeNormal(l.params[key].shape(), rng, fan_in);
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

const Shape& ModelGraph::input_shape() const {
  CRAYFISH_CHECK(!layers_.empty());
  return layers_.front().output_shape;
}

const Shape& ModelGraph::output_shape() const {
  CRAYFISH_CHECK(!layers_.empty());
  return layers_.back().output_shape;
}

int64_t ModelGraph::ParamCount() const {
  int64_t total = 0;
  for (const Layer& l : layers_) total += l.ParamCount();
  return total;
}

int64_t ModelGraph::Flops(int64_t batch) const {
  CRAYFISH_CHECK(shapes_inferred_);
  int64_t flops = 0;
  for (const Layer& l : layers_) {
    const int64_t out_elems = l.output_shape.NumElements();
    switch (l.kind) {
      case LayerKind::kDense: {
        const int64_t in_features =
            layers_[static_cast<size_t>(l.inputs[0])]
                .output_shape.NumElements();
        flops += 2 * in_features * l.units + l.units;
        break;
      }
      case LayerKind::kConv2D: {
        const Shape& in =
            layers_[static_cast<size_t>(l.inputs[0])].output_shape;
        const int64_t in_c = in[2];
        // 2 * K*K*Cin multiply-adds per output element, plus bias.
        flops += out_elems * (2 * l.kernel * l.kernel * in_c + 1);
        break;
      }
      case LayerKind::kBatchNorm:
        flops += 2 * out_elems;
        break;
      case LayerKind::kRelu:
      case LayerKind::kAdd:
        flops += out_elems;
        break;
      case LayerKind::kSoftmax:
        flops += 4 * out_elems;  // exp + max + sum + div, roughly.
        break;
      case LayerKind::kMaxPool: {
        flops += out_elems * l.kernel * l.kernel;
        break;
      }
      case LayerKind::kGlobalAvgPool: {
        const Shape& in =
            layers_[static_cast<size_t>(l.inputs[0])].output_shape;
        flops += in.NumElements();
        break;
      }
      case LayerKind::kGru: {
        const Shape& in =
            layers_[static_cast<size_t>(l.inputs[0])].output_shape;
        const int64_t timesteps = in[0];
        const int64_t features = in[1];
        const int64_t h = l.units;
        // Three gates: input GEMV + recurrent GEMV + elementwise updates.
        flops += timesteps *
                 (3 * (2 * features * h + 2 * h * h) + 12 * h);
        break;
      }
      case LayerKind::kInput:
      case LayerKind::kFlatten:
        break;
    }
  }
  return flops * batch;
}

uint64_t ModelGraph::WeightBytes() const {
  return static_cast<uint64_t>(ParamCount()) * sizeof(float);
}

std::string ModelGraph::Summary() const {
  std::ostringstream os;
  os << "Model: " << name_ << "\n";
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    os << "  #" << i << " " << LayerKindName(l.kind) << " '" << l.name
       << "' -> " << l.output_shape.ToString() << " params "
       << l.ParamCount() << "\n";
  }
  os << "Total params: " << ParamCount() << " (" << (WeightBytes() >> 10)
     << " KiB), FLOPs/sample: " << Flops(1) << "\n";
  return os.str();
}

ModelGraph BuildFfnn() {
  ModelGraph g("ffnn");
  int x = g.AddInput(Shape{28, 28}, "image");
  x = g.AddFlatten(x, "flatten");
  for (int i = 1; i <= 3; ++i) {
    x = g.AddDense(x, 32, "dense" + std::to_string(i));
    x = g.AddRelu(x, "relu" + std::to_string(i));
  }
  x = g.AddDense(x, 10, "logits");
  g.AddSoftmax(x, "probabilities");
  CRAYFISH_CHECK_OK(g.InferShapes());
  return g;
}

namespace {

/// One bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand, with an
/// optional projection shortcut when the shape changes.
int BottleneckBlock(ModelGraph* g, int x, int64_t filters, int64_t stride,
                    bool project_shortcut, const std::string& prefix) {
  int shortcut = x;
  if (project_shortcut) {
    shortcut = g->AddConv2D(x, filters * 4, 1, stride, Padding::kSame,
                            prefix + "_proj_conv");
    shortcut = g->AddBatchNorm(shortcut, prefix + "_proj_bn");
  }
  int y = g->AddConv2D(x, filters, 1, stride, Padding::kSame,
                       prefix + "_conv1");
  y = g->AddBatchNorm(y, prefix + "_bn1");
  y = g->AddRelu(y, prefix + "_relu1");
  y = g->AddConv2D(y, filters, 3, 1, Padding::kSame, prefix + "_conv2");
  y = g->AddBatchNorm(y, prefix + "_bn2");
  y = g->AddRelu(y, prefix + "_relu2");
  y = g->AddConv2D(y, filters * 4, 1, 1, Padding::kSame, prefix + "_conv3");
  y = g->AddBatchNorm(y, prefix + "_bn3");
  y = g->AddResidualAdd(y, shortcut, prefix + "_add");
  y = g->AddRelu(y, prefix + "_out");
  return y;
}

ModelGraph BuildResNet(const std::string& name, int64_t input_hw,
                       int64_t classes, const std::vector<int>& block_counts) {
  ModelGraph g(name);
  int x = g.AddInput(Shape{input_hw, input_hw, 3}, "image");
  x = g.AddConv2D(x, 64, 7, 2, Padding::kSame, "stem_conv");
  x = g.AddBatchNorm(x, "stem_bn");
  x = g.AddRelu(x, "stem_relu");
  x = g.AddMaxPool(x, 3, 2, Padding::kSame, "stem_pool");
  const int64_t stage_filters[4] = {64, 128, 256, 512};
  for (size_t stage = 0; stage < block_counts.size(); ++stage) {
    const int64_t filters = stage_filters[stage];
    for (int block = 0; block < block_counts[stage]; ++block) {
      const bool first = block == 0;
      const int64_t stride = (first && stage > 0) ? 2 : 1;
      x = BottleneckBlock(&g, x, filters, stride, first,
                          "stage" + std::to_string(stage + 1) + "_block" +
                              std::to_string(block + 1));
    }
  }
  x = g.AddGlobalAvgPool(x, "avg_pool");
  x = g.AddDense(x, classes, "fc");
  g.AddSoftmax(x, "probabilities");
  CRAYFISH_CHECK_OK(g.InferShapes());
  return g;
}

}  // namespace

ModelGraph BuildResNet50() {
  return BuildResNet("resnet50", 224, 1000, {3, 4, 6, 3});
}

ModelGraph BuildTinyResNet(int64_t input_hw, int64_t classes) {
  return BuildResNet("tiny_resnet", input_hw, classes, {1, 1, 1, 1});
}

ModelGraph BuildLeNet(int64_t classes) {
  ModelGraph g("lenet");
  int x = g.AddInput(Shape{28, 28, 1}, "image");
  x = g.AddConv2D(x, 6, 5, 1, Padding::kSame, "conv1");
  x = g.AddRelu(x, "relu1");
  x = g.AddMaxPool(x, 2, 2, Padding::kValid, "pool1");
  x = g.AddConv2D(x, 16, 5, 1, Padding::kValid, "conv2");
  x = g.AddRelu(x, "relu2");
  x = g.AddMaxPool(x, 2, 2, Padding::kValid, "pool2");
  x = g.AddFlatten(x, "flatten");
  x = g.AddDense(x, 120, "fc1");
  x = g.AddRelu(x, "relu3");
  x = g.AddDense(x, 84, "fc2");
  x = g.AddRelu(x, "relu4");
  x = g.AddDense(x, classes, "logits");
  g.AddSoftmax(x, "probabilities");
  CRAYFISH_CHECK_OK(g.InferShapes());
  return g;
}

ModelGraph BuildGruClassifier(int64_t timesteps, int64_t features,
                              int64_t hidden, int64_t classes) {
  ModelGraph g("gru_classifier");
  int x = g.AddInput(Shape{timesteps, features}, "sequence");
  x = g.AddGru(x, hidden, "gru");
  x = g.AddDense(x, classes, "logits");
  g.AddSoftmax(x, "probabilities");
  CRAYFISH_CHECK_OK(g.InferShapes());
  return g;
}

ModelGraph BuildAutoencoder(int64_t code_dim) {
  ModelGraph g("autoencoder");
  int x = g.AddInput(Shape{28, 28}, "image");
  x = g.AddFlatten(x, "flatten");
  x = g.AddDense(x, 128, "enc1");
  x = g.AddRelu(x, "enc1_relu");
  x = g.AddDense(x, code_dim, "code");
  x = g.AddRelu(x, "code_relu");
  x = g.AddDense(x, 128, "dec1");
  x = g.AddRelu(x, "dec1_relu");
  g.AddDense(x, 784, "reconstruction");
  CRAYFISH_CHECK_OK(g.InferShapes());
  return g;
}

}  // namespace crayfish::model
