#ifndef CRAYFISH_MODEL_GRAPH_H_
#define CRAYFISH_MODEL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "model/layer.h"
#include "tensor/tensor.h"

namespace crayfish::model {

/// A pre-trained model as a topologically ordered DAG of layers.
///
/// Construction uses the Add* builder methods, each returning the new
/// layer's index for wiring later layers. After construction, call
/// InferShapes() to propagate per-sample shapes and validate the wiring.
/// Parameters can be randomly initialized (InitializeWeights) to stand in
/// for real trained weights — the paper's serving measurements depend on
/// model *architecture*, not on learned values.
class ModelGraph {
 public:
  explicit ModelGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- builders (return layer index) ---
  int AddInput(tensor::Shape per_sample_shape, std::string name = "input");
  int AddDense(int input, int64_t units, std::string name);
  int AddConv2D(int input, int64_t filters, int64_t kernel, int64_t stride,
                tensor::Padding padding, std::string name);
  int AddBatchNorm(int input, std::string name);
  int AddRelu(int input, std::string name);
  int AddMaxPool(int input, int64_t window, int64_t stride,
                 tensor::Padding padding, std::string name);
  int AddGlobalAvgPool(int input, std::string name);
  int AddResidualAdd(int a, int b, std::string name);
  int AddFlatten(int input, std::string name);
  int AddSoftmax(int input, std::string name);
  /// GRU over a [timesteps, features] input; output is the final hidden
  /// state [units].
  int AddGru(int input, int64_t units, std::string name);

  /// Propagates per-sample shapes from the input layer and sizes all
  /// parameter tensors (zero-filled). Must be called once after building.
  crayfish::Status InferShapes();

  /// Fills every parameter with deterministic pseudo-random values
  /// (He-normal kernels, zero biases, identity batch-norm statistics).
  void InitializeWeights(crayfish::Rng* rng);

  const std::vector<Layer>& layers() const { return layers_; }
  std::vector<Layer>& layers() { return layers_; }
  size_t layer_count() const { return layers_.size(); }

  /// Per-sample input/output shapes (valid after InferShapes).
  const tensor::Shape& input_shape() const;
  const tensor::Shape& output_shape() const;

  /// Total learned parameters across layers.
  int64_t ParamCount() const;

  /// Floating-point operations for a forward pass over `batch` samples
  /// (multiply-add counted as 2 FLOPs).
  int64_t Flops(int64_t batch = 1) const;

  /// Serialized f32 weight bytes (raw, before format overhead).
  uint64_t WeightBytes() const;

  /// Multi-line human-readable summary (Keras-style).
  std::string Summary() const;

  bool shapes_inferred() const { return shapes_inferred_; }

 private:
  int Append(Layer layer);

  std::string name_;
  std::vector<Layer> layers_;
  bool shapes_inferred_ = false;
};

/// Builds the paper's FFNN: Fashion-MNIST classifier, 28x28 input,
/// three hidden Dense(32)+ReLU layers, Dense(10)+Softmax head
/// (§4.1: ~28K parameters; this graph has 27,562).
ModelGraph BuildFfnn();

/// Builds the paper's second model: full ResNet50 v1 (He et al. 2016),
/// 224x224x3 input, bottleneck blocks [3,4,6,3], 1000-way softmax head
/// (§4.1: ~23M parameters reported for the TF/PyTorch exports; the
/// canonical architecture carries ~25.6M — the shape analysis is
/// identical).
ModelGraph BuildResNet50();

/// Smaller ResNet variant (ResNet-18-style with basic-block counts
/// approximated by bottlenecks [1,1,1,1]) used by tests to execute a deep
/// residual graph quickly.
ModelGraph BuildTinyResNet(int64_t input_hw = 32, int64_t classes = 10);

/// LeNet-5-style CNN on 28x28x1 input: two conv+pool stages and three
/// dense layers. Exercises the §4.1 claim that the generator/benchmark
/// covers CNNs beyond the paper's two models.
ModelGraph BuildLeNet(int64_t classes = 10);

/// Symmetric dense autoencoder 784 -> ... -> `code_dim` -> ... -> 784
/// ("Autoencoders can also be benchmarked with Crayfish", §4.1).
ModelGraph BuildAutoencoder(int64_t code_dim = 32);

/// GRU sequence classifier over [timesteps, features] inputs
/// ("for testing Recurrent Neural Networks", §4.1).
ModelGraph BuildGruClassifier(int64_t timesteps = 16, int64_t features = 8,
                              int64_t hidden = 32, int64_t classes = 4);

}  // namespace crayfish::model

#endif  // CRAYFISH_MODEL_GRAPH_H_
