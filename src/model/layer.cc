#include "model/layer.h"

namespace crayfish::model {

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "Input";
    case LayerKind::kDense:
      return "Dense";
    case LayerKind::kConv2D:
      return "Conv2D";
    case LayerKind::kBatchNorm:
      return "BatchNorm";
    case LayerKind::kRelu:
      return "ReLU";
    case LayerKind::kMaxPool:
      return "MaxPool";
    case LayerKind::kGlobalAvgPool:
      return "GlobalAvgPool";
    case LayerKind::kAdd:
      return "Add";
    case LayerKind::kFlatten:
      return "Flatten";
    case LayerKind::kSoftmax:
      return "Softmax";
    case LayerKind::kGru:
      return "GRU";
  }
  return "Unknown";
}

int64_t Layer::ParamCount() const {
  int64_t total = 0;
  for (const auto& [name, t] : params) total += t.NumElements();
  return total;
}

}  // namespace crayfish::model
