#ifndef CRAYFISH_MODEL_LAYER_H_
#define CRAYFISH_MODEL_LAYER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace crayfish::model {

/// Operator kinds supported by the model graph. The set is exactly what
/// the paper's two models (FFNN, ResNet50) require, plus Input.
enum class LayerKind {
  kInput,
  kDense,
  kConv2D,
  kBatchNorm,
  kRelu,
  kMaxPool,
  kGlobalAvgPool,
  kAdd,
  kFlatten,
  kSoftmax,
  /// Gated recurrent unit over a [timesteps, features] sample; emits the
  /// final hidden state ([units]). Covers the paper's RNN workloads
  /// (§4.1: "for testing Recurrent Neural Networks ... sequence-like
  /// random data").
  kGru,
};

const char* LayerKindName(LayerKind kind);

/// One node of the model DAG. Layers reference their producers by index
/// into the owning graph's layer vector, so a graph is a topologically
/// ordered DAG by construction.
struct Layer {
  LayerKind kind = LayerKind::kInput;
  std::string name;
  /// Producer layer indices (one for most ops, two for kAdd, zero for
  /// kInput).
  std::vector<int> inputs;

  // --- attributes (meaningful subset depends on kind) ---
  int64_t units = 0;        ///< kDense output features
  int64_t kernel = 0;       ///< kConv2D / kMaxPool window size
  int64_t stride = 1;       ///< kConv2D / kMaxPool stride
  tensor::Padding padding = tensor::Padding::kSame;

  /// Learned parameters by canonical name: "kernel"/"bias" (dense, conv),
  /// "gamma"/"beta"/"mean"/"variance" (batchnorm).
  std::map<std::string, tensor::Tensor> params;

  /// Per-sample output shape (no batch dimension); filled by
  /// ModelGraph::InferShapes.
  tensor::Shape output_shape;

  /// Total learned parameter count of this layer.
  int64_t ParamCount() const;
};

}  // namespace crayfish::model

#endif  // CRAYFISH_MODEL_LAYER_H_
