#include "model/repository.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"

namespace crayfish::model {

namespace fs = std::filesystem;

ModelRepository::ModelRepository(std::string root_dir)
    : root_(std::move(root_dir)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    CRAYFISH_LOG(Warning) << "could not create model repository root "
                          << root_ << ": " << ec.message();
  }
}

std::string ModelRepository::PathFor(const std::string& name,
                                     ModelFormat format) const {
  return root_ + "/" + name + ModelFormatExtension(format);
}

crayfish::StatusOr<std::string> ModelRepository::Save(
    const ModelGraph& graph, ModelFormat format) const {
  CRAYFISH_ASSIGN_OR_RETURN(Bytes bytes, Serialize(graph, format));
  const std::string path = PathFor(graph.name(), format);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return path;
}

crayfish::StatusOr<ModelGraph> ModelRepository::Load(
    const std::string& name, ModelFormat format) const {
  return LoadFromFile(PathFor(name, format));
}

crayfish::StatusOr<ModelGraph> ModelRepository::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return crayfish::Status::NotFound("model file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return crayfish::Status::IoError("short read: " + path);
  return Deserialize(bytes);
}

crayfish::StatusOr<uint64_t> ModelRepository::FileSize(
    const std::string& name, ModelFormat format) const {
  std::error_code ec;
  const auto size = fs::file_size(PathFor(name, format), ec);
  if (ec) {
    return crayfish::Status::NotFound("model file: " + PathFor(name, format));
  }
  return static_cast<uint64_t>(size);
}

crayfish::StatusOr<std::vector<std::string>> ModelRepository::List() const {
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) return crayfish::Status::IoError("cannot list: " + root_);
  return names;
}

}  // namespace crayfish::model
