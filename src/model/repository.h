#ifndef CRAYFISH_MODEL_REPOSITORY_H_
#define CRAYFISH_MODEL_REPOSITORY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/formats.h"
#include "model/graph.h"

namespace crayfish::model {

/// On-disk store of exported models, mirroring Crayfish's configuration
/// that lets users "indicate the format and location of any stored model"
/// (§3.2). Files are named `<model>.<format extension>` inside a root
/// directory.
class ModelRepository {
 public:
  /// Creates the root directory if missing.
  explicit ModelRepository(std::string root_dir);

  /// Serializes and writes a model. Returns the file path.
  crayfish::StatusOr<std::string> Save(const ModelGraph& graph,
                                       ModelFormat format) const;

  /// Loads `<name><ext(format)>` from the root.
  crayfish::StatusOr<ModelGraph> Load(const std::string& name,
                                      ModelFormat format) const;

  /// Loads a model from an explicit path (format auto-detected).
  static crayfish::StatusOr<ModelGraph> LoadFromFile(const std::string& path);

  /// File size in bytes of a stored model; NotFound if absent.
  crayfish::StatusOr<uint64_t> FileSize(const std::string& name,
                                        ModelFormat format) const;

  /// Lists stored model file names (not paths).
  crayfish::StatusOr<std::vector<std::string>> List() const;

  const std::string& root() const { return root_; }

 private:
  std::string PathFor(const std::string& name, ModelFormat format) const;

  std::string root_;
};

}  // namespace crayfish::model

#endif  // CRAYFISH_MODEL_REPOSITORY_H_
