#ifndef CRAYFISH_OBS_DEFER_H_
#define CRAYFISH_OBS_DEFER_H_

#include <utility>

#include "common/defer_hook.h"
#include "common/inline_action.h"

namespace crayfish::obs {

/// Barrier deferral for observability mutations under the partitioned DES.
///
/// Collectors (registry, trace recorder, timeline sampler) are
/// cross-partition substrates: a confined callback on one host must not
/// mutate them while another partition's callback does the same. Instead
/// of locking every counter bump, each mutator calls DeferIfConfined with
/// a closure that performs the mutation. From a confined callback the
/// closure is buffered on the executing partition — stamped with the
/// partition's local clock and executing host — and replayed by the
/// coordinator at the window barrier, merged across partitions in
/// (time, host) order. That order is independent of the thread count, so
/// metrics, traces, and timelines stay byte-identical between
/// `sim_threads=1` and any parallel run. From global or setup context the
/// call returns false and the caller applies the mutation inline.
///
/// The closure must capture every input by value (times included): it runs
/// at the barrier, where Now() has moved on to the window horizon.
///
/// Returns true when the op was deferred (the caller must NOT also apply
/// it), false when the caller should apply it inline. Routed through the
/// common/defer_hook.h seam so this header depends only on common/ (the
/// module include graph stays a DAG; the hook's definition lives with the
/// partition runtime).
inline bool DeferIfConfined(common::InlineAction op) {
  return common::DeferToBarrier(std::move(op));
}

}  // namespace crayfish::obs

#endif  // CRAYFISH_OBS_DEFER_H_
