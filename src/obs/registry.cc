#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/defer.h"

namespace crayfish::obs {

void CounterMetric::Increment(double delta) {
  if (DeferIfConfined([this, delta]() { value_ += delta; })) return;
  value_ += delta;
}

void GaugeMetric::Set(double v) {
  if (DeferIfConfined([this, v]() { value_ = v; })) return;
  value_ = v;
}

void HistogramMetric::Observe(double v) {
  if (DeferIfConfined([this, v]() {
        stats_.Add(v);
        histogram_.Add(v);
      })) {
    return;
  }
  stats_.Add(v);
  histogram_.Add(v);
}

std::string MetricsRegistry::Key(const std::string& name,
                                 const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first + "=" + sorted[i].second;
  }
  key += "}";
  return key;
}

CounterMetric* MetricsRegistry::Counter(const std::string& name,
                                        const MetricLabels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key(name, labels)];
  if (!slot) slot = std::make_unique<CounterMetric>();
  return slot.get();
}

GaugeMetric* MetricsRegistry::Gauge(const std::string& name,
                                    const MetricLabels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key(name, labels)];
  if (!slot) slot = std::make_unique<GaugeMetric>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::Histogram(const std::string& name,
                                            const MetricLabels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key(name, labels)];
  if (!slot) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

crayfish::JsonValue MetricsRegistry::Snapshot() const {
  JsonValue obj = JsonValue::MakeObject();
  for (const auto& [key, counter] : counters_) {
    obj[key] = counter->value();
  }
  for (const auto& [key, gauge] : gauges_) {
    obj[key] = gauge->value();
  }
  for (const auto& [key, hist] : histograms_) {
    JsonValue h = JsonValue::MakeObject();
    h["count"] = static_cast<int64_t>(hist->count());
    h["mean"] = hist->mean();
    h["min"] = hist->min();
    h["max"] = hist->max();
    h["p50"] = hist->Percentile(50.0);
    h["p95"] = hist->Percentile(95.0);
    h["p99"] = hist->Percentile(99.0);
    obj[key] = std::move(h);
  }
  return obj;
}

std::string MetricsRegistry::SnapshotJson() const {
  return Snapshot().DumpPretty();
}

namespace {

// RFC 4180 quoting for the key column: labeled identities contain commas
// ("m{a=1,b=2}") so the cell is always quoted, and any double quote inside
// a label value must be doubled.
std::string QuoteCsvKey(const std::string& key) {
  std::string out = "\"";
  for (char c : key) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string MetricsRegistry::ToCsv() const {
  std::string out = "key,kind,count,value_or_mean,min,max,p50,p95,p99\n";
  char line[320];
  for (const auto& [key, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%s,counter,,%.9g,,,,,\n",
                  QuoteCsvKey(key).c_str(), counter->value());
    out += line;
  }
  for (const auto& [key, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "%s,gauge,,%.9g,,,,,\n",
                  QuoteCsvKey(key).c_str(), gauge->value());
    out += line;
  }
  for (const auto& [key, hist] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "%s,histogram,%zu,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                  QuoteCsvKey(key).c_str(), hist->count(), hist->mean(),
                  hist->min(), hist->max(), hist->Percentile(50.0),
                  hist->Percentile(95.0), hist->Percentile(99.0));
    out += line;
  }
  return out;
}

crayfish::Status MetricsRegistry::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open: " + path);
  out << ToCsv();
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return crayfish::Status::Ok();
}

}  // namespace crayfish::obs
