#ifndef CRAYFISH_OBS_REGISTRY_H_
#define CRAYFISH_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace crayfish::obs {

/// Label set attached to a metric instance, e.g. {{"engine", "flink"},
/// {"operator", "scoring"}}. Labels are sorted by key when forming the
/// metric's identity, so insertion order does not matter.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count (records produced, bytes moved, applies run).
class CRAYFISH_SHARED("obs-metrics") CounterMetric {
 public:
  /// Deferred to the window barrier when called from a confined callback
  /// (obs/defer.h), applied immediately otherwise — either way the update
  /// order, and therefore the accumulated value, is thread-count
  /// independent.
  void Increment(double delta = 1.0);
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-written value (current queue depth, configured parallelism).
class CRAYFISH_SHARED("obs-metrics") GaugeMetric {
 public:
  /// Deferred to the window barrier from confined callbacks (obs/defer.h).
  void Set(double v);
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution metric: exact mean/min/max via RunningStats plus
/// approximate percentiles via a geometric-bucket histogram. The default
/// bucket range [1e-6, 1e6] covers everything Crayfish records (seconds,
/// depths, bytes) at ~3% relative resolution.
class CRAYFISH_SHARED("obs-metrics") HistogramMetric {
 public:
  HistogramMetric() : histogram_(1e-6, 1e6, 512) {}

  /// Deferred to the window barrier from confined callbacks (obs/defer.h).
  void Observe(double v);

  size_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double Percentile(double p) const { return histogram_.Percentile(p); }

 private:
  crayfish::RunningStats stats_;
  crayfish::Histogram histogram_;
};

/// Registry of named, labeled metrics for one experiment run.
///
/// `Counter`/`Gauge`/`Histogram` return a stable pointer the caller may
/// cache for the lifetime of the registry — instrument once, update on the
/// hot path without a map lookup. Metric identity is `name{k=v,...}` with
/// labels sorted by key; the std::map storage makes `Snapshot()` output
/// deterministic.
///
/// Like the trace recorder, the registry is passive: updates never touch
/// the event queue or RNG, so metrics collection cannot perturb a run.
class CRAYFISH_SHARED("obs-metrics") MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  CounterMetric* Counter(const std::string& name,
                         const MetricLabels& labels = {});
  GaugeMetric* Gauge(const std::string& name,
                     const MetricLabels& labels = {});
  HistogramMetric* Histogram(const std::string& name,
                             const MetricLabels& labels = {});

  /// `name{k=v,...}` with labels sorted by key — the identity under which
  /// the metric appears in snapshots.
  static std::string Key(const std::string& name,
                         const MetricLabels& labels);

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// All metrics as a JSON object keyed by metric identity. Counters and
  /// gauges map to their value; histograms to
  /// {count, mean, min, max, p50, p95, p99}.
  crayfish::JsonValue Snapshot() const;
  std::string SnapshotJson() const;

  /// CSV rows: key,kind,count,value_or_mean,min,max,p50,p95,p99
  /// (count/min/max/percentile columns are empty for counters and gauges).
  std::string ToCsv() const;
  crayfish::Status WriteCsv(const std::string& path) const;

 private:
  /// Ordered (lint R3): Snapshot()/ToCsv() iterate these; exported metric
  /// rows must come out byte-identical across runs and platforms.
  std::map<std::string, std::unique_ptr<CounterMetric>> counters_;
  std::map<std::string, std::unique_ptr<GaugeMetric>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
  /// Guards the three lookup-or-create maps only: metric *updates* are
  /// barrier-deferred (obs/defer.h), but the first `Counter(...)` call for
  /// a key can happen inside a parallel window on any partition, and the
  /// map insertion must not race (R6 carve-out, like sim/mailbox). Metric
  /// identities are key-sorted, so the stored set — and every snapshot —
  /// is independent of arrival order.
  mutable std::mutex mu_;
};

}  // namespace crayfish::obs

#endif  // CRAYFISH_OBS_REGISTRY_H_
