#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace crayfish::obs {

namespace {

/// Sentinel burn rate for a breached objective with a zero error budget.
constexpr double kInfiniteBurn = 1e9;

/// Resolves `spec.metric` for one window. Returns false when the metric is
/// undefined for this window (latency percentiles on an empty window, a
/// gauge the window never sampled) — such windows are not evaluated.
bool ResolveMetric(const SloSpec& spec, const TimelineWindow& w,
                   double* out) {
  const std::string& m = spec.metric;
  if (m == "throughput_eps") {
    *out = w.throughput_eps();
    return true;
  }
  if (m == "completions") {
    *out = static_cast<double>(w.completions);
    return true;
  }
  if (m == "p50_latency_s" || m == "p95_latency_s" || m == "p99_latency_s" ||
      m == "mean_latency_s" || m == "max_latency_s") {
    if (w.completions == 0) return false;
    if (m == "mean_latency_s") *out = w.latency.mean();
    else if (m == "max_latency_s") *out = w.latency.max();
    else if (m == "p50_latency_s") *out = w.latency_hist.Percentile(50.0);
    else if (m == "p95_latency_s") *out = w.latency_hist.Percentile(95.0);
    else *out = w.latency_hist.Percentile(99.0);
    return true;
  }
  // Counters: a window with no recorded events genuinely saw zero of them.
  auto cit = w.counters.find(m);
  if (cit != w.counters.end()) {
    *out = cit->second;
    return true;
  }
  auto git = w.gauges.find(m);
  if (git != w.gauges.end()) {
    *out = git->second;
    return true;
  }
  // Known counter-style metrics that simply never fired resolve to 0 only
  // when some *other* window recorded them — the caller handles that by
  // treating unknown names as counters with value 0.
  *out = 0.0;
  return true;
}

bool Breached(const SloSpec& spec, double value) {
  if (spec.has_max && value > spec.max) return true;
  if (spec.has_min && value < spec.min) return true;
  return false;
}

/// How far outside the allowed band `value` sits (0 when conforming) —
/// used to pick the worst observed value.
double Violation(const SloSpec& spec, double value) {
  double v = 0.0;
  if (spec.has_max && value > spec.max) v = std::max(v, value - spec.max);
  if (spec.has_min && value < spec.min) v = std::max(v, spec.min - value);
  return v;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

StatusOr<SloConfig> SloConfig::FromJsonText(const std::string& text) {
  CRAYFISH_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("SLO config: top level must be an object");
  }
  const JsonValue* slos = root.Find("slos");
  if (slos == nullptr || !slos->is_array()) {
    return Status::InvalidArgument(
        "SLO config: missing \"slos\" array");
  }
  SloConfig config;
  for (const JsonValue& entry : slos->as_array()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("SLO config: each slo must be an object");
    }
    SloSpec spec;
    spec.metric = entry.GetStringOr("metric", "");
    if (spec.metric.empty()) {
      return Status::InvalidArgument("SLO config: slo missing \"metric\"");
    }
    spec.name = entry.GetStringOr("name", spec.metric);
    const JsonValue* max = entry.Find("max");
    if (max != nullptr && max->is_number()) {
      spec.max = max->as_number();
      spec.has_max = true;
    }
    const JsonValue* min = entry.Find("min");
    if (min != nullptr && min->is_number()) {
      spec.min = min->as_number();
      spec.has_min = true;
    }
    if (!spec.has_max && !spec.has_min) {
      return Status::InvalidArgument("SLO config: slo \"" + spec.name +
                                     "\" needs a \"max\" or \"min\" bound");
    }
    spec.error_budget = entry.GetNumberOr("error_budget", 0.0);
    if (spec.error_budget < 0.0 || spec.error_budget >= 1.0) {
      return Status::InvalidArgument(
          "SLO config: error_budget must be in [0, 1)");
    }
    config.slos.push_back(std::move(spec));
  }
  if (config.slos.empty()) {
    return Status::InvalidArgument("SLO config: \"slos\" array is empty");
  }
  return config;
}

StatusOr<SloConfig> SloConfig::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read SLO config: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return FromJsonText(text.str());
}

SloReport SloMonitor::Evaluate(const SloConfig& config,
                               const TimelineSampler& timeline) {
  SloReport report;
  report.windows = timeline.windows().size();
  for (const SloSpec& spec : config.slos) {
    SloObjectiveReport obj;
    obj.spec = spec;
    bool in_breach = false;
    for (const TimelineWindow& w : timeline.windows()) {
      double value = 0.0;
      if (!ResolveMetric(spec, w, &value)) {
        // Unevaluated window: an ongoing breach run stays open only while
        // consecutive windows breach, so close it here.
        in_breach = false;
        continue;
      }
      ++obj.windows_evaluated;
      if (!obj.has_worst || Violation(spec, value) >
                                Violation(spec, obj.worst_value)) {
        obj.worst_value = value;
        obj.has_worst = true;
      }
      if (Breached(spec, value)) {
        ++obj.windows_breached;
        if (in_breach && !obj.breaches.empty() &&
            obj.breaches.back().last_window + 1 == w.index) {
          obj.breaches.back().last_window = w.index;
          obj.breaches.back().end_s = w.end_s;
        } else {
          obj.breaches.push_back(
              SloBreachRun{w.index, w.index, w.start_s, w.end_s});
        }
        in_breach = true;
      } else {
        in_breach = false;
      }
    }
    if (obj.windows_evaluated > 0) {
      obj.breach_fraction = static_cast<double>(obj.windows_breached) /
                            static_cast<double>(obj.windows_evaluated);
    }
    if (obj.windows_breached > 0) {
      obj.budget_burn = spec.error_budget > 0.0
                            ? obj.breach_fraction / spec.error_budget
                            : kInfiniteBurn;
    }
    obj.passed = obj.breach_fraction <= spec.error_budget;
    report.passed = report.passed && obj.passed;
    report.objectives.push_back(std::move(obj));
  }
  return report;
}

void SloMonitor::PublishMetrics(const SloReport& report,
                                MetricsRegistry* reg) {
  if (reg == nullptr) return;
  for (const SloObjectiveReport& obj : report.objectives) {
    const MetricLabels labels = {{"slo", obj.spec.name}};
    reg->Gauge("slo_windows_evaluated", labels)
        ->Set(static_cast<double>(obj.windows_evaluated));
    reg->Gauge("slo_windows_breached", labels)
        ->Set(static_cast<double>(obj.windows_breached));
    reg->Gauge("slo_breach_fraction", labels)->Set(obj.breach_fraction);
    reg->Gauge("slo_budget_burn", labels)->Set(obj.budget_burn);
    reg->Gauge("slo_passed", labels)->Set(obj.passed ? 1.0 : 0.0);
  }
  reg->Gauge("slo_report_passed")->Set(report.passed ? 1.0 : 0.0);
}

void SloMonitor::AnnotateTrace(const SloReport& report,
                               TraceRecorder* tracer) {
  if (tracer == nullptr) return;
  for (const SloObjectiveReport& obj : report.objectives) {
    for (const SloBreachRun& run : obj.breaches) {
      tracer->AddTrackSpan("slo", obj.spec.name + " breach", run.start_s,
                           run.end_s);
      tracer->AddInstant("slo", obj.spec.name + " breach", run.start_s);
      tracer->AddInstant("slo", obj.spec.name + " recover", run.end_s);
    }
  }
}

std::string SloReport::Summary() const {
  std::string out;
  for (const SloObjectiveReport& obj : objectives) {
    std::string bound;
    if (obj.spec.has_max) bound += " <= " + FormatDouble(obj.spec.max);
    if (obj.spec.has_min) bound += " >= " + FormatDouble(obj.spec.min);
    out += "  [" + std::string(obj.passed ? "PASS" : "FAIL") + "] " +
           obj.spec.name + ": " + obj.spec.metric + bound + " — " +
           std::to_string(obj.windows_breached) + "/" +
           std::to_string(obj.windows_evaluated) + " windows breached";
    if (obj.has_worst) out += ", worst " + FormatDouble(obj.worst_value);
    if (obj.spec.error_budget > 0.0) {
      out += ", budget burn " + FormatDouble(obj.budget_burn);
    }
    out += "\n";
  }
  out += "  overall: " + std::string(passed ? "PASS" : "FAIL") + "\n";
  return out;
}

JsonValue SloReport::ToJson() const {
  JsonValue root = JsonValue::MakeObject();
  root["passed"] = JsonValue(passed);
  root["windows"] = JsonValue(static_cast<int64_t>(windows));
  JsonValue objs = JsonValue::MakeArray();
  for (const SloObjectiveReport& obj : objectives) {
    JsonValue o = JsonValue::MakeObject();
    o["name"] = JsonValue(obj.spec.name);
    o["metric"] = JsonValue(obj.spec.metric);
    if (obj.spec.has_max) o["max"] = JsonValue(obj.spec.max);
    if (obj.spec.has_min) o["min"] = JsonValue(obj.spec.min);
    o["error_budget"] = JsonValue(obj.spec.error_budget);
    o["windows_evaluated"] =
        JsonValue(static_cast<int64_t>(obj.windows_evaluated));
    o["windows_breached"] =
        JsonValue(static_cast<int64_t>(obj.windows_breached));
    o["breach_fraction"] = JsonValue(obj.breach_fraction);
    o["budget_burn"] = JsonValue(obj.budget_burn);
    o["passed"] = JsonValue(obj.passed);
    if (obj.has_worst) o["worst_value"] = JsonValue(obj.worst_value);
    JsonValue runs = JsonValue::MakeArray();
    for (const SloBreachRun& run : obj.breaches) {
      JsonValue r = JsonValue::MakeObject();
      r["first_window"] = JsonValue(static_cast<int64_t>(run.first_window));
      r["last_window"] = JsonValue(static_cast<int64_t>(run.last_window));
      r["start_s"] = JsonValue(run.start_s);
      r["end_s"] = JsonValue(run.end_s);
      runs.Append(std::move(r));
    }
    o["breaches"] = std::move(runs);
    objs.Append(std::move(o));
  }
  root["objectives"] = std::move(objs);
  return root;
}

Status SloReport::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open: " + path);
  out << ToJson().DumpPretty() << "\n";
  if (!out) return Status::IoError("short write: " + path);
  return Status::Ok();
}

}  // namespace crayfish::obs
