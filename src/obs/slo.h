#ifndef CRAYFISH_OBS_SLO_H_
#define CRAYFISH_OBS_SLO_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace crayfish::obs {

class MetricsRegistry;
class TimelineSampler;
class TraceRecorder;
struct TimelineWindow;

/// One declarative service-level objective, evaluated per timeline window.
///
/// `metric` names a per-window series:
///   - built-ins: p50_latency_s / p95_latency_s / p99_latency_s /
///     mean_latency_s / max_latency_s (skipped on windows with zero
///     completions), throughput_eps, completions;
///   - otherwise a timeline counter (missing counters read as 0) or gauge
///     (skipped when the window has no such gauge).
///
/// A window breaches when the resolved value violates `max` and/or `min`.
/// `error_budget` is the fraction of evaluated windows allowed to breach
/// before the objective as a whole fails (MLPerf Server-style percentile
/// bounds use a 0 budget: one bad window fails the run).
struct SloSpec {
  std::string name;
  std::string metric;
  double max = 0.0;
  double min = 0.0;
  bool has_max = false;
  bool has_min = false;
  double error_budget = 0.0;
};

/// A set of SLOs loaded from JSON:
///   {"slos": [{"name": "p99", "metric": "p99_latency_s", "max": 0.1,
///              "error_budget": 0.05},
///             {"name": "goodput", "metric": "throughput_eps",
///              "min": 500}]}
struct SloConfig {
  std::vector<SloSpec> slos;

  bool active() const { return !slos.empty(); }

  static crayfish::StatusOr<SloConfig> FromJsonText(const std::string& text);
  static crayfish::StatusOr<SloConfig> FromFile(const std::string& path);
};

/// A maximal run of consecutive breached windows.
struct SloBreachRun {
  size_t first_window = 0;
  size_t last_window = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Post-run evaluation of one objective.
struct SloObjectiveReport {
  SloSpec spec;
  size_t windows_evaluated = 0;
  size_t windows_breached = 0;
  /// windows_breached / windows_evaluated (0 when nothing was evaluated).
  double breach_fraction = 0.0;
  /// breach_fraction / error_budget; a zero budget burns infinitely on the
  /// first breach, reported as the sentinel 1e9.
  double budget_burn = 0.0;
  bool passed = true;
  /// Worst observed per-window value (max for `max` bounds, min for `min`
  /// bounds; for two-sided specs, the value furthest outside the band).
  double worst_value = 0.0;
  bool has_worst = false;
  std::vector<SloBreachRun> breaches;
};

/// Whole-run SLO evaluation: per-objective verdicts plus the overall
/// pass/fail conjunction. Stored on ExperimentResult.
struct SloReport {
  std::vector<SloObjectiveReport> objectives;
  size_t windows = 0;
  bool passed = true;

  /// Human-readable multi-line summary for the CLI.
  std::string Summary() const;
  crayfish::JsonValue ToJson() const;
  crayfish::Status WriteJson(const std::string& path) const;
};

/// Evaluates SLO specs against a finalized timeline and fans the verdicts
/// out to the run's observability sinks. Pure analysis — runs after the
/// simulation, never during it.
class SloMonitor {
 public:
  /// `timeline` must be finalized.
  static SloReport Evaluate(const SloConfig& config,
                            const TimelineSampler& timeline);

  /// Publishes slo_* gauges (per objective: windows breached, breach
  /// fraction, budget burn, passed) into the metrics registry.
  static void PublishMetrics(const SloReport& report, MetricsRegistry* reg);

  /// Emits per-breach-run spans plus breach/recover instant events on the
  /// "slo" track of the Chrome trace.
  static void AnnotateTrace(const SloReport& report, TraceRecorder* tracer);
};

}  // namespace crayfish::obs

#endif  // CRAYFISH_OBS_SLO_H_
