#include "obs/stage.h"

namespace crayfish::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kProduce:
      return "produce";
    case Stage::kBrokerAppend:
      return "broker-append";
    case Stage::kFetchPoll:
      return "fetch-poll";
    case Stage::kDeserialize:
      return "deserialize";
    case Stage::kQueueWait:
      return "queue-wait";
    case Stage::kScore:
      return "score";
    case Stage::kServeRpc:
      return "serve-rpc";
    case Stage::kSerialize:
      return "serialize";
    case Stage::kBufferFlushWait:
      return "buffer-flush-wait";
    case Stage::kSinkProduce:
      return "sink-produce";
    case Stage::kOutputAppend:
      return "output-append";
  }
  return "?";
}

const std::vector<Stage>& AllStages() {
  static const std::vector<Stage> kStages = {
      Stage::kProduce,       Stage::kBrokerAppend,   Stage::kFetchPoll,
      Stage::kDeserialize,   Stage::kQueueWait,      Stage::kScore,
      Stage::kServeRpc,      Stage::kSerialize,      Stage::kBufferFlushWait,
      Stage::kSinkProduce,   Stage::kOutputAppend,
  };
  return kStages;
}

}  // namespace crayfish::obs
