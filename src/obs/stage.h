#ifndef CRAYFISH_OBS_STAGE_H_
#define CRAYFISH_OBS_STAGE_H_

#include <vector>

namespace crayfish::obs {

/// The stages of one batch's journey through the simulated pipeline
/// (Fig. 3): each per-batch trace is a monotone sequence of stage marks,
/// and the duration of a stage is the interval ending at its mark. The
/// stages tile the batch's end-to-end latency exactly — from `create_time`
/// to the output topic's LogAppendTime — so a per-stage breakdown sums to
/// the measured latency by construction.
enum class Stage : int {
  /// Creation timestamp -> producer request leaves the client (generator
  /// pacing, linger coalescing, client-side serialization).
  kProduce = 0,
  /// Producer request -> input-topic append (network transfer + broker
  /// request handling).
  kBrokerAppend,
  /// Input-topic append -> fetch response arrives at the engine's consumer
  /// (long-poll wait, broker fetch handling, response transfer).
  kFetchPoll,
  /// Client-side record deserialization before the record becomes
  /// poll-visible.
  kDeserialize,
  /// Consumer buffer + operator input queues: waiting for a task/slot/actor
  /// to start processing the record (may occur more than once per batch in
  /// multi-stage pipelines).
  kQueueWait,
  /// Operator service: source/ingest charge plus the embedded apply() (or,
  /// for external serving, the client-side preparation up to the RPC).
  kScore,
  /// Round trip of the external-serving RPC (request transfer, server
  /// queueing + compute, response transfer, stress stall).
  kServeRpc,
  /// Sink/output operator service: output serialization and produce-path
  /// bookkeeping.
  kSerialize,
  /// Flink network-buffer flush wait: records spanning several 32 KB
  /// buffers sit in partially filled buffers before the emit (§5.3.2).
  kBufferFlushWait,
  /// Scored record -> sink producer request leaves the engine (linger,
  /// client-side serialization).
  kSinkProduce,
  /// Sink producer request -> output-topic append; the batch's trace is
  /// complete at this mark.
  kOutputAppend,
};

inline constexpr int kNumStages = 11;

/// Stable short name ("produce", "broker-append", ...) used in trace
/// exports, CSV columns, and breakdown reports.
const char* StageName(Stage stage);

/// All stages in pipeline order.
const std::vector<Stage>& AllStages();

}  // namespace crayfish::obs

#endif  // CRAYFISH_OBS_STAGE_H_
