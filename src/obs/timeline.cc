#include "obs/timeline.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "obs/defer.h"

namespace crayfish::obs {

namespace {

// Fixed "%.9g" rendering keeps JSONL/CSV byte-identical across same-seed
// runs without dragging full 17-digit noise into the exports.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// RFC 4180: quote a cell when it contains a comma, quote, or newline, and
// double every embedded quote.
std::string CsvCell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string JoinSemicolon(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ";";
    out += item;
  }
  return out;
}

}  // namespace

TimelineSampler::TimelineSampler(double interval_s)
    : interval_s_(interval_s) {
  CRAYFISH_CHECK_GT(interval_s, 0.0);
}

void TimelineSampler::AddProbe(const std::string& name, ProbeKind kind,
                               std::function<double()> fn) {
  CRAYFISH_CHECK(!finalized_);
  for (const Probe& p : probes_) CRAYFISH_CHECK(p.name != name);
  probes_.push_back(Probe{name, kind, std::move(fn), 0.0});
}

void TimelineSampler::EnsureWindow(size_t idx) {
  while (windows_.size() <= idx) {
    TimelineWindow w;
    w.index = windows_.size();
    w.start_s = static_cast<double>(w.index) * interval_s_;
    w.end_s = w.start_s + interval_s_;
    // Faults already active when the window opens; Begin/EndFault maintain
    // this for transitions inside the window.
    w.active_faults = active_faults_;
    windows_.push_back(std::move(w));
  }
}

TimelineWindow& TimelineSampler::WindowAt(double t) {
  if (t < 0.0) t = 0.0;
  const size_t idx = static_cast<size_t>(t / interval_s_);
  EnsureWindow(idx);
  return windows_[idx];
}

void TimelineSampler::ObserveLatency(double t, double latency_s,
                                     uint64_t events) {
  if (DeferIfConfined([this, t, latency_s, events]() {
        ApplyObserveLatency(t, latency_s, events);
      })) {
    return;
  }
  ApplyObserveLatency(t, latency_s, events);
}

void TimelineSampler::ApplyObserveLatency(double t, double latency_s,
                                          uint64_t events) {
  if (finalized_) return;
  TimelineWindow& w = WindowAt(t);
  w.completions += events;
  w.latency.Add(latency_s);
  w.latency_hist.Add(latency_s);
}

void TimelineSampler::Count(const std::string& name, double t, double delta) {
  if (DeferIfConfined(
          [this, name, t, delta]() { ApplyCount(name, t, delta); })) {
    return;
  }
  ApplyCount(name, t, delta);
}

void TimelineSampler::ApplyCount(const std::string& name, double t,
                                 double delta) {
  if (finalized_) return;
  WindowAt(t).counters[name] += delta;
}

void TimelineSampler::Annotate(double t, const std::string& label) {
  if (DeferIfConfined([this, t, label]() { ApplyAnnotate(t, label); })) {
    return;
  }
  ApplyAnnotate(t, label);
}

void TimelineSampler::ApplyAnnotate(double t, const std::string& label) {
  if (finalized_) return;
  WindowAt(t).annotations.push_back(label);
}

void TimelineSampler::BeginFault(const std::string& name, double t) {
  // Fault transitions come from the injector's exclusive events, which
  // always run from global context — no deferral path needed.
  if (finalized_) return;
  active_faults_.insert(name);
  WindowAt(t).active_faults.insert(name);
}

void TimelineSampler::EndFault(const std::string& name, double t) {
  if (finalized_) return;
  active_faults_.erase(name);
  // The fault was still active in the window containing its repair time.
  WindowAt(t).active_faults.insert(name);
}

void TimelineSampler::SampleProbes(TimelineWindow* w) {
  for (Probe& p : probes_) {
    const double v = p.fn();
    if (p.kind == ProbeKind::kGauge) {
      w->gauges[p.name] = v;
    } else {
      w->counters[p.name] += v - p.last;
      p.last = v;
    }
  }
}

void TimelineSampler::AdvanceTo(double t) {
  if (finalized_) return;
  // Close every window whose boundary has passed. State changes scheduled
  // exactly at a boundary belong to the *next* window: the kernel calls
  // AdvanceTo before executing the boundary event.
  while (static_cast<double>(next_to_close_ + 1) * interval_s_ <= t) {
    EnsureWindow(next_to_close_);
    TimelineWindow& w = windows_[next_to_close_];
    SampleProbes(&w);
    w.closed = true;
    ++next_to_close_;
  }
}

double TimelineSampler::NextBoundaryAfter(double t) const {
  // Derived from the close-loop's predicate rather than floor(t/interval):
  // the next boundary is the first (next_to_close_+k+1)*interval strictly
  // greater than t, computed with the same multiplication so the two can
  // never disagree by a rounding ulp.
  size_t idx = next_to_close_;
  while (static_cast<double>(idx + 1) * interval_s_ <= t) ++idx;
  return static_cast<double>(idx + 1) * interval_s_;
}

void TimelineSampler::Finalize(double end_s) {
  if (finalized_) return;
  AdvanceTo(end_s);
  // Materialize the trailing partial window so the timeline covers the
  // full run span even when nothing fed it after the last boundary.
  if (end_s > static_cast<double>(next_to_close_) * interval_s_) {
    EnsureWindow(static_cast<size_t>(end_s / interval_s_));
  }
  // Trailing partial window (if the run did not end exactly on a
  // boundary): close it at the actual end time.
  if (next_to_close_ < windows_.size()) {
    for (size_t i = next_to_close_; i < windows_.size(); ++i) {
      TimelineWindow& w = windows_[i];
      if (end_s > w.start_s && end_s < w.end_s) w.end_s = end_s;
      SampleProbes(&w);
      w.closed = true;
    }
    next_to_close_ = windows_.size();
  }
  finalized_ = true;
}

crayfish::Histogram TimelineSampler::MergedLatencyHistogram() const {
  crayfish::Histogram merged(1e-6, 1e6, 512);
  for (const TimelineWindow& w : windows_) merged.Merge(w.latency_hist);
  return merged;
}

crayfish::RunningStats TimelineSampler::MergedLatencyStats() const {
  crayfish::RunningStats merged;
  for (const TimelineWindow& w : windows_) merged.Merge(w.latency);
  return merged;
}

std::string TimelineSampler::ToJsonl() const {
  std::string out;
  for (const TimelineWindow& w : windows_) {
    JsonValue obj = JsonValue::MakeObject();
    obj["window"] = JsonValue(static_cast<int64_t>(w.index));
    obj["start_s"] = JsonValue(w.start_s);
    obj["end_s"] = JsonValue(w.end_s);
    obj["completions"] = JsonValue(static_cast<int64_t>(w.completions));
    obj["throughput_eps"] = JsonValue(w.throughput_eps());
    if (w.completions > 0) {
      JsonValue lat = JsonValue::MakeObject();
      lat["mean_s"] = JsonValue(w.latency.mean());
      lat["max_s"] = JsonValue(w.latency.max());
      lat["p50_s"] = JsonValue(w.latency_hist.Percentile(50.0));
      lat["p95_s"] = JsonValue(w.latency_hist.Percentile(95.0));
      lat["p99_s"] = JsonValue(w.latency_hist.Percentile(99.0));
      obj["latency"] = std::move(lat);
    }
    if (!w.counters.empty()) {
      JsonValue counters = JsonValue::MakeObject();
      for (const auto& [name, value] : w.counters) {
        counters[name] = JsonValue(value);
      }
      obj["counters"] = std::move(counters);
    }
    if (!w.gauges.empty()) {
      JsonValue gauges = JsonValue::MakeObject();
      for (const auto& [name, value] : w.gauges) {
        gauges[name] = JsonValue(value);
      }
      obj["gauges"] = std::move(gauges);
    }
    if (!w.active_faults.empty()) {
      JsonValue faults = JsonValue::MakeArray();
      for (const std::string& f : w.active_faults) faults.Append(JsonValue(f));
      obj["faults"] = std::move(faults);
    }
    if (!w.annotations.empty()) {
      JsonValue notes = JsonValue::MakeArray();
      for (const std::string& a : w.annotations) notes.Append(JsonValue(a));
      obj["events"] = std::move(notes);
    }
    out += obj.Dump();
    out += "\n";
  }
  return out;
}

std::string TimelineSampler::ToCsv() const {
  // Column set: fixed prefix, then the sorted union of counter and gauge
  // names over all windows (std::set keeps both deterministic).
  std::set<std::string> counter_names;
  std::set<std::string> gauge_names;
  for (const TimelineWindow& w : windows_) {
    for (const auto& [name, value] : w.counters) {
      (void)value;
      counter_names.insert(name);
    }
    for (const auto& [name, value] : w.gauges) {
      (void)value;
      gauge_names.insert(name);
    }
  }
  std::string out =
      "window,start_s,end_s,completions,throughput_eps,latency_mean_s,"
      "latency_p50_s,latency_p95_s,latency_p99_s,latency_max_s";
  for (const std::string& name : counter_names) out += "," + CsvCell(name);
  for (const std::string& name : gauge_names) out += "," + CsvCell(name);
  out += ",active_faults,events\n";
  for (const TimelineWindow& w : windows_) {
    out += std::to_string(w.index);
    out += "," + FormatDouble(w.start_s);
    out += "," + FormatDouble(w.end_s);
    out += "," + std::to_string(w.completions);
    out += "," + FormatDouble(w.throughput_eps());
    if (w.completions > 0) {
      out += "," + FormatDouble(w.latency.mean());
      out += "," + FormatDouble(w.latency_hist.Percentile(50.0));
      out += "," + FormatDouble(w.latency_hist.Percentile(95.0));
      out += "," + FormatDouble(w.latency_hist.Percentile(99.0));
      out += "," + FormatDouble(w.latency.max());
    } else {
      out += ",,,,,";
    }
    for (const std::string& name : counter_names) {
      auto it = w.counters.find(name);
      out += ",";
      if (it != w.counters.end()) out += FormatDouble(it->second);
    }
    for (const std::string& name : gauge_names) {
      auto it = w.gauges.find(name);
      out += ",";
      if (it != w.gauges.end()) out += FormatDouble(it->second);
    }
    out += "," + CsvCell(JoinSemicolon(std::vector<std::string>(
                     w.active_faults.begin(), w.active_faults.end())));
    out += "," + CsvCell(JoinSemicolon(w.annotations));
    out += "\n";
  }
  return out;
}

crayfish::Status TimelineSampler::WriteJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open: " + path);
  out << ToJsonl();
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return crayfish::Status::Ok();
}

crayfish::Status TimelineSampler::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open: " + path);
  out << ToCsv();
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return crayfish::Status::Ok();
}

}  // namespace crayfish::obs
