#ifndef CRAYFISH_OBS_TIMELINE_H_
#define CRAYFISH_OBS_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace crayfish::obs {

/// How a registered probe's reading is folded into a window.
enum class ProbeKind {
  /// Instantaneous reading sampled once at the window boundary (queue
  /// depth, consumer lag, pending sim events). Exported as a gauge column.
  kGauge,
  /// Monotone cumulative reading; the window records the delta since the
  /// previous boundary (busy-seconds, retry totals). Exported as a counter
  /// column.
  kCumulative,
};

/// One tumbling window [start_s, end_s) of the telemetry timeline.
struct TimelineWindow {
  size_t index = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Output-topic completions whose append time fell in this window.
  uint64_t completions = 0;
  /// End-to-end latency of those completions.
  crayfish::RunningStats latency;
  /// Mergeable latency histogram: same geometry as the run-level
  /// HistogramMetric, so per-window histograms roll up into run totals.
  crayfish::Histogram latency_hist{1e-6, 1e6, 512};
  /// Event counts recorded via Count() plus deltas of kCumulative probes.
  std::map<std::string, double> counters;
  /// kGauge probe readings taken at the window boundary.
  std::map<std::string, double> gauges;
  /// Point annotations (autoscale decisions, fault inject/repair marks).
  std::vector<std::string> annotations;
  /// Names of injected faults active at any point during the window.
  std::set<std::string> active_faults;
  /// True once the boundary passed and probes were sampled.
  bool closed = false;

  double span_s() const { return end_s - start_s; }
  double throughput_eps() const {
    const double span = span_s();
    return span > 0.0 ? static_cast<double>(completions) / span : 0.0;
  }
};

/// Continuous telemetry timeline: a DES-clock-driven periodic sampler.
///
/// The sampler divides simulated time into tumbling windows of
/// `interval_s` seconds. Two kinds of data feed it:
///
///  - *Pushed* observations, keyed by simulated timestamp: completion
///    latencies (ObserveLatency), named event counts (Count), point
///    annotations (Annotate) and fault activity (BeginFault/EndFault).
///    Each lands in the window containing its timestamp, so late
///    observations still attribute to the right window.
///  - *Pulled* probes (AddProbe): read-only closures sampled exactly once
///    per window, at the boundary. The simulation kernel drives this by
///    calling AdvanceTo(t) before executing each event — no sampler events
///    are ever scheduled and no RNG is consumed, so enabling the timeline
///    cannot perturb a deterministic run (same guarantee as the trace
///    recorder; asserted by tests/determinism_test.cc).
///
/// All maps are ordered (lint R3) and export formatting is fixed, so
/// JSONL/CSV output is byte-identical across same-seed runs.
class TimelineSampler {
 public:
  explicit TimelineSampler(double interval_s);
  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  double interval_s() const { return interval_s_; }

  /// Registers a named probe. The closure must stay valid until Finalize;
  /// the experiment driver registers probes over objects that outlive the
  /// run. Probe names must be unique.
  void AddProbe(const std::string& name, ProbeKind kind,
                std::function<double()> fn);

  /// Records one completed batch of `events` records with end-to-end
  /// latency `latency_s`, attributed to the window containing time `t`.
  void ObserveLatency(double t, double latency_s, uint64_t events = 1);

  /// Adds `delta` to counter `name` in the window containing `t`.
  void Count(const std::string& name, double t, double delta = 1.0);

  /// Appends a point annotation to the window containing `t`.
  void Annotate(double t, const std::string& label);

  /// Marks fault `name` active from `t` until EndFault. Every window
  /// overlapping the active interval lists the fault.
  void BeginFault(const std::string& name, double t);
  void EndFault(const std::string& name, double t);

  /// Advances the sampling clock to simulated time `t`, closing (and
  /// probe-sampling) every window whose boundary is <= t. Called by
  /// Simulation::Run before each event executes; idempotent within a
  /// window.
  void AdvanceTo(double t);

  /// First window boundary strictly after `t`. The partitioned simulation
  /// caps each parallel window's horizon here so a boundary is only ever
  /// crossed at a global synchronization point: probes sample fully merged
  /// barrier state, and gauge readings are identical at every thread
  /// count.
  double NextBoundaryAfter(double t) const;

  /// Closes the trailing partial window at the end of the run. After this
  /// the timeline is immutable.
  void Finalize(double end_s);
  bool finalized() const { return finalized_; }

  const std::vector<TimelineWindow>& windows() const { return windows_; }

  /// Roll-up of all per-window latency histograms / stats — equals the
  /// whole-run distribution exactly (Histogram::Merge is lossless).
  crayfish::Histogram MergedLatencyHistogram() const;
  crayfish::RunningStats MergedLatencyStats() const;

  /// One JSON object per window, one per line.
  std::string ToJsonl() const;
  /// RFC 4180 CSV; counter/gauge columns are the sorted union across all
  /// windows.
  std::string ToCsv() const;
  crayfish::Status WriteJsonl(const std::string& path) const;
  crayfish::Status WriteCsv(const std::string& path) const;

 private:
  struct Probe {
    std::string name;
    ProbeKind kind;
    std::function<double()> fn;
    /// Last reading, for kCumulative deltas.
    double last = 0.0;
  };

  // Mutation bodies behind the public feeds. Each public feed is
  // barrier-deferred when called from a confined callback (obs/defer.h)
  // and applies inline otherwise; Apply* forms run only from global or
  // barrier context — always before the window containing `t` closes,
  // because parallel window horizons are capped at NextBoundaryAfter.
  void ApplyObserveLatency(double t, double latency_s, uint64_t events);
  void ApplyCount(const std::string& name, double t, double delta);
  void ApplyAnnotate(double t, const std::string& label);

  /// Grows `windows_` through index `idx`, seeding new windows with the
  /// currently active fault set.
  void EnsureWindow(size_t idx);
  TimelineWindow& WindowAt(double t);
  /// Samples every probe into the window being closed.
  void SampleProbes(TimelineWindow* w);

  double interval_s_;
  std::vector<TimelineWindow> windows_;
  std::vector<Probe> probes_;
  std::set<std::string> active_faults_;
  /// Index of the first window whose boundary has not yet passed.
  size_t next_to_close_ = 0;
  bool finalized_ = false;
};

}  // namespace crayfish::obs

#endif  // CRAYFISH_OBS_TIMELINE_H_
