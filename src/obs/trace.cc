#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/defer.h"

namespace crayfish::obs {

namespace {

// Fixed-precision formatting keeps exports byte-stable across runs.
std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void TraceRecorder::StartBatch(uint64_t batch_id, double create_time_s) {
  if (DeferIfConfined([this, batch_id, create_time_s]() {
        ApplyStartBatch(batch_id, create_time_s);
      })) {
    return;
  }
  ApplyStartBatch(batch_id, create_time_s);
}

void TraceRecorder::Mark(uint64_t batch_id, Stage stage, double time_s) {
  if (DeferIfConfined([this, batch_id, stage, time_s]() {
        ApplyMark(batch_id, stage, time_s);
      })) {
    return;
  }
  ApplyMark(batch_id, stage, time_s);
}

void TraceRecorder::MarkProduce(uint64_t batch_id, double time_s) {
  if (DeferIfConfined([this, batch_id, time_s]() {
        ApplyMarkProduce(batch_id, time_s);
      })) {
    return;
  }
  ApplyMarkProduce(batch_id, time_s);
}

void TraceRecorder::MarkAppend(uint64_t batch_id, double time_s) {
  if (DeferIfConfined([this, batch_id, time_s]() {
        ApplyMarkAppend(batch_id, time_s);
      })) {
    return;
  }
  ApplyMarkAppend(batch_id, time_s);
}

void TraceRecorder::ApplyStartBatch(uint64_t batch_id,
                                    double create_time_s) {
  BatchTrace& bt = batches_[batch_id];
  bt.start_s = create_time_s;
}

void TraceRecorder::ApplyMark(uint64_t batch_id, Stage stage,
                              double time_s) {
  auto it = batches_.find(batch_id);
  if (it == batches_.end()) return;
  BatchTrace& bt = it->second;
  if (bt.complete) return;
  const double prev =
      bt.marks.empty() ? bt.start_s : bt.marks.back().time_s;
  // The DES delivers effects in causal order, so marks should already be
  // nondecreasing; clamp defensively so a same-instant callback ordering
  // quirk yields a zero-duration stage rather than a negative one.
  bt.marks.push_back(StageMark{stage, std::max(time_s, prev)});
  if (stage == Stage::kOutputAppend) {
    bt.complete = true;
    ++completed_;
  }
}

void TraceRecorder::ApplyMarkProduce(uint64_t batch_id, double time_s) {
  auto it = batches_.find(batch_id);
  if (it == batches_.end() || it->second.complete) return;
  ApplyMark(batch_id,
            it->second.appends == 0 ? Stage::kProduce : Stage::kSinkProduce,
            time_s);
}

void TraceRecorder::ApplyMarkAppend(uint64_t batch_id, double time_s) {
  auto it = batches_.find(batch_id);
  if (it == batches_.end() || it->second.complete) return;
  const Stage stage = it->second.appends == 0 ? Stage::kBrokerAppend
                                              : Stage::kOutputAppend;
  ++it->second.appends;
  ApplyMark(batch_id, stage, time_s);
}

void TraceRecorder::AddTrackSpan(const std::string& track,
                                 const std::string& name, double start_s,
                                 double end_s) {
  if (DeferIfConfined([this, track, name, start_s, end_s]() {
        track_spans_.push_back(
            TrackSpan{track, name, start_s, std::max(end_s, start_s)});
      })) {
    return;
  }
  track_spans_.push_back(
      TrackSpan{track, name, start_s, std::max(end_s, start_s)});
}

void TraceRecorder::AddInstant(const std::string& track,
                               const std::string& name, double time_s) {
  if (DeferIfConfined([this, track, name, time_s]() {
        instants_.push_back(InstantEvent{track, name, time_s});
      })) {
    return;
  }
  instants_.push_back(InstantEvent{track, name, time_s});
}

std::string TraceRecorder::ToChromeTraceJson() const {
  // Chrome trace-event (catapult) JSON. pid 1 holds one lane (tid) per
  // pipeline stage so a batch renders as a staircase across lanes; pid 2
  // holds one lane per auxiliary resource track. ts/dur are microseconds.
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) os << ",";
    first = false;
    os << "\n" << ev;
  };

  for (int i = 0; i < kNumStages; ++i) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(i) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         EscapeJson(StageName(static_cast<Stage>(i))) + "\"}}");
  }
  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
       "\"args\":{\"name\":\"pipeline stages\"}}");

  for (const auto& [batch_id, bt] : batches_) {
    double prev = bt.start_s;
    for (const StageMark& m : bt.marks) {
      emit("{\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(static_cast<int>(m.stage)) + ",\"name\":\"" +
           EscapeJson(StageName(m.stage)) +
           "\",\"ts\":" + FormatDouble(prev * 1e6, 3) +
           ",\"dur\":" + FormatDouble((m.time_s - prev) * 1e6, 3) +
           ",\"args\":{\"batch_id\":" + std::to_string(batch_id) + "}}");
      prev = m.time_s;
    }
  }

  // Auxiliary resource tracks: assign tids in first-seen order, which is
  // deterministic because spans are recorded in simulated-event order.
  // Instant-only tracks (e.g. "slo") get tids after all span tracks.
  std::map<std::string, int> track_tid;
  std::vector<std::string> track_order;
  for (const TrackSpan& s : track_spans_) {
    if (track_tid.emplace(s.track, static_cast<int>(track_order.size()))
            .second) {
      track_order.push_back(s.track);
    }
  }
  for (const InstantEvent& ev : instants_) {
    if (track_tid.emplace(ev.track, static_cast<int>(track_order.size()))
            .second) {
      track_order.push_back(ev.track);
    }
  }
  if (!track_order.empty()) {
    emit("{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
         "\"args\":{\"name\":\"resources\"}}");
    for (size_t i = 0; i < track_order.size(); ++i) {
      emit("{\"ph\":\"M\",\"pid\":2,\"tid\":" + std::to_string(i) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           EscapeJson(track_order[i]) + "\"}}");
    }
    for (const TrackSpan& s : track_spans_) {
      emit("{\"ph\":\"X\",\"pid\":2,\"tid\":" +
           std::to_string(track_tid[s.track]) + ",\"name\":\"" +
           EscapeJson(s.name) +
           "\",\"ts\":" + FormatDouble(s.start_s * 1e6, 3) +
           ",\"dur\":" + FormatDouble((s.end_s - s.start_s) * 1e6, 3) +
           "}");
    }
    for (const InstantEvent& ev : instants_) {
      emit("{\"ph\":\"i\",\"pid\":2,\"tid\":" +
           std::to_string(track_tid[ev.track]) + ",\"name\":\"" +
           EscapeJson(ev.name) +
           "\",\"ts\":" + FormatDouble(ev.time_s * 1e6, 3) +
           ",\"s\":\"t\"}");
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

crayfish::Status TraceRecorder::WriteChromeTrace(
    const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open: " + path);
  out << ToChromeTraceJson();
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return crayfish::Status::Ok();
}

std::string TraceRecorder::ToStageCsv() const {
  std::ostringstream os;
  os << "batch_id,stage,start_s,end_s,duration_ms\n";
  char line[160];
  for (const auto& [batch_id, bt] : batches_) {
    double prev = bt.start_s;
    for (const StageMark& m : bt.marks) {
      std::snprintf(line, sizeof(line), "%llu,%s,%.9f,%.9f,%.6f\n",
                    static_cast<unsigned long long>(batch_id),
                    StageName(m.stage), prev, m.time_s,
                    (m.time_s - prev) * 1000.0);
      os << line;
      prev = m.time_s;
    }
  }
  return os.str();
}

crayfish::Status TraceRecorder::WriteStageCsv(
    const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return crayfish::Status::IoError("cannot open: " + path);
  out << ToStageCsv();
  if (!out) return crayfish::Status::IoError("short write: " + path);
  return crayfish::Status::Ok();
}

}  // namespace crayfish::obs
