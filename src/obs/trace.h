#ifndef CRAYFISH_OBS_TRACE_H_
#define CRAYFISH_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/stage.h"

namespace crayfish::obs {

/// Per-batch trace recorder for the simulated pipeline.
///
/// Components mark stage boundaries as each batch passes through them:
/// `StartBatch` opens the trace at the batch's creation timestamp and every
/// subsequent `Mark(stage, t)` closes an interval `[previous mark, t]`
/// attributed to `stage`. Because intervals are defined by consecutive
/// marks, the per-stage durations of a completed batch tile its end-to-end
/// latency exactly — the invariant the latency-breakdown analyzer relies
/// on.
///
/// All timestamps are *simulated* time (never wall clock) and recording is
/// purely passive — no events are scheduled, no RNG is consumed — so
/// enabling tracing cannot perturb a deterministic run. When tracing is
/// disabled components skip the recorder entirely (null pointer on the
/// Simulation), making the hooks a single branch.
class TraceRecorder {
 public:
  struct StageMark {
    Stage stage;
    /// End of the stage interval (seconds, simulated clock).
    double time_s;
  };

  struct BatchTrace {
    /// Creation timestamp — start of the first interval.
    double start_s = 0.0;
    std::vector<StageMark> marks;
    /// Number of broker appends seen (1 = input topic, 2 = output topic).
    int appends = 0;
    /// True once the output-topic append is recorded; further marks for
    /// this batch (e.g. from the measurement consumer fetching the output
    /// topic) are ignored.
    bool complete = false;
  };

  /// A span on a named auxiliary track (server pools, serial executors).
  struct TrackSpan {
    std::string track;
    std::string name;
    double start_s;
    double end_s;
  };

  /// A point-in-time marker on a named auxiliary track (SLO breach /
  /// recover transitions, autoscale decisions).
  struct InstantEvent {
    std::string track;
    std::string name;
    double time_s;
  };

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens the trace of `batch_id` at its creation timestamp. Called by
  /// the input producer; marks for unknown batches are dropped.
  void StartBatch(uint64_t batch_id, double create_time_s);

  /// Closes the interval [previous mark, time_s] as `stage`. Timestamps
  /// must be nondecreasing per batch; earlier times clamp to the previous
  /// mark (a zero-duration stage).
  void Mark(uint64_t batch_id, Stage stage, double time_s);

  /// Producer-side mark that resolves the stage by position in the
  /// pipeline: kProduce before the input-topic append, kSinkProduce after.
  void MarkProduce(uint64_t batch_id, double time_s);

  /// Broker-append mark: kBrokerAppend for the first append (input topic),
  /// kOutputAppend for the second, which completes the batch's trace.
  void MarkAppend(uint64_t batch_id, double time_s);

  /// Records a span on a named auxiliary track (e.g. a ServerPool's
  /// queue-wait and service intervals). Exported as its own Perfetto
  /// track group.
  void AddTrackSpan(const std::string& track, const std::string& name,
                    double start_s, double end_s);

  /// Records an instant event on a named auxiliary track, rendered as a
  /// point marker in the Perfetto UI ("ph":"i").
  void AddInstant(const std::string& track, const std::string& name,
                  double time_s);

  size_t batch_count() const { return batches_.size(); }
  size_t completed_batches() const { return completed_; }
  const std::map<uint64_t, BatchTrace>& batches() const { return batches_; }
  const std::vector<TrackSpan>& track_spans() const { return track_spans_; }
  const std::vector<InstantEvent>& instants() const { return instants_; }

  /// Chrome trace-event JSON (catapult format, Perfetto-loadable): one
  /// lane per pipeline stage plus one lane per auxiliary track.
  std::string ToChromeTraceJson() const;
  crayfish::Status WriteChromeTrace(const std::string& path) const;

  /// Per-span CSV: batch_id,stage,start_s,end_s,duration_ms.
  std::string ToStageCsv() const;
  crayfish::Status WriteStageCsv(const std::string& path) const;

 private:
  // Mutation bodies behind the public recorders. Each public mutator is
  // barrier-deferred when called from a confined callback (obs/defer.h)
  // and applies inline otherwise; the Apply* forms run the actual state
  // change and are only ever executed from global/barrier context.
  void ApplyStartBatch(uint64_t batch_id, double create_time_s);
  void ApplyMark(uint64_t batch_id, Stage stage, double time_s);
  void ApplyMarkProduce(uint64_t batch_id, double time_s);
  void ApplyMarkAppend(uint64_t batch_id, double time_s);

  std::map<uint64_t, BatchTrace> batches_;
  std::vector<TrackSpan> track_spans_;
  std::vector<InstantEvent> instants_;
  size_t completed_ = 0;
};

}  // namespace crayfish::obs

/// Stage-mark hook for components holding a `sim::Simulation*`. Expands to
/// a single null-check when tracing is enabled at build time and to
/// nothing when Crayfish is built with -DCRAYFISH_DISABLE_TRACING.
#ifdef CRAYFISH_DISABLE_TRACING
#define CRAYFISH_TRACE_MARK(sim, batch_id, stage) ((void)0)
#define CRAYFISH_TRACE_WITH(sim, tracer_var, body) ((void)0)
#else
#define CRAYFISH_TRACE_MARK(sim, batch_id, stage)                        \
  do {                                                                   \
    if (::crayfish::obs::TraceRecorder* _crayfish_tr = (sim)->tracer())  \
      _crayfish_tr->Mark((batch_id), (stage), (sim)->Now());             \
  } while (0)
/// Runs `body` with `tracer_var` bound to the recorder, only when tracing
/// is on — for hooks needing more than a single mark.
#define CRAYFISH_TRACE_WITH(sim, tracer_var, body)                       \
  do {                                                                   \
    if (::crayfish::obs::TraceRecorder* tracer_var = (sim)->tracer()) {  \
      body;                                                              \
    }                                                                    \
  } while (0)
#endif

#endif  // CRAYFISH_OBS_TRACE_H_
