#include "scale/autoscaler.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::scale {

Actuator::Actuator(sim::Simulation* sim, std::string name,
                   ActuatorHooks hooks)
    : sim_(sim), name_(std::move(name)), hooks_(std::move(hooks)) {
  CRAYFISH_CHECK(hooks_.current_replicas != nullptr)
      << "Actuator needs a current_replicas hook";
  CRAYFISH_CHECK(hooks_.set_replicas != nullptr)
      << "Actuator needs a set_replicas hook";
  peak_ = hooks_.current_replicas();
}

int Actuator::Apply(double now_s, int target, const std::string& reason) {
  const int current = hooks_.current_replicas();
  const int delta = target - current;
  if (delta == 0) return 0;
  hooks_.set_replicas(target);
  peak_ = std::max(peak_, target);
  if (delta > 0) {
    ++scale_ups_;
  } else {
    ++scale_downs_;
  }
  actions_.push_back(ScalingAction{now_s, current, target, reason});
  if (obs::TimelineSampler* tl = sim_->timeline()) {
    const char* dir = delta > 0 ? "autoscale-up:" : "autoscale-down:";
    tl->Annotate(now_s, dir + name_ + ":" + std::to_string(target) + " (" +
                            reason + ")");
    tl->Count("autoscale_events", now_s);
  }
  if (obs::MetricsRegistry* m = sim_->metrics()) {
    const obs::MetricLabels labels = {{"pool", name_}};
    m->Counter(delta > 0 ? "autoscale_up_total" : "autoscale_down_total",
               labels)
        ->Increment();
    m->Gauge("autoscale_replicas", labels)->Set(target);
    m->Histogram("autoscale_step", labels)
        ->Observe(static_cast<double>(delta > 0 ? delta : -delta));
  }
  return delta;
}

Autoscaler::Autoscaler(sim::Simulation* sim, const PolicyConfig& config,
                       Actuator* actuator,
                       std::function<PolicyInput(double)> sampler)
    : sim_(sim),
      config_(config),
      actuator_(actuator),
      sampler_(std::move(sampler)),
      // A resize at t=0 (initial sizing) should not trip the cooldown gate
      // on the first tick.
      last_resize_s_(-config.cooldown_s - 1.0) {}

Status Autoscaler::Arm(double until_s) {
  CRAYFISH_RETURN_IF_ERROR(config_.Validate());
  CRAYFISH_ASSIGN_OR_RETURN(policy_, CreatePolicy(config_));
  CRAYFISH_CHECK(sampler_ != nullptr) << "Autoscaler needs a sampler";
  // Pre-schedule every tick up front (the FaultInjector::Arm pattern):
  // exclusive events execute at global sync points with all partitions
  // quiescent, and scheduling them from setup keeps re-scheduling out of
  // exclusive context entirely.
  for (double t = config_.interval_s; t <= until_s; t += config_.interval_s) {
    sim_->ScheduleExclusiveAt("", t, [this, t]() { Tick(t); });
  }
  return Status::Ok();
}

void Autoscaler::Tick(double now_s) {
  ++ticks_;
  PolicyInput in = sampler_(now_s);
  in.now_s = now_s;
  in.current_replicas = actuator_->current();
  PolicyDecision d = policy_->Evaluate(in);

  // Guard rails, in order: per-tick step clamp, bounds, cooldown, then
  // scale-in hysteresis (consecutive shrink votes survive the clamps but
  // reset on any non-shrink decision).
  int target = std::clamp(d.target, in.current_replicas - config_.step,
                          in.current_replicas + config_.step);
  target = std::clamp(target, config_.min_replicas, config_.max_replicas);

  if (target == in.current_replicas) {
    shrink_votes_ = 0;
    return;
  }
  if (now_s - last_resize_s_ < config_.cooldown_s) {
    // Cooling down: suppress the resize but keep counting shrink intent.
    if (target < in.current_replicas) ++shrink_votes_;
    return;
  }
  if (target < in.current_replicas) {
    ++shrink_votes_;
    if (shrink_votes_ < config_.scale_in_hysteresis) return;
  }
  shrink_votes_ = 0;
  // lint: cross-host-ok autoscaler control plane: ticks are exclusive events executed at global sync points, so the resize mutates serving state with every partition quiescent
  if (actuator_->Apply(now_s, target, d.reason) != 0) {
    last_resize_s_ = now_s;
  }
}

AutoscaleSummary Autoscaler::Summary() const {
  AutoscaleSummary s;
  s.ticks = ticks_;
  s.scale_ups = actuator_->scale_ups();
  s.scale_downs = actuator_->scale_downs();
  s.peak_replicas = actuator_->peak_replicas();
  s.final_replicas = actuator_->current();
  s.actions = actuator_->actions();
  return s;
}

}  // namespace crayfish::scale
