#ifndef CRAYFISH_SCALE_AUTOSCALER_H_
#define CRAYFISH_SCALE_AUTOSCALER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "scale/policy.h"
#include "sim/simulation.h"

namespace crayfish::scale {

/// Resize plumbing the actuator drives: the same injector paths the PR 5
/// `worker_resize`/`task_restart` fault kinds use, handed in as closures so
/// scale stays below core in the layering DAG.
struct ActuatorHooks {
  /// Current serving replica count.
  std::function<int()> current_replicas;
  /// Resize the serving pool to an absolute replica count. Shrinks must
  /// drain in-flight work (ServerPool::ResizeGraceful) — the autoscaler
  /// asserts zero losses across scale-in.
  std::function<void(int)> set_replicas;
  /// Optional: restart operator task `index` (consumer session rewind), so
  /// policies can force a rebalance after repeated breaches.
  std::function<void(int)> task_restart;
};

/// One applied resize, for the run report.
struct ScalingAction {
  double t_s = 0.0;
  int from = 0;
  int to = 0;
  std::string reason;
};

/// Run-level roll-up surfaced in `core::ExperimentResult`.
struct AutoscaleSummary {
  uint64_t ticks = 0;
  uint64_t scale_ups = 0;
  uint64_t scale_downs = 0;
  int peak_replicas = 0;
  int final_replicas = 0;
  std::vector<ScalingAction> actions;
};

/// Applies resize decisions through the injector hooks and reports them:
/// timeline annotations ("autoscale-up:<name>:<target>" /
/// "autoscale-down:<name>:<target>", matching the embedded serving
/// autoscaler's naming), the `autoscale_events` window counter, and
/// `autoscale_*` registry metrics. Runs only from exclusive global-plane
/// events, so every mutation lands at a synchronization point.
class Actuator {
 public:
  Actuator(sim::Simulation* sim, std::string name, ActuatorHooks hooks);

  /// Resizes to `target` (no-op when target equals the current count).
  /// Returns the applied delta (target - previous).
  int Apply(double now_s, int target, const std::string& reason);

  int current() const { return hooks_.current_replicas(); }
  const std::vector<ScalingAction>& actions() const { return actions_; }
  uint64_t scale_ups() const { return scale_ups_; }
  uint64_t scale_downs() const { return scale_downs_; }
  int peak_replicas() const { return peak_; }

 private:
  sim::Simulation* sim_;
  std::string name_;
  ActuatorHooks hooks_;
  std::vector<ScalingAction> actions_;
  uint64_t scale_ups_ = 0;
  uint64_t scale_downs_ = 0;
  int peak_ = 0;
};

/// DES-scheduled elastic control loop.
///
/// Arm() pre-schedules every evaluation tick as an exclusive event
/// (`ScheduleExclusiveAt`, the fault-injector pattern), so the loop samples
/// merged barrier state and mutates cross-partition substrates with every
/// partition quiescent — decisions, and therefore the whole run, are
/// byte-for-byte identical at any `sim_threads` value (DESIGN.md §4.8).
///
/// Each tick: pull a PolicyInput from the sampler closure (broker lag /
/// serving utilization gauges), evaluate the policy, clamp to
/// [min_replicas, max_replicas] and the per-tick step, enforce the
/// post-resize cooldown, require `scale_in_hysteresis` consecutive
/// shrink votes, then actuate.
class Autoscaler {
 public:
  /// `sampler` is called at each tick (global plane, partitions quiescent)
  /// and must fill every PolicyInput field except current_replicas.
  Autoscaler(sim::Simulation* sim, const PolicyConfig& config,
             Actuator* actuator, std::function<PolicyInput(double)> sampler);

  /// Validates the config/policy and pre-schedules ticks at
  /// k * interval_s for k = 1.. while k * interval_s <= until_s.
  Status Arm(double until_s);

  AutoscaleSummary Summary() const;
  const PolicyConfig& config() const { return config_; }

 private:
  void Tick(double now_s);

  sim::Simulation* sim_;
  PolicyConfig config_;
  Actuator* actuator_;
  std::function<PolicyInput(double)> sampler_;
  std::unique_ptr<ScalingPolicy> policy_;
  uint64_t ticks_ = 0;
  double last_resize_s_;
  int shrink_votes_ = 0;
};

}  // namespace crayfish::scale

#endif  // CRAYFISH_SCALE_AUTOSCALER_H_
