#include "scale/demand.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace crayfish::scale {
namespace {

/// CSV cell formatting for rates: fixed 6-digit precision with trailing
/// zeros trimmed, so tables are byte-stable across platforms.
std::string FormatRate(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

/// Per-cell bisection state over [lo, hi] for the minimal feasible count.
struct CellSearch {
  DemandCell cell;
  int lo = 1;
  int hi = 1;
  bool done = false;

  int Midpoint() const { return lo + (hi - lo) / 2; }

  void Observe(int replicas, const DemandProbeResult& r) {
    ++cell.probes;
    if (r.slo_ok) {
      cell.feasible = true;
      cell.demand = replicas;
      cell.achieved_eps = r.achieved_eps;
      cell.detail = r.detail;
      hi = replicas - 1;
    } else {
      lo = replicas + 1;
      // Infeasible-so-far cells still report the throughput the largest
      // failing probe achieved — "how close it got" is the interesting
      // part of an infeasible row.
      if (!cell.feasible) {
        cell.achieved_eps = std::max(cell.achieved_eps, r.achieved_eps);
        cell.detail = r.detail;
      }
    }
    if (lo > hi) done = true;
  }
};

Status WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write: " + path);
  out << text;
  return Status::Ok();
}

}  // namespace

Status DemandConfig::Validate() const {
  if (engines.empty()) {
    return Status::InvalidArgument("demand search needs >= 1 engine");
  }
  if (loads_eps.empty()) {
    return Status::InvalidArgument("demand search needs >= 1 load intensity");
  }
  for (double load : loads_eps) {
    if (load <= 0.0) {
      return Status::InvalidArgument("demand load intensities must be > 0");
    }
  }
  if (min_replicas < 1 || max_replicas < min_replicas) {
    return Status::InvalidArgument(
        "demand search needs 1 <= min_replicas <= max_replicas");
  }
  return Status::Ok();
}

std::string DemandTable::ToCsv() const {
  std::ostringstream out;
  out << "engine,load_eps,feasible,demand,probes,achieved_eps\n";
  for (const DemandCell& c : cells) {
    out << c.engine << ',' << FormatRate(c.load_eps) << ','
        << (c.feasible ? 1 : 0) << ',' << (c.feasible ? c.demand : 0) << ','
        << c.probes << ',' << FormatRate(c.achieved_eps) << '\n';
  }
  return out.str();
}

JsonValue DemandTable::ToJson() const {
  JsonValue arr = JsonValue::MakeArray();
  for (const DemandCell& c : cells) {
    JsonValue o = JsonValue::MakeObject();
    o["engine"] = JsonValue(c.engine);
    o["load_eps"] = JsonValue(c.load_eps);
    o["feasible"] = JsonValue(c.feasible);
    o["demand"] = JsonValue(static_cast<double>(c.feasible ? c.demand : 0));
    o["probes"] = JsonValue(static_cast<double>(c.probes));
    o["achieved_eps"] = JsonValue(c.achieved_eps);
    o["detail"] = JsonValue(c.detail);
    arr.Append(std::move(o));
  }
  return arr;
}

Status DemandTable::WriteCsv(const std::string& path) const {
  return WriteText(path, ToCsv());
}

Status DemandTable::WriteJson(const std::string& path) const {
  return WriteText(path, ToJson().DumpPretty());
}

StatusOr<DemandTable> RunDemandSearch(const DemandConfig& config,
                                      const DemandProbeBatch& probe) {
  CRAYFISH_RETURN_IF_ERROR(config.Validate());
  if (probe == nullptr) {
    return Status::InvalidArgument("demand search needs a probe callback");
  }

  // Cell order (engine-major, then load) is the table's row order.
  std::vector<CellSearch> searches;
  for (const std::string& engine : config.engines) {
    for (double load : config.loads_eps) {
      CellSearch s;
      s.cell.engine = engine;
      s.cell.load_eps = load;
      s.lo = config.min_replicas;
      s.hi = config.max_replicas;
      searches.push_back(std::move(s));
    }
  }

  // Wave loop: every unfinished cell contributes its midpoint probe to one
  // batch. Bisection needs at most ceil(log2(range)) + 1 waves.
  while (true) {
    std::vector<size_t> active;
    std::vector<DemandQuery> queries;
    for (size_t i = 0; i < searches.size(); ++i) {
      if (searches[i].done) continue;
      active.push_back(i);
      queries.push_back(DemandQuery{searches[i].cell.engine,
                                    searches[i].cell.load_eps,
                                    searches[i].Midpoint()});
    }
    if (queries.empty()) break;
    std::vector<DemandProbeResult> results = probe(queries);
    if (results.size() != queries.size()) {
      return Status::Internal("demand probe returned " +
                              std::to_string(results.size()) + " results for " +
                              std::to_string(queries.size()) + " queries");
    }
    for (size_t k = 0; k < active.size(); ++k) {
      searches[active[k]].Observe(queries[k].replicas, results[k]);
    }
  }

  DemandTable table;
  table.cells.reserve(searches.size());
  for (CellSearch& s : searches) {
    table.cells.push_back(std::move(s.cell));
  }
  return table;
}

}  // namespace crayfish::scale
