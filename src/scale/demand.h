#ifndef CRAYFISH_SCALE_DEMAND_H_
#define CRAYFISH_SCALE_DEMAND_H_

#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace crayfish::scale {

/// One SLO probe the search wants answered: does `engine` at `load_eps`
/// input rate hold its SLO with `replicas` serving replicas?
struct DemandQuery {
  std::string engine;
  double load_eps = 0.0;
  int replicas = 1;
};

/// Answer to one DemandQuery.
struct DemandProbeResult {
  bool slo_ok = false;
  /// Achieved output throughput, for the table report.
  double achieved_eps = 0.0;
  /// Free-form detail (e.g. the SLO summary line).
  std::string detail;
};

/// Batch probe: runs every query (one experiment each) and returns results
/// in query order. The bench layer implements this on top of
/// `core::SweepRunner` / `core::RunExperiments`, so the whole wave runs in
/// the sweep thread pool; handing it in as a closure keeps `scale` below
/// `core` in the layering DAG.
using DemandProbeBatch =
    std::function<std::vector<DemandProbeResult>(
        const std::vector<DemandQuery>&)>;

/// Search space: engines x load intensities, replica bounds.
struct DemandConfig {
  std::vector<std::string> engines;
  std::vector<double> loads_eps;
  int min_replicas = 1;
  int max_replicas = 32;

  Status Validate() const;
};

/// One cell of the demand table: the minimal replica count whose SLO holds
/// for (engine, load), or infeasible when even max_replicas breaches.
struct DemandCell {
  std::string engine;
  double load_eps = 0.0;
  bool feasible = false;
  int demand = 0;  ///< minimal SLO-holding replicas (valid when feasible)
  int probes = 0;  ///< experiments spent on this cell
  double achieved_eps = 0.0;  ///< throughput at the demand point
  std::string detail;
};

/// Theodolite-style demand table: resources required per load intensity,
/// per engine (Henning & Hasselbring's scalability metric).
struct DemandTable {
  std::vector<DemandCell> cells;

  /// RFC 4180 CSV: engine,load_eps,feasible,demand,probes,achieved_eps.
  std::string ToCsv() const;
  JsonValue ToJson() const;
  Status WriteCsv(const std::string& path) const;
  Status WriteJson(const std::string& path) const;
};

/// Binary-searches the minimal SLO-holding replica count per
/// engine x load cell. Wave-based: every still-searching cell contributes
/// its midpoint query to one batch, the batch runs through `probe` (the
/// sweep pool), and bounds tighten — so parallelism comes from the batch,
/// while the per-cell search stays a deterministic bisection.
StatusOr<DemandTable> RunDemandSearch(const DemandConfig& config,
                                      const DemandProbeBatch& probe);

}  // namespace crayfish::scale

#endif  // CRAYFISH_SCALE_DEMAND_H_
