#include "scale/policy.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace crayfish::scale {
namespace {

Status ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double d = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: " + value);
  }
  *out = d;
  return Status::Ok();
}

Status ParseInt(const std::string& value, int* out) {
  double d = 0.0;
  CRAYFISH_RETURN_IF_ERROR(ParseDouble(value, &d));
  *out = static_cast<int>(d);
  return Status::Ok();
}

}  // namespace

Status PolicyConfig::Validate() const {
  if (kind != "reactive" && kind != "predictive") {
    return Status::InvalidArgument("unknown autoscaler policy: \"" + kind +
                                   "\" (want reactive | predictive)");
  }
  if (interval_s <= 0.0) {
    return Status::InvalidArgument("autoscaler interval_s must be > 0");
  }
  if (min_replicas < 1) {
    return Status::InvalidArgument("autoscaler min_replicas must be >= 1");
  }
  if (max_replicas < min_replicas) {
    return Status::InvalidArgument(
        "autoscaler max_replicas must be >= min_replicas");
  }
  if (step < 1) {
    return Status::InvalidArgument("autoscaler step must be >= 1");
  }
  if (cooldown_s < 0.0) {
    return Status::InvalidArgument("autoscaler cooldown_s must be >= 0");
  }
  if (scale_in_hysteresis < 1) {
    return Status::InvalidArgument(
        "autoscaler scale_in_hysteresis must be >= 1");
  }
  if (scale_up_lag <= scale_down_lag) {
    return Status::InvalidArgument(
        "autoscaler scale_up_lag must exceed scale_down_lag");
  }
  if (scale_up_utilization <= scale_down_utilization) {
    return Status::InvalidArgument(
        "autoscaler scale_up_utilization must exceed scale_down_utilization");
  }
  if (kind == "predictive") {
    if (hw_alpha <= 0.0 || hw_alpha > 1.0 || hw_beta <= 0.0 || hw_beta > 1.0) {
      return Status::InvalidArgument(
          "autoscaler hw_alpha/hw_beta must be in (0, 1]");
    }
    if (horizon_s < 0.0) {
      return Status::InvalidArgument("autoscaler horizon_s must be >= 0");
    }
    if (rate_per_replica <= 0.0) {
      return Status::InvalidArgument(
          "predictive autoscaler needs rate_per_replica > 0");
    }
    if (target_utilization <= 0.0 || target_utilization > 1.0) {
      return Status::InvalidArgument(
          "autoscaler target_utilization must be in (0, 1]");
    }
  }
  return Status::Ok();
}

StatusOr<PolicyConfig> PolicyConfig::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("autoscaler config must be a JSON object");
  }
  PolicyConfig c;
  c.enabled = true;
  c.kind = v.GetStringOr("kind", c.kind);
  c.interval_s = v.GetNumberOr("interval_s", c.interval_s);
  c.min_replicas = static_cast<int>(v.GetIntOr("min_replicas", c.min_replicas));
  c.max_replicas = static_cast<int>(v.GetIntOr("max_replicas", c.max_replicas));
  c.step = static_cast<int>(v.GetIntOr("step", c.step));
  c.cooldown_s = v.GetNumberOr("cooldown_s", c.cooldown_s);
  c.scale_in_hysteresis = static_cast<int>(
      v.GetIntOr("scale_in_hysteresis", c.scale_in_hysteresis));
  c.scale_up_lag = v.GetNumberOr("scale_up_lag", c.scale_up_lag);
  c.scale_up_utilization =
      v.GetNumberOr("scale_up_utilization", c.scale_up_utilization);
  c.scale_down_lag = v.GetNumberOr("scale_down_lag", c.scale_down_lag);
  c.scale_down_utilization =
      v.GetNumberOr("scale_down_utilization", c.scale_down_utilization);
  c.hw_alpha = v.GetNumberOr("hw_alpha", c.hw_alpha);
  c.hw_beta = v.GetNumberOr("hw_beta", c.hw_beta);
  c.horizon_s = v.GetNumberOr("horizon_s", c.horizon_s);
  c.rate_per_replica = v.GetNumberOr("rate_per_replica", c.rate_per_replica);
  c.target_utilization =
      v.GetNumberOr("target_utilization", c.target_utilization);
  c.seed = static_cast<uint64_t>(
      v.GetIntOr("seed", static_cast<int64_t>(c.seed)));
  CRAYFISH_RETURN_IF_ERROR(c.Validate());
  return c;
}

StatusOr<PolicyConfig> PolicyConfig::FromJsonText(const std::string& text) {
  CRAYFISH_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  return FromJson(root);
}

StatusOr<PolicyConfig> PolicyConfig::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read autoscaler config: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return FromJsonText(text.str());
}

Status PolicyConfig::ApplyOverride(const std::string& key,
                                   const std::string& value) {
  enabled = true;
  if (key == "kind") {
    kind = value;
    return Status::Ok();
  }
  if (key == "interval_s") return ParseDouble(value, &interval_s);
  if (key == "min_replicas") return ParseInt(value, &min_replicas);
  if (key == "max_replicas") return ParseInt(value, &max_replicas);
  if (key == "step") return ParseInt(value, &step);
  if (key == "cooldown_s") return ParseDouble(value, &cooldown_s);
  if (key == "scale_in_hysteresis") {
    return ParseInt(value, &scale_in_hysteresis);
  }
  if (key == "scale_up_lag") return ParseDouble(value, &scale_up_lag);
  if (key == "scale_up_utilization") {
    return ParseDouble(value, &scale_up_utilization);
  }
  if (key == "scale_down_lag") return ParseDouble(value, &scale_down_lag);
  if (key == "scale_down_utilization") {
    return ParseDouble(value, &scale_down_utilization);
  }
  if (key == "hw_alpha") return ParseDouble(value, &hw_alpha);
  if (key == "hw_beta") return ParseDouble(value, &hw_beta);
  if (key == "horizon_s") return ParseDouble(value, &horizon_s);
  if (key == "rate_per_replica") return ParseDouble(value, &rate_per_replica);
  if (key == "target_utilization") {
    return ParseDouble(value, &target_utilization);
  }
  if (key == "seed") {
    double d = 0.0;
    CRAYFISH_RETURN_IF_ERROR(ParseDouble(value, &d));
    seed = static_cast<uint64_t>(d);
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown autoscaler key: " + key);
}

PolicyDecision ReactivePolicy::Evaluate(const PolicyInput& in) {
  PolicyDecision d;
  d.target = in.current_replicas;
  const bool lag_high = in.total_lag >= config_.scale_up_lag;
  const bool util_high = in.utilization >= config_.scale_up_utilization;
  const bool lag_low = in.total_lag <= config_.scale_down_lag;
  const bool util_low = in.utilization <= config_.scale_down_utilization;
  if (lag_high || util_high) {
    d.target = in.current_replicas + config_.step;
    std::ostringstream reason;
    reason << (lag_high ? "lag" : "util") << "-high lag="
           << static_cast<long long>(in.total_lag) << " util="
           << static_cast<int>(in.utilization * 100.0) << "%";
    d.reason = reason.str();
  } else if (lag_low && util_low) {
    d.target = in.current_replicas - config_.step;
    std::ostringstream reason;
    reason << "idle lag=" << static_cast<long long>(in.total_lag) << " util="
           << static_cast<int>(in.utilization * 100.0) << "%";
    d.reason = reason.str();
  } else {
    d.reason = "steady";
  }
  return d;
}

PolicyDecision PredictivePolicy::Evaluate(const PolicyInput& in) {
  // Holt's linear trend on the observed arrival rate. The recurrence is a
  // pure function of the sample sequence, so it is deterministic across
  // thread counts as long as the samples are (they come from exclusive
  // global-plane ticks).
  if (!primed_) {
    level_ = in.arrival_rate_eps;
    trend_ = 0.0;
    primed_ = true;
  } else {
    const double prev_level = level_;
    level_ = config_.hw_alpha * in.arrival_rate_eps +
             (1.0 - config_.hw_alpha) * (level_ + trend_);
    trend_ = config_.hw_beta * (level_ - prev_level) +
             (1.0 - config_.hw_beta) * trend_;
  }
  const double steps = config_.interval_s > 0.0
                           ? config_.horizon_s / config_.interval_s
                           : 0.0;
  double forecast = level_ + trend_ * steps;
  // Scale-in guard: the trend lead is for provisioning ahead of growth, not
  // for extrapolating a decline below what is arriving right now. Without
  // the floor a downswing forecast runs to zero and digs the pool into the
  // next ramp.
  forecast = std::max(forecast, in.arrival_rate_eps);
  // Fold the current backlog in: it must drain within the horizon on top
  // of keeping up with the forecast arrivals.
  if (config_.horizon_s > 0.0) {
    forecast += in.total_lag / config_.horizon_s;
  }
  forecast = std::max(forecast, 0.0);

  const double capacity_per_replica =
      config_.rate_per_replica * config_.target_utilization;
  PolicyDecision d;
  d.target = static_cast<int>(std::ceil(forecast / capacity_per_replica));
  d.target = std::max(d.target, 1);
  std::ostringstream reason;
  reason << "forecast=" << static_cast<long long>(forecast)
         << "eps level=" << static_cast<long long>(level_)
         << " trend=" << static_cast<long long>(trend_);
  d.reason = reason.str();
  return d;
}

StatusOr<std::unique_ptr<ScalingPolicy>> CreatePolicy(
    const PolicyConfig& config) {
  CRAYFISH_RETURN_IF_ERROR(config.Validate());
  if (config.kind == "reactive") {
    return std::unique_ptr<ScalingPolicy>(new ReactivePolicy(config));
  }
  return std::unique_ptr<ScalingPolicy>(new PredictivePolicy(config));
}

}  // namespace crayfish::scale
