#ifndef CRAYFISH_SCALE_POLICY_H_
#define CRAYFISH_SCALE_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace crayfish::scale {

/// Autoscaler configuration: the control-loop cadence, the policy family
/// ("reactive" or "predictive"), its thresholds, and the guard rails the
/// Autoscaler enforces on every decision (bounds, cooldown, scale-in
/// hysteresis). JSON-loadable so `crayfish_run --autoscaler=policy.json`
/// and `autoscaler.*` sweep axes share one schema.
struct PolicyConfig {
  /// Inert until a key is set (FromJson / ApplyOverride).
  bool enabled = false;

  std::string kind = "reactive";  ///< "reactive" | "predictive"
  double interval_s = 5.0;        ///< control-loop evaluation period
  int min_replicas = 1;
  int max_replicas = 32;
  /// Max replicas added/removed per decision.
  int step = 1;
  /// Seconds after any resize during which further resizes are suppressed.
  double cooldown_s = 20.0;
  /// Consecutive scale-down votes required before shrinking (flap guard).
  int scale_in_hysteresis = 3;

  // --- reactive thresholds ---
  double scale_up_lag = 1000.0;        ///< records of total broker lag
  double scale_up_utilization = 0.9;   ///< busy fraction of serving pool
  double scale_down_lag = 100.0;
  double scale_down_utilization = 0.3;

  // --- predictive (Holt's linear trend over timeline windows) ---
  double hw_alpha = 0.5;   ///< level smoothing
  double hw_beta = 0.3;    ///< trend smoothing
  double horizon_s = 15.0; ///< forecast this far past `now`
  /// Sustainable events/s one replica can serve; required (> 0) for the
  /// predictive policy, which sizes the pool to the forecast demand.
  double rate_per_replica = 0.0;
  /// Headroom: target = ceil(forecast / (rate_per_replica * this)).
  double target_utilization = 0.8;

  uint64_t seed = 42;

  Status Validate() const;
  static StatusOr<PolicyConfig> FromJson(const JsonValue& v);
  static StatusOr<PolicyConfig> FromJsonText(const std::string& text);
  static StatusOr<PolicyConfig> FromFile(const std::string& path);
  /// Sets one field by key ("kind", "interval_s", ...). Marks the config
  /// enabled.
  Status ApplyOverride(const std::string& key, const std::string& value);
};

/// One control-loop sample, taken at a global sync point so every value is
/// the merged, deterministic cluster state.
struct PolicyInput {
  double now_s = 0.0;
  double total_lag = 0.0;          ///< sum of per-partition consumer lag
  double max_partition_lag = 0.0;
  double utilization = 0.0;        ///< serving-pool busy fraction in [0,1]
  double arrival_rate_eps = 0.0;   ///< observed producer rate this interval
  int current_replicas = 1;
};

/// What a policy wants, before the Autoscaler applies bounds/cooldown/
/// hysteresis. `reason` feeds the timeline annotation.
struct PolicyDecision {
  int target = 1;
  std::string reason;
};

/// A deterministic scaling policy. Implementations must be pure state
/// machines over their inputs: no wall clock, no RNG stream (seeded hashing
/// is fine), so decisions are identical at every `sim_threads` value.
class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;
  virtual PolicyDecision Evaluate(const PolicyInput& in) = 0;
  virtual const char* name() const = 0;
};

/// Threshold policy: scale up when lag or utilization crosses the high
/// water marks, down when both sit below the low water marks.
class ReactivePolicy : public ScalingPolicy {
 public:
  explicit ReactivePolicy(const PolicyConfig& config) : config_(config) {}
  PolicyDecision Evaluate(const PolicyInput& in) override;
  const char* name() const override { return "reactive"; }

 private:
  PolicyConfig config_;
};

/// Holt's linear-trend forecaster over the observed arrival rate: smooths
/// level and trend each tick, forecasts demand at `now + horizon_s`, and
/// sizes the pool to `ceil(forecast / (rate_per_replica *
/// target_utilization))` plus any backlog drain.
class PredictivePolicy : public ScalingPolicy {
 public:
  explicit PredictivePolicy(const PolicyConfig& config) : config_(config) {}
  PolicyDecision Evaluate(const PolicyInput& in) override;
  const char* name() const override { return "predictive"; }

 private:
  PolicyConfig config_;
  bool primed_ = false;
  double level_ = 0.0;
  double trend_ = 0.0;
};

/// Instantiates the policy named by `config.kind`.
StatusOr<std::unique_ptr<ScalingPolicy>> CreatePolicy(
    const PolicyConfig& config);

}  // namespace crayfish::scale

#endif  // CRAYFISH_SCALE_POLICY_H_
