#include "scale/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace crayfish::scale {
namespace {

Status ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double d = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: " + value);
  }
  *out = d;
  return Status::Ok();
}

Status ParseInt(const std::string& value, int* out) {
  double d = 0.0;
  CRAYFISH_RETURN_IF_ERROR(ParseDouble(value, &d));
  *out = static_cast<int>(d);
  return Status::Ok();
}

Status ParseUint64(const std::string& value, uint64_t* out) {
  double d = 0.0;
  CRAYFISH_RETURN_IF_ERROR(ParseDouble(value, &d));
  *out = static_cast<uint64_t>(d);
  return Status::Ok();
}

/// SplitMix64: the jitter factor is a pure hash of (seed, window index),
/// not an RNG stream — shapes consume no simulation randomness.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

StatusOr<ProfilePoint> PointFromJson(const JsonValue& v) {
  ProfilePoint p;
  if (v.is_array() && v.as_array().size() == 2 &&
      v.as_array()[0].is_number() && v.as_array()[1].is_number()) {
    p.t_s = v.as_array()[0].as_number();
    p.rate = v.as_array()[1].as_number();
    return p;
  }
  if (v.is_object()) {
    p.t_s = v.GetNumberOr("t_s", 0.0);
    p.rate = v.GetNumberOr("rate", 0.0);
    return p;
  }
  return Status::InvalidArgument(
      "profile point must be [t, rate] or {\"t_s\":..,\"rate\":..}");
}

Status PointsFromJsonArray(const JsonValue& arr,
                           std::vector<ProfilePoint>* out) {
  if (!arr.is_array()) {
    return Status::InvalidArgument("\"points\" must be a JSON array");
  }
  out->clear();
  for (const JsonValue& v : arr.as_array()) {
    CRAYFISH_ASSIGN_OR_RETURN(ProfilePoint p, PointFromJson(v));
    out->push_back(p);
  }
  return Status::Ok();
}

}  // namespace

const char* ShapeKindName(ShapeKind kind) {
  switch (kind) {
    case ShapeKind::kConstant:
      return "constant";
    case ShapeKind::kDiurnal:
      return "diurnal";
    case ShapeKind::kFlashCrowd:
      return "flash_crowd";
    case ShapeKind::kRamp:
      return "ramp";
    case ShapeKind::kReplay:
      return "replay";
  }
  return "unknown";
}

StatusOr<ShapeKind> ParseShapeKind(const std::string& name) {
  if (name == "constant") return ShapeKind::kConstant;
  if (name == "diurnal") return ShapeKind::kDiurnal;
  if (name == "flash_crowd" || name == "flash-crowd") {
    return ShapeKind::kFlashCrowd;
  }
  if (name == "ramp") return ShapeKind::kRamp;
  if (name == "replay") return ShapeKind::kReplay;
  return Status::InvalidArgument("unknown workload shape: \"" + name + "\"");
}

double WorkloadShape::RateAt(double t) const {
  double rate = base_rate;
  switch (kind) {
    case ShapeKind::kConstant:
      break;
    case ShapeKind::kDiurnal: {
      const double angle = 2.0 * M_PI * (t + phase_s) / period_s;
      rate = base_rate * (1.0 + amplitude * std::sin(angle));
      break;
    }
    case ShapeKind::kFlashCrowd: {
      const double peak = base_rate * spike_mult;
      if (t < spike_at_s) {
        rate = base_rate;
      } else if (t < spike_at_s + ramp_up_s) {
        const double f = (t - spike_at_s) / ramp_up_s;
        rate = base_rate + f * (peak - base_rate);
      } else if (t < spike_at_s + ramp_up_s + hold_s) {
        rate = peak;
      } else if (t < spike_at_s + ramp_up_s + hold_s + decay_s) {
        const double f = (t - spike_at_s - ramp_up_s - hold_s) / decay_s;
        rate = peak - f * (peak - base_rate);
      } else {
        rate = base_rate;
      }
      break;
    }
    case ShapeKind::kRamp: {
      if (t <= ramp_start_s) {
        rate = base_rate;
      } else if (t >= ramp_start_s + ramp_duration_s) {
        rate = end_rate;
      } else {
        const double f = (t - ramp_start_s) / ramp_duration_s;
        rate = base_rate + f * (end_rate - base_rate);
      }
      break;
    }
    case ShapeKind::kReplay: {
      if (points.empty()) break;
      if (t <= points.front().t_s) {
        rate = points.front().rate;
      } else if (t >= points.back().t_s) {
        rate = points.back().rate;
      } else {
        for (size_t i = 1; i < points.size(); ++i) {
          if (t <= points[i].t_s) {
            const ProfilePoint& a = points[i - 1];
            const ProfilePoint& b = points[i];
            const double span = b.t_s - a.t_s;
            const double f = span > 0.0 ? (t - a.t_s) / span : 1.0;
            rate = a.rate + f * (b.rate - a.rate);
            break;
          }
        }
      }
      break;
    }
  }
  if (jitter > 0.0 && jitter_window_s > 0.0) {
    const uint64_t window =
        static_cast<uint64_t>(std::floor(t / jitter_window_s));
    const uint64_t h = Mix64(seed ^ Mix64(window));
    // Uniform in [0, 1) from the top 53 bits, mapped to [1-j, 1+j].
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    rate *= 1.0 - jitter + 2.0 * jitter * u;
  }
  return std::max(rate, floor_rate);
}

double WorkloadShape::IntegrateRate(double t0, double t1, int steps) const {
  if (t1 <= t0 || steps <= 0) return 0.0;
  const double h = (t1 - t0) / static_cast<double>(steps);
  double sum = 0.5 * (RateAt(t0) + RateAt(t1));
  for (int i = 1; i < steps; ++i) {
    sum += RateAt(t0 + h * static_cast<double>(i));
  }
  return sum * h;
}

Status WorkloadShape::Validate() const {
  if (base_rate <= 0.0) {
    return Status::InvalidArgument("workload base_rate must be > 0");
  }
  if (floor_rate <= 0.0) {
    return Status::InvalidArgument("workload floor_rate must be > 0");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    return Status::InvalidArgument("workload jitter must be in [0, 1)");
  }
  if (jitter > 0.0 && jitter_window_s <= 0.0) {
    return Status::InvalidArgument("workload jitter_window_s must be > 0");
  }
  switch (kind) {
    case ShapeKind::kConstant:
      break;
    case ShapeKind::kDiurnal:
      if (amplitude < 0.0 || amplitude > 1.0) {
        return Status::InvalidArgument("diurnal amplitude must be in [0, 1]");
      }
      if (period_s <= 0.0) {
        return Status::InvalidArgument("diurnal period_s must be > 0");
      }
      break;
    case ShapeKind::kFlashCrowd:
      if (spike_mult < 1.0) {
        // A sub-1 "spike" would be a dip; express dips as replay profiles.
        return Status::InvalidArgument("flash_crowd spike_mult must be >= 1");
      }
      if (spike_at_s < 0.0 || ramp_up_s <= 0.0 || hold_s < 0.0 ||
          decay_s <= 0.0) {
        return Status::InvalidArgument(
            "flash_crowd needs spike_at_s >= 0, hold_s >= 0, and strictly "
            "positive ramp_up_s / decay_s");
      }
      break;
    case ShapeKind::kRamp:
      if (end_rate <= 0.0) {
        return Status::InvalidArgument("ramp end_rate must be > 0");
      }
      if (ramp_start_s < 0.0 || ramp_duration_s <= 0.0) {
        return Status::InvalidArgument(
            "ramp needs ramp_start_s >= 0 and ramp_duration_s > 0");
      }
      break;
    case ShapeKind::kReplay: {
      if (points.empty()) {
        return Status::InvalidArgument("replay shape needs profile points");
      }
      for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].rate < 0.0) {
          return Status::InvalidArgument("replay rates must be >= 0");
        }
        if (i > 0 && points[i].t_s < points[i - 1].t_s) {
          return Status::InvalidArgument(
              "replay points must be sorted by t_s");
        }
      }
      break;
    }
  }
  return Status::Ok();
}

StatusOr<WorkloadShape> WorkloadShape::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("workload shape must be a JSON object");
  }
  WorkloadShape shape;
  const std::string kind_name = v.GetStringOr("kind", "constant");
  CRAYFISH_ASSIGN_OR_RETURN(shape.kind, ParseShapeKind(kind_name));
  shape.base_rate = v.GetNumberOr("base_rate", shape.base_rate);
  shape.floor_rate = v.GetNumberOr("floor_rate", shape.floor_rate);
  shape.jitter = v.GetNumberOr("jitter", shape.jitter);
  shape.jitter_window_s =
      v.GetNumberOr("jitter_window_s", shape.jitter_window_s);
  shape.seed = static_cast<uint64_t>(
      v.GetIntOr("seed", static_cast<int64_t>(shape.seed)));
  shape.amplitude = v.GetNumberOr("amplitude", shape.amplitude);
  shape.period_s = v.GetNumberOr("period_s", shape.period_s);
  shape.phase_s = v.GetNumberOr("phase_s", shape.phase_s);
  shape.spike_at_s = v.GetNumberOr("spike_at_s", shape.spike_at_s);
  shape.spike_mult = v.GetNumberOr("spike_mult", shape.spike_mult);
  shape.ramp_up_s = v.GetNumberOr("ramp_up_s", shape.ramp_up_s);
  shape.hold_s = v.GetNumberOr("hold_s", shape.hold_s);
  shape.decay_s = v.GetNumberOr("decay_s", shape.decay_s);
  shape.ramp_start_s = v.GetNumberOr("ramp_start_s", shape.ramp_start_s);
  shape.ramp_duration_s =
      v.GetNumberOr("ramp_duration_s", shape.ramp_duration_s);
  shape.end_rate = v.GetNumberOr("end_rate", shape.end_rate);
  if (const JsonValue* points = v.Find("points")) {
    CRAYFISH_RETURN_IF_ERROR(PointsFromJsonArray(*points, &shape.points));
  }
  CRAYFISH_RETURN_IF_ERROR(shape.Validate());
  return shape;
}

Status WorkloadSpec::Validate() const {
  CRAYFISH_RETURN_IF_ERROR(shape.Validate());
  if (tenants < 0) {
    return Status::InvalidArgument("workload tenants must be >= 0");
  }
  if (tenants > 0 && tenant_partitions <= 0) {
    return Status::InvalidArgument("workload tenant_partitions must be > 0");
  }
  if (tenants > 0 && tenant_rate_factor <= 0.0) {
    return Status::InvalidArgument("workload tenant_rate_factor must be > 0");
  }
  if (fleet_hosts < 0) {
    return Status::InvalidArgument("workload fleet_hosts must be >= 0");
  }
  return Status::Ok();
}

StatusOr<WorkloadSpec> WorkloadSpec::FromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("workload spec must be a JSON object");
  }
  WorkloadSpec spec;
  spec.enabled = true;
  // Shape fields live in a nested "shape" object when present; a flat
  // layout (shape keys at the top level) is accepted too, so small
  // hand-written specs don't need the extra nesting.
  const JsonValue* shape = v.Find("shape");
  CRAYFISH_ASSIGN_OR_RETURN(spec.shape,
                            WorkloadShape::FromJson(shape != nullptr ? *shape
                                                                     : v));
  spec.tenants = static_cast<int>(v.GetIntOr("tenants", spec.tenants));
  spec.tenant_partitions = static_cast<int>(
      v.GetIntOr("tenant_partitions", spec.tenant_partitions));
  spec.tenant_rate_factor =
      v.GetNumberOr("tenant_rate_factor", spec.tenant_rate_factor);
  spec.tenant_topic_prefix =
      v.GetStringOr("tenant_topic_prefix", spec.tenant_topic_prefix);
  spec.tenant_host_prefix =
      v.GetStringOr("tenant_host_prefix", spec.tenant_host_prefix);
  spec.fleet_hosts =
      static_cast<int>(v.GetIntOr("fleet_hosts", spec.fleet_hosts));
  spec.fleet_host_prefix =
      v.GetStringOr("fleet_host_prefix", spec.fleet_host_prefix);
  CRAYFISH_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

StatusOr<WorkloadSpec> WorkloadSpec::FromJsonText(const std::string& text) {
  CRAYFISH_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  return FromJson(root);
}

StatusOr<WorkloadSpec> WorkloadSpec::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read workload spec: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return FromJsonText(text.str());
}

Status WorkloadSpec::ApplyOverride(const std::string& key,
                                   const std::string& value) {
  enabled = true;
  if (key == "kind") {
    CRAYFISH_ASSIGN_OR_RETURN(shape.kind, ParseShapeKind(value));
    return Status::Ok();
  }
  if (key == "base_rate") return ParseDouble(value, &shape.base_rate);
  if (key == "floor_rate") return ParseDouble(value, &shape.floor_rate);
  if (key == "jitter") return ParseDouble(value, &shape.jitter);
  if (key == "jitter_window_s") {
    return ParseDouble(value, &shape.jitter_window_s);
  }
  if (key == "seed") return ParseUint64(value, &shape.seed);
  if (key == "amplitude") return ParseDouble(value, &shape.amplitude);
  if (key == "period_s") return ParseDouble(value, &shape.period_s);
  if (key == "phase_s") return ParseDouble(value, &shape.phase_s);
  if (key == "spike_at_s") return ParseDouble(value, &shape.spike_at_s);
  if (key == "spike_mult") return ParseDouble(value, &shape.spike_mult);
  if (key == "ramp_up_s") return ParseDouble(value, &shape.ramp_up_s);
  if (key == "hold_s") return ParseDouble(value, &shape.hold_s);
  if (key == "decay_s") return ParseDouble(value, &shape.decay_s);
  if (key == "ramp_start_s") return ParseDouble(value, &shape.ramp_start_s);
  if (key == "ramp_duration_s") {
    return ParseDouble(value, &shape.ramp_duration_s);
  }
  if (key == "end_rate") return ParseDouble(value, &shape.end_rate);
  if (key == "points") {
    CRAYFISH_ASSIGN_OR_RETURN(JsonValue arr, JsonValue::Parse(value));
    return PointsFromJsonArray(arr, &shape.points);
  }
  if (key == "tenants") return ParseInt(value, &tenants);
  if (key == "tenant_partitions") return ParseInt(value, &tenant_partitions);
  if (key == "tenant_rate_factor") {
    return ParseDouble(value, &tenant_rate_factor);
  }
  if (key == "tenant_topic_prefix") {
    tenant_topic_prefix = value;
    return Status::Ok();
  }
  if (key == "tenant_host_prefix") {
    tenant_host_prefix = value;
    return Status::Ok();
  }
  if (key == "fleet_hosts") return ParseInt(value, &fleet_hosts);
  if (key == "fleet_host_prefix") {
    fleet_host_prefix = value;
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown workload key: " + key);
}

}  // namespace crayfish::scale
