#ifndef CRAYFISH_SCALE_WORKLOAD_H_
#define CRAYFISH_SCALE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace crayfish::scale {

/// Load-shape families for cluster-scale traffic generation (ROADMAP item
/// 2). Every shape is a pure function of (spec, seed, t): no RNG stream is
/// consumed, so two runs with the same config produce byte-identical
/// producer pacing at any `sim_threads` value.
enum class ShapeKind {
  kConstant,    ///< flat base_rate
  kDiurnal,     ///< sinusoid: base * (1 + amplitude * sin(2*pi*t/period))
  kFlashCrowd,  ///< base, then ramp to base*spike_mult, hold, decay back
  kRamp,        ///< linear base_rate -> end_rate over a window, flat after
  kReplay,      ///< piecewise-linear profile through (t, rate) points
};

const char* ShapeKindName(ShapeKind kind);
StatusOr<ShapeKind> ParseShapeKind(const std::string& name);

/// One (time, rate) knot of a replayed profile.
struct ProfilePoint {
  double t_s = 0.0;
  double rate = 0.0;
};

/// A deterministic, seeded load-shape driver. `RateAt(t)` modulates the
/// per-producer emission rate of `core::InputProducer` over simulated time;
/// optional multiplicative jitter is hashed from (seed, time window) — a
/// pure function, not an RNG stream — so shapes stay reproducible and
/// thread-count independent.
struct WorkloadShape {
  ShapeKind kind = ShapeKind::kConstant;
  double base_rate = 1000.0;  ///< events/s
  /// Rates never drop below this floor (the producer pacing loop divides
  /// by the rate, so it must stay strictly positive).
  double floor_rate = 1.0;
  /// Multiplicative noise amplitude in [0, 1): each jitter window's factor
  /// is uniform in [1 - jitter, 1 + jitter], hashed from (seed, window).
  double jitter = 0.0;
  double jitter_window_s = 1.0;
  uint64_t seed = 42;

  // --- diurnal ---
  double amplitude = 0.5;  ///< fraction of base_rate, in [0, 1]
  double period_s = 240.0;
  double phase_s = 0.0;

  // --- flash crowd ---
  double spike_at_s = 60.0;
  double spike_mult = 4.0;  ///< peak rate = base_rate * spike_mult
  double ramp_up_s = 5.0;
  double hold_s = 20.0;
  double decay_s = 30.0;

  // --- ramp ---
  double ramp_start_s = 0.0;
  double ramp_duration_s = 60.0;
  double end_rate = 2000.0;

  // --- replay ---
  /// Piecewise-linear profile; must be sorted by t_s. Before the first
  /// point and after the last the profile clamps to the edge rate.
  std::vector<ProfilePoint> points;

  /// Instantaneous target rate at simulated time `t` (>= floor_rate).
  double RateAt(double t) const;

  /// Trapezoid integral of RateAt over [t0, t1]: the event volume the
  /// shape asks the producer for (tests compare events_sent against it).
  double IntegrateRate(double t0, double t1, int steps = 4096) const;

  Status Validate() const;
  static StatusOr<WorkloadShape> FromJson(const JsonValue& v);
};

/// Full cluster-scale workload: the primary shape driving the scored
/// pipeline's producer, plus multi-tenant fan-out — background tenant
/// topics/producers co-located on the same brokers and an idle fleet of
/// registered hosts — so one config can stand up hundreds of partitions
/// across thousands of hosts.
struct WorkloadSpec {
  /// Inert until a shape/fan-out key is set (FromJson / ApplyOverride);
  /// an inert spec leaves the experiment byte-identical to before.
  bool enabled = false;

  WorkloadShape shape;

  /// Background tenants: each gets its own topic (tenant_partitions
  /// partitions), its own producer host, and the primary shape scaled by
  /// tenant_rate_factor. Tenant traffic loads brokers and the network but
  /// stays out of the scored pipeline.
  int tenants = 0;
  int tenant_partitions = 8;
  double tenant_rate_factor = 0.05;
  std::string tenant_topic_prefix = "crayfish-bg-";
  std::string tenant_host_prefix = "tenant-";

  /// Extra registered (idle) hosts standing in for the rest of the fleet;
  /// they participate in host->partition packing and the network topology.
  int fleet_hosts = 0;
  std::string fleet_host_prefix = "fleet-";

  Status Validate() const;
  static StatusOr<WorkloadSpec> FromJson(const JsonValue& v);
  static StatusOr<WorkloadSpec> FromJsonText(const std::string& text);
  static StatusOr<WorkloadSpec> FromFile(const std::string& path);
  /// Sets one field by key ("kind", "base_rate", "tenants", ...; "points"
  /// takes a JSON array text). Marks the spec enabled.
  Status ApplyOverride(const std::string& key, const std::string& value);
};

}  // namespace crayfish::scale

#endif  // CRAYFISH_SCALE_WORKLOAD_H_
