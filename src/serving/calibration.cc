#include "serving/calibration.h"

#include "common/logging.h"

namespace crayfish::serving {

namespace {

// All figures cited below are from the paper (EDBT 2024). Derivations:
// Table 4 (Flink, FFNN, bsz=1, mp=1) gives whole-chain per-event times of
//   DL4J 1.270 ms, ONNX 0.728 ms, SavedModel 0.775 ms, TF-Serving
//   1.620 ms, TorchServe 4.443 ms;
// Fig. 12 (flink[32-N-32], N=1 -> 5373 ev/s) isolates the scoring stage at
//   0.186 ms/event, fixing Flink's chained source+sink at ~0.542 ms and
//   the scoring wrapper at ~0.04 ms. Subtracting these yields the library
//   apply-times used here. External tools additionally subtract the
//   measured LAN round trip (~0.9 ms for a 3 KB request, §4.2).

EmbeddedCosts MakeDl4jCosts() {
  EmbeddedCosts c;
  // Keras H5 import is the slowest load path of the three.
  c.load_fixed_s = 0.35;
  c.load_bytes_per_s = 80.0 * 1024 * 1024;
  c.ffi_overhead_s = 100e-6;
  c.per_sample_s = {
      // Solves Table 4's 787.5 ev/s after Flink's measured 0.592 ms
      // chain overhead and the saturation inflation (1 + beta).
      {"ffnn", 539e-6},
      {"resnet50", 560e-3},  // extrapolated; DL4J/ResNet50 not in Table 4
  };
  c.fallback_flops_per_s = 0.55e9;
  // Fig. 6: DL4J peaks at ~2.8k ev/s at mp=8 and stops scaling beyond
  // ((1 + 7a) = 3.34 from the whole-chain budget at mp=8).
  c.contention_alpha = 0.334;
  c.max_useful_parallelism = 8;
  c.gpu_speedup = 1.15;
  c.jitter_cv = 0.07;
  c.slow_jitter_cv = 0.05;
  c.overload_beta = 0.06;
  return c;
}

EmbeddedCosts MakeOnnxCosts() {
  EmbeddedCosts c;
  c.load_fixed_s = 0.08;
  c.load_bytes_per_s = 250.0 * 1024 * 1024;
  c.ffi_overhead_s = 80e-6;
  c.per_sample_s = {
      {"ffnn", 50e-6},         // apply(1) ~ 0.137 ms (Table 4: 1373 ev/s)
      {"resnet50", 316.4e-3},  // Table 4: 2.85 ev/s after 18.6 ms decode
  };
  c.fallback_flops_per_s = 1.2e9;
  // Fig. 6: ONNX reaches ~13.6k ev/s at mp=16; with the 0.592 ms chain
  // replicated per slot this solves to (1 + 15a) = 4.3.
  c.contention_alpha = 0.22;
  c.max_useful_parallelism = 0;
  // Fig. 9: onnx-gpu improves end-to-end ResNet50 latency by 16.4%.
  c.gpu_speedup = 1.28;
  c.jitter_cv = 0.05;
  // Fig. 8: ONNX shows the steadiest recovery behaviour.
  c.slow_jitter_cv = 0.03;
  c.overload_beta = 0.05;
  return c;
}

EmbeddedCosts MakeSavedModelCosts() {
  EmbeddedCosts c;
  c.load_fixed_s = 0.12;
  c.load_bytes_per_s = 220.0 * 1024 * 1024;
  c.ffi_overhead_s = 100e-6;
  c.per_sample_s = {
      {"ffnn", 73e-6},       // apply(1) ~ 0.183 ms (Table 4: 1289.7 ev/s)
      {"resnet50", 380e-3},  // extrapolated (not in Table 4)
  };
  c.fallback_flops_per_s = 1.0e9;
  // Fig. 6: SavedModel peaks ~10.4k ev/s at mp=16 -> (1 + 15a) = 5.17.
  c.contention_alpha = 0.278;
  c.max_useful_parallelism = 0;
  c.gpu_speedup = 1.30;
  // Fig. 6 reports a ~2300 ev/s std-dev for SavedModel at mp=16: the
  // highest run-to-run noise of the embedded tools.
  c.jitter_cv = 0.12;
  c.slow_jitter_cv = 0.15;
  c.overload_beta = 0.06;
  return c;
}

ExternalCosts MakeTfServingCosts() {
  ExternalCosts c;
  c.protocol = Protocol::kGrpc;
  // 60 us stub cost minus the mean of the slowdown-only drift (~38 us on
  // a ~0.97 ms round trip) keeps the Table 4 mean on target.
  c.client_overhead_s = 22e-6;
  c.server_overhead_s = 50e-6;
  c.per_sample_s = {
      {"ffnn", 58e-6},       // Table 4: 617.2 ev/s after ~0.87 ms RTT
      {"resnet50", 345e-3},  // Table 4: 2.62 ev/s (drift-mean adjusted)
  };
  c.fallback_flops_per_s = 1.3e9;
  // §4.3 pins intra-op parallelism to 1: compute serializes on a shared
  // pool. Irrelevant for FFNN (58 us/event), decisive for ResNet50
  // (Fig. 7's flat scaling).
  c.shared_intra_op_pool = true;
  c.worker_contention_alpha = 0.001;
  c.load_fixed_s = 0.8;
  // Fig. 9: tf-serving-gpu improves end-to-end latency by 24.1%.
  c.gpu_speedup = 1.47;
  // Fig. 8: TF-Serving recovery varies strongly between bursts.
  c.jitter_cv = 0.13;
  c.slow_jitter_cv = 0.10;
  c.overload_beta = 0.12;
  return c;
}

ExternalCosts MakeTorchServeCosts() {
  ExternalCosts c;
  c.protocol = Protocol::kGrpc;
  c.client_overhead_s = 60e-6;
  // Python handler wraps every request (§3.4.3); reduced by the mean of
  // the slowdown-only drift (~91 us on a ~3.8 ms round trip).
  c.server_overhead_s = 260e-6;
  c.per_sample_s = {
      {"ffnn", 2.58e-3},      // Table 4: 225.1 ev/s
      {"resnet50", 1.041},    // Table 4: 0.91 ev/s (drift-mean adjusted)
  };
  c.fallback_flops_per_s = 0.45e9;
  // Worker *processes* each own their compute: TorchServe keeps scaling
  // on ResNet50 and overtakes TF-Serving past mp=8 (Fig. 7).
  c.shared_intra_op_pool = false;
  c.worker_contention_alpha = 0.019;
  c.load_fixed_s = 1.2;
  c.gpu_speedup = 1.40;
  c.jitter_cv = 0.10;
  c.slow_jitter_cv = 0.06;
  c.overload_beta = 0.10;
  return c;
}

ExternalCosts MakeRayServeCosts() {
  ExternalCosts c;
  // Ray Serve's gRPC ingress is experimental; the paper uses HTTP.
  c.protocol = Protocol::kHttp;
  c.client_overhead_s = 100e-6;
  // Includes the slowdown-only drift compensation (~80 us mean).
  c.server_overhead_s = 30e-6;
  c.per_sample_s = {
      {"ffnn", 60e-6},
      {"resnet50", 400e-3},
  };
  c.fallback_flops_per_s = 0.9e9;
  c.shared_intra_op_pool = false;
  c.worker_contention_alpha = 0.01;
  // One HTTP proxy per node forwards every request; its occupancy caps
  // vertical scaling at ~455 ev/s (Fig. 11).
  c.proxy_per_request_s = 2.2e-3;
  c.load_fixed_s = 0.6;
  c.gpu_speedup = 1.35;
  c.jitter_cv = 0.08;
  c.slow_jitter_cv = 0.06;
  c.overload_beta = 0.10;
  return c;
}

}  // namespace

const EmbeddedCosts& GetEmbeddedCosts(const std::string& library) {
  static const auto& dl4j = *new EmbeddedCosts(MakeDl4jCosts());
  static const auto& onnx = *new EmbeddedCosts(MakeOnnxCosts());
  static const auto& saved = *new EmbeddedCosts(MakeSavedModelCosts());
  if (library == "dl4j") return dl4j;
  if (library == "onnx") return onnx;
  if (library == "savedmodel") return saved;
  CRAYFISH_CHECK(false) << "unknown embedded library: " << library;
  return onnx;
}

const ExternalCosts& GetExternalCosts(const std::string& tool) {
  static const auto& tfs = *new ExternalCosts(MakeTfServingCosts());
  static const auto& ts = *new ExternalCosts(MakeTorchServeCosts());
  static const auto& rs = *new ExternalCosts(MakeRayServeCosts());
  if (tool == "tf-serving") return tfs;
  if (tool == "torchserve") return ts;
  if (tool == "ray-serve") return rs;
  CRAYFISH_CHECK(false) << "unknown external tool: " << tool;
  return tfs;
}

const GpuCosts& GetGpuCosts() {
  static const auto& gpu = *new GpuCosts();
  return gpu;
}

bool IsEmbeddedLibrary(const std::string& name) {
  return name == "dl4j" || name == "onnx" || name == "savedmodel";
}

bool IsExternalTool(const std::string& name) {
  return name == "tf-serving" || name == "torchserve" || name == "ray-serve";
}

std::vector<std::string> EmbeddedLibraryNames() {
  return {"dl4j", "onnx", "savedmodel"};
}

std::vector<std::string> ExternalToolNames() {
  return {"tf-serving", "torchserve", "ray-serve"};
}

double PerSampleSeconds(const std::map<std::string, double>& table,
                        double fallback_flops_per_s,
                        const ModelProfile& profile) {
  auto it = table.find(profile.name);
  if (it != table.end()) return it->second;
  CRAYFISH_CHECK_GT(fallback_flops_per_s, 0.0);
  return static_cast<double>(profile.flops_per_sample) / fallback_flops_per_s;
}

}  // namespace crayfish::serving
