#ifndef CRAYFISH_SERVING_CALIBRATION_H_
#define CRAYFISH_SERVING_CALIBRATION_H_

#include <map>
#include <string>
#include <vector>

#include "serving/model_profile.h"

namespace crayfish::serving {

/// RPC protocol used by an external serving tool. The paper uses gRPC for
/// TF-Serving and TorchServe, and HTTP for Ray Serve (its gRPC ingress was
/// experimental, §3.4.4).
enum class Protocol { kGrpc, kHttp };

/// Calibrated service-time parameters of an embedded interoperability
/// library (DL4J, ONNX Runtime, SavedModel).
///
/// CALIBRATION PROVENANCE: `per_sample_s` and `ffi_overhead_s` are derived
/// from the paper's own measurements. With Flink's chained source+sink
/// costing ~0.542 ms/event and the scoring-operator wrapper ~0.04 ms
/// (consistent with Fig. 12's flink[32-N-32] scoring-only rate of
/// 5373 ev/s), Table 4's throughputs solve to apply-times of ~0.146 ms
/// (ONNX), ~0.193 ms (SavedModel) and ~0.687 ms (DL4J) per single-sample
/// FFNN event, and ~350 ms for ONNX/ResNet50. `contention_alpha` is solved
/// from Fig. 6's scaling peaks (see DESIGN.md §3).
struct EmbeddedCosts {
  /// Fixed model-load cost plus per-byte parse cost (disk + format parse).
  double load_fixed_s = 0.05;
  double load_bytes_per_s = 200.0 * 1024 * 1024;
  /// Foreign-function-interface overhead per apply() call (JNI hop,
  /// input/output tensor wrapping).
  double ffi_overhead_s = 100e-6;
  /// JVM/JIT warmup: for the first `warmup_duration_s` after the job
  /// starts, applies run up to `warmup_factor`x slower, decaying linearly
  /// to steady state. This is what the paper's "discard the first 25% of
  /// measurements" protocol (§4.2) exists to cut away; the analyzer's
  /// warmup discard makes it vanish from reported numbers.
  double warmup_duration_s = 4.0;
  double warmup_factor = 2.5;
  /// Per-sample inference time by model name.
  std::map<std::string, double> per_sample_s;
  /// Fallback throughput for unknown models: time = flops / this.
  double fallback_flops_per_s = 1.0e9;
  /// Resource-sharing contention: service inflates by
  /// (1 + alpha * (mp - 1)) because the library shares cores with the SPS.
  double contention_alpha = 0.05;
  /// Parallelism beyond which the library stops scaling (internal global
  /// locks); 0 = unlimited. DL4J plateaus at 8 (Fig. 6).
  int max_useful_parallelism = 0;
  /// End-to-end compute speedup when the model runs on the GPU
  /// (calibrated to the paper's *measured* T4 improvement, Fig. 9 — the
  /// modest factor absorbs their unoptimized transfer/conversion path).
  double gpu_speedup = 1.0;
  /// Lognormal multiplicative service-time noise (coefficient of
  /// variation), independent per apply.
  double jitter_cv = 0.05;
  /// Slow capacity drift: a mean-one lognormal factor resampled every
  /// ~10 s (GC cycles, JIT recompilation, co-located load). Drives the
  /// run-to-run standard deviations the paper reports (e.g. SavedModel's
  /// ~2.3k ev/s at mp=16, Fig. 6) and the burst-to-burst recovery
  /// variation of Fig. 8.
  double slow_jitter_cv = 0.03;
  /// Service inflation under deep queues (GC/allocator pressure during
  /// overload); drives Fig. 8 recovery times.
  double overload_beta = 0.05;
  /// GC-debt stress hook: sustained deep queues degrade service by up to
  /// `stress_gamma`, building with time constant `stress_tau_up_s` and
  /// decaying with `stress_tau_down_s` (see sps::StreamEngine). Disabled
  /// (0) for the stock tools: any gamma large enough to reproduce the
  /// paper's 46-56 s burst recoveries also contaminates saturation
  /// measurements (see EXPERIMENTS.md, Fig. 8 discussion). The hook stays
  /// available for custom tools.
  double stress_gamma = 0.0;
  double stress_tau_up_s = 25.0;
  double stress_tau_down_s = 50.0;
};

/// Calibrated parameters of an external serving service (TF-Serving,
/// TorchServe, Ray Serve). See EmbeddedCosts for provenance; external
/// apply-times solve from Table 4 after subtracting the measured network
/// round trip (~0.9 ms for a 3 KB gRPC request on the paper's LAN).
struct ExternalCosts {
  Protocol protocol = Protocol::kGrpc;
  /// Client-side stub/serialization overhead per call (occupies the
  /// calling operator thread).
  double client_overhead_s = 60e-6;
  /// Server-side request handling per call (parallel across workers).
  double server_overhead_s = 100e-6;
  /// Per-sample inference time by model name.
  std::map<std::string, double> per_sample_s;
  double fallback_flops_per_s = 1.2e9;
  /// When true, model compute is executed on a shared single-thread
  /// intra-op pool (§4.3 pins inter-/intra-op parallelism to 1). This is
  /// what makes TF-Serving scale on FFNN but stay flat on ResNet50
  /// (Fig. 7): the tiny model never saturates the shared pool, the big
  /// one serializes on it.
  bool shared_intra_op_pool = false;
  /// Mild per-worker contention on the dedicated serving host.
  double worker_contention_alpha = 0.002;
  /// Ray Serve routes every request through one HTTP proxy per node; this
  /// is the per-request proxy occupancy (vertical-scaling ceiling,
  /// Fig. 11). 0 = no proxy stage.
  double proxy_per_request_s = 0.0;
  double load_fixed_s = 0.5;
  double load_bytes_per_s = 300.0 * 1024 * 1024;
  double gpu_speedup = 1.0;
  double jitter_cv = 0.10;
  /// See EmbeddedCosts::slow_jitter_cv.
  double slow_jitter_cv = 0.05;
  double overload_beta = 0.10;
  /// See EmbeddedCosts::stress_gamma (disabled for stock tools).
  double stress_gamma = 0.0;
  double stress_tau_up_s = 25.0;
  double stress_tau_down_s = 50.0;
};

/// Cluster-level GPU constants (NVIDIA T4 over PCIe 3.0 x16).
struct GpuCosts {
  double pcie_bytes_per_s = 12.0 * 1024 * 1024 * 1024;
  double kernel_launch_s = 30e-6;
};

/// Lookup calibrated costs; CHECK-fails on unknown names.
const EmbeddedCosts& GetEmbeddedCosts(const std::string& library);
const ExternalCosts& GetExternalCosts(const std::string& tool);
const GpuCosts& GetGpuCosts();

bool IsEmbeddedLibrary(const std::string& name);
bool IsExternalTool(const std::string& name);

/// Names in canonical order ("dl4j","onnx","savedmodel") /
/// ("tf-serving","torchserve","ray-serve").
std::vector<std::string> EmbeddedLibraryNames();
std::vector<std::string> ExternalToolNames();

/// Per-sample seconds for `profile` under a per-model table with FLOP
/// fallback.
double PerSampleSeconds(const std::map<std::string, double>& table,
                        double fallback_flops_per_s,
                        const ModelProfile& profile);

}  // namespace crayfish::serving

#endif  // CRAYFISH_SERVING_CALIBRATION_H_
