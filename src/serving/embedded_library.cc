#include "serving/embedded_library.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::serving {

crayfish::Status EmbeddedLibrary::Load(const Bytes& serialized) {
  CRAYFISH_ASSIGN_OR_RETURN(model::ModelFormat format,
                            model::DetectFormat(serialized));
  if (format != native_format()) {
    return crayfish::Status::InvalidArgument(
        name_ + " cannot load " + model::ModelFormatName(format) +
        " models; expected " + model::ModelFormatName(native_format()));
  }
  CRAYFISH_ASSIGN_OR_RETURN(model::ModelGraph graph,
                            model::Deserialize(serialized));
  return LoadGraph(std::move(graph));
}

crayfish::Status EmbeddedLibrary::LoadGraph(model::ModelGraph graph) {
  if (!graph.shapes_inferred()) {
    CRAYFISH_RETURN_IF_ERROR(graph.InferShapes());
  }
  graph_.emplace(std::move(graph));
  executor_ = std::make_unique<model::Executor>(&*graph_);
  return crayfish::Status::Ok();
}

const model::ModelGraph& EmbeddedLibrary::graph() const {
  CRAYFISH_CHECK(loaded());
  return *graph_;
}

crayfish::StatusOr<tensor::Tensor> EmbeddedLibrary::Apply(
    const tensor::Tensor& batch) const {
  if (!loaded()) {
    return crayfish::Status::FailedPrecondition(name_ +
                                                ": no model loaded");
  }
  return executor_->Run(batch);
}

double EmbeddedLibrary::LoadTimeSeconds(const ModelProfile& profile) const {
  return costs_.load_fixed_s +
         static_cast<double>(profile.weight_bytes) / costs_.load_bytes_per_s;
}

double EmbeddedLibrary::ApplyTimeSeconds(const ModelProfile& profile,
                                         int batch_size, double mp,
                                         bool gpu, size_t queue_depth,
                                         crayfish::Rng* rng) const {
  CRAYFISH_CHECK_GT(batch_size, 0);
  CRAYFISH_CHECK_GT(mp, 0.0);
  const double ps = PerSampleSeconds(costs_.per_sample_s,
                                     costs_.fallback_flops_per_s, profile);
  double compute = static_cast<double>(batch_size) * ps;
  if (gpu) {
    const GpuCosts& gc = GetGpuCosts();
    const double transfer_bytes = static_cast<double>(batch_size) *
                                  static_cast<double>(profile.input_elements) *
                                  sizeof(float);
    compute = compute / costs_.gpu_speedup + gc.kernel_launch_s +
              transfer_bytes / gc.pcie_bytes_per_s;
  }

  // Resource-sharing contention with the hosting SPS: service inflates
  // with scoring parallelism. Past max_useful_parallelism the library's
  // internal synchronization serializes extra tasks, so aggregate
  // throughput plateaus.
  double inflation;
  const double max_mp =
      static_cast<double>(costs_.max_useful_parallelism);
  if (max_mp > 0.0 && mp > max_mp) {
    inflation = (mp / max_mp) *
                (1.0 + costs_.contention_alpha * (max_mp - 1.0));
  } else {
    inflation = 1.0 + costs_.contention_alpha * (mp - 1.0);
  }

  // Overload inflation: deep input queues mean allocator/GC pressure.
  // Saturates at (1 + beta) once the queue is substantially backed up.
  const double overload =
      1.0 + costs_.overload_beta *
                std::min(static_cast<double>(queue_depth) / 64.0, 1.0);

  ++simulated_applies_;

  double total = (costs_.ffi_overhead_s + compute) * inflation * overload;
  if (rng != nullptr && costs_.jitter_cv > 0.0) {
    const double sigma = costs_.jitter_cv;
    // Mean-1 lognormal multiplier.
    total *= rng->LogNormal(-0.5 * sigma * sigma, sigma);
  }
  return total;
}

void EmbeddedLibrary::PublishMetrics(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Counter("library_simulated_applies", {{"library", name_}})
      ->Increment(static_cast<double>(simulated_applies_));
  registry->Gauge("library_model_loaded", {{"library", name_}})
      ->Set(loaded() ? 1.0 : 0.0);
}

crayfish::StatusOr<std::unique_ptr<EmbeddedLibrary>> CreateEmbeddedLibrary(
    const std::string& name) {
  if (name == "dl4j") return {std::make_unique<Dl4jLibrary>()};
  if (name == "onnx") return {std::make_unique<OnnxRuntimeLibrary>()};
  if (name == "savedmodel") return {std::make_unique<SavedModelLibrary>()};
  return crayfish::Status::InvalidArgument("unknown embedded library: " +
                                           name);
}

}  // namespace crayfish::serving
