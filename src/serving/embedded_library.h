#ifndef CRAYFISH_SERVING_EMBEDDED_LIBRARY_H_
#define CRAYFISH_SERVING_EMBEDDED_LIBRARY_H_

#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "model/executor.h"
#include "model/formats.h"
#include "model/graph.h"
#include "serving/calibration.h"
#include "serving/model_profile.h"
#include "tensor/tensor.h"

namespace crayfish::obs {
class MetricsRegistry;
}  // namespace crayfish::obs

namespace crayfish::serving {

/// An embedded interoperability library: the CrayfishModel contract
/// (`load` + `apply`, §3.2) plus a calibrated service-time model for the
/// simulation.
///
/// The *real* path (Load/Apply) parses a serialized model in the library's
/// native format and executes true forward passes — tests and examples use
/// it. The *simulated* path (LoadTimeSeconds/ApplyTimeSeconds) returns the
/// time such a call takes in the paper's environment; stream-engine
/// scoring operators charge that time to the simulation clock.
class EmbeddedLibrary {
 public:
  virtual ~EmbeddedLibrary() = default;

  EmbeddedLibrary(const EmbeddedLibrary&) = delete;
  EmbeddedLibrary& operator=(const EmbeddedLibrary&) = delete;

  const std::string& name() const { return name_; }
  /// The serialization format this library consumes (DL4J reads Keras H5,
  /// ONNX Runtime reads .onnx, SavedModel reads TF .pb).
  virtual model::ModelFormat native_format() const = 0;
  const EmbeddedCosts& costs() const { return costs_; }

  // --- real CrayfishModel contract ---

  /// Loads a model from serialized bytes; rejects bytes that are not in
  /// the library's native format (as the real libraries do).
  crayfish::Status Load(const Bytes& serialized);
  /// Loads an in-memory graph directly (test convenience).
  crayfish::Status LoadGraph(model::ModelGraph graph);
  bool loaded() const { return graph_.has_value(); }
  const model::ModelGraph& graph() const;

  /// Runs a real forward pass on a batch ([batch, ...sample shape]).
  crayfish::StatusOr<tensor::Tensor> Apply(const tensor::Tensor& batch) const;

  // --- simulated service times ---

  /// Time to load the model into operator memory at job start.
  double LoadTimeSeconds(const ModelProfile& profile) const;

  /// Occupancy of one apply() call on the scoring operator thread.
  ///
  /// `mp` is the scoring parallelism of the hosting SPS: embedded
  /// libraries share cores with the stream processor, so service inflates
  /// with mp (and plateaus at max_useful_parallelism). `queue_depth` is
  /// the caller's input-queue depth, driving overload inflation (burst
  /// recovery). `rng` (optional) adds lognormal jitter.
  double ApplyTimeSeconds(const ModelProfile& profile, int batch_size,
                          double mp, bool gpu, size_t queue_depth,
                          crayfish::Rng* rng) const;

  /// Writes end-of-run library metrics (simulated applies, real
  /// inferences run through Load/Apply) into `registry`, labeled by
  /// library name.
  void PublishMetrics(obs::MetricsRegistry* registry) const;

 protected:
  EmbeddedLibrary(std::string name, EmbeddedCosts costs)
      : name_(std::move(name)), costs_(std::move(costs)) {}

  /// Number of simulated apply() calls so far (drives JIT warmup decay).
  uint64_t simulated_applies() const { return simulated_applies_; }

 private:
  std::string name_;
  EmbeddedCosts costs_;
  std::optional<model::ModelGraph> graph_;
  std::unique_ptr<model::Executor> executor_;
  /// Mutable state of the *simulated* library instance: warmup progresses
  /// as the hosting job applies the model.
  mutable uint64_t simulated_applies_ = 0;
};

/// DeepLearning4j: end-to-end JVM deep learning; Crayfish uses its Keras
/// H5 model import (§3.4.2). Tight Java integration but the slowest apply
/// path and an internal bottleneck past parallelism 8.
class Dl4jLibrary : public EmbeddedLibrary {
 public:
  Dl4jLibrary() : EmbeddedLibrary("dl4j", GetEmbeddedCosts("dl4j")) {}
  model::ModelFormat native_format() const override {
    return model::ModelFormat::kH5;
  }
};

/// ONNX Runtime with native .onnx models: the fastest embedded option in
/// the paper's study (Table 4).
class OnnxRuntimeLibrary : public EmbeddedLibrary {
 public:
  OnnxRuntimeLibrary() : EmbeddedLibrary("onnx", GetEmbeddedCosts("onnx")) {}
  model::ModelFormat native_format() const override {
    return model::ModelFormat::kOnnx;
  }
};

/// TensorFlow SavedModel runtime: a format-specialized embedded tool.
class SavedModelLibrary : public EmbeddedLibrary {
 public:
  SavedModelLibrary()
      : EmbeddedLibrary("savedmodel", GetEmbeddedCosts("savedmodel")) {}
  model::ModelFormat native_format() const override {
    return model::ModelFormat::kSavedModel;
  }
};

/// Factory by canonical name ("dl4j" | "onnx" | "savedmodel").
crayfish::StatusOr<std::unique_ptr<EmbeddedLibrary>> CreateEmbeddedLibrary(
    const std::string& name);

}  // namespace crayfish::serving

#endif  // CRAYFISH_SERVING_EMBEDDED_LIBRARY_H_
