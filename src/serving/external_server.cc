#include "serving/external_server.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::serving {

ExternalServingServer::ExternalServingServer(sim::Simulation* sim,
                                             sim::Network* network,
                                             std::string tool_name,
                                             ExternalServerOptions options)
    : sim_(sim), network_(network), tool_name_(std::move(tool_name)),
      options_(std::move(options)), costs_(GetExternalCosts(tool_name_)),
      rng_(sim->ForkRng()) {
  CRAYFISH_CHECK_GT(options_.workers, 0);
  if (!network_->HasHost(options_.host)) {
    CRAYFISH_CHECK_OK(network_->AddHost(
        sim::Host{options_.host, /*vcpus=*/16, /*memory_bytes=*/60ULL << 30,
                  options_.use_gpu}));
  }
  workers_ = std::make_unique<sim::ServerPool>(
      sim_, tool_name_ + "-workers", options_.workers);
  if (costs_.shared_intra_op_pool) {
    intra_op_pool_ = std::make_unique<sim::SerialExecutor>(
        sim_, tool_name_ + "-intra-op");
  }
  if (costs_.proxy_per_request_s > 0.0) {
    http_proxy_ = std::make_unique<sim::SerialExecutor>(
        sim_, tool_name_ + "-http-proxy");
  }
  if (options_.use_gpu) {
    gpu_ = std::make_unique<sim::SerialExecutor>(sim_, tool_name_ + "-gpu");
  }
  models_[options_.model.name] = options_.model;
  model_versions_[options_.model.name] = 1;
}

void ExternalServingServer::ScheduleOnHost(sim::SimTime delay,
                                           sim::InlineAction action) {
  if (sim_->host_scheduling_active()) {
    sim_->ScheduleOnHost(options_.host, delay, std::move(action));
  } else {
    sim_->Schedule(delay, std::move(action));
  }
}

void ExternalServingServer::Start() {
  const double load =
      costs_.load_fixed_s +
      static_cast<double>(options_.model.weight_bytes) /
          costs_.load_bytes_per_s;
  ScheduleOnHost(load, [this]() { ready_ = true; });
  if (options_.autoscale) {
    // Intentionally global: AutoscaleTick is a coordinator-plane control
    // loop (see the CRAYFISH_GLOBAL_PLANE annotation).
    sim_->Schedule(options_.autoscale_interval_s,
                   [this]() { AutoscaleTick(); });
  }
}

void ExternalServingServer::DeployModel(const ModelProfile& profile) {
  // Loading happens alongside serving (the point of external tools, §7:
  // model changes without touching the SPS); the version flips once the
  // load completes.
  const double load =
      costs_.load_fixed_s +
      static_cast<double>(profile.weight_bytes) / costs_.load_bytes_per_s;
  ScheduleOnHost(load, [this, profile]() {
    models_[profile.name] = profile;
    ++model_versions_[profile.name];
  });
}

int ExternalServingServer::ModelVersion(
    const std::string& model_name) const {
  auto it = model_versions_.find(model_name);
  return it == model_versions_.end() ? 0 : it->second;
}

const ModelProfile& ExternalServingServer::ResolveModel(
    const std::string& name) const {
  auto it = models_.find(name);
  CRAYFISH_CHECK(it != models_.end()) << "unresolved model " << name;
  return it->second;
}

uint64_t ExternalServingServer::RequestWireBytes(const ModelProfile& model,
                                                 int batch_size) const {
  // gRPC sends the tensor as packed f32 protobuf; HTTP (Ray Serve) ships
  // the JSON body, ~4 bytes per element plus headers.
  const uint64_t per_element =
      costs_.protocol == Protocol::kGrpc ? sizeof(float) : 4;
  return 256 + per_element * static_cast<uint64_t>(model.input_elements) *
                   static_cast<uint64_t>(batch_size);
}

uint64_t ExternalServingServer::ResponseWireBytes(const ModelProfile& model,
                                                  int batch_size) const {
  const uint64_t per_element =
      costs_.protocol == Protocol::kGrpc ? sizeof(float) : 4;
  return 128 + per_element * static_cast<uint64_t>(model.output_elements) *
                   static_cast<uint64_t>(batch_size);
}

void ExternalServingServer::Invoke(const std::string& client_host,
                                   int batch_size,
                                   std::function<void()> on_response) {
  CRAYFISH_CHECK_GT(batch_size, 0);
  PendingRequest request;
  request.client_host = client_host;
  request.model_name = options_.model.name;
  request.batch_size = batch_size;
  request.on_response = std::move(on_response);
  const uint64_t bytes = RequestWireBytes(options_.model, batch_size);
  network_->Send(client_host, options_.host, bytes,
                 [this, request = std::move(request)]() mutable {
                   HandleArrival(std::move(request));
                 });
}

void ExternalServingServer::InvokeModel(
    const std::string& client_host, const std::string& model_name,
    int batch_size, std::function<void(bool)> on_response) {
  auto it = models_.find(model_name);
  if (it == models_.end()) {
    // Error responses still cross the network.
    network_->Send(client_host, options_.host, 256, [this, client_host,
                                                     on_response]() {
      network_->Send(options_.host, client_host, 128,
                     [on_response]() { on_response(false); });
    });
    return;
  }
  PendingRequest request;
  request.client_host = client_host;
  request.model_name = model_name;
  request.batch_size = batch_size;
  request.on_response = [on_response = std::move(on_response)]() {
    on_response(true);
  };
  const uint64_t bytes = RequestWireBytes(it->second, batch_size);
  network_->Send(client_host, options_.host, bytes,
                 [this, request = std::move(request)]() mutable {
                   HandleArrival(std::move(request));
                 });
}

void ExternalServingServer::HandleArrival(PendingRequest request) {
  if (server_down_) {
    // Crashed serving process: the request vanishes; no response ever
    // leaves the host. Clients notice via their own timeouts.
    ++requests_dropped_;
    return;
  }
  if (!ready_) {
    // The service is still loading the model: retry shortly (clients
    // observe this as slow first responses).
    ScheduleOnHost(0.01, [this, request = std::move(request)]() mutable {
      HandleArrival(std::move(request));
    });
    return;
  }
  if (obs::MetricsRegistry* reg = sim_->metrics()) {
    if (!depth_hist_) {
      depth_hist_ =
          reg->Histogram("serving_queue_depth", {{"tool", tool_name_}});
    }
    depth_hist_->Observe(static_cast<double>(queue_depth()));
  }
  if (http_proxy_ != nullptr) {
    // Ray Serve: one proxy per node forwards every request serially.
    http_proxy_->Post(costs_.proxy_per_request_s,
                      [this, request = std::move(request)]() mutable {
                        if (options_.adaptive_batching) {
                          EnqueueForBatching(std::move(request));
                        } else {
                          RunOnWorkers(std::move(request));
                        }
                      });
    return;
  }
  if (options_.adaptive_batching) {
    EnqueueForBatching(std::move(request));
    return;
  }
  RunOnWorkers(std::move(request));
}

void ExternalServingServer::EnqueueForBatching(PendingRequest request) {
  batch_queue_.push_back(std::move(request));
  int samples = 0;
  for (const PendingRequest& r : batch_queue_) samples += r.batch_size;
  if (samples >= options_.max_batch) {
    FlushBatch();
    return;
  }
  if (!batch_timer_armed_) {
    batch_timer_armed_ = true;
    ScheduleOnHost(options_.batch_timeout_s, [this]() {
      batch_timer_armed_ = false;
      FlushBatch();
    });
  }
}

void ExternalServingServer::FlushBatch() {
  if (batch_queue_.empty()) return;
  std::vector<PendingRequest> group;
  group.swap(batch_queue_);
  RunGroupOnWorkers(std::move(group));
}

double ExternalServingServer::ComputeSeconds(const ModelProfile& model,
                                             int batch_size) {
  const double ps = PerSampleSeconds(costs_.per_sample_s,
                                     costs_.fallback_flops_per_s, model);
  double compute = ps * static_cast<double>(batch_size);
  if (options_.use_gpu) {
    const GpuCosts& gc = GetGpuCosts();
    const double transfer_bytes = static_cast<double>(batch_size) *
                                  static_cast<double>(model.input_elements) *
                                  sizeof(float);
    compute = compute / costs_.gpu_speedup + gc.kernel_launch_s +
              transfer_bytes / gc.pcie_bytes_per_s;
  }
  // Overload inflation under deep request queues (burst behaviour);
  // saturates at (1 + beta).
  compute *= 1.0 + costs_.overload_beta *
                       std::min(static_cast<double>(queue_depth()) / 64.0,
                                1.0);
  if (costs_.jitter_cv > 0.0) {
    const double sigma = costs_.jitter_cv;
    compute *= rng_.LogNormal(-0.5 * sigma * sigma, sigma);
  }
  // Fault-injected straggler slowdown (1.0 when healthy).
  compute *= slow_factor_;
  return compute;
}

void ExternalServingServer::RunOnWorkers(PendingRequest request) {
  std::vector<PendingRequest> group;
  group.push_back(std::move(request));
  RunGroupOnWorkers(std::move(group));
}

void ExternalServingServer::RunGroupOnWorkers(
    std::vector<PendingRequest> group) {
  CRAYFISH_CHECK(!group.empty());
  // Worker contention: tools whose workers own their compute (TorchServe
  // processes contend on the host/GIL) inflate the whole service; tools
  // with a shared compute pool only inflate request handling.
  const double contention =
      1.0 + costs_.worker_contention_alpha *
                static_cast<double>(workers_->servers() - 1);
  const double overhead = costs_.server_overhead_s * contention;
  // One amortized inference over the whole group (one per request when
  // batching is off). Mixed-model groups are charged per model run.
  double compute = 0.0;
  int samples_per_model = 0;
  const std::string& model_name = group.front().model_name;
  for (const PendingRequest& r : group) {
    if (r.model_name == model_name) {
      samples_per_model += r.batch_size;
    } else {
      compute += ComputeSeconds(ResolveModel(r.model_name), r.batch_size);
    }
  }
  compute += ComputeSeconds(ResolveModel(model_name), samples_per_model);
  ++batches_executed_;

  const bool offload_compute =
      intra_op_pool_ != nullptr || gpu_ != nullptr;
  const double worker_service =
      offload_compute ? overhead : overhead + compute * contention;
  auto shared_group =
      std::make_shared<std::vector<PendingRequest>>(std::move(group));
  auto respond_all = [this, shared_group]() {
    for (PendingRequest& r : *shared_group) {
      Respond(r.client_host, r.batch_size, std::move(r.on_response));
    }
  };
  workers_->Submit(
      worker_service,
      [this, compute, respond_all = std::move(respond_all)](
          sim::SimTime) mutable {
        if (gpu_ != nullptr) {
          gpu_->Post(compute, std::move(respond_all));
          return;
        }
        if (intra_op_pool_ != nullptr) {
          // §4.3: intra-op parallelism pinned to 1 — all compute
          // serializes on this pool regardless of worker count.
          intra_op_pool_->Post(compute, std::move(respond_all));
          return;
        }
        respond_all();
      });
}

void ExternalServingServer::Respond(const std::string& client_host,
                                    int batch_size,
                                    std::function<void()> on_response) {
  ++requests_served_;
  network_->Send(options_.host, client_host,
                 ResponseWireBytes(options_.model, batch_size),
                 std::move(on_response));
}

void ExternalServingServer::AutoscaleTick() {
  const size_t depth = queue_depth();
  const int current = workers_->servers();
  if (depth > options_.scale_up_queue_depth &&
      current < options_.max_workers) {
    workers_->Resize(current + 1);
    if (obs::TimelineSampler* tl = sim_->timeline()) {
      tl->Annotate(sim_->Now(), "autoscale-up:" + tool_name_ + ":" +
                                    std::to_string(current + 1));
      tl->Count("autoscale_events", sim_->Now());
    }
  } else if (depth == 0 && current > options_.min_workers) {
    workers_->Resize(current - 1);
    if (obs::TimelineSampler* tl = sim_->timeline()) {
      tl->Annotate(sim_->Now(), "autoscale-down:" + tool_name_ + ":" +
                                    std::to_string(current - 1));
      tl->Count("autoscale_events", sim_->Now());
    }
  }
  sim_->Schedule(options_.autoscale_interval_s,
                 [this]() { AutoscaleTick(); });
}

void ExternalServingServer::SetWorkers(int workers) {
  CRAYFISH_CHECK_GT(workers, 0);
  workers_->Resize(workers);
  options_.workers = workers;
}

void ExternalServingServer::SetWorkersGraceful(int workers) {
  CRAYFISH_CHECK_GT(workers, 0);
  workers_->ResizeGraceful(workers);
  options_.workers = workers;
}

int ExternalServingServer::workers() const { return workers_->servers(); }

int ExternalServingServer::target_workers() const {
  return workers_->target_servers();
}

void ExternalServingServer::InjectSlowdown(double factor) {
  CRAYFISH_CHECK_GT(factor, 0.0);
  slow_factor_ = factor;
}

void ExternalServingServer::SetServerDown(bool down) { server_down_ = down; }

size_t ExternalServingServer::queue_depth() const {
  size_t depth = workers_->queue_depth() + batch_queue_.size();
  if (intra_op_pool_ != nullptr) depth += intra_op_pool_->queue_depth();
  if (http_proxy_ != nullptr) depth += http_proxy_->queue_depth();
  if (gpu_ != nullptr) depth += gpu_->queue_depth();
  return depth;
}

void ExternalServingServer::PublishMetrics(
    obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  const obs::MetricLabels labels = {{"tool", tool_name_}};
  registry->Counter("serving_requests_served", labels)
      ->Increment(static_cast<double>(requests_served_));
  auto publish_pool = [&](const char* resource,
                          const sim::UtilizationStats& u) {
    const obs::MetricLabels rl = {{"tool", tool_name_},
                                  {"resource", resource}};
    registry->Gauge("serving_utilization", rl)->Set(u.busy_ratio);
    registry->Gauge("serving_wait_count", rl)
        ->Set(static_cast<double>(u.wait_count));
    registry->Gauge("serving_wait_mean_s", rl)->Set(u.wait_mean_s);
    registry->Gauge("serving_wait_max_s", rl)->Set(u.wait_max_s);
  };
  publish_pool("workers", workers_->UtilizationReport());
  if (intra_op_pool_ != nullptr) {
    publish_pool("intra-op", intra_op_pool_->UtilizationReport());
  }
  if (http_proxy_ != nullptr) {
    publish_pool("http-proxy", http_proxy_->UtilizationReport());
  }
  if (gpu_ != nullptr) publish_pool("gpu", gpu_->UtilizationReport());
}

crayfish::StatusOr<std::unique_ptr<ExternalServingServer>>
CreateExternalServer(sim::Simulation* sim, sim::Network* network,
                     const std::string& tool_name,
                     ExternalServerOptions options) {
  if (!IsExternalTool(tool_name)) {
    return crayfish::Status::InvalidArgument("unknown external tool: " +
                                             tool_name);
  }
  return {std::make_unique<ExternalServingServer>(sim, network, tool_name,
                                                  std::move(options))};
}

}  // namespace crayfish::serving
