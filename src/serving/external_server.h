#ifndef CRAYFISH_SERVING_EXTERNAL_SERVER_H_
#define CRAYFISH_SERVING_EXTERNAL_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serving/calibration.h"
#include "serving/model_profile.h"
#include "sim/network.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace crayfish::obs {
class HistogramMetric;
class MetricsRegistry;
}  // namespace crayfish::obs

namespace crayfish::serving {

struct ExternalServerOptions {
  /// Host name of the serving VM (paper: 16 vCPUs / 60 GB, own machine).
  std::string host = "serving";
  /// Worker threads/processes handling requests (the experiments' mp).
  int workers = 1;
  /// Serve the model on the GPU (Fig. 9 experiments).
  bool use_gpu = false;
  /// Default model the server hosts (more can be added — §7 multi-model).
  ModelProfile model;

  // --- §7 extensions (off by default; the paper's runs use none) ---

  /// Adaptive batching (Clipper/InferLine-style, §7.1): requests are
  /// grouped up to `max_batch` samples or `batch_timeout_s`, then
  /// executed as one amortized inference.
  bool adaptive_batching = false;
  int max_batch = 32;
  double batch_timeout_s = 0.005;

  /// Queue-depth autoscaler (the "auto-scaling" external tools offer,
  /// §7.2): every `autoscale_interval_s`, add a worker when the queue
  /// exceeds `scale_up_queue_depth`, remove one when it is empty.
  bool autoscale = false;
  int min_workers = 1;
  int max_workers = 16;
  size_t scale_up_queue_depth = 32;
  double autoscale_interval_s = 2.0;
};

/// A standalone model-serving service (TF-Serving / TorchServe /
/// Ray Serve) as a simulated process on its own host.
///
/// Request path:  client --network--> [HTTP proxy (Ray Serve only)] -->
/// worker pool --> (shared intra-op pool | per-worker compute | GPU) -->
/// response --network--> client.
///
/// The worker pool is an M-server queue; the shared intra-op pool and the
/// GPU are single-lane serial resources — these two structural choices
/// reproduce Fig. 7 (TF-Serving flat on ResNet50, TorchServe scaling past
/// it) and Fig. 11 (Ray Serve's proxy ceiling) without per-figure tuning.
class ExternalServingServer {
 public:
  ExternalServingServer(sim::Simulation* sim, sim::Network* network,
                        std::string tool_name, ExternalServerOptions options);

  ExternalServingServer(const ExternalServingServer&) = delete;
  ExternalServingServer& operator=(const ExternalServingServer&) = delete;

  /// Begins model loading; requests arriving before loading completes
  /// queue until the model is ready.
  void Start();

  /// Issues one inference RPC from `client_host` for `batch_size` samples
  /// against the default model. `on_response` fires at the simulated
  /// instant the client receives the response. The caller is responsible
  /// for modeling its own (blocking) thread occupancy (§4.3: all external
  /// calls execute as blocking).
  void Invoke(const std::string& client_host, int batch_size,
              std::function<void()> on_response);

  /// Multi-model variant (§7: "deploy and serve thousands of models
  /// concurrently"): targets a model registered via DeployModel.
  /// Unknown model names answer with an error flag.
  void InvokeModel(const std::string& client_host,
                   const std::string& model_name, int batch_size,
                   std::function<void(bool ok)> on_response);

  /// Registers (or hot-swaps, bumping the version) a model. The new
  /// version serves after its load time; in-flight requests for the
  /// model keep using the timings of whatever is loaded (§7 model
  /// versioning without redeploying the SPS).
  void DeployModel(const ModelProfile& profile);

  /// Current version of a deployed model (1-based; 0 = unknown).
  int ModelVersion(const std::string& model_name) const;

  /// Re-provisions the worker pool (the serving-side mp knob).
  void SetWorkers(int workers);
  /// Like SetWorkers, but a shrink drains the worker queue before the
  /// lower width applies (ServerPool::ResizeGraceful): the autoscaler
  /// scale-in path, which must never strand queued inferences.
  void SetWorkersGraceful(int workers);
  int workers() const;
  /// Width the pool is converging to (equals workers() unless a graceful
  /// shrink is still draining).
  int target_workers() const;

  // --- fault-injection hooks ---

  /// Straggler injection: multiplies every inference's compute time.
  /// CHECK-fails unless factor > 0; 1.0 restores healthy behaviour.
  void InjectSlowdown(double factor);
  double slowdown_factor() const { return slow_factor_; }

  /// Marks the serving process down (true) or back up (false). While down,
  /// arriving requests are dropped on the floor — the serving client's
  /// timeout/retry machinery is what notices, as with a crashed process
  /// whose host still routes packets.
  void SetServerDown(bool down);
  bool server_down() const { return server_down_; }
  uint64_t requests_dropped() const { return requests_dropped_; }

  const std::string& tool_name() const { return tool_name_; }
  const std::string& host() const { return options_.host; }
  const ExternalCosts& costs() const { return costs_; }
  const ModelProfile& model() const { return options_.model; }
  bool ready() const { return ready_; }
  uint64_t requests_served() const { return requests_served_; }
  size_t queue_depth() const;
  /// Cumulative worker-pool busy seconds (monotone); the telemetry
  /// timeline differences this across windows for utilization.
  double worker_busy_seconds() const {
    return workers_ != nullptr ? workers_->busy_seconds() : 0.0;
  }

  /// Writes end-of-run serving metrics (requests served, worker-pool
  /// utilization and queue-wait stats) into `registry`, labeled by tool.
  void PublishMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct PendingRequest {
    std::string client_host;
    std::string model_name;
    int batch_size = 1;
    std::function<void()> on_response;
  };

  /// Server-side handling once the request bytes arrive.
  void HandleArrival(PendingRequest request);
  void RunOnWorkers(PendingRequest request);
  /// Adaptive-batching path: queue and flush groups.
  void EnqueueForBatching(PendingRequest request);
  void FlushBatch();
  void RunGroupOnWorkers(std::vector<PendingRequest> group);
  void Respond(const std::string& client_host, int batch_size,
               std::function<void()> on_response);
  /// The autoscaler deliberately stays on the coordinator's global event
  /// queue: it reads queue depth merged across the whole service and
  /// resizes the worker pool, a decision the confinement planner treats
  /// as a cross-host control action (DESIGN.md §4.7).
  void AutoscaleTick()
      CRAYFISH_GLOBAL_PLANE("autoscaler; global control decision");
  /// Confines server-side work (model loads, readiness) to the serving
  /// host when the experiment armed host scheduling; falls back to the
  /// global queue so unit tests keep their exact event order.
  void ScheduleOnHost(sim::SimTime delay, sim::InlineAction action);
  const ModelProfile& ResolveModel(const std::string& name) const;
  double ComputeSeconds(const ModelProfile& model, int batch_size);
  uint64_t RequestWireBytes(const ModelProfile& model,
                            int batch_size) const;
  uint64_t ResponseWireBytes(const ModelProfile& model,
                             int batch_size) const;

  sim::Simulation* sim_;
  sim::Network* network_;
  std::string tool_name_;
  ExternalServerOptions options_;
  ExternalCosts costs_;
  crayfish::Rng rng_;
  bool ready_ = false;
  std::unique_ptr<sim::ServerPool> workers_;
  /// Shared single-thread compute pool (TF-Serving intra-op, §4.3).
  std::unique_ptr<sim::SerialExecutor> intra_op_pool_;
  /// Ray Serve's per-node HTTP proxy.
  std::unique_ptr<sim::SerialExecutor> http_proxy_;
  /// The single accelerator on the serving VM.
  std::unique_ptr<sim::SerialExecutor> gpu_;
  uint64_t requests_served_ = 0;
  /// Fault-injected straggler multiplier on compute time (1.0 = healthy).
  double slow_factor_ = 1.0;
  bool server_down_ = false;
  uint64_t requests_dropped_ = 0;
  /// Additional models by name (the default model is always present).
  /// Ordered (lint R3): version sweeps and eviction walk this map during
  /// simulated serving, so iteration order is scheduling-visible.
  std::map<std::string, ModelProfile> models_;
  std::map<std::string, int> model_versions_;
  /// Adaptive-batching queue.
  std::vector<PendingRequest> batch_queue_;
  bool batch_timer_armed_ = false;
  uint64_t batches_executed_ = 0;
  /// Lazily resolved total-queue-depth histogram labeled by tool.
  obs::HistogramMetric* depth_hist_ = nullptr;

 public:
  uint64_t batches_executed() const { return batches_executed_; }
};

/// Factory for the three supported tools ("tf-serving" | "torchserve" |
/// "ray-serve").
crayfish::StatusOr<std::unique_ptr<ExternalServingServer>>
CreateExternalServer(sim::Simulation* sim, sim::Network* network,
                     const std::string& tool_name,
                     ExternalServerOptions options);

}  // namespace crayfish::serving

#endif  // CRAYFISH_SERVING_EXTERNAL_SERVER_H_
