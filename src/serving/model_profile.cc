#include "serving/model_profile.h"

#include "common/logging.h"

namespace crayfish::serving {

namespace {
/// Average serialized JSON characters per tensor element (fixed-precision
/// "0.472," style rendering). 784 elements * 4 B ~= 3.1 KB matches the
/// paper's "one FFNN input data point (3 KB)".
constexpr uint64_t kJsonBytesPerElement = 4;
/// CrayfishDataBatch JSON envelope: batch id, creation timestamp, shape
/// metadata, braces/keys.
constexpr uint64_t kBatchEnvelopeBytes = 160;
}  // namespace

ModelProfile ModelProfile::FromGraph(const model::ModelGraph& graph) {
  CRAYFISH_CHECK(graph.shapes_inferred());
  ModelProfile p;
  p.name = graph.name();
  p.flops_per_sample = graph.Flops(1);
  p.input_elements = graph.input_shape().NumElements();
  p.output_elements = graph.output_shape().NumElements();
  p.weight_bytes = graph.WeightBytes();
  p.parameter_count = graph.ParamCount();
  return p;
}

ModelProfile ModelProfile::Ffnn() {
  // Pinned from FromGraph(BuildFfnn()); asserted in model tests.
  ModelProfile p;
  p.name = "ffnn";
  p.flops_per_sample = 55154;
  p.input_elements = 784;   // 28 x 28
  p.output_elements = 10;
  p.parameter_count = 27562;
  p.weight_bytes = 27562ULL * sizeof(float);
  return p;
}

ModelProfile ModelProfile::ResNet50() {
  // Pinned from FromGraph(BuildResNet50()); asserted in model tests.
  ModelProfile p;
  p.name = "resnet50";
  p.flops_per_sample = 7764220808LL;  // ~7.76 GFLOPs (3.9 GMACs)
  p.input_elements = 150528;          // 224 x 224 x 3
  p.output_elements = 1000;
  p.parameter_count = 25636712;
  p.weight_bytes = 25636712ULL * sizeof(float);
  return p;
}

ModelProfile ModelProfile::ByName(const std::string& name) {
  if (name == "ffnn") return Ffnn();
  if (name == "resnet50") return ResNet50();
  CRAYFISH_CHECK(false) << "unknown model profile: " << name;
  return {};
}

uint64_t ModelProfile::InputWireBytesPerSample() const {
  return static_cast<uint64_t>(input_elements) * kJsonBytesPerElement;
}

uint64_t ModelProfile::OutputWireBytesPerSample() const {
  return static_cast<uint64_t>(output_elements) * kJsonBytesPerElement;
}

uint64_t ModelProfile::InputBatchWireBytes(int batch_size) const {
  return kBatchEnvelopeBytes +
         InputWireBytesPerSample() * static_cast<uint64_t>(batch_size);
}

uint64_t ModelProfile::OutputBatchWireBytes(int batch_size) const {
  return kBatchEnvelopeBytes +
         OutputWireBytesPerSample() * static_cast<uint64_t>(batch_size);
}

}  // namespace crayfish::serving
