#ifndef CRAYFISH_SERVING_MODEL_PROFILE_H_
#define CRAYFISH_SERVING_MODEL_PROFILE_H_

#include <cstdint>
#include <string>

#include "model/graph.h"

namespace crayfish::serving {

/// The architecture-derived quantities the simulation needs about a model.
/// Profiles are computed from the real model graphs (src/model), so the
/// cost models consume honest FLOP/size numbers.
struct ModelProfile {
  std::string name;
  /// Forward-pass floating point ops for one sample (MACs counted as 2).
  int64_t flops_per_sample = 0;
  /// Input tensor elements per sample (e.g. 28*28 = 784 for FFNN).
  int64_t input_elements = 0;
  /// Output tensor elements per sample (10 for FFNN, 1000 for ResNet50).
  int64_t output_elements = 0;
  /// Total serialized weight bytes (raw f32).
  uint64_t weight_bytes = 0;
  int64_t parameter_count = 0;

  /// Computes a profile from a shape-inferred graph.
  static ModelProfile FromGraph(const model::ModelGraph& graph);

  /// Canonical profiles of the paper's two models. Values are pinned
  /// constants asserted against FromGraph(Build*()) in tests, so profile
  /// lookups don't require materializing 100 MB of ResNet weights.
  static ModelProfile Ffnn();
  static ModelProfile ResNet50();
  /// Lookup by name ("ffnn" / "resnet50"); CHECK-fails otherwise.
  static ModelProfile ByName(const std::string& name);

  /// Serialized bytes of one sample on the wire. Crayfish serializes
  /// batches as JSON (§3.1); the synthetic generator emits fixed-precision
  /// values averaging ~4.8 characters per element, close to the 3 KB the
  /// paper measured for one FFNN data point.
  uint64_t InputWireBytesPerSample() const;
  uint64_t OutputWireBytesPerSample() const;
  /// Full CrayfishDataBatch wire size for `batch_size` samples (payload +
  /// JSON envelope).
  uint64_t InputBatchWireBytes(int batch_size) const;
  uint64_t OutputBatchWireBytes(int batch_size) const;
};

}  // namespace crayfish::serving

#endif  // CRAYFISH_SERVING_MODEL_PROFILE_H_
