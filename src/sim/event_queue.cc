#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace crayfish::sim {

uint64_t EventQueue::Push(SimTime time, int32_t host, InlineAction action) {
  const uint64_t seq = next_seq_++;
  heap_.push_back(Event{time, seq, host, std::move(action)});
  // Sift up with a hole: most events are scheduled later than their parent
  // (DES schedules into the future), so the common case is zero moves.
  size_t i = heap_.size() - 1;
  if (i > 0 && Before(heap_[i], heap_[(i - 1) / kArity])) {
    Event v = std::move(heap_[i]);
    do {
      const size_t parent = (i - 1) / kArity;
      if (!Before(v, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    } while (i > 0);
    heap_[i] = std::move(v);
  }
  return seq;
}

SimTime EventQueue::next_time() const {
  CRAYFISH_CHECK(!heap_.empty());
  return heap_.front().time;
}

Event EventQueue::Pop() {
  CRAYFISH_CHECK(!heap_.empty());
  Event top = std::move(heap_.front());
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift `last` down from the root with a hole; the vector keeps its
    // capacity, so the heap's storage is reused for the whole run.
    const size_t n = heap_.size();
    size_t i = 0;
    for (;;) {
      const size_t first_child = kArity * i + 1;
      if (first_child >= n) break;
      size_t best = first_child;
      const size_t end = std::min(first_child + kArity, n);
      for (size_t c = first_child + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
      if (!Before(heap_[best], last)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(last);
  }
  return top;
}

}  // namespace crayfish::sim
