#include "sim/event_queue.h"

#include "common/logging.h"

namespace crayfish::sim {

uint64_t EventQueue::Push(SimTime time, std::function<void()> action) {
  const uint64_t seq = next_seq_++;
  heap_.push(Event{time, seq, std::move(action)});
  return seq;
}

SimTime EventQueue::next_time() const {
  CRAYFISH_CHECK(!heap_.empty());
  return heap_.top().time;
}

Event EventQueue::Pop() {
  CRAYFISH_CHECK(!heap_.empty());
  // priority_queue::top() returns const&; move out via const_cast is UB —
  // copy the function instead. Events are popped once, so copy cost is the
  // std::function copy only.
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace crayfish::sim
