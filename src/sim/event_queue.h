#ifndef CRAYFISH_SIM_EVENT_QUEUE_H_
#define CRAYFISH_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace crayfish::sim {

/// Simulated time in seconds since experiment start.
using SimTime = double;

/// A scheduled callback. Events with equal times fire in scheduling order
/// (the sequence number breaks ties), which keeps simulations deterministic.
struct Event {
  SimTime time = 0.0;
  uint64_t seq = 0;
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  EventQueue() = default;

  /// Enqueues an action at an absolute time. Returns the event's sequence
  /// number (usable for debugging; cancellation is handled by guards at the
  /// call sites, not by the queue).
  uint64_t Push(SimTime time, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  SimTime next_time() const;

  /// Removes and returns the earliest event.
  Event Pop();

 private:
  struct Compare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Compare> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_EVENT_QUEUE_H_
