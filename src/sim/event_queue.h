#ifndef CRAYFISH_SIM_EVENT_QUEUE_H_
#define CRAYFISH_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/inline_action.h"

namespace crayfish::sim {

/// Simulated time in seconds since experiment start.
using SimTime = double;

/// A scheduled callback. Events with equal times fire in scheduling order
/// (the sequence number breaks ties), which keeps simulations deterministic.
/// `host` identifies the simulated host the event is confined to under the
/// partitioned engine (-1 = global event, not owned by any host); the
/// partition runtime uses it to route follow-up scheduling from inside the
/// callback back to the owning host.
struct Event {
  SimTime time = 0.0;
  uint64_t seq = 0;
  int32_t host = -1;
  InlineAction action;
};

/// Min-heap of events ordered by (time, seq).
///
/// Implemented as an implicit 4-ary heap over a flat vector rather than
/// std::priority_queue: the wider node fans out the comparison work across
/// one cache line of children (sift-down does ~half the levels of a binary
/// heap), Pop() can move the root out instead of copying it, and the
/// backing store's capacity is reused across the whole run.
class EventQueue {
 public:
  EventQueue() = default;

  /// Enqueues an action at an absolute time. Returns the event's sequence
  /// number (usable for debugging; cancellation is handled by guards at the
  /// call sites, not by the queue).
  uint64_t Push(SimTime time, InlineAction action) {
    return Push(time, /*host=*/-1, std::move(action));
  }

  /// Enqueues an action owned by `host` (partitioned engine; -1 = global).
  uint64_t Push(SimTime time, int32_t host, InlineAction action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  SimTime next_time() const;

  /// Removes and returns the earliest event.
  Event Pop();

  /// Pre-sizes the backing store (events are reused in place; this only
  /// avoids the first few vector growths of a large run).
  void Reserve(size_t n) { heap_.reserve(n); }

 private:
  static constexpr size_t kArity = 4;

  static bool Before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_EVENT_QUEUE_H_
