#ifndef CRAYFISH_SIM_INLINE_ACTION_H_
#define CRAYFISH_SIM_INLINE_ACTION_H_

#include "common/inline_action.h"

namespace crayfish::sim {

/// The DES kernel's event-action type: a move-only `void()` callable with
/// small-buffer optimization (see common/inline_action.h for the class).
/// The canonical definition lives in common/ so the bottom layer can name
/// it — the observability deferral hook (common/defer_hook.h) takes one —
/// without an upward include edge into sim/.
using InlineAction = ::crayfish::common::InlineAction;

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_INLINE_ACTION_H_
