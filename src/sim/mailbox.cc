#include "sim/mailbox.h"

#include <algorithm>

namespace crayfish::sim {

std::vector<RemoteEvent> Mailbox::DrainSorted() {
  std::vector<RemoteEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = std::move(pending_);
    pending_.clear();
  }
  // Arrival order in `pending_` reflects worker interleaving; the sort
  // restores the partition-count-independent key so the merge into the
  // owner's event queue is deterministic. std::sort suffices (no equal
  // keys: src_seq is unique per src_host).
  std::sort(out.begin(), out.end(), RemoteBefore);
  return out;
}

}  // namespace crayfish::sim
