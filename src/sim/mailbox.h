#ifndef CRAYFISH_SIM_MAILBOX_H_
#define CRAYFISH_SIM_MAILBOX_H_

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "sim/event_queue.h"

namespace crayfish::sim {

/// An event in flight between hosts under the partitioned engine. The key
/// (time, src_host, src_seq) is the deterministic merge order: `src_host`
/// is the sender's registration index and `src_seq` the sender's private
/// monotone send counter, so the key does not depend on how hosts are
/// packed into partitions — a 1-partition run and an 8-partition run merge
/// cross-host deliveries identically, which is what makes partitioned runs
/// byte-for-byte equal to serial ones.
struct RemoteEvent {
  SimTime time = 0.0;
  int32_t dst_host = -1;
  int32_t src_host = -1;
  uint64_t src_seq = 0;
  InlineAction action;
};

/// Deterministic order for draining a mailbox at a window barrier.
inline bool RemoteBefore(const RemoteEvent& a, const RemoteEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.src_host != b.src_host) return a.src_host < b.src_host;
  return a.src_seq < b.src_seq;
}

/// Per-partition inbox for cross-partition event deliveries.
///
/// This is the *only* synchronized data structure in the partitioned DES
/// hot path: during a time window, any worker may Push into any other
/// partition's mailbox (a cross-host send carrying the conservative
/// lookahead bound), and at the window barrier the coordinator drains each
/// mailbox — single-threaded — sorting by RemoteBefore before feeding the
/// owning partition's event queue.
///
/// CRAYFISH_SHARED: the mailbox exists to be written from foreign
/// partitions; its mutex is the synchronization story, and the barrier
/// drain restores a deterministic order, so cross-host use is the design.
class CRAYFISH_SHARED("sim-mailbox") Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a cross-partition delivery. Callable from any worker thread
  /// during a window; the conservative-lookahead check happens at the call
  /// site (Simulation), where the sender's local clock is known.
  void Push(RemoteEvent e) {
    const std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(e));
  }

  /// Moves out everything accumulated so far, sorted by RemoteBefore.
  /// Called by the coordinator at a window barrier, when no worker is
  /// running; the lock is still taken so the handoff is a proper
  /// synchronization point.
  std::vector<RemoteEvent> DrainSorted();

  size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<RemoteEvent> pending_;
};

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_MAILBOX_H_
