#include "sim/network.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace crayfish::sim {

double PropagationSeconds(const LinkSpec& spec, const LinkDegradation& deg) {
  return spec.latency_s * deg.latency_mult;
}

double TransmitSeconds(const LinkSpec& spec, const LinkDegradation& deg,
                       uint64_t bytes) {
  return static_cast<double>(bytes) /
         (spec.bandwidth_bytes_per_s * deg.bandwidth_mult);
}

Link::Link(Simulation* sim, LinkSpec spec) : sim_(sim), spec_(spec) {
  CRAYFISH_CHECK_GE(spec.latency_s, 0.0);
  CRAYFISH_CHECK_GT(spec.bandwidth_bytes_per_s, 0.0);
}

void Link::SetDegradation(LinkDegradation deg) {
  CRAYFISH_CHECK_GE(deg.latency_mult, 0.0);
  // An injected multiplier must keep effective bandwidth strictly positive;
  // a zero/negative value would make transfer times infinite or run time
  // backwards instead of modelling an outage (use `drop` for that).
  CRAYFISH_CHECK_GT(deg.bandwidth_mult, 0.0);
  degradation_ = deg;
}

double Link::IdleTransferTime(uint64_t bytes) const {
  return PropagationSeconds(spec_, degradation_) +
         TransmitSeconds(spec_, degradation_, bytes);
}

SimTime Link::ReserveTransfer(uint64_t bytes) {
  if (degradation_.drop) {
    // Partitioned: the transfer vanishes. Senders find out via timeouts.
    ++dropped_transfers_;
    return kNeverSimTime;
  }
  const SimTime now = sim_->Now();
  const double tx_time = TransmitSeconds(spec_, degradation_, bytes);
  const SimTime tx_start = std::max(now, tx_free_at_);
  tx_free_at_ = tx_start + tx_time;
  bytes_sent_ += bytes;
  ++transfers_;
  return tx_free_at_ + PropagationSeconds(spec_, degradation_);
}

void Link::Transfer(uint64_t bytes, InlineAction on_delivered) {
  const SimTime deliver_at = ReserveTransfer(bytes);
  if (deliver_at == kNeverSimTime) return;
  sim_->ScheduleAt(deliver_at, std::move(on_delivered));
}

Network::Network(Simulation* sim) : sim_(sim) {}

crayfish::Status Network::AddHost(Host host) {
  if (hosts_.count(host.name) > 0) {
    return crayfish::Status::AlreadyExists("host: " + host.name);
  }
  // Registration order is the std::map insertion order observed by the
  // caller's setup code, which is deterministic per config — so partition
  // assignment (round-robin over registration order) is too.
  sim_->RegisterHost(host.name);
  hosts_[host.name] = std::move(host);
  return crayfish::Status::Ok();
}

bool Network::HasHost(const std::string& name) const {
  return hosts_.count(name) > 0;
}

crayfish::StatusOr<Host> Network::GetHost(const std::string& name) const {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) return crayfish::Status::NotFound("host: " + name);
  return it->second;
}

void Network::SetLinkSpec(const std::string& from, const std::string& to,
                          LinkSpec spec) {
  spec_overrides_[std::make_pair(from, to)] = spec;
  auto it = links_by_src_.find(from);
  if (it != links_by_src_.end()) it->second.out.erase(to);
}

Link* Network::GetOrCreateLink(const std::string& from,
                               const std::string& to) {
  HostLinks& bucket = links_by_src_[from];
  auto it = bucket.out.find(to);
  if (it != bucket.out.end()) return it->second.get();
  // A Link's initial state is a pure function of (spec, degradation
  // rules), never of creation time, so materializing it at first use
  // instead of at freeze keeps every export byte-identical.
  LinkSpec spec = default_spec_;
  auto ov = spec_overrides_.find(std::make_pair(from, to));
  if (ov != spec_overrides_.end()) spec = ov->second;
  auto link = std::make_unique<Link>(sim_, spec);
  Link* raw = link.get();
  raw->SetDegradation(DegradationFor(from, to));
  bucket.out[to] = std::move(link);
  return raw;
}

LinkDegradation Network::DegradationFor(const std::string& from,
                                        const std::string& to) const {
  // Most specific match wins; "" is the wildcard.
  const std::pair<std::string, std::string> candidates[] = {
      {from, to}, {from, ""}, {"", to}, {"", ""}};
  for (const auto& key : candidates) {
    auto it = degradations_.find(key);
    if (it != degradations_.end()) return it->second;
  }
  return LinkDegradation{};
}

void Network::SetDegradation(const std::string& from, const std::string& to,
                             LinkDegradation deg) {
  degradations_[std::make_pair(from, to)] = deg;
  // Re-resolve every live link so rule precedence stays consistent whether a
  // link was created before or after the rule was installed.
  for (auto& [src, bucket] : links_by_src_) {
    for (auto& [dst, link] : bucket.out) {
      link->SetDegradation(DegradationFor(src, dst));
    }
  }
}

void Network::FreezeTopology() {
  // One empty bucket per host: after this the outer map never changes
  // shape, so lazy link creation inside a bucket is single-writer (the
  // source host's thread) with no structural races.
  for (const auto& [name, host] : hosts_) links_by_src_[name];
  frozen_ = true;
}

double Network::MinLinkLatency() const {
  double floor = default_spec_.latency_s;
  for (const auto& [key, spec] : spec_overrides_) {
    floor = std::min(floor, spec.latency_s);
  }
  return floor;
}

void Network::Send(const std::string& from, const std::string& to,
                   uint64_t bytes, InlineAction on_delivered) {
  Partition* p = CurrentPartition();
  if (p == nullptr) {
    // Global context: the serial engine's path, byte-for-byte unchanged.
    CRAYFISH_CHECK(HasHost(from)) << "unknown host " << from;
    CRAYFISH_CHECK(HasHost(to)) << "unknown host " << to;
    if (from == to) {
      // Loopback: delivered within the same event-loop instant.
      sim_->Schedule(0.0, std::move(on_delivered));
      return;
    }
    GetOrCreateLink(from, to)->Transfer(bytes, std::move(on_delivered));
    return;
  }
  // Confined context: Send is the only legal cross-partition edge. The
  // sender must be the executing host — a confined callback sending on
  // another host's behalf would race on that host's link state — and
  // FreezeTopology must have run so the per-source bucket exists and the
  // outer link table is structurally read-only during windows. A source
  // bucket (and every directed link in it) is touched only by its source
  // host's thread, so lazy creation and ReserveTransfer need no locking.
  const int from_id = sim_->HostId(from);
  const int to_id = sim_->HostId(to);
  CRAYFISH_CHECK_GE(from_id, 0) << "unknown host " << from;
  CRAYFISH_CHECK_GE(to_id, 0) << "unknown host " << to;
  CRAYFISH_CHECK_EQ(from_id, p->current_host)
      << "confined Send must originate from the executing host";
  if (from == to) {
    sim_->Schedule(0.0, std::move(on_delivered));
    return;
  }
  CRAYFISH_CHECK(frozen_)
      << "no link bucket for " << from
      << "; call Network::FreezeTopology() after setup for confined sends";
  const SimTime deliver_at = GetOrCreateLink(from, to)->ReserveTransfer(bytes);
  if (deliver_at == kNeverSimTime) return;
  sim_->ScheduleAtOnHost(to_id, deliver_at, std::move(on_delivered));
}

double Network::IdleTransferTime(const std::string& from,
                                 const std::string& to,
                                 uint64_t bytes) const {
  if (from == to) return 0.0;
  LinkSpec spec = default_spec_;
  auto ov = spec_overrides_.find(std::make_pair(from, to));
  if (ov != spec_overrides_.end()) spec = ov->second;
  const LinkDegradation deg = DegradationFor(from, to);
  return PropagationSeconds(spec, deg) + TransmitSeconds(spec, deg, bytes);
}

uint64_t Network::total_bytes_sent() const {
  uint64_t total = 0;
  for (const auto& [src, bucket] : links_by_src_) {
    for (const auto& [dst, link] : bucket.out) total += link->bytes_sent();
  }
  return total;
}

size_t Network::live_link_count() const {
  size_t total = 0;
  for (const auto& [src, bucket] : links_by_src_) total += bucket.out.size();
  return total;
}

}  // namespace crayfish::sim
