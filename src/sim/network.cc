#include "sim/network.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace crayfish::sim {

double PropagationSeconds(const LinkSpec& spec, const LinkDegradation& deg) {
  return spec.latency_s * deg.latency_mult;
}

double TransmitSeconds(const LinkSpec& spec, const LinkDegradation& deg,
                       uint64_t bytes) {
  return static_cast<double>(bytes) /
         (spec.bandwidth_bytes_per_s * deg.bandwidth_mult);
}

Link::Link(Simulation* sim, LinkSpec spec) : sim_(sim), spec_(spec) {
  CRAYFISH_CHECK_GE(spec.latency_s, 0.0);
  CRAYFISH_CHECK_GT(spec.bandwidth_bytes_per_s, 0.0);
}

void Link::SetDegradation(LinkDegradation deg) {
  CRAYFISH_CHECK_GE(deg.latency_mult, 0.0);
  // An injected multiplier must keep effective bandwidth strictly positive;
  // a zero/negative value would make transfer times infinite or run time
  // backwards instead of modelling an outage (use `drop` for that).
  CRAYFISH_CHECK_GT(deg.bandwidth_mult, 0.0);
  degradation_ = deg;
}

double Link::IdleTransferTime(uint64_t bytes) const {
  return PropagationSeconds(spec_, degradation_) +
         TransmitSeconds(spec_, degradation_, bytes);
}

void Link::Transfer(uint64_t bytes, InlineAction on_delivered) {
  if (degradation_.drop) {
    // Partitioned: the transfer vanishes. Senders find out via timeouts.
    ++dropped_transfers_;
    return;
  }
  const SimTime now = sim_->Now();
  const double tx_time = TransmitSeconds(spec_, degradation_, bytes);
  const SimTime tx_start = std::max(now, tx_free_at_);
  tx_free_at_ = tx_start + tx_time;
  const SimTime deliver_at =
      tx_free_at_ + PropagationSeconds(spec_, degradation_);
  bytes_sent_ += bytes;
  ++transfers_;
  sim_->ScheduleAt(deliver_at, std::move(on_delivered));
}

Network::Network(Simulation* sim) : sim_(sim) {}

crayfish::Status Network::AddHost(Host host) {
  if (hosts_.count(host.name) > 0) {
    return crayfish::Status::AlreadyExists("host: " + host.name);
  }
  hosts_[host.name] = std::move(host);
  return crayfish::Status::Ok();
}

bool Network::HasHost(const std::string& name) const {
  return hosts_.count(name) > 0;
}

crayfish::StatusOr<Host> Network::GetHost(const std::string& name) const {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) return crayfish::Status::NotFound("host: " + name);
  return it->second;
}

void Network::SetLinkSpec(const std::string& from, const std::string& to,
                          LinkSpec spec) {
  const auto key = std::make_pair(from, to);
  spec_overrides_[key] = spec;
  links_.erase(key);
}

Link* Network::GetOrCreateLink(const std::string& from,
                               const std::string& to) {
  const auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it != links_.end()) return it->second.get();
  LinkSpec spec = default_spec_;
  auto ov = spec_overrides_.find(key);
  if (ov != spec_overrides_.end()) spec = ov->second;
  auto link = std::make_unique<Link>(sim_, spec);
  Link* raw = link.get();
  raw->SetDegradation(DegradationFor(from, to));
  links_[key] = std::move(link);
  return raw;
}

LinkDegradation Network::DegradationFor(const std::string& from,
                                        const std::string& to) const {
  // Most specific match wins; "" is the wildcard.
  const std::pair<std::string, std::string> candidates[] = {
      {from, to}, {from, ""}, {"", to}, {"", ""}};
  for (const auto& key : candidates) {
    auto it = degradations_.find(key);
    if (it != degradations_.end()) return it->second;
  }
  return LinkDegradation{};
}

void Network::SetDegradation(const std::string& from, const std::string& to,
                             LinkDegradation deg) {
  degradations_[std::make_pair(from, to)] = deg;
  // Re-resolve every live link so rule precedence stays consistent whether a
  // link was created before or after the rule was installed.
  for (auto& [key, link] : links_) {
    link->SetDegradation(DegradationFor(key.first, key.second));
  }
}

void Network::Send(const std::string& from, const std::string& to,
                   uint64_t bytes, InlineAction on_delivered) {
  CRAYFISH_CHECK(HasHost(from)) << "unknown host " << from;
  CRAYFISH_CHECK(HasHost(to)) << "unknown host " << to;
  if (from == to) {
    // Loopback: delivered within the same event-loop instant.
    sim_->Schedule(0.0, std::move(on_delivered));
    return;
  }
  GetOrCreateLink(from, to)->Transfer(bytes, std::move(on_delivered));
}

double Network::IdleTransferTime(const std::string& from,
                                 const std::string& to,
                                 uint64_t bytes) const {
  if (from == to) return 0.0;
  LinkSpec spec = default_spec_;
  auto ov = spec_overrides_.find(std::make_pair(from, to));
  if (ov != spec_overrides_.end()) spec = ov->second;
  const LinkDegradation deg = DegradationFor(from, to);
  return PropagationSeconds(spec, deg) + TransmitSeconds(spec, deg, bytes);
}

uint64_t Network::total_bytes_sent() const {
  uint64_t total = 0;
  for (const auto& [key, link] : links_) total += link->bytes_sent();
  return total;
}

}  // namespace crayfish::sim
