#include "sim/network.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace crayfish::sim {

double PropagationSeconds(const LinkSpec& spec, const LinkDegradation& deg) {
  return spec.latency_s * deg.latency_mult;
}

double TransmitSeconds(const LinkSpec& spec, const LinkDegradation& deg,
                       uint64_t bytes) {
  return static_cast<double>(bytes) /
         (spec.bandwidth_bytes_per_s * deg.bandwidth_mult);
}

Link::Link(Simulation* sim, LinkSpec spec) : sim_(sim), spec_(spec) {
  CRAYFISH_CHECK_GE(spec.latency_s, 0.0);
  CRAYFISH_CHECK_GT(spec.bandwidth_bytes_per_s, 0.0);
}

void Link::SetDegradation(LinkDegradation deg) {
  CRAYFISH_CHECK_GE(deg.latency_mult, 0.0);
  // An injected multiplier must keep effective bandwidth strictly positive;
  // a zero/negative value would make transfer times infinite or run time
  // backwards instead of modelling an outage (use `drop` for that).
  CRAYFISH_CHECK_GT(deg.bandwidth_mult, 0.0);
  degradation_ = deg;
}

double Link::IdleTransferTime(uint64_t bytes) const {
  return PropagationSeconds(spec_, degradation_) +
         TransmitSeconds(spec_, degradation_, bytes);
}

SimTime Link::ReserveTransfer(uint64_t bytes) {
  if (degradation_.drop) {
    // Partitioned: the transfer vanishes. Senders find out via timeouts.
    ++dropped_transfers_;
    return kNeverSimTime;
  }
  const SimTime now = sim_->Now();
  const double tx_time = TransmitSeconds(spec_, degradation_, bytes);
  const SimTime tx_start = std::max(now, tx_free_at_);
  tx_free_at_ = tx_start + tx_time;
  bytes_sent_ += bytes;
  ++transfers_;
  return tx_free_at_ + PropagationSeconds(spec_, degradation_);
}

void Link::Transfer(uint64_t bytes, InlineAction on_delivered) {
  const SimTime deliver_at = ReserveTransfer(bytes);
  if (deliver_at == kNeverSimTime) return;
  sim_->ScheduleAt(deliver_at, std::move(on_delivered));
}

Network::Network(Simulation* sim) : sim_(sim) {}

crayfish::Status Network::AddHost(Host host) {
  if (hosts_.count(host.name) > 0) {
    return crayfish::Status::AlreadyExists("host: " + host.name);
  }
  // Registration order is the std::map insertion order observed by the
  // caller's setup code, which is deterministic per config — so partition
  // assignment (round-robin over registration order) is too.
  sim_->RegisterHost(host.name);
  hosts_[host.name] = std::move(host);
  return crayfish::Status::Ok();
}

bool Network::HasHost(const std::string& name) const {
  return hosts_.count(name) > 0;
}

crayfish::StatusOr<Host> Network::GetHost(const std::string& name) const {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) return crayfish::Status::NotFound("host: " + name);
  return it->second;
}

void Network::SetLinkSpec(const std::string& from, const std::string& to,
                          LinkSpec spec) {
  const auto key = std::make_pair(from, to);
  spec_overrides_[key] = spec;
  links_.erase(key);
}

Link* Network::GetOrCreateLink(const std::string& from,
                               const std::string& to) {
  const auto key = std::make_pair(from, to);
  auto it = links_.find(key);
  if (it != links_.end()) return it->second.get();
  LinkSpec spec = default_spec_;
  auto ov = spec_overrides_.find(key);
  if (ov != spec_overrides_.end()) spec = ov->second;
  auto link = std::make_unique<Link>(sim_, spec);
  Link* raw = link.get();
  raw->SetDegradation(DegradationFor(from, to));
  links_[key] = std::move(link);
  return raw;
}

LinkDegradation Network::DegradationFor(const std::string& from,
                                        const std::string& to) const {
  // Most specific match wins; "" is the wildcard.
  const std::pair<std::string, std::string> candidates[] = {
      {from, to}, {from, ""}, {"", to}, {"", ""}};
  for (const auto& key : candidates) {
    auto it = degradations_.find(key);
    if (it != degradations_.end()) return it->second;
  }
  return LinkDegradation{};
}

void Network::SetDegradation(const std::string& from, const std::string& to,
                             LinkDegradation deg) {
  degradations_[std::make_pair(from, to)] = deg;
  // Re-resolve every live link so rule precedence stays consistent whether a
  // link was created before or after the rule was installed.
  for (auto& [key, link] : links_) {
    link->SetDegradation(DegradationFor(key.first, key.second));
  }
}

void Network::FreezeTopology() {
  for (const auto& [from, from_host] : hosts_) {
    for (const auto& [to, to_host] : hosts_) {
      if (from != to) GetOrCreateLink(from, to);
    }
  }
}

double Network::MinLinkLatency() const {
  double floor = default_spec_.latency_s;
  for (const auto& [key, spec] : spec_overrides_) {
    floor = std::min(floor, spec.latency_s);
  }
  return floor;
}

void Network::Send(const std::string& from, const std::string& to,
                   uint64_t bytes, InlineAction on_delivered) {
  Partition* p = CurrentPartition();
  if (p == nullptr) {
    // Global context: the serial engine's path, byte-for-byte unchanged.
    CRAYFISH_CHECK(HasHost(from)) << "unknown host " << from;
    CRAYFISH_CHECK(HasHost(to)) << "unknown host " << to;
    if (from == to) {
      // Loopback: delivered within the same event-loop instant.
      sim_->Schedule(0.0, std::move(on_delivered));
      return;
    }
    GetOrCreateLink(from, to)->Transfer(bytes, std::move(on_delivered));
    return;
  }
  // Confined context: Send is the only legal cross-partition edge. The
  // sender must be the executing host — a confined callback sending on
  // another host's behalf would race on that host's link state — and the
  // link must pre-exist (FreezeTopology) so the link table is read-only
  // during windows. A directed link is touched only by its source host's
  // thread, so ReserveTransfer needs no locking.
  const int from_id = sim_->HostId(from);
  const int to_id = sim_->HostId(to);
  CRAYFISH_CHECK_GE(from_id, 0) << "unknown host " << from;
  CRAYFISH_CHECK_GE(to_id, 0) << "unknown host " << to;
  CRAYFISH_CHECK_EQ(from_id, p->current_host)
      << "confined Send must originate from the executing host";
  if (from == to) {
    sim_->Schedule(0.0, std::move(on_delivered));
    return;
  }
  auto it = links_.find(std::make_pair(from, to));
  CRAYFISH_CHECK(it != links_.end())
      << "no link " << from << " -> " << to
      << "; call Network::FreezeTopology() after setup for confined sends";
  const SimTime deliver_at = it->second->ReserveTransfer(bytes);
  if (deliver_at == kNeverSimTime) return;
  sim_->ScheduleAtOnHost(to_id, deliver_at, std::move(on_delivered));
}

double Network::IdleTransferTime(const std::string& from,
                                 const std::string& to,
                                 uint64_t bytes) const {
  if (from == to) return 0.0;
  LinkSpec spec = default_spec_;
  auto ov = spec_overrides_.find(std::make_pair(from, to));
  if (ov != spec_overrides_.end()) spec = ov->second;
  const LinkDegradation deg = DegradationFor(from, to);
  return PropagationSeconds(spec, deg) + TransmitSeconds(spec, deg, bytes);
}

uint64_t Network::total_bytes_sent() const {
  uint64_t total = 0;
  for (const auto& [key, link] : links_) total += link->bytes_sent();
  return total;
}

}  // namespace crayfish::sim
