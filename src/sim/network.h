#ifndef CRAYFISH_SIM_NETWORK_H_
#define CRAYFISH_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sim/simulation.h"

namespace crayfish::sim {

/// Parameters of a point-to-point link. Defaults are calibrated from the
/// paper's environment (§4.2): GCP LAN, measured *round-trip* ping of
/// 0.945 ms for a 3 KB echo and 1.565 ms for 64 KB. An echo transfers the
/// payload twice, so 0.62 ms / (2 x 61 KB) gives ~190 MB/s effective
/// bandwidth and ~0.42 ms one-way propagation.
struct LinkSpec {
  double latency_s = 0.00042;
  double bandwidth_bytes_per_s = 190.0 * 1024.0 * 1024.0;
};

/// Fault-injection overlay for a link: multiplies the spec's propagation
/// latency and divides its bandwidth without rewriting the spec, so lifting
/// the degradation restores the calibrated baseline exactly. `drop` models a
/// network partition: transfers are accepted but never delivered (the
/// sender's timeout/retry machinery is what notices).
struct LinkDegradation {
  double latency_mult = 1.0;    // >= 0; 1.0 = healthy
  double bandwidth_mult = 1.0;  // must stay strictly positive
  bool drop = false;

  bool active() const {
    return latency_mult != 1.0 || bandwidth_mult != 1.0 || drop;
  }
};

/// One-way propagation delay of a (possibly degraded) link.
double PropagationSeconds(const LinkSpec& spec, const LinkDegradation& deg);
/// Serialization time of `bytes` on a (possibly degraded) link.
double TransmitSeconds(const LinkSpec& spec, const LinkDegradation& deg,
                       uint64_t bytes);

/// A directed link: propagation latency plus a FIFO-serialized bandwidth
/// component (one transfer occupies the transmit path at a time; the
/// latency component overlaps between transfers).
class Link {
 public:
  Link(Simulation* sim, LinkSpec spec);

  /// Delivers `bytes` to the receiver, invoking `on_delivered` at the
  /// simulated arrival instant. Under a `drop` degradation the transfer is
  /// counted as dropped and `on_delivered` never fires.
  void Transfer(uint64_t bytes, InlineAction on_delivered);

  /// Occupies the transmit path for `bytes` and returns the simulated
  /// arrival instant without scheduling anything — the caller owns routing
  /// the delivery (Network::Send routes it to the destination host's
  /// partition under the parallel DES). Returns kNeverSimTime when the
  /// link is dropping (the transfer is counted as dropped).
  SimTime ReserveTransfer(uint64_t bytes);

  /// Time a transfer of `bytes` would take on an idle link.
  double IdleTransferTime(uint64_t bytes) const;

  /// Applies (or, with a default-constructed argument, lifts) a fault
  /// overlay. CHECK-fails unless the multipliers keep bandwidth strictly
  /// positive and latency non-negative.
  void SetDegradation(LinkDegradation deg);
  const LinkDegradation& degradation() const { return degradation_; }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t transfers() const { return transfers_; }
  uint64_t dropped_transfers() const { return dropped_transfers_; }
  const LinkSpec& spec() const { return spec_; }

 private:
  Simulation* sim_;
  LinkSpec spec_;
  LinkDegradation degradation_;
  SimTime tx_free_at_ = 0.0;
  uint64_t bytes_sent_ = 0;
  uint64_t transfers_ = 0;
  uint64_t dropped_transfers_ = 0;
};

/// A machine in the simulated cluster. Hosts are bookkeeping entities: they
/// name endpoints for the network and describe the resources (vCPUs,
/// memory) the paper allocates per component VM.
struct Host {
  std::string name;
  int vcpus = 4;
  uint64_t memory_bytes = 15ULL << 30;
  bool has_gpu = false;
};

/// The simulated cluster network: a set of hosts plus directed links
/// between them. Links are created lazily with the default spec; tests and
/// experiments can override per-pair specs (e.g. to model a degraded path).
///
/// CRAYFISH_SHARED: the network is the inter-host edge by definition; every
/// partition sends through it. Under the parallel DES, Send() is the
/// synchronization point between partitions (delivery events carry the
/// lookahead bound), so cross-host use is the intended protocol.
class CRAYFISH_SHARED("sim-network") Network {
 public:
  explicit Network(Simulation* sim);

  /// Registers a host. Returns AlreadyExists if the name is taken.
  /// Topology is frozen after setup: callers are component constructors
  /// (which hold every channel) or setup code annotated for "setup".
  /// Also registers the host with the Simulation, assigning it to a
  /// partition under the parallel DES.
  crayfish::Status AddHost(Host host) CRAYFISH_REQUIRES("setup");
  bool HasHost(const std::string& name) const;
  crayfish::StatusOr<Host> GetHost(const std::string& name) const;

  /// Overrides the spec used for the (from, to) directed pair; affects the
  /// link created on first use (or re-creates an existing one).
  void SetLinkSpec(const std::string& from, const std::string& to,
                   LinkSpec spec);
  /// Default spec for pairs with no override.
  void SetDefaultLinkSpec(LinkSpec spec) { default_spec_ = spec; }
  const LinkSpec& default_spec() const { return default_spec_; }

  /// Installs a degradation rule for the (from, to) directed pair; an empty
  /// string is a wildcard ("kafka-0" -> "" degrades every link out of
  /// kafka-0; "" -> "" degrades the whole fabric). The most specific rule
  /// wins: exact pair, then (from, *), then (*, to), then (*, *). Rules
  /// apply to existing links immediately and to links created later;
  /// installing a default-constructed LinkDegradation lifts the fault.
  /// Loopback (from == to) traffic is never degraded.
  void SetDegradation(const std::string& from, const std::string& to,
                      LinkDegradation deg);
  /// The rule that applies to the (from, to) pair (identity if none).
  LinkDegradation DegradationFor(const std::string& from,
                                 const std::string& to) const;

  /// Sends `bytes` from `from` to `to`; `on_delivered` fires at arrival.
  /// Transfers between a host and itself are instantaneous (loopback).
  /// CHECK-fails on unknown hosts (topology errors are programmer errors).
  ///
  /// From a confined callback (parallel DES), Send is the *only* legal
  /// cross-partition edge: `from` must be the executing host, the link
  /// must already exist (call FreezeTopology after setup), and the
  /// delivery is routed to the destination host's partition carrying the
  /// propagation latency as the conservative lookahead bound. From global
  /// context the behavior is the serial engine's, unchanged.
  void Send(const std::string& from, const std::string& to, uint64_t bytes,
            InlineAction on_delivered);

  /// Freezes the host set and pre-creates the per-source link buckets —
  /// O(hosts), not O(hosts²). Links themselves stay lazy: each directed
  /// link materializes on first use, in its source host's bucket, which
  /// only the source host's thread touches under the parallel DES (the
  /// confined Send path CHECKs from == executing host, and global events
  /// run with every partition quiescent). Call once after all hosts are
  /// added; required before any confined Send. A thousand-host topology
  /// therefore costs a thousand empty buckets, not a million Link objects.
  void FreezeTopology() CRAYFISH_REQUIRES("setup");

  /// Smallest propagation latency across the default spec and every
  /// per-pair override: the conservative lookahead bound the experiment
  /// driver feeds to Simulation::SetLookahead. Degradations are assumed
  /// not to shrink latency below this floor (multipliers < 1 on a
  /// minimum-latency link would violate the conservative protocol, and
  /// the kernel CHECKs that at the mailbox push).
  double MinLinkLatency() const;

  /// Idle-link transfer estimate between two hosts.
  double IdleTransferTime(const std::string& from, const std::string& to,
                          uint64_t bytes) const;

  uint64_t total_bytes_sent() const;
  size_t host_count() const { return hosts_.size(); }
  /// Materialized directed links (links are lazy; this counts only pairs
  /// that actually communicated). The cluster_construct bench asserts this
  /// stays far below hosts², i.e. construction memory is not quadratic.
  size_t live_link_count() const;

 private:
  /// Outgoing links of one source host. After FreezeTopology the outer map
  /// is structurally immutable and each bucket is mutated only by its
  /// source host's thread (or in quiescent global context), so lazy link
  /// creation is race-free without locks.
  struct HostLinks {
    std::map<std::string, std::unique_ptr<Link>> out;
  };

  Link* GetOrCreateLink(const std::string& from, const std::string& to);

  Simulation* sim_;
  LinkSpec default_spec_;
  bool frozen_ = false;
  /// Ordered (lint R3): topology walks schedule simulated transfers, so
  /// host/link enumeration order is part of the reproducible event order.
  /// Guarded (lint R11): written only during single-threaded setup.
  std::map<std::string, Host> hosts_ CRAYFISH_GUARDED_BY("setup");
  std::map<std::pair<std::string, std::string>, LinkSpec> spec_overrides_;
  std::map<std::pair<std::string, std::string>, LinkDegradation> degradations_;
  /// Source host -> its outgoing-link bucket. Both levels are sorted maps,
  /// so every enumeration (degradation re-resolution, byte totals) is
  /// deterministic regardless of which thread materialized a link first.
  std::map<std::string, HostLinks> links_by_src_;
};

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_NETWORK_H_
