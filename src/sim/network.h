#ifndef CRAYFISH_SIM_NETWORK_H_
#define CRAYFISH_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "sim/simulation.h"

namespace crayfish::sim {

/// Parameters of a point-to-point link. Defaults are calibrated from the
/// paper's environment (§4.2): GCP LAN, measured *round-trip* ping of
/// 0.945 ms for a 3 KB echo and 1.565 ms for 64 KB. An echo transfers the
/// payload twice, so 0.62 ms / (2 x 61 KB) gives ~190 MB/s effective
/// bandwidth and ~0.42 ms one-way propagation.
struct LinkSpec {
  double latency_s = 0.00042;
  double bandwidth_bytes_per_s = 190.0 * 1024.0 * 1024.0;
};

/// A directed link: propagation latency plus a FIFO-serialized bandwidth
/// component (one transfer occupies the transmit path at a time; the
/// latency component overlaps between transfers).
class Link {
 public:
  Link(Simulation* sim, LinkSpec spec);

  /// Delivers `bytes` to the receiver, invoking `on_delivered` at the
  /// simulated arrival instant.
  void Transfer(uint64_t bytes, InlineAction on_delivered);

  /// Time a transfer of `bytes` would take on an idle link.
  double IdleTransferTime(uint64_t bytes) const;

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t transfers() const { return transfers_; }
  const LinkSpec& spec() const { return spec_; }

 private:
  Simulation* sim_;
  LinkSpec spec_;
  SimTime tx_free_at_ = 0.0;
  uint64_t bytes_sent_ = 0;
  uint64_t transfers_ = 0;
};

/// A machine in the simulated cluster. Hosts are bookkeeping entities: they
/// name endpoints for the network and describe the resources (vCPUs,
/// memory) the paper allocates per component VM.
struct Host {
  std::string name;
  int vcpus = 4;
  uint64_t memory_bytes = 15ULL << 30;
  bool has_gpu = false;
};

/// The simulated cluster network: a set of hosts plus directed links
/// between them. Links are created lazily with the default spec; tests and
/// experiments can override per-pair specs (e.g. to model a degraded path).
class Network {
 public:
  explicit Network(Simulation* sim);

  /// Registers a host. Returns AlreadyExists if the name is taken.
  crayfish::Status AddHost(Host host);
  bool HasHost(const std::string& name) const;
  crayfish::StatusOr<Host> GetHost(const std::string& name) const;

  /// Overrides the spec used for the (from, to) directed pair; affects the
  /// link created on first use (or re-creates an existing one).
  void SetLinkSpec(const std::string& from, const std::string& to,
                   LinkSpec spec);
  /// Default spec for pairs with no override.
  void SetDefaultLinkSpec(LinkSpec spec) { default_spec_ = spec; }
  const LinkSpec& default_spec() const { return default_spec_; }

  /// Sends `bytes` from `from` to `to`; `on_delivered` fires at arrival.
  /// Transfers between a host and itself are instantaneous (loopback).
  /// CHECK-fails on unknown hosts (topology errors are programmer errors).
  void Send(const std::string& from, const std::string& to, uint64_t bytes,
            InlineAction on_delivered);

  /// Idle-link transfer estimate between two hosts.
  double IdleTransferTime(const std::string& from, const std::string& to,
                          uint64_t bytes) const;

  uint64_t total_bytes_sent() const;
  size_t host_count() const { return hosts_.size(); }

 private:
  Link* GetOrCreateLink(const std::string& from, const std::string& to);

  Simulation* sim_;
  LinkSpec default_spec_;
  /// Ordered (lint R3): topology walks schedule simulated transfers, so
  /// host/link enumeration order is part of the reproducible event order.
  std::map<std::string, Host> hosts_;
  std::map<std::pair<std::string, std::string>, LinkSpec> spec_overrides_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Link>> links_;
};

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_NETWORK_H_
