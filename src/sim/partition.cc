#include "sim/partition.h"

#include <algorithm>
#include <utility>

#include "common/defer_hook.h"
#include "common/logging.h"

namespace crayfish::sim {

namespace {
/// Set for the duration of Partition::ExecuteWindow on whichever thread
/// runs it (a worker, or the coordinator for singleton windows).
// lint: global-state-ok thread_local, so each window thread sees only its own partition; this is the confinement mechanism itself, not shared state
thread_local Partition* tls_partition = nullptr;
}  // namespace

Partition* CurrentPartition() { return tls_partition; }

bool DeferToBarrier(InlineAction op) {
  Partition* p = tls_partition;
  if (p == nullptr) return false;
  p->deferred.push_back(DeferredOp{p->now, p->current_host, std::move(op)});
  return true;
}

uint64_t Partition::ExecuteWindow(SimTime horizon, SimTime until) {
  tls_partition = this;
  uint64_t n = 0;
  while (!queue.empty()) {
    const SimTime t = queue.next_time();
    if (t >= horizon || t > until) break;
    Event e = queue.Pop();
    CRAYFISH_CHECK_GE(e.time, now);
    now = e.time;
    current_host = e.host;
    if (e.action) e.action();
    ++n;
  }
  current_host = -1;
  tls_partition = nullptr;
  executed += n;
  return n;
}

PartitionRuntime::PartitionRuntime(int partitions) {
  CRAYFISH_CHECK_GE(partitions, 1);
  parts_.reserve(static_cast<size_t>(partitions));
  for (int i = 0; i < partitions; ++i) {
    auto p = std::make_unique<Partition>();
    p->id = i;
    parts_.push_back(std::move(p));
  }
  // Workers park on the phase gate until a multi-partition window needs
  // them; worker i owns partition i + 1 for the runtime's lifetime, so a
  // partition's queue is only ever touched by one thread per window.
  workers_.reserve(static_cast<size_t>(partitions - 1));
  for (int i = 1; i < partitions; ++i) {
    workers_.emplace_back([this, i](const std::stop_token& stop) {
      WorkerLoop(i, stop);
    });
  }
}

PartitionRuntime::~PartitionRuntime() {
  {
    // Holding the gate mutex while requesting stop pairs with the wait
    // predicate: a worker is either before the wait (sees the request) or
    // inside it (gets the notify); no lost wakeup either way.
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::jthread& w : workers_) w.request_stop();
  }
  work_cv_.notify_all();
  workers_.clear();  // joins
}

void PartitionRuntime::WorkerLoop(int partition_index,
                                  const std::stop_token& stop) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return generation_ != seen_generation || stop.stop_requested();
    });
    if (stop.stop_requested()) return;
    seen_generation = generation_;
    const SimTime horizon = window_horizon_;
    const SimTime until = window_until_;
    lock.unlock();
    const uint64_t n = parts_[static_cast<size_t>(partition_index)]
                           ->ExecuteWindow(horizon, until);
    lock.lock();
    window_executed_ += n;
    if (--remaining_ == 0) done_cv_.notify_one();
  }
}

SimTime PartitionRuntime::NextConfinedTime() const {
  SimTime next = kNeverSimTime;
  for (const auto& p : parts_) {
    if (!p->queue.empty()) next = std::min(next, p->queue.next_time());
  }
  return next;
}

uint64_t PartitionRuntime::RunWindow(SimTime horizon, SimTime until) {
  int active = 0;
  int sole = -1;
  for (const auto& p : parts_) {
    if (!p->queue.empty() && p->queue.next_time() < horizon &&
        p->queue.next_time() <= until) {
      ++active;
      sole = p->id;
    }
  }
  if (active == 0) return 0;
  if (active == 1) {
    // Singleton window: run it on the coordinator. Handoff from whichever
    // worker last ran this partition happened through the gate mutex at
    // that window's barrier.
    return parts_[static_cast<size_t>(sole)]->ExecuteWindow(horizon, until);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    window_horizon_ = horizon;
    window_until_ = until;
    window_executed_ = 0;
    remaining_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  const uint64_t mine = parts_[0]->ExecuteWindow(horizon, until);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  return mine + window_executed_;
}

void PartitionRuntime::DrainMailboxes() {
  for (const auto& p : parts_) {
    std::vector<RemoteEvent> batch = p->inbox.DrainSorted();
    for (RemoteEvent& e : batch) {
      p->queue.Push(e.time, e.dst_host, std::move(e.action));
    }
  }
}

SimTime PartitionRuntime::MaxLocalNow() const {
  SimTime latest = 0.0;
  for (const auto& p : parts_) latest = std::max(latest, p->now);
  return latest;
}

size_t PartitionRuntime::PendingEvents() const {
  size_t n = 0;
  for (const auto& p : parts_) n += p->queue.size() + p->inbox.size();
  return n;
}

}  // namespace crayfish::sim

namespace crayfish::common {

// Defined here rather than in common/: the hook routes through the
// executing-partition thread-local, which only the partition runtime
// knows (see common/defer_hook.h for the layering contract).
bool DeferToBarrier(InlineAction op) {
  return sim::DeferToBarrier(std::move(op));
}

}  // namespace crayfish::common
