#ifndef CRAYFISH_SIM_PARTITION_H_
#define CRAYFISH_SIM_PARTITION_H_

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <stop_token>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "sim/event_queue.h"
#include "sim/mailbox.h"

namespace crayfish::sim {

/// An observability mutation recorded inside a parallel window (metric
/// update, trace mark, timeline feed). Collectors are cross-partition
/// substrates, so confined callbacks buffer the mutation here instead of
/// applying it; the coordinator replays all partitions' buffers at the
/// window barrier in (time, host) order, which is identical at every
/// thread count — observability stays byte-deterministic and race-free.
struct DeferredOp {
  SimTime time = 0.0;
  int32_t host = -1;
  InlineAction apply;
};

/// One shard of the partitioned DES: the hosts assigned to it, their
/// confined events, and the inbox other partitions deliver into. During a
/// time window exactly one thread executes a partition; between windows
/// only the coordinator touches it (the window barrier is the handoff).
struct Partition {
  int id = 0;
  /// Confined events of this partition's hosts, ordered by (time, seq).
  /// The backing store doubles as the partition's event arena: capacity is
  /// reused across the whole run, so steady-state windows allocate nothing.
  EventQueue queue;
  /// Cross-partition deliveries land here; drained at window barriers.
  Mailbox inbox;
  /// Local virtual time: the timestamp of the last event this partition
  /// executed. Never ahead of the current window horizon.
  SimTime now = 0.0;
  /// The host whose event is currently executing (-1 between events);
  /// routes same-host re-scheduling from inside a callback.
  int32_t current_host = -1;
  /// Confined events executed, all windows; folded into the simulation
  /// total at each barrier.
  uint64_t executed = 0;
  /// Exclusive (globally synchronized) events attributed to this
  /// partition, e.g. fault injections targeting one of its hosts.
  uint64_t exclusive_scheduled = 0;
  /// Observability mutations recorded by this partition's callbacks during
  /// the current window; drained by the coordinator at the barrier. The
  /// backing store's capacity is reused across windows.
  std::vector<DeferredOp> deferred;

  /// Runs confined events with time < horizon and time <= until, in
  /// (time, seq) order, and returns how many ran. Sets itself as the
  /// executing partition for the duration so Simulation::Now()/Schedule()
  /// observed from inside callbacks resolve to this partition.
  uint64_t ExecuteWindow(SimTime horizon, SimTime until);
};

/// The executing partition of the current thread (null on the coordinator
/// outside windows, and always null in non-partitioned simulations).
/// Simulation reads it to route Now()/Schedule() from confined callbacks.
Partition* CurrentPartition();

/// Buffers `op` on the executing partition for replay at the window
/// barrier (stamped with the partition's local clock and executing host)
/// and returns true. From global or setup context returns false without
/// buffering — the caller applies the mutation inline. This is the entry
/// point behind obs::DeferIfConfined (see obs/defer.h for the contract).
bool DeferToBarrier(InlineAction op);

/// Host-partitioned execution engine: N partitions, N-1 worker threads
/// plus the coordinating (caller) thread, advancing in conservative time
/// windows. The coordinator computes each window's horizon (Simulation
/// owns that policy: min of next global event, next confined event plus
/// lookahead, and the next telemetry boundary), dispatches the partitions
/// that have work, waits at the barrier, then drains mailboxes in the
/// deterministic RemoteBefore order.
///
/// Windows whose work lives in a single partition execute inline on the
/// coordinator — a fully serial (threads=1) run never wakes a worker, and
/// a faulted experiment whose only confined work is one host's burst pays
/// no synchronization at all.
class PartitionRuntime {
 public:
  /// Creates `partitions` partitions and `partitions - 1` parked workers
  /// (worker i owns partition i + 1; the coordinator runs partition 0 and
  /// any singleton window).
  explicit PartitionRuntime(int partitions);
  ~PartitionRuntime();

  PartitionRuntime(const PartitionRuntime&) = delete;
  PartitionRuntime& operator=(const PartitionRuntime&) = delete;

  int partition_count() const { return static_cast<int>(parts_.size()); }
  Partition& partition(int i) { return *parts_[i]; }
  const Partition& partition(int i) const { return *parts_[i]; }

  /// Earliest pending confined event across all partitions (infinity when
  /// idle). Mailboxes are empty whenever this is called (barrier drained).
  SimTime NextConfinedTime() const;

  /// Executes one conservative window: every partition runs its events
  /// with time < horizon (and <= until) concurrently, then the caller
  /// blocks at the barrier. Returns the number of events executed.
  uint64_t RunWindow(SimTime horizon, SimTime until);

  /// Barrier-side merge: feeds each partition's drained inbox into its
  /// event queue in RemoteBefore order. Coordinator only.
  void DrainMailboxes();

  /// Largest local clock across partitions — the timestamp of the latest
  /// event any partition has executed. Deterministic at barriers.
  SimTime MaxLocalNow() const;

  /// Pending confined events (queues plus undrained inbox items).
  size_t PendingEvents() const;

 private:
  void WorkerLoop(int partition_index, const std::stop_token& stop);

  std::vector<std::unique_ptr<Partition>> parts_;

  // Window phase gate. The coordinator publishes (horizon, until) under
  // mu_, bumps the generation, and wakes the workers; each worker runs its
  // partition's window and the last one to finish wakes the coordinator.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int remaining_ = 0;
  SimTime window_horizon_ = 0.0;
  SimTime window_until_ = 0.0;
  uint64_t window_executed_ = 0;

  // Last member: joins on destruction before the state above dies.
  std::vector<std::jthread> workers_;
};

constexpr SimTime kNeverSimTime = std::numeric_limits<SimTime>::infinity();

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_PARTITION_H_
