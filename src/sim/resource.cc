#include "sim/resource.h"

#include <utility>

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::sim {

ServerPool::ServerPool(Simulation* sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)), servers_(servers),
      created_at_(sim->Now()) {
  CRAYFISH_CHECK_GT(servers, 0);
}

void ServerPool::Submit(SimTime service_time,
                        std::function<void(SimTime)> on_done) {
  Job job{sim_->Now(), service_time, std::move(on_done)};
  if (busy_ < servers_) {
    StartJob(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

void ServerPool::Resize(int servers) {
  CRAYFISH_CHECK_GT(servers, 0);
  pending_target_.reset();
  servers_ = servers;
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(job));
  }
}

void ServerPool::ResizeGraceful(int servers) {
  CRAYFISH_CHECK_GT(servers, 0);
  if (servers >= servers_ || queue_.empty()) {
    // Grows, and shrinks with no backlog, behave exactly like Resize.
    Resize(servers);
    return;
  }
  pending_target_ = servers;
}

void ServerPool::StartJob(Job job) {
  ++busy_;
  const SimTime wait = sim_->Now() - job.enqueue_time;
  wait_stats_.Add(wait);
  service_stats_.Add(job.service_time);
  busy_time_ += job.service_time;
  if (obs::MetricsRegistry* reg = sim_->metrics()) {
    if (!wait_hist_) {
      wait_hist_ = reg->Histogram("pool_queue_wait_s", {{"pool", name_}});
      depth_hist_ = reg->Histogram("pool_queue_depth", {{"pool", name_}});
    }
    wait_hist_->Observe(wait);
    depth_hist_->Observe(static_cast<double>(queue_.size()));
  }
  if (obs::TraceRecorder* tracer = sim_->tracer()) {
    if (wait > 0.0) {
      tracer->AddTrackSpan(name_, "wait", job.enqueue_time, sim_->Now());
    }
    tracer->AddTrackSpan(name_, "serve", sim_->Now(),
                         sim_->Now() + job.service_time);
  }
  auto done = std::move(job.on_done);
  sim_->Schedule(job.service_time, [this, done = std::move(done), wait]() {
    OnJobDone();
    if (done) done(wait);
  });
}

void ServerPool::OnJobDone() {
  --busy_;
  ++completed_;
  if (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(job));
  }
  if (pending_target_.has_value() && queue_.empty()) {
    // Backlog drained: the deferred shrink lands now; jobs still running
    // on the retired servers finish normally.
    servers_ = *pending_target_;
    pending_target_.reset();
  }
}

double ServerPool::Utilization() const {
  const double span = sim_->Now() - created_at_;
  if (span <= 0.0) return 0.0;
  return busy_time_ / (span * static_cast<double>(servers_));
}

UtilizationStats ServerPool::UtilizationReport() const {
  UtilizationStats out;
  out.span_s = sim_->Now() - created_at_;
  out.busy_ratio = Utilization();
  out.wait_count = wait_stats_.count();
  out.wait_mean_s = wait_stats_.mean();
  out.wait_max_s = wait_stats_.max();
  return out;
}

SerialExecutor::SerialExecutor(Simulation* sim, std::string name)
    : sim_(sim), name_(std::move(name)), created_at_(sim->Now()) {}

void SerialExecutor::Post(SimTime duration, std::function<void()> on_done) {
  PostDeferred([duration]() { return duration; }, std::move(on_done));
}

void SerialExecutor::PostDeferred(std::function<SimTime()> duration_fn,
                                  std::function<void()> on_done) {
  if (obs::MetricsRegistry* reg = sim_->metrics()) {
    if (!depth_hist_) {
      depth_hist_ =
          reg->Histogram("executor_queue_depth", {{"executor", name_}});
    }
    depth_hist_->Observe(static_cast<double>(queue_.size()));
  }
  queue_.push_back(
      Item{std::move(duration_fn), std::move(on_done), sim_->Now()});
  if (!busy_) StartNext();
}

void SerialExecutor::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Item item = std::move(queue_.front());
  queue_.pop_front();
  wait_stats_.Add(sim_->Now() - item.enqueue_time);
  const SimTime duration = item.duration_fn();
  CRAYFISH_CHECK_GE(duration, 0.0);
  busy_time_ += duration;
  if (obs::TraceRecorder* tracer = sim_->tracer()) {
    tracer->AddTrackSpan(name_, "run", sim_->Now(), sim_->Now() + duration);
  }
  sim_->Schedule(duration, [this, on_done = std::move(item.on_done)]() {
    ++completed_;
    if (on_done) on_done();
    StartNext();
  });
}

UtilizationStats SerialExecutor::UtilizationReport() const {
  UtilizationStats out;
  out.span_s = sim_->Now() - created_at_;
  if (out.span_s > 0.0) out.busy_ratio = busy_time_ / out.span_s;
  out.wait_count = wait_stats_.count();
  out.wait_mean_s = wait_stats_.mean();
  out.wait_max_s = wait_stats_.max();
  return out;
}

}  // namespace crayfish::sim
