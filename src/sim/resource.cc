#include "sim/resource.h"

#include <utility>

#include "common/logging.h"

namespace crayfish::sim {

ServerPool::ServerPool(Simulation* sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)), servers_(servers),
      created_at_(sim->Now()) {
  CRAYFISH_CHECK_GT(servers, 0);
}

void ServerPool::Submit(SimTime service_time,
                        std::function<void(SimTime)> on_done) {
  Job job{sim_->Now(), service_time, std::move(on_done)};
  if (busy_ < servers_) {
    StartJob(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

void ServerPool::Resize(int servers) {
  CRAYFISH_CHECK_GT(servers, 0);
  servers_ = servers;
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(job));
  }
}

void ServerPool::StartJob(Job job) {
  ++busy_;
  const SimTime wait = sim_->Now() - job.enqueue_time;
  wait_stats_.Add(wait);
  service_stats_.Add(job.service_time);
  busy_time_ += job.service_time;
  auto done = std::move(job.on_done);
  sim_->Schedule(job.service_time, [this, done = std::move(done), wait]() {
    OnJobDone();
    if (done) done(wait);
  });
}

void ServerPool::OnJobDone() {
  --busy_;
  ++completed_;
  if (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(job));
  }
}

double ServerPool::Utilization() const {
  const double span = sim_->Now() - created_at_;
  if (span <= 0.0) return 0.0;
  return busy_time_ / (span * static_cast<double>(servers_));
}

SerialExecutor::SerialExecutor(Simulation* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void SerialExecutor::Post(SimTime duration, std::function<void()> on_done) {
  PostDeferred([duration]() { return duration; }, std::move(on_done));
}

void SerialExecutor::PostDeferred(std::function<SimTime()> duration_fn,
                                  std::function<void()> on_done) {
  queue_.push_back(Item{std::move(duration_fn), std::move(on_done)});
  if (!busy_) StartNext();
}

void SerialExecutor::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Item item = std::move(queue_.front());
  queue_.pop_front();
  const SimTime duration = item.duration_fn();
  CRAYFISH_CHECK_GE(duration, 0.0);
  busy_time_ += duration;
  sim_->Schedule(duration, [this, on_done = std::move(item.on_done)]() {
    ++completed_;
    if (on_done) on_done();
    StartNext();
  });
}

}  // namespace crayfish::sim
