#ifndef CRAYFISH_SIM_RESOURCE_H_
#define CRAYFISH_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "common/stats.h"
#include "sim/simulation.h"

namespace crayfish::obs {
class HistogramMetric;
}  // namespace crayfish::obs

namespace crayfish::sim {

/// Busy-time ratio plus cumulative queue-wait statistics for a resource.
/// `busy_ratio` is 0 when no simulated time has elapsed since construction
/// (span <= 0), matching Utilization().
struct UtilizationStats {
  double busy_ratio = 0.0;
  double span_s = 0.0;
  size_t wait_count = 0;
  double wait_mean_s = 0.0;
  double wait_max_s = 0.0;
};

/// An M-server FIFO queueing station over simulated time.
///
/// Models a pool of `servers` identical workers (e.g. the worker processes
/// of an external serving service, or the task slots of an executor). Jobs
/// are submitted with a service duration; when all servers are busy they
/// wait in FIFO order. Completion callbacks fire at the simulated instant
/// the job finishes.
class ServerPool {
 public:
  ServerPool(Simulation* sim, std::string name, int servers);

  /// Enqueues a job taking `service_time` seconds of one server's time.
  /// `on_done(wait_time)` fires at completion with the time the job spent
  /// queued (not serving).
  void Submit(SimTime service_time, std::function<void(SimTime)> on_done);

  /// Changes the number of servers. Growing dispatches queued jobs
  /// immediately; shrinking takes effect as running jobs finish.
  void Resize(int servers);

  /// Like Resize, but a shrink drains first: queued jobs keep dispatching
  /// at the current width and the lower target applies once the backlog
  /// empties (running jobs always finish either way). A grow cancels any
  /// pending shrink and applies immediately. Autoscaler scale-in uses this
  /// so removing workers can never strand queued work.
  void ResizeGraceful(int servers);

  int servers() const { return servers_; }
  /// Drain-pending shrink target, or servers() when none is pending. This
  /// is the width the pool is converging to — what the autoscaler reads as
  /// the current replica count so in-flight drains are not re-requested.
  int target_servers() const {
    return pending_target_.has_value() ? *pending_target_ : servers_;
  }
  int busy() const { return busy_; }
  size_t queue_depth() const { return queue_.size(); }
  uint64_t completed() const { return completed_; }
  /// Cumulative server-busy seconds (monotone; jobs charge their service
  /// time at completion). The telemetry timeline differences this across
  /// window boundaries for per-window utilization.
  double busy_seconds() const { return busy_time_; }

  /// Fraction of server-time spent busy since construction.
  double Utilization() const;
  /// Utilization plus cumulative queue-wait statistics (count, mean, max).
  UtilizationStats UtilizationReport() const;
  const crayfish::RunningStats& wait_stats() const { return wait_stats_; }
  const crayfish::RunningStats& service_stats() const {
    return service_stats_;
  }
  const std::string& name() const { return name_; }

 private:
  struct Job {
    SimTime enqueue_time;
    SimTime service_time;
    std::function<void(SimTime)> on_done;
  };

  void StartJob(Job job);
  void OnJobDone();

  Simulation* sim_;
  std::string name_;
  int servers_;
  int busy_ = 0;
  /// Deferred shrink width from ResizeGraceful, applied when queue_ drains.
  std::optional<int> pending_target_;
  std::deque<Job> queue_;
  uint64_t completed_ = 0;
  double busy_time_ = 0.0;
  SimTime created_at_;
  crayfish::RunningStats wait_stats_;
  crayfish::RunningStats service_stats_;
  // Lazily resolved from sim_->metrics(); null when metrics are disabled.
  obs::HistogramMetric* wait_hist_ = nullptr;
  obs::HistogramMetric* depth_hist_ = nullptr;
};

/// A single logical execution thread: processes work items strictly one at
/// a time in submission order. Used for operator tasks (a Flink task, a
/// Kafka Streams stream thread, a Ray actor) whose defining property is
/// serial execution.
class SerialExecutor {
 public:
  SerialExecutor(Simulation* sim, std::string name);

  /// Appends a work item taking `duration` seconds; `on_done` fires at its
  /// simulated completion. Items run back to back.
  void Post(SimTime duration, std::function<void()> on_done);

  /// Like Post but the duration is computed when the item *starts*
  /// executing — needed when the cost depends on queue state at start time.
  void PostDeferred(std::function<SimTime()> duration_fn,
                    std::function<void()> on_done);

  size_t queue_depth() const { return queue_.size(); }
  bool busy() const { return busy_; }
  /// Total busy seconds accumulated.
  double busy_time() const { return busy_time_; }
  uint64_t completed() const { return completed_; }
  const std::string& name() const { return name_; }

  /// Busy-time ratio over the executor's lifetime plus item queue-wait
  /// statistics, mirroring ServerPool::UtilizationReport.
  UtilizationStats UtilizationReport() const;

 private:
  struct Item {
    std::function<SimTime()> duration_fn;
    std::function<void()> on_done;
    SimTime enqueue_time;
  };

  void StartNext();

  Simulation* sim_;
  std::string name_;
  bool busy_ = false;
  std::deque<Item> queue_;
  double busy_time_ = 0.0;
  uint64_t completed_ = 0;
  SimTime created_at_;
  crayfish::RunningStats wait_stats_;
  obs::HistogramMetric* depth_hist_ = nullptr;
};

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_RESOURCE_H_
