#include "sim/simulation.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::sim {

Simulation::Simulation(uint64_t seed) : seed_(seed), rng_(seed) {}

void Simulation::Schedule(SimTime delay, InlineAction action) {
  if (delay < 0.0) delay = 0.0;
  Partition* p = CurrentPartition();
  if (p != nullptr) {
    // A confined callback re-arming itself (poll loops, batch timers) stays
    // on its own host: partition-local push, no synchronization.
    p->queue.Push(p->now + delay, p->current_host, std::move(action));
    return;
  }
  queue_.Push(now_ + delay, std::move(action));
}

void Simulation::ScheduleAt(SimTime time, InlineAction action) {
  Partition* p = CurrentPartition();
  if (p != nullptr) {
    if (time < p->now) time = p->now;
    p->queue.Push(time, p->current_host, std::move(action));
    return;
  }
  if (time < now_) time = now_;
  queue_.Push(time, std::move(action));
}

void Simulation::SetThreads(int n) {
  CRAYFISH_CHECK_GE(n, 1) << "sim_threads must be >= 1";
  CRAYFISH_CHECK(runtime_ == nullptr)
      << "SetThreads must be called once, before any host is registered";
  runtime_ = std::make_unique<PartitionRuntime>(n);
}

void Simulation::SetLookahead(SimTime lookahead_s) {
  CRAYFISH_CHECK_GE(lookahead_s, 0.0);
  lookahead_ = lookahead_s;
}

void Simulation::EnsureRuntime() {
  if (runtime_ == nullptr) runtime_ = std::make_unique<PartitionRuntime>(1);
}

int Simulation::RegisterHost(const std::string& name) {
  auto it = host_ids_.find(name);
  if (it != host_ids_.end()) return it->second;
  CRAYFISH_CHECK(CurrentPartition() == nullptr)
      << "RegisterHost is setup-phase only";
  EnsureRuntime();
  const int id = static_cast<int>(host_partition_.size());
  host_ids_.emplace(name, id);
  // Round-robin by registration order: deterministic for a given config,
  // independent of names, and balanced for homogeneous host sets.
  host_partition_.push_back(id % runtime_->partition_count());
  host_send_seq_.push_back(0);
  return id;
}

int Simulation::HostId(const std::string& name) const {
  auto it = host_ids_.find(name);
  return it == host_ids_.end() ? -1 : it->second;
}

int Simulation::PartitionOfHost(int host_id) const {
  CRAYFISH_CHECK_GE(host_id, 0);
  CRAYFISH_CHECK_LT(static_cast<size_t>(host_id), host_partition_.size());
  return host_partition_[static_cast<size_t>(host_id)];
}

void Simulation::ScheduleOnHost(int host_id, SimTime delay,
                                InlineAction action) {
  if (delay < 0.0) delay = 0.0;
  ScheduleAtOnHost(host_id, Now() + delay, std::move(action));
}

void Simulation::ScheduleAtOnHost(int host_id, SimTime time,
                                  InlineAction action) {
  CRAYFISH_CHECK_GE(host_id, 0) << "unregistered host";
  CRAYFISH_CHECK_LT(static_cast<size_t>(host_id), host_partition_.size());
  Partition* from = CurrentPartition();
  if (from == nullptr) {
    // Global or setup context: every partition is quiescent, so pushing
    // straight into the owner's queue is race-free and needs no lookahead.
    if (time < now_) time = now_;
    runtime_->partition(host_partition_[static_cast<size_t>(host_id)])
        .queue.Push(time, host_id, std::move(action));
    return;
  }
  if (time < from->now) time = from->now;
  if (host_id == from->current_host) {
    from->queue.Push(time, host_id, std::move(action));
    return;
  }
  PushRemote(from, host_id, time, std::move(action));
}

void Simulation::ScheduleOnHost(const std::string& host, SimTime delay,
                                InlineAction action) {
  ScheduleOnHost(HostId(host), delay, std::move(action));
}

void Simulation::ScheduleAtOnHost(const std::string& host, SimTime time,
                                  InlineAction action) {
  ScheduleAtOnHost(HostId(host), time, std::move(action));
}

void Simulation::PushRemote(Partition* from, int host_id, SimTime time,
                            InlineAction action) {
  // Cross-host confined delivery. The conservative protocol is only sound
  // if no delivery can land inside the window that produced it; the link
  // propagation latency floor (lookahead) is exactly that guarantee, so a
  // violation here means a component scheduled onto a foreign host with
  // less than the minimum network delay — a modeling bug, not a tuning
  // knob. Note cross-host routing applies even when src and dst happen to
  // share a partition: the merge key must not depend on the packing.
  CRAYFISH_CHECK_GT(lookahead_, 0.0)
      << "cross-host confined scheduling requires a positive lookahead "
         "(SetLookahead with the minimum link latency)";
  CRAYFISH_CHECK_GE(time, from->now + lookahead_)
      << "cross-host delivery closer than the conservative lookahead bound";
  const int32_t src = from->current_host;
  CRAYFISH_CHECK_GE(src, 0);
  // Only the thread executing `src`'s events reaches this line, so the
  // per-host counter needs no synchronization.
  const uint64_t seq = host_send_seq_[static_cast<size_t>(src)]++;
  runtime_->partition(host_partition_[static_cast<size_t>(host_id)])
      .inbox.Push(RemoteEvent{time, static_cast<int32_t>(host_id), src, seq,
                              std::move(action)});
}

void Simulation::ScheduleExclusiveAt(const std::string& host, SimTime time,
                                     InlineAction action) {
  CRAYFISH_CHECK(CurrentPartition() == nullptr)
      << "exclusive events are scheduled from global/setup context only";
  EnsureRuntime();
  int part = 0;
  auto it = host_ids_.find(host);
  if (it != host_ids_.end()) {
    part = host_partition_[static_cast<size_t>(it->second)];
  }
  ++runtime_->partition(part).exclusive_scheduled;
  ScheduleAt(time, std::move(action));
}

void Simulation::DrainDeferredObs() {
  const int n = runtime_->partition_count();
  size_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += runtime_->partition(i).deferred.size();
  }
  if (total == 0) return;
  deferred_scratch_.clear();
  deferred_scratch_.reserve(total);
  for (int i = 0; i < n; ++i) {
    Partition& p = runtime_->partition(i);
    for (DeferredOp& op : p.deferred) {
      deferred_scratch_.push_back(std::move(op));
    }
    p.deferred.clear();
  }
  // Merge across partitions into the (time, host) order a serial run
  // records naturally. Ties on both keys come from a single host, whose
  // buffer order is already its deterministic execution order — the
  // stable sort preserves it, so the replayed sequence is identical at
  // every thread count.
  std::stable_sort(deferred_scratch_.begin(), deferred_scratch_.end(),
                   [](const DeferredOp& a, const DeferredOp& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.host < b.host;
                   });
  for (DeferredOp& op : deferred_scratch_) op.apply();
  deferred_scratch_.clear();
}

uint64_t Simulation::exclusive_scheduled(int partition) const {
  if (runtime_ == nullptr) return 0;
  return runtime_->partition(partition).exclusive_scheduled;
}

Rng Simulation::ForkRng() {
  CRAYFISH_CHECK(CurrentPartition() == nullptr)
      << "ForkRng from a confined callback would order RNG draws by worker "
         "interleaving; fork during setup or from a global event";
  return rng_.Fork();
}

size_t Simulation::pending_events() const {
  size_t n = queue_.size();
  if (runtime_ != nullptr) n += runtime_->PendingEvents();
  return n;
}

uint64_t Simulation::Run(SimTime until) {
  // Log lines emitted by events carry the simulated timestamp; restore the
  // previous clock on every exit path. Confined callbacks read the global
  // clock, which the coordinator does not advance while a window runs.
  LogSimClock prev_clock =
      SetLogSimClock([this]() { return static_cast<double>(now_); });
  struct ClockRestorer {
    LogSimClock prev;
    ~ClockRestorer() { SetLogSimClock(std::move(prev)); }
  } restorer{std::move(prev_clock)};

  uint64_t executed = 0;
  stop_requested_ = false;
  for (;;) {
    if (stop_requested_) break;
    const SimTime t_g = queue_.empty() ? kNeverSimTime : queue_.next_time();
    const SimTime t_c =
        runtime_ == nullptr ? kNeverSimTime : runtime_->NextConfinedTime();
    if (t_g == kNeverSimTime && t_c == kNeverSimTime) break;  // idle
    if (t_g > until && t_c > until) break;
    if (t_g <= t_c) {
      // Serial step: global events run with every partition quiescent, in
      // exactly the total (time, seq) order the serial engine uses. Ties
      // between a global and a confined event resolve to the global side
      // so the window that follows sees its effects.
      Event e = queue_.Pop();
      CRAYFISH_CHECK_GE(e.time, now_);
      now_ = e.time;
      // Close timeline windows whose boundary this event crosses *before*
      // executing it: probes observe the state as of the boundary, no
      // sampler events are scheduled, and the event interleaving is
      // untouched — enabling the timeline cannot perturb the run.
      if (timeline_ != nullptr) timeline_->AdvanceTo(e.time);
      if (e.action) e.action();
      ++executed;
      ++events_executed_;
      continue;
    }
    // Conservative window: confined work strictly precedes the next global
    // event. The horizon is the earliest of (a) that global event, whose
    // cross-partition effects must not interleave with confined work,
    // (b) the lookahead bound past the window's first event — no
    // cross-host delivery produced inside the window can land before it —
    // and (c) the next telemetry boundary, so timeline probes only ever
    // observe barrier states. t_c < horizon always holds, so every window
    // makes progress.
    CRAYFISH_CHECK_GE(t_c, now_);
    now_ = t_c;
    if (timeline_ != nullptr) timeline_->AdvanceTo(t_c);
    SimTime horizon = t_g;
    if (lookahead_ > 0.0) horizon = std::min(horizon, t_c + lookahead_);
    if (timeline_ != nullptr) {
      horizon = std::min(horizon, timeline_->NextBoundaryAfter(t_c));
    }
    const uint64_t n = runtime_->RunWindow(horizon, until);
    executed += n;
    events_executed_ += n;
    runtime_->DrainMailboxes();
    // Replay buffered observability mutations before the next iteration's
    // AdvanceTo so they land in their (still open) timeline window.
    DrainDeferredObs();
    // Local clocks never pass the horizon, which never passes t_g, so the
    // global clock stays behind every pending event.
    now_ = std::max(now_, runtime_->MaxLocalNow());
  }
  if (!stop_requested_ && now_ < until &&
      until != std::numeric_limits<SimTime>::infinity()) {
    // Advance the clock to the horizon so repeated Run(until) calls observe
    // monotonically increasing time even when events remain beyond it.
    now_ = until;
  }
  return executed;
}

}  // namespace crayfish::sim
