#include "sim/simulation.h"

#include "common/logging.h"
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::sim {

Simulation::Simulation(uint64_t seed) : seed_(seed), rng_(seed) {}

void Simulation::Schedule(SimTime delay, InlineAction action) {
  if (delay < 0.0) delay = 0.0;
  queue_.Push(now_ + delay, std::move(action));
}

void Simulation::ScheduleAt(SimTime time, InlineAction action) {
  if (time < now_) time = now_;
  queue_.Push(time, std::move(action));
}

uint64_t Simulation::Run(SimTime until) {
  // Log lines emitted by events carry the simulated timestamp; restore the
  // previous clock on every exit path.
  LogSimClock prev_clock =
      SetLogSimClock([this]() { return static_cast<double>(now_); });
  struct ClockRestorer {
    LogSimClock prev;
    ~ClockRestorer() { SetLogSimClock(std::move(prev)); }
  } restorer{std::move(prev_clock)};

  uint64_t executed = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > until) break;
    Event e = queue_.Pop();
    CRAYFISH_CHECK_GE(e.time, now_);
    now_ = e.time;
    // Close timeline windows whose boundary this event crosses *before*
    // executing it: probes observe the state as of the boundary, no
    // sampler events are scheduled, and the event interleaving is
    // untouched — enabling the timeline cannot perturb the run.
    if (timeline_ != nullptr) timeline_->AdvanceTo(e.time);
    if (e.action) e.action();
    ++executed;
    ++events_executed_;
  }
  if (!stop_requested_ && now_ < until &&
      until != std::numeric_limits<SimTime>::infinity()) {
    // Advance the clock to the horizon so repeated Run(until) calls observe
    // monotonically increasing time even when events remain beyond it.
    now_ = until;
  }
  return executed;
}

}  // namespace crayfish::sim
