#ifndef CRAYFISH_SIM_SIMULATION_H_
#define CRAYFISH_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "sim/event_queue.h"
#include "sim/partition.h"

namespace crayfish::obs {
class TraceRecorder;
class MetricsRegistry;
class TimelineSampler;
}  // namespace crayfish::obs

namespace crayfish::sim {

/// Discrete-event simulation kernel.
///
/// All Crayfish components (brokers, stream engines, serving servers,
/// producers, consumers) are driven by one Simulation instance. Only *time*
/// is simulated; the data structures the components maintain (logs, queues,
/// offsets, payloads) are real. Determinism: with a fixed seed, two runs
/// produce identical event interleavings.
///
/// ## Partitioned (multi-core) mode
///
/// SetThreads(N) shards the simulation into N host partitions executed by N
/// threads under a conservative time-window protocol (DESIGN.md §4.6).
/// Events come in three classes:
///
///  - *Global* events — Schedule()/ScheduleAt() from setup or from another
///    global event. Totally ordered by (time, seq) and executed with every
///    partition quiescent; legacy components are global and keep exactly
///    their serial semantics at any thread count.
///  - *Confined* events — ScheduleOnHost()/ScheduleAtOnHost(). Owned by a
///    registered host, executed on the host's partition inside time
///    windows; callbacks may only touch that host's state (lint R10).
///    Re-scheduling from inside a confined callback stays on the same host;
///    scheduling onto *another* host routes through the owner partition's
///    mailbox and must respect the conservative lookahead bound.
///  - *Exclusive* events — ScheduleExclusiveAt(). Owned by a host's
///    partition for attribution (the fault injector schedules into the
///    partition that owns the fault's target) but executed at a global
///    synchronization point, because fault actions mutate cross-partition
///    substrates (broker cluster, network degradation tables).
///
/// Cross-host confined deliveries merge in (time, src_host, src_seq) order
/// — a key independent of the host→partition packing — so a partitioned
/// run is byte-for-byte identical to the serial (threads=1) run on every
/// export. Confined callbacks must not call ForkRng(), Stop(), or the
/// global Schedule()/ScheduleAt() of *another* simulation phase; the
/// kernel CHECKs the RNG rule and reroutes scheduling to the owning host.
///
/// CRAYFISH_SHARED: the event queue is the one substrate every host
/// partition touches (scheduling into another partition). Under the
/// parallel DES, Schedule/ScheduleAt on a remote partition is a
/// synchronized mailbox push with conservative lookahead, so cross-host
/// use is part of the design, not a confinement leak.
class CRAYFISH_SHARED("sim-event-queue") Simulation {
 public:
  explicit Simulation(uint64_t seed = 42);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time, seconds. Inside a confined callback this is
  /// the executing partition's local clock (the event's timestamp); in
  /// global context it is the global virtual time.
  SimTime Now() const {
    const Partition* p = CurrentPartition();
    return p != nullptr ? p->now : now_;
  }

  /// Schedules `action` to run `delay` seconds from now. Negative delays
  /// clamp to zero (fire at the current instant, after pending same-time
  /// events). Accepts any void() callable; captures up to
  /// InlineAction::kInlineBytes are stored without allocating. From inside
  /// a confined callback the action stays confined to the executing host.
  void Schedule(SimTime delay, InlineAction action);

  /// Schedules `action` at an absolute time; times before Now() clamp to
  /// Now(). Confined-context calls stay on the executing host.
  void ScheduleAt(SimTime time, InlineAction action);

  // --- Partitioned mode (parallel DES; DESIGN.md §4.6) -------------------

  /// Shards the simulation into `n` host partitions run by `n` threads
  /// (n - 1 workers plus the caller). Must be called before any host is
  /// registered; n = 1 is the canonical serial engine — same protocol, no
  /// worker threads. CHECK-fails if called twice or after RegisterHost.
  void SetThreads(int n);
  int threads() const {
    return runtime_ == nullptr ? 1 : runtime_->partition_count();
  }

  /// Conservative lookahead bound (seconds): the minimum simulated delay
  /// of any cross-host confined delivery, normally the minimum network
  /// link propagation latency. Windows extend `lookahead` past the
  /// earliest confined event; a cross-host schedule closer than the bound
  /// CHECK-fails. 0 (the default) disables cross-host confined messaging
  /// but still allows per-host parallel windows bounded by global events.
  void SetLookahead(SimTime lookahead_s);
  SimTime lookahead() const { return lookahead_; }

  /// True once the experiment driver has armed partitioned execution
  /// (positive lookahead). Components use this to pick between the
  /// host-confined scheduling path and the legacy global path, so unit
  /// tests that never call SetLookahead keep byte-identical event orders.
  bool host_scheduling_active() const { return lookahead_ > 0.0; }

  /// Registers a simulated host and assigns it to a partition
  /// (round-robin by registration order, which is deterministic). Returns
  /// the host id used by the id-keyed scheduling overloads. Registering
  /// the same name twice returns the existing id. Setup phase only.
  int RegisterHost(const std::string& name) CRAYFISH_REQUIRES("setup");
  /// Host id for a registered name (-1 if unknown).
  int HostId(const std::string& name) const;
  /// Owning partition of a host id (0 when not partitioned).
  int PartitionOfHost(int host_id) const;
  size_t registered_hosts() const { return host_partition_.size(); }

  /// Schedules a confined event on `host_id`'s partition. From global
  /// context this is a direct (serial) push; from a confined callback on
  /// the same host it stays local; from a confined callback on another
  /// host it becomes a mailbox push, and the delivery must be at least
  /// `lookahead()` in the future (CHECK).
  void ScheduleOnHost(int host_id, SimTime delay, InlineAction action);
  void ScheduleAtOnHost(int host_id, SimTime time, InlineAction action);
  void ScheduleOnHost(const std::string& host, SimTime delay,
                      InlineAction action);
  void ScheduleAtOnHost(const std::string& host, SimTime time,
                        InlineAction action);

  /// Schedules an event owned by `host` for attribution but executed at a
  /// global synchronization point (all partitions quiescent): the class
  /// used by the fault injector, whose actions touch cross-partition
  /// substrates. An empty or unknown host attributes to partition 0.
  /// Global/setup context only.
  void ScheduleExclusiveAt(const std::string& host, SimTime time,
                           InlineAction action);
  /// Exclusive events attributed to `partition` so far.
  uint64_t exclusive_scheduled(int partition) const;

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`. Returns the number of events executed (global + confined).
  uint64_t Run(SimTime until = std::numeric_limits<SimTime>::infinity());

  /// Runs until the queue is empty (no time horizon).
  uint64_t RunUntilIdle() { return Run(); }

  /// Requests that Run() return after the current event completes. Global
  /// context only (a confined callback must not stop the world mid-window).
  void Stop() { stop_requested_ = true; }
  bool stopped() const { return stop_requested_; }

  /// Per-experiment root RNG; components call ForkRng() to obtain private
  /// deterministic streams during setup or from global events. CHECK-fails
  /// from confined callbacks: a shared RNG stream across partitions would
  /// make draws depend on worker interleaving.
  Rng ForkRng();
  uint64_t seed() const { return seed_; }

  uint64_t events_executed() const { return events_executed_; }
  /// Pending events across the global queue and every partition (queues
  /// plus undrained mailboxes). Deterministic at window barriers, which is
  /// when timeline probes sample it.
  size_t pending_events() const;

  /// Attaches observability collectors (either may be nullptr). The
  /// Simulation does not own them; the experiment driver keeps them alive
  /// for the run. Components check `tracer()`/`metrics()` for nullptr on
  /// every hook, so observability stays a single branch when disabled.
  void AttachObservability(obs::TraceRecorder* tracer,
                           obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }
  obs::TraceRecorder* tracer() const { return tracer_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches the telemetry timeline (may be nullptr). The Run loop drives
  /// the sampler's window clock passively — AdvanceTo before each global
  /// event and at window barriers; parallel windows are additionally
  /// capped at the next sampler boundary, so probes always observe a
  /// deterministic barrier state and `events_executed()` is unchanged.
  void AttachTimeline(obs::TimelineSampler* timeline) {
    timeline_ = timeline;
  }
  obs::TimelineSampler* timeline() const { return timeline_; }

 private:
  /// Lazily creates the 1-partition runtime for host registration when
  /// SetThreads was never called.
  void EnsureRuntime();
  /// Cross-host confined push from a confined callback: mailbox delivery
  /// carrying the conservative lookahead bound.
  void PushRemote(Partition* from, int host_id, SimTime time,
                  InlineAction action);
  /// Replays the observability mutations partitions buffered during the
  /// window just executed, merged across partitions in (time, host) order.
  /// Coordinator only, at the window barrier (see Partition::deferred).
  void DrainDeferredObs();

  uint64_t seed_;
  Rng rng_;
  SimTime now_ = 0.0;
  EventQueue queue_;
  bool stop_requested_ = false;
  uint64_t events_executed_ = 0;
  SimTime lookahead_ = 0.0;
  std::unique_ptr<PartitionRuntime> runtime_;
  /// Host id -> owning partition; registration order is the id order.
  std::vector<int> host_partition_;
  /// Host id -> monotone cross-host send counter (the src_seq half of the
  /// deterministic merge key). Only the owning partition's thread writes.
  std::vector<uint64_t> host_send_seq_;
  /// Barrier-side merge buffer for deferred observability mutations; the
  /// capacity is reused across windows.
  std::vector<DeferredOp> deferred_scratch_;
  /// Ordered (lint R3): iteration is never timing-relevant, but the map
  /// backs deterministic host-id assignment diagnostics.
  std::map<std::string, int> host_ids_;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TimelineSampler* timeline_ = nullptr;
};

/// Utility: converts milliseconds to the SimTime unit (seconds).
constexpr SimTime FromMillis(double ms) { return ms / 1000.0; }
/// Utility: converts a SimTime interval to milliseconds.
constexpr double ToMillis(SimTime t) { return t * 1000.0; }
/// Utility: converts microseconds to the SimTime unit (seconds).
constexpr SimTime FromMicros(double us) { return us / 1e6; }

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_SIMULATION_H_
