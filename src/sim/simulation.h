#ifndef CRAYFISH_SIM_SIMULATION_H_
#define CRAYFISH_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "sim/event_queue.h"

namespace crayfish::obs {
class TraceRecorder;
class MetricsRegistry;
class TimelineSampler;
}  // namespace crayfish::obs

namespace crayfish::sim {

/// Discrete-event simulation kernel.
///
/// All Crayfish components (brokers, stream engines, serving servers,
/// producers, consumers) are driven by one Simulation instance. Only *time*
/// is simulated; the data structures the components maintain (logs, queues,
/// offsets, payloads) are real. Determinism: with a fixed seed, two runs
/// produce identical event interleavings.
///
/// CRAYFISH_SHARED: the event queue is the one substrate every host
/// partition touches (scheduling into another partition). Under the
/// parallel DES (ROADMAP item 1) Schedule/ScheduleAt on a remote partition
/// becomes a synchronized mailbox push with conservative lookahead, so
/// cross-host use is part of the design, not a confinement leak.
class CRAYFISH_SHARED("sim-event-queue") Simulation {
 public:
  explicit Simulation(uint64_t seed = 42);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time, seconds.
  SimTime Now() const { return now_; }

  /// Schedules `action` to run `delay` seconds from now. Negative delays
  /// clamp to zero (fire at the current instant, after pending same-time
  /// events). Accepts any void() callable; captures up to
  /// InlineAction::kInlineBytes are stored without allocating.
  void Schedule(SimTime delay, InlineAction action);

  /// Schedules `action` at an absolute time; times before Now() clamp to
  /// Now().
  void ScheduleAt(SimTime time, InlineAction action);

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`. Returns the number of events executed.
  uint64_t Run(SimTime until = std::numeric_limits<SimTime>::infinity());

  /// Runs until the queue is empty (no time horizon).
  uint64_t RunUntilIdle() { return Run(); }

  /// Requests that Run() return after the current event completes.
  void Stop() { stop_requested_ = true; }
  bool stopped() const { return stop_requested_; }

  /// Per-experiment root RNG; components call ForkRng() to obtain private
  /// deterministic streams.
  Rng ForkRng() { return rng_.Fork(); }
  uint64_t seed() const { return seed_; }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  /// Attaches observability collectors (either may be nullptr). The
  /// Simulation does not own them; the experiment driver keeps them alive
  /// for the run. Components check `tracer()`/`metrics()` for nullptr on
  /// every hook, so observability stays a single branch when disabled.
  void AttachObservability(obs::TraceRecorder* tracer,
                           obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }
  obs::TraceRecorder* tracer() const { return tracer_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches the telemetry timeline (may be nullptr). The Run loop drives
  /// the sampler's window clock passively — AdvanceTo before each event —
  /// so no sampler events enter the queue and `events_executed()` is
  /// unchanged; components feed it through the same null-checked pattern
  /// as tracer()/metrics().
  void AttachTimeline(obs::TimelineSampler* timeline) {
    timeline_ = timeline;
  }
  obs::TimelineSampler* timeline() const { return timeline_; }

 private:
  uint64_t seed_;
  Rng rng_;
  SimTime now_ = 0.0;
  EventQueue queue_;
  bool stop_requested_ = false;
  uint64_t events_executed_ = 0;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TimelineSampler* timeline_ = nullptr;
};

/// Utility: converts milliseconds to the SimTime unit (seconds).
constexpr SimTime FromMillis(double ms) { return ms / 1000.0; }
/// Utility: converts a SimTime interval to milliseconds.
constexpr double ToMillis(SimTime t) { return t * 1000.0; }
/// Utility: converts microseconds to the SimTime unit (seconds).
constexpr SimTime FromMicros(double us) { return us / 1e6; }

}  // namespace crayfish::sim

#endif  // CRAYFISH_SIM_SIMULATION_H_
