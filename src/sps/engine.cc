#include "sps/engine.h"

#include <algorithm>

#include "common/json.h"
#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/trace.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "sps/flink_engine.h"
#include "sps/kafka_streams_engine.h"
#include "sps/ray_engine.h"
#include "sps/spark_engine.h"

namespace crayfish::sps {

StreamEngine::StreamEngine(sim::Simulation* sim, sim::Network* network,
                           broker::KafkaCluster* cluster, EngineConfig config,
                           ScoringConfig scoring)
    : sim_(sim), network_(network), cluster_(cluster),
      config_(std::move(config)), scoring_(std::move(scoring)),
      rng_(sim->ForkRng()) {
  CRAYFISH_CHECK_GT(config_.parallelism, 0);
  if (scoring_.external) {
    CRAYFISH_CHECK(scoring_.server != nullptr)
        << "external scoring requires a server";
  } else {
    CRAYFISH_CHECK(scoring_.library != nullptr)
        << "embedded scoring requires a library";
  }
  if (!network_->HasHost(config_.host)) {
    CRAYFISH_CHECK_OK(network_->AddHost(
        sim::Host{config_.host, /*vcpus=*/64, /*memory_bytes=*/240ULL << 30,
                  scoring_.use_gpu}));
  }
}

double StreamEngine::StressMultiplier(size_t queue_depth) {
  double gamma;
  double tau_up;
  double tau_down;
  if (scoring_.external) {
    const serving::ExternalCosts& c = scoring_.server->costs();
    gamma = c.stress_gamma;
    tau_up = c.stress_tau_up_s;
    tau_down = c.stress_tau_down_s;
  } else {
    const serving::EmbeddedCosts& c = scoring_.library->costs();
    gamma = c.stress_gamma;
    tau_up = c.stress_tau_up_s;
    tau_down = c.stress_tau_down_s;
  }
  const double now = sim_->Now();
  const double dt = now - stress_updated_at_;
  stress_updated_at_ = now;
  if (queue_depth > 128) {
    stress_ = std::min(1.0, stress_ + dt / tau_up);
  } else {
    stress_ = std::max(0.0, stress_ - dt / tau_down);
  }
  return 1.0 + gamma * stress_;
}

double StreamEngine::SlowDriftFactor() {
  const double sigma = scoring_.external
                           ? scoring_.server->costs().slow_jitter_cv
                           : scoring_.library->costs().slow_jitter_cv;
  if (sigma <= 0.0) return 1.0;
  if (sim_->Now() >= slow_resample_at_) {
    slow_factor_ = rng_.LogNormal(-0.5 * sigma * sigma, sigma);
    // A slow client cannot make the network round trip faster than
    // nominal: external drift is slowdown-only (the mean shift is
    // compensated in the tools' calibrated client overheads).
    if (scoring_.external) slow_factor_ = std::max(1.0, slow_factor_);
    slow_resample_at_ = sim_->Now() + 10.0;
  }
  return slow_factor_;
}

double StreamEngine::WarmupFactor() {
  if (scoring_.external) return 1.0;  // the SPS does no local inference
  const serving::EmbeddedCosts& c = scoring_.library->costs();
  if (c.warmup_duration_s <= 0.0) return 1.0;
  if (first_apply_at_ < 0.0) first_apply_at_ = sim_->Now();
  const double progress =
      (sim_->Now() - first_apply_at_) / c.warmup_duration_s;
  if (progress >= 1.0) return 1.0;
  return c.warmup_factor - (c.warmup_factor - 1.0) * progress;
}

double StreamEngine::EmbeddedApplySeconds(int batch_size,
                                          size_t queue_depth) {
  return StressMultiplier(queue_depth) * SlowDriftFactor() *
         WarmupFactor() *
         scoring_.library->ApplyTimeSeconds(
             scoring_.model, batch_size, EffectiveContentionParallelism(),
             scoring_.use_gpu, queue_depth, &rng_);
}

void StreamEngine::InvokeExternalWithStress(int batch_size,
                                            size_t queue_depth,
                                            std::function<void()> done) {
  CRAYFISH_CHECK(scoring_.external);
  // Stress and slow drift apply to the client-observed round trip: the
  // blocking operator thread holds the connection through GC pauses and
  // serving-side slowdowns alike.
  const double multiplier =
      StressMultiplier(queue_depth) * SlowDriftFactor();
  if (scoring_.retry.enabled()) {
    InvokeExternalAttempt(
        batch_size, multiplier, /*attempt=*/0,
        std::make_shared<std::function<void()>>(std::move(done)));
    return;
  }
  const double started = sim_->Now();
  scoring_.server->Invoke(
      config_.host, batch_size,
      [this, multiplier, started, done = std::move(done)]() mutable {
        const double elapsed = sim_->Now() - started;
        ScheduleOnHost((multiplier - 1.0) * elapsed, std::move(done));
      });
}

void StreamEngine::InvokeExternalAttempt(
    int batch_size, double multiplier, int attempt,
    std::shared_ptr<std::function<void()>> done) {
  const crayfish::RetryPolicy& retry = scoring_.retry;
  // Whichever of {timeout, response} fires first settles the attempt; a
  // late response to an already-abandoned attempt is ignored.
  auto settled = std::make_shared<bool>(false);
  const double started = sim_->Now();
  ScheduleOnHost(retry.timeout_s, [this, settled, batch_size, multiplier,
                                   attempt, done]() {
    if (*settled) return;
    *settled = true;
    if (!stopped_ && attempt < scoring_.retry.max_retries) {
      ++serving_retries_;
      if (obs::MetricsRegistry* reg = sim_->metrics()) {
        reg->Counter("fault_retries", {{"component", "serving-client"}})
            ->Increment(1.0);
      }
      if (obs::TimelineSampler* tl = sim_->timeline()) {
        tl->Count("serving_retries", sim_->Now());
      }
      ScheduleOnHost(scoring_.retry.BackoffFor(attempt, &rng_),
                     [this, batch_size, multiplier, attempt, done]() {
                       if (stopped_) {
                         (*done)();
                         return;
                       }
                       InvokeExternalAttempt(batch_size, multiplier,
                                             attempt + 1, done);
                     });
      return;
    }
    // Teardown or retry budget exhausted: unblock the operator thread so
    // the record keeps flowing (scoring work is lost, the record is not).
    (*done)();
  });
  scoring_.server->Invoke(config_.host, batch_size,
                          [this, settled, multiplier, started, done]() {
                            if (*settled) return;
                            *settled = true;
                            const double elapsed = sim_->Now() - started;
                            ScheduleOnHost((multiplier - 1.0) * elapsed,
                                           [done]() { (*done)(); });
                          });
}

void StreamEngine::InvokeExternalWithStress(const broker::Record& record,
                                            size_t queue_depth,
                                            std::function<void()> done) {
  TraceMark(record.batch_id, obs::Stage::kScore);
  const uint64_t batch_id = record.batch_id;
  InvokeExternalWithStress(
      static_cast<int>(record.batch_size), queue_depth,
      [this, batch_id, done = std::move(done)]() mutable {
        TraceMark(batch_id, obs::Stage::kServeRpc);
        done();
      });
}

void StreamEngine::TraceMark(uint64_t batch_id, obs::Stage stage) {
  CRAYFISH_TRACE_MARK(sim_, batch_id, stage);
}

void StreamEngine::ScheduleOnHost(sim::SimTime delay,
                                  sim::InlineAction action) {
  if (sim_->host_scheduling_active()) {
    sim_->ScheduleOnHost(config_.host, delay, std::move(action));
  } else {
    sim_->Schedule(delay, std::move(action));
  }
}

void StreamEngine::MaybeRealApply(const broker::Record& record) {
  if (scoring_.external || !record.has_payload() ||
      scoring_.library == nullptr || !scoring_.library->loaded()) {
    return;
  }
  // Parse the CrayfishDataBatch JSON payload into a [batch, ...] tensor.
  const std::string json(record.payload->begin(), record.payload->end());
  auto doc = crayfish::JsonValue::Parse(json);
  CRAYFISH_CHECK(doc.ok()) << doc.status().ToString();
  const crayfish::JsonValue* shape = doc->Find("shape");
  const crayfish::JsonValue* data = doc->Find("data");
  CRAYFISH_CHECK(shape != nullptr && data != nullptr)
      << "payload is not a CrayfishDataBatch";
  std::vector<int64_t> dims;
  dims.push_back(static_cast<int64_t>(record.batch_size));
  for (const crayfish::JsonValue& d : shape->as_array()) {
    dims.push_back(d.as_int());
  }
  std::vector<float> values;
  values.reserve(data->size());
  for (const crayfish::JsonValue& v : data->as_array()) {
    values.push_back(static_cast<float>(v.as_number()));
  }
  tensor::Tensor input(tensor::Shape(std::move(dims)), std::move(values));
  auto out = scoring_.library->Apply(input);
  CRAYFISH_CHECK(out.ok()) << out.status().ToString();
  CRAYFISH_CHECK_EQ(out->shape()[0],
                    static_cast<int64_t>(record.batch_size));
  ++real_inferences_;
}

crayfish::Status StreamEngine::EmitScored(broker::KafkaProducer* producer,
                                          const broker::Record& in) {
  broker::Record out;
  out.batch_id = in.batch_id;
  // The CrayfishDataBatch carries its creation timestamp through the
  // pipeline; the output consumer computes end-to-end latency against the
  // output topic's LogAppendTime (§3.3).
  out.create_time = in.create_time;
  out.batch_size = in.batch_size;
  out.wire_size = scoring_.model.OutputBatchWireBytes(
      static_cast<int>(in.batch_size));
  ++records_emitted_;
  return producer->Send(config_.output_topic, std::move(out));
}

crayfish::StatusOr<std::unique_ptr<StreamEngine>> CreateEngine(
    const std::string& engine_name, sim::Simulation* sim,
    sim::Network* network, broker::KafkaCluster* cluster,
    EngineConfig config, ScoringConfig scoring) {
  if (engine_name == "flink") {
    return {std::make_unique<FlinkEngine>(sim, network, cluster,
                                          std::move(config),
                                          std::move(scoring))};
  }
  if (engine_name == "kafka-streams") {
    return {std::make_unique<KafkaStreamsEngine>(sim, network, cluster,
                                                 std::move(config),
                                                 std::move(scoring))};
  }
  if (engine_name == "spark") {
    return {std::make_unique<SparkEngine>(sim, network, cluster,
                                          std::move(config),
                                          std::move(scoring))};
  }
  if (engine_name == "ray") {
    return {std::make_unique<RayEngine>(sim, network, cluster,
                                        std::move(config),
                                        std::move(scoring))};
  }
  return crayfish::Status::InvalidArgument("unknown engine: " + engine_name);
}

std::vector<std::string> EngineNames() {
  return {"flink", "kafka-streams", "spark", "ray"};
}

}  // namespace crayfish::sps
