#ifndef CRAYFISH_SPS_ENGINE_H_
#define CRAYFISH_SPS_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "broker/cluster.h"
#include "broker/producer.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/stage.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "serving/embedded_library.h"
#include "serving/external_server.h"
#include "serving/model_profile.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish::sps {

/// What the scoring operator (S/E in Fig. 4) does with each record:
/// embedded apply through an interoperability library, or a blocking RPC
/// to an external serving service (§4.3: all external calls blocking).
struct ScoringConfig {
  bool external = false;
  /// Embedded path (owned by the experiment; must outlive the engine).
  serving::EmbeddedLibrary* library = nullptr;
  /// External path (owned by the experiment; must outlive the engine).
  serving::ExternalServingServer* server = nullptr;
  serving::ModelProfile model;
  bool use_gpu = false;
  /// Timeout/backoff policy for the external-serving RPC (disabled by
  /// default). When active, an unanswered Invoke is re-issued with
  /// backoff; after max_retries the record proceeds anyway (scoring work
  /// is lost but the record is not).
  crayfish::RetryPolicy retry;
};

/// Deployment parameters of the data-processor component.
struct EngineConfig {
  /// Host of the SPS VM (paper: 64 vCPUs / 240 GB).
  std::string host = "processor";
  /// Default parallelism of the streaming DAG — the experiments' `mp`.
  int parallelism = 1;
  /// Flink only: operator-level parallelism for source/sink (Fig. 12's
  /// flink[32-N-32]). 0 keeps the default (fully chained) pipeline.
  int source_parallelism = 0;
  int sink_parallelism = 0;
  std::string input_topic = "crayfish-in";
  std::string output_topic = "crayfish-out";
  /// Free-form engine-specific overrides (e.g.
  /// "spark.max_offsets_per_trigger").
  crayfish::Config overrides;
};

/// Read-only runtime telemetry snapshot of a deployed engine, sampled at
/// tumbling-window boundaries by the telemetry timeline. Collecting it
/// must not mutate engine state.
struct EngineTelemetry {
  /// Sum over all engine consumers of records appended to their assigned
  /// partitions but not yet delivered (Theodolite's demand signal).
  int64_t consumer_lag = 0;
  /// Largest single-partition lag across all engine consumers.
  int64_t max_partition_lag = 0;
  /// Records buffered inside the engine: client-side prefetch buffers plus
  /// operator task queues.
  int64_t queue_depth = 0;
  /// Cumulative backpressure stall seconds across operator tasks
  /// (monotone; the timeline reports per-window deltas).
  double backpressure_stall_s = 0.0;
};

/// A deployed stream processor running the three-operator Crayfish DAG
/// (inputOp -> scoringOp -> outputOp, §3.2). Engines consume the input
/// topic, score every CrayfishDataBatch, and produce to the output topic;
/// all timestamps are taken outside the engine (SUT separation, §3.5).
class StreamEngine {
 public:
  StreamEngine(sim::Simulation* sim, sim::Network* network,
               broker::KafkaCluster* cluster, EngineConfig config,
               ScoringConfig scoring);
  virtual ~StreamEngine() = default;

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  virtual const char* name() const = 0;

  /// Deploys tasks and starts consuming. Loads the model into the scoring
  /// operators first (embedded) — the streaming job begins after the load
  /// completes, as in the paper's adapters.
  virtual crayfish::Status Start() = 0;

  /// Stops all task loops (used at experiment teardown).
  virtual void Stop() = 0;

  /// Fault hook: crash-restarts one operator task (`task_index` modulo the
  /// engine's task count). The task's consumer session dies uncommitted
  /// and resumes from the group's committed offsets after
  /// `restart_delay_s` (at-least-once: duplicates possible, no loss).
  /// Returns the number of tasks restarted — 0 when the engine does not
  /// model restartable tasks.
  virtual int InjectTaskFailure(int task_index, double restart_delay_s) {
    (void)task_index;
    (void)restart_delay_s;
    return 0;
  }

  /// Snapshot of the engine's current lag/queue/backpressure state. The
  /// default is empty; engines override to aggregate over their consumers
  /// and tasks.
  virtual EngineTelemetry Telemetry() const { return EngineTelemetry{}; }

  uint64_t events_scored() const { return events_scored_; }
  uint64_t records_emitted() const { return records_emitted_; }
  uint64_t serving_retries() const { return serving_retries_; }
  const EngineConfig& config() const { return config_; }
  const ScoringConfig& scoring() const { return scoring_; }

 protected:
  /// Effective parallelism used for the embedded-library contention model.
  /// Engines that schedule work onto shared cores more efficiently (the
  /// paper credits Kafka Streams' pull model, §5.3.3) map `mp` to a lower
  /// effective contention level.
  virtual double EffectiveContentionParallelism() const {
    return static_cast<double>(config_.parallelism);
  }

  /// Simulated duration of one embedded apply() on a scoring task.
  /// Includes the GC-debt stress multiplier.
  double EmbeddedApplySeconds(int batch_size, size_t queue_depth);

  /// GC-debt stress: sustained deep input queues (> 128 records) degrade
  /// scoring service by up to `gamma`, building with tau_up and decaying
  /// with tau_down. History dependence is the point — short saturation
  /// probes see little of it, long burst backlogs see all of it (Fig. 8).
  /// Returns the current multiplier and advances the state to Now().
  double StressMultiplier(size_t queue_depth);

  /// Slow mean-one capacity drift of the embedded library (GC cycles,
  /// JIT): a lognormal factor resampled every ~10 s of simulated time.
  /// External tools model the equivalent drift server-side.
  double SlowDriftFactor();

  /// JVM/JIT warmup multiplier of the hosting SPS process: decays from
  /// the library's warmup_factor to 1 over warmup_duration_s after the
  /// first scored event. The metrics analyzer's 25% warmup discard
  /// removes its effect from all reported statistics (§4.2).
  double WarmupFactor();

  /// Blocking external call with the stress model applied: the scoring
  /// thread stays occupied for the round trip plus the stress-induced
  /// stall (client-side churn under sustained backlog).
  void InvokeExternalWithStress(int batch_size, size_t queue_depth,
                                std::function<void()> done);

  /// Record-aware variant that also traces the RPC: marks kScore at issue
  /// (client-side preparation ends here) and kServeRpc at completion.
  void InvokeExternalWithStress(const broker::Record& record,
                                size_t queue_depth,
                                std::function<void()> done);

  /// Stage-mark hook: no-op when tracing is disabled.
  void TraceMark(uint64_t batch_id, obs::Stage stage);

  /// Confines engine-internal work (poll loops, operator hand-offs,
  /// trigger timers) to the SPS host when the experiment armed host
  /// scheduling; falls back to the global queue so unit tests keep their
  /// exact event order.
  void ScheduleOnHost(sim::SimTime delay, sim::InlineAction action);

  /// Emits the scored record to the output topic through `producer`,
  /// preserving batch identity and the original create_time.
  crayfish::Status EmitScored(broker::KafkaProducer* producer,
                              const broker::Record& in);

  /// Validation mode: when the embedded library holds a real model and
  /// the record carries a materialized payload, actually runs inference
  /// on it (true JSON parse -> tensor -> forward pass). The result is
  /// checked for shape sanity and counted; simulated timing is untouched
  /// — the real math validates that `load`/`apply` honor the contract
  /// end-to-end inside the pipeline.
  void MaybeRealApply(const broker::Record& record);

 public:
  uint64_t real_inferences() const { return real_inferences_; }

 protected:

  sim::Simulation* sim_;
  sim::Network* network_;
  broker::KafkaCluster* cluster_;
  EngineConfig config_;
  ScoringConfig scoring_;
  crayfish::Rng rng_;
  bool stopped_ = false;
  uint64_t events_scored_ = 0;
  uint64_t records_emitted_ = 0;
  uint64_t real_inferences_ = 0;
  uint64_t serving_retries_ = 0;

 private:
  /// One timed attempt of the external RPC; re-issues with backoff until
  /// the retry budget runs out, then completes `done` regardless.
  void InvokeExternalAttempt(int batch_size, double multiplier, int attempt,
                             std::shared_ptr<std::function<void()>> done);

  double stress_ = 0.0;
  double stress_updated_at_ = 0.0;
  double slow_factor_ = 1.0;
  double slow_resample_at_ = 0.0;
  double first_apply_at_ = -1.0;
};

/// Factory: "flink" | "kafka-streams" | "spark" | "ray".
crayfish::StatusOr<std::unique_ptr<StreamEngine>> CreateEngine(
    const std::string& engine_name, sim::Simulation* sim,
    sim::Network* network, broker::KafkaCluster* cluster,
    EngineConfig config, ScoringConfig scoring);

/// Canonical engine names in paper order.
std::vector<std::string> EngineNames();

}  // namespace crayfish::sps

#endif  // CRAYFISH_SPS_ENGINE_H_
