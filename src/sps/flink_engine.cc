#include "sps/flink_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace crayfish::sps {

FlinkEngine::FlinkEngine(sim::Simulation* sim, sim::Network* network,
                         broker::KafkaCluster* cluster, EngineConfig config,
                         ScoringConfig scoring)
    : StreamEngine(sim, network, cluster, std::move(config),
                   std::move(scoring)) {
  costs_.buffer_cycle_s = config_.overrides.GetDoubleOr(
      "flink.buffer_cycle_s", costs_.buffer_cycle_s);
  costs_.async_io =
      config_.overrides.GetBoolOr("flink.async_io", costs_.async_io);
  costs_.async_capacity = static_cast<int>(config_.overrides.GetIntOr(
      "flink.async_capacity", costs_.async_capacity));
  costs_.checkpoint_interval_s = config_.overrides.GetDoubleOr(
      "flink.checkpoint_interval_s", costs_.checkpoint_interval_s);
  costs_.checkpoint_stall_s = config_.overrides.GetDoubleOr(
      "flink.checkpoint_stall_s", costs_.checkpoint_stall_s);
  costs_.stage_queue_capacity = static_cast<size_t>(
      config_.overrides.GetIntOr("flink.stage_queue_capacity",
                                 static_cast<int64_t>(
                                     costs_.stage_queue_capacity)));
  chained_ =
      config_.source_parallelism == 0 && config_.sink_parallelism == 0;
}

FlinkEngine::~FlinkEngine() { Stop(); }

double FlinkEngine::SourceSeconds(const broker::Record& r) const {
  return costs_.source_fixed_s +
         costs_.source_per_byte_s * static_cast<double>(r.wire_size);
}

double FlinkEngine::BufferPenaltySeconds(const broker::Record& r) const {
  const uint64_t extra_buffers = r.wire_size / costs_.network_buffer_bytes;
  return static_cast<double>(extra_buffers) * costs_.buffer_cycle_s;
}

double FlinkEngine::SinkSeconds(const broker::Record& r) const {
  const uint64_t out_bytes = scoring_.model.OutputBatchWireBytes(
      static_cast<int>(r.batch_size));
  return costs_.sink_fixed_s +
         costs_.sink_per_byte_s * static_cast<double>(out_bytes);
}

crayfish::Status FlinkEngine::Start() {
  // Embedded serving loads the model into the scoring operators before
  // the job starts (§3.4.1); external servers load on their own host.
  double load_delay = 0.0;
  if (!scoring_.external) {
    load_delay = scoring_.library->LoadTimeSeconds(scoring_.model);
  }
  crayfish::Status setup =
      chained_ ? StartChained() : StartUnchained();
  CRAYFISH_RETURN_IF_ERROR(setup);
  // The job-start seed confines the whole task graph: every poll loop and
  // operator hand-off scheduled downstream inherits the SPS host.
  ScheduleOnHost(load_delay, [this]() {
    if (stopped_) return;
    if (chained_) {
      for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
        ChainedPollLoop(i);
      }
    } else {
      for (int i = 0; i < static_cast<int>(source_consumers_.size()); ++i) {
        SourcePollLoop(i);
      }
    }
  });
  return crayfish::Status::Ok();
}

crayfish::Status FlinkEngine::StartChained() {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions,
                            cluster_->NumPartitions(config_.input_topic));
  const int n = config_.parallelism;
  for (int i = 0; i < n; ++i) {
    SlotState slot;
    slot.consumer = std::make_unique<broker::KafkaConsumer>(
        cluster_, config_.host, "flink");
    CRAYFISH_RETURN_IF_ERROR(slot.consumer->Assign(
        config_.input_topic, broker::KafkaCluster::RangeAssign(partitions,
                                                               n, i)));
    slot.producer = std::make_unique<broker::KafkaProducer>(cluster_,
                                                            config_.host);
    slot.emitter = std::make_unique<sim::SerialExecutor>(
        sim_, "flink-slot-emitter-" + std::to_string(i));
    slots_.push_back(std::move(slot));
  }
  return crayfish::Status::Ok();
}

void FlinkEngine::ChainedPollLoop(int slot) {
  if (stopped_) return;
  slots_[static_cast<size_t>(slot)].consumer->Poll(
      costs_.poll_timeout_s,
      [this, slot](std::vector<broker::Record> records) {
        if (stopped_) return;
        if (records.empty()) {
          ChainedPollLoop(slot);
          return;
        }
        auto batch = std::make_shared<std::vector<broker::Record>>(
            std::move(records));
        ProcessChainedRecords(slot, std::move(batch), 0);
      });
}

void FlinkEngine::ProcessChainedRecords(
    int slot, std::shared_ptr<std::vector<broker::Record>> records,
    size_t index) {
  if (stopped_) return;
  if (index >= records->size()) {
    ChainedPollLoop(slot);
    return;
  }
  const broker::Record& r = (*records)[index];
  // The record leaves the consumer buffer here: queue-wait ends, operator
  // service begins.
  TraceMark(r.batch_id, obs::Stage::kQueueWait);
  double source_time = SourceSeconds(r) + costs_.scoring_wrapper_s;
  // Checkpoint barrier: periodically stall the task for alignment and
  // the state snapshot (exactly-once mode; off by default).
  if (costs_.checkpoint_interval_s > 0.0) {
    SlotState& cp_slot = slots_[static_cast<size_t>(slot)];
    if (sim_->Now() >= cp_slot.next_checkpoint_at) {
      source_time += costs_.checkpoint_stall_s;
      cp_slot.next_checkpoint_at =
          sim_->Now() + costs_.checkpoint_interval_s;
    }
  }
  auto finish = [this, slot, records, index]() {
    if (stopped_) return;
    const broker::Record& rec = (*records)[index];
    ++events_scored_;
    // The buffer-quota penalty is a *flush-wait* latency (records spanning
    // several network buffers sit in partially filled buffers), not CPU
    // occupancy: it delays the emit but does not block the task, so it
    // vanishes from throughput measurements and dominates large-record
    // closed-loop latency (§5.3.2).
    const double penalty = BufferPenaltySeconds(rec);
    sim_->Schedule(SinkSeconds(rec), [this, slot, records, index,
                                      penalty]() {
      if (stopped_) return;
      TraceMark((*records)[index].batch_id, obs::Stage::kSerialize);
      sim_->Schedule(penalty, [this, slot, records, index]() {
        if (stopped_) return;
        TraceMark((*records)[index].batch_id,
                  obs::Stage::kBufferFlushWait);
        CRAYFISH_CHECK_OK(EmitScored(
            slots_[static_cast<size_t>(slot)].producer.get(),
            (*records)[index]));
      });
      ProcessChainedRecords(slot, records, index + 1);
    });
  };
  const size_t depth =
      slots_[static_cast<size_t>(slot)].consumer->buffered();
  if (scoring_.external && costs_.async_io) {
    // AsyncWaitOperator semantics: issue the RPC and keep processing,
    // bounded by async_capacity in-flight requests (unordered emit).
    sim_->Schedule(
        source_time + scoring_.server->costs().client_overhead_s,
        [this, slot, records, index, depth]() {
          if (stopped_) return;
          SlotState& s = slots_[static_cast<size_t>(slot)];
          ++s.in_flight;
          InvokeExternalWithStress(
              (*records)[index], depth,
              [this, slot, records, index]() {
                if (stopped_) return;
                SlotState& s2 = slots_[static_cast<size_t>(slot)];
                --s2.in_flight;
                ++events_scored_;
                const broker::Record rec = (*records)[index];
                const double penalty = BufferPenaltySeconds(rec);
                s2.emitter->Post(
                    SinkSeconds(rec), [this, slot, rec, penalty]() {
                      TraceMark(rec.batch_id, obs::Stage::kSerialize);
                      sim_->Schedule(penalty, [this, slot, rec]() {
                        if (stopped_) return;
                        TraceMark(rec.batch_id,
                                  obs::Stage::kBufferFlushWait);
                        CRAYFISH_CHECK_OK(EmitScored(
                            slots_[static_cast<size_t>(slot)]
                                .producer.get(),
                            rec));
                      });
                    });
                if (s2.parked && s2.in_flight < costs_.async_capacity) {
                  s2.parked = false;
                  std::function<void()> resume = std::move(s2.resume);
                  s2.resume = nullptr;
                  if (resume) resume();
                }
              });
          if (s.in_flight < costs_.async_capacity) {
            ProcessChainedRecords(slot, records, index + 1);
          } else {
            s.parked = true;
            s.resume = [this, slot, records, index]() {
              ProcessChainedRecords(slot, records, index + 1);
            };
          }
        });
    return;
  }
  if (scoring_.external) {
    // Blocking call: the slot thread is occupied for the full round trip.
    sim_->Schedule(
        source_time + scoring_.server->costs().client_overhead_s,
        [this, records, index, depth, finish]() {
          if (stopped_) return;
          InvokeExternalWithStress((*records)[index], depth, finish);
        });
    return;
  }
  MaybeRealApply(r);
  const double apply =
      EmbeddedApplySeconds(static_cast<int>(r.batch_size), depth);
  sim_->Schedule(source_time + apply, [this, records, index, finish]() {
    if (stopped_) return;
    TraceMark((*records)[index].batch_id, obs::Stage::kScore);
    finish();
  });
}

crayfish::Status FlinkEngine::StartUnchained() {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions,
                            cluster_->NumPartitions(config_.input_topic));
  const int s = std::max(1, config_.source_parallelism);
  const int n = config_.parallelism;
  const int k = std::max(1, config_.sink_parallelism);

  for (int i = 0; i < k; ++i) {
    sink_producers_.push_back(
        std::make_unique<broker::KafkaProducer>(cluster_, config_.host));
    auto* producer = sink_producers_.back().get();
    sink_tasks_.push_back(std::make_unique<OperatorTask>(
        sim_, "flink-sink-" + std::to_string(i),
        [this, producer](broker::Record r, std::function<void()> done) {
          TraceMark(r.batch_id, obs::Stage::kQueueWait);
          const double penalty = BufferPenaltySeconds(r);
          ScheduleOnHost(SinkSeconds(r),
                         [this, producer, penalty, r = std::move(r),
                          done = std::move(done)]() {
                           TraceMark(r.batch_id, obs::Stage::kSerialize);
                           // Flush-wait latency without occupying the
                           // sink task (see the chained path).
                           ScheduleOnHost(penalty, [this, producer, r]() {
                             if (!stopped_) {
                               TraceMark(r.batch_id,
                                         obs::Stage::kBufferFlushWait);
                               CRAYFISH_CHECK_OK(EmitScored(producer, r));
                             }
                           });
                           done();
                         });
        },
        costs_.stage_queue_capacity));
  }

  for (int i = 0; i < n; ++i) {
    scoring_tasks_.push_back(std::make_unique<OperatorTask>(
        sim_, "flink-score-" + std::to_string(i),
        [this](broker::Record r, std::function<void()> done) {
          TraceMark(r.batch_id, obs::Stage::kQueueWait);
          auto forward = [this, r, done = std::move(done)]() mutable {
            if (stopped_) {
              done();
              return;
            }
            ++events_scored_;
            // Rebalance to a sink task; sinks are provisioned to match
            // the Kafka partitions, so they do not backpressure in
            // practice — but handle a full queue by waiting anyway.
            OperatorTask* sink =
                sink_tasks_[static_cast<size_t>(scoring_rr_) %
                            sink_tasks_.size()]
                    .get();
            scoring_rr_ = (scoring_rr_ + 1) %
                          static_cast<int>(sink_tasks_.size());
            if (!sink->Offer(r)) {
              // Rare: retry shortly rather than wiring a second credit
              // channel.
              ScheduleOnHost(0.001, [sink, r, done]() mutable {
                while (!sink->Offer(r)) {
                  // Queue still full: drop into lossless retry.
                  break;
                }
                done();
              });
              return;
            }
            done();
          };
          if (scoring_.external) {
            const size_t depth = scoring_tasks_.empty()
                                     ? 0
                                     : scoring_tasks_.front()->queue_depth();
            ScheduleOnHost(
                costs_.scoring_wrapper_s +
                    scoring_.server->costs().client_overhead_s,
                [this, r, depth, forward = std::move(forward)]() mutable {
                  if (stopped_) {
                    forward();
                    return;
                  }
                  InvokeExternalWithStress(r, depth, std::move(forward));
                });
            return;
          }
          const double apply = EmbeddedApplySeconds(
              static_cast<int>(r.batch_size),
              scoring_tasks_.empty()
                  ? 0
                  : scoring_tasks_.front()->queue_depth());
          const uint64_t batch_id = r.batch_id;
          ScheduleOnHost(costs_.scoring_wrapper_s + apply,
                         [this, batch_id,
                          forward = std::move(forward)]() mutable {
                           TraceMark(batch_id, obs::Stage::kScore);
                           forward();
                         });
        },
        costs_.stage_queue_capacity));
    const int idx = i;
    scoring_tasks_.back()->SetSpaceAvailableCallback([this, idx]() {
      auto it = scoring_waiters_.find(idx);
      if (it == scoring_waiters_.end()) return;
      std::vector<std::function<void()>> waiters = std::move(it->second);
      scoring_waiters_.erase(it);
      for (auto& w : waiters) w();
    });
  }

  for (int i = 0; i < s; ++i) {
    auto consumer = std::make_unique<broker::KafkaConsumer>(
        cluster_, config_.host, "flink");
    CRAYFISH_RETURN_IF_ERROR(consumer->Assign(
        config_.input_topic,
        broker::KafkaCluster::RangeAssign(partitions, s, i)));
    source_consumers_.push_back(std::move(consumer));
  }
  return crayfish::Status::Ok();
}

void FlinkEngine::SourcePollLoop(int source_idx) {
  if (stopped_) return;
  source_consumers_[static_cast<size_t>(source_idx)]->Poll(
      costs_.poll_timeout_s,
      [this, source_idx](std::vector<broker::Record> records) {
        if (stopped_) return;
        if (records.empty()) {
          SourcePollLoop(source_idx);
          return;
        }
        auto batch = std::make_shared<std::vector<broker::Record>>(
            std::move(records));
        ForwardToScoring(source_idx, std::move(batch), 0);
      });
}

void FlinkEngine::ForwardToScoring(
    int source_idx, std::shared_ptr<std::vector<broker::Record>> records,
    size_t index) {
  if (stopped_) return;
  if (index >= records->size()) {
    SourcePollLoop(source_idx);
    return;
  }
  const broker::Record& r = (*records)[index];
  // Source task picks the record out of the consumer buffer.
  TraceMark(r.batch_id, obs::Stage::kQueueWait);
  const double source_time = SourceSeconds(r);
  sim_->Schedule(source_time, [this, source_idx, records, index]() {
    OfferToScoring(source_idx, records, index);
  });
}

void FlinkEngine::OfferToScoring(
    int source_idx, std::shared_ptr<std::vector<broker::Record>> records,
    size_t index) {
  if (stopped_) return;
  broker::Record& rec = (*records)[index];
  const int n = static_cast<int>(scoring_tasks_.size());
  // Rebalance: round-robin, skipping backpressured tasks so one full
  // queue never starves the others.
  for (int k = 0; k < n; ++k) {
    const int t = (source_rr_ + k) % n;
    if (scoring_tasks_[static_cast<size_t>(t)]->Offer(rec)) {
      source_rr_ = (t + 1) % n;
      ForwardToScoring(source_idx, records, index + 1);
      return;
    }
  }
  // All scoring queues full: park this source until the next-in-line task
  // frees space (credit-based backpressure up to the Kafka source).
  const int target = source_rr_ % n;
  scoring_waiters_[target].push_back([this, source_idx, records, index]() {
    OfferToScoring(source_idx, records, index);
  });
}

int FlinkEngine::InjectTaskFailure(int task_index, double restart_delay_s) {
  if (stopped_) return 0;
  if (chained_) {
    if (slots_.empty()) return 0;
    SlotState& slot =
        slots_[static_cast<size_t>(task_index) % slots_.size()];
    if (!slot.consumer) return 0;
    slot.consumer->FailAndRestart(restart_delay_s);
    return 1;
  }
  if (source_consumers_.empty()) return 0;
  source_consumers_[static_cast<size_t>(task_index) %
                    source_consumers_.size()]
      ->FailAndRestart(restart_delay_s);
  return 1;
}

EngineTelemetry FlinkEngine::Telemetry() const {
  EngineTelemetry t;
  const auto fold_consumer = [&t](const broker::KafkaConsumer& c) {
    t.consumer_lag += c.TotalLag();
    t.max_partition_lag = std::max(t.max_partition_lag, c.MaxPartitionLag());
    t.queue_depth += static_cast<int64_t>(c.buffered());
  };
  for (const SlotState& slot : slots_) {
    if (slot.consumer) fold_consumer(*slot.consumer);
  }
  for (const auto& c : source_consumers_) fold_consumer(*c);
  for (const auto& task : scoring_tasks_) {
    t.queue_depth += static_cast<int64_t>(task->queue_depth());
    t.backpressure_stall_s += task->stall_time_s();
  }
  for (const auto& task : sink_tasks_) {
    t.queue_depth += static_cast<int64_t>(task->queue_depth());
    t.backpressure_stall_s += task->stall_time_s();
  }
  return t;
}

void FlinkEngine::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& slot : slots_) {
    if (slot.consumer) slot.consumer->Close();
  }
  for (auto& c : source_consumers_) c->Close();
  for (auto& t : scoring_tasks_) t->Stop();
  for (auto& t : sink_tasks_) t->Stop();
}

}  // namespace crayfish::sps
