#ifndef CRAYFISH_SPS_FLINK_ENGINE_H_
#define CRAYFISH_SPS_FLINK_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "sps/engine.h"
#include "sim/resource.h"
#include "sps/operator_task.h"

namespace crayfish::sps {

/// Calibrated per-event costs of the Flink adapter. Source+sink together
/// cost ~0.54 ms/event and the scoring wrapper ~0.04 ms, consistent with
/// Table 4 vs Fig. 12 (see serving/calibration.cc for the derivation).
struct FlinkCosts {
  double source_fixed_s = 250e-6;
  double source_per_byte_s = 30e-9;
  double scoring_wrapper_s = 40e-6;
  double sink_fixed_s = 200e-6;
  double sink_per_byte_s = 15e-9;
  /// Flink network-buffer quota: records spanning multiple 32 KB buffers
  /// pay a flush/copy cycle per extra buffer — the paper's explanation
  /// for Flink's large-record latency (§5.3.2).
  uint64_t network_buffer_bytes = 32 * 1024;
  double buffer_cycle_s = 3e-3;
  /// Bounded handoff queue between unchained stages (records).
  size_t stage_queue_capacity = 64;
  /// Consumer poll timeout of the source loop.
  double poll_timeout_s = 0.1;
  /// Asynchronous I/O for external serving (Flink's AsyncWaitOperator).
  /// The paper deliberately runs all external calls as *blocking* for
  /// engine parity (§4.3); enabling this ("flink.async_io = true") shows
  /// what that choice costs: the slot keeps processing while up to
  /// `async_capacity` RPCs are in flight (unordered mode).
  bool async_io = false;
  int async_capacity = 100;
  /// Exactly-once checkpointing ("flink.checkpoint_interval_s"): every
  /// interval each task stalls for the barrier alignment + state
  /// snapshot. Off (0) in the paper's runs — §7.2 notes the guarantees /
  /// performance trade-off without measuring it; this knob makes it
  /// measurable.
  double checkpoint_interval_s = 0.0;
  double checkpoint_stall_s = 50e-3;
};

/// Apache Flink adapter: a push-based, pipelined dataflow engine.
///
/// Default mode replicates the fully *chained* pipeline the paper uses for
/// flink[N-N-N]: `parallelism` task slots, each running
/// source->score->sink serially over its share of the input partitions.
/// Setting source/sink parallelism in EngineConfig breaks the chain into
/// independent stages with bounded (credit-based) handoff queues —
/// flink[32-N-32] in Fig. 12.
class FlinkEngine : public StreamEngine {
 public:
  FlinkEngine(sim::Simulation* sim, sim::Network* network,
              broker::KafkaCluster* cluster, EngineConfig config,
              ScoringConfig scoring);
  ~FlinkEngine() override;

  const char* name() const override { return "flink"; }
  crayfish::Status Start() override;
  void Stop() override;

  /// Crash-restarts one task slot's consumer session (chained mode) or one
  /// source task (unchained mode); the restarted task resumes from the
  /// group's committed offsets.
  int InjectTaskFailure(int task_index, double restart_delay_s) override;

  /// Aggregates lag over slot consumers (chained) or source consumers
  /// (unchained), and queue depth / stall time over the stage tasks.
  EngineTelemetry Telemetry() const override;

  const FlinkCosts& costs() const { return costs_; }

 private:
  struct SlotState {
    std::unique_ptr<broker::KafkaConsumer> consumer;
    std::unique_ptr<broker::KafkaProducer> producer;
    // Async-I/O mode state: in-flight external requests and whether the
    // slot is parked waiting for capacity.
    int in_flight = 0;
    bool parked = false;
    std::function<void()> resume;
    /// Next checkpoint-barrier time (checkpointing mode).
    double next_checkpoint_at = 0.0;
    /// Serializes sink work for async completions (the slot's mailbox).
    std::unique_ptr<sim::SerialExecutor> emitter;
  };

  crayfish::Status StartChained();
  crayfish::Status StartUnchained();
  void ChainedPollLoop(int slot);
  void ProcessChainedRecords(
      int slot, std::shared_ptr<std::vector<broker::Record>> records,
      size_t index);
  void SourcePollLoop(int source_idx);
  void ForwardToScoring(int source_idx,
                        std::shared_ptr<std::vector<broker::Record>> records,
                        size_t index);
  /// Source-side handoff after the source charge: rebalance across
  /// scoring tasks with backpressure.
  void OfferToScoring(int source_idx,
                      std::shared_ptr<std::vector<broker::Record>> records,
                      size_t index);

  double SourceSeconds(const broker::Record& r) const;
  double BufferPenaltySeconds(const broker::Record& r) const;
  double SinkSeconds(const broker::Record& r) const;

  FlinkCosts costs_;
  bool chained_ = true;
  // Chained mode: one slot = consumer + producer + serial loop.
  std::vector<SlotState> slots_;
  // Unchained mode.
  std::vector<std::unique_ptr<broker::KafkaConsumer>> source_consumers_;
  std::vector<std::unique_ptr<OperatorTask>> scoring_tasks_;
  std::vector<std::unique_ptr<OperatorTask>> sink_tasks_;
  std::vector<std::unique_ptr<broker::KafkaProducer>> sink_producers_;
  /// Ordered (lint R3): async-I/O wakeups fire in key order; an unordered
  /// container here would reorder scoring completions between runs.
  std::map<int, std::vector<std::function<void()>>> scoring_waiters_;
  int source_rr_ = 0;
  int scoring_rr_ = 0;
};

}  // namespace crayfish::sps

#endif  // CRAYFISH_SPS_FLINK_ENGINE_H_
