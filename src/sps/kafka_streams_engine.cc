#include "sps/kafka_streams_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace crayfish::sps {

KafkaStreamsEngine::KafkaStreamsEngine(sim::Simulation* sim,
                                       sim::Network* network,
                                       broker::KafkaCluster* cluster,
                                       EngineConfig config,
                                       ScoringConfig scoring)
    : StreamEngine(sim, network, cluster, std::move(config),
                   std::move(scoring)) {
  costs_.record_fixed_s = config_.overrides.GetDoubleOr(
      "kafka_streams.record_fixed_s", costs_.record_fixed_s);
  costs_.idle_pickup_s = config_.overrides.GetDoubleOr(
      "kafka_streams.idle_pickup_s", costs_.idle_pickup_s);
}

KafkaStreamsEngine::~KafkaStreamsEngine() { Stop(); }

crayfish::Status KafkaStreamsEngine::Start() {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions,
                            cluster_->NumPartitions(config_.input_topic));
  const int n = config_.parallelism;
  for (int i = 0; i < n; ++i) {
    StreamThread thread;
    thread.consumer = std::make_unique<broker::KafkaConsumer>(
        cluster_, config_.host, "kafka-streams");
    CRAYFISH_RETURN_IF_ERROR(thread.consumer->Assign(
        config_.input_topic,
        broker::KafkaCluster::RangeAssign(partitions, n, i)));
    thread.producer =
        std::make_unique<broker::KafkaProducer>(cluster_, config_.host);
    threads_.push_back(std::move(thread));
  }
  // The transform operator loads the model at initialization time
  // (§3.4.1) before the threads start pulling.
  double load_delay = 0.0;
  if (!scoring_.external) {
    load_delay = scoring_.library->LoadTimeSeconds(scoring_.model);
  }
  // The job-start seed confines every stream thread's poll loop (and all
  // work scheduled downstream) to the SPS host.
  ScheduleOnHost(load_delay, [this]() {
    if (stopped_) return;
    for (int i = 0; i < static_cast<int>(threads_.size()); ++i) {
      PollLoop(i);
    }
  });
  return crayfish::Status::Ok();
}

void KafkaStreamsEngine::PollLoop(int thread) {
  if (stopped_) return;
  StreamThread& t = threads_[static_cast<size_t>(thread)];
  // Periodic offset commit (commit.interval.ms).
  if (sim_->Now() - t.last_commit >= costs_.commit_interval_s) {
    t.last_commit = sim_->Now();
    t.consumer->CommitPositions();
    sim_->Schedule(costs_.commit_s, [this, thread]() { PollLoop(thread); });
    return;
  }
  t.consumer->Poll(costs_.poll_timeout_s,
                   [this, thread](std::vector<broker::Record> records) {
                     if (stopped_) return;
                     StreamThread& th =
                         threads_[static_cast<size_t>(thread)];
                     if (records.empty()) {
                       th.was_idle = true;
                       PollLoop(thread);
                       return;
                     }
                     auto batch =
                         std::make_shared<std::vector<broker::Record>>(
                             std::move(records));
                     if (th.was_idle) {
                       // Idle->active wake-up path (see KafkaStreamsCosts).
                       th.was_idle = false;
                       sim_->Schedule(costs_.idle_pickup_s,
                                      [this, thread, batch]() {
                                        ProcessRecords(thread, batch, 0);
                                      });
                       return;
                     }
                     ProcessRecords(thread, std::move(batch), 0);
                   });
}

void KafkaStreamsEngine::ProcessRecords(
    int thread, std::shared_ptr<std::vector<broker::Record>> records,
    size_t index) {
  if (stopped_) return;
  if (index >= records->size()) {
    // Depth-first processing finished: pull the next batch.
    PollLoop(thread);
    return;
  }
  const broker::Record& r = (*records)[index];
  // The stream thread takes the record out of the poll buffer.
  TraceMark(r.batch_id, obs::Stage::kQueueWait);
  const double ingest = costs_.record_fixed_s +
                        costs_.record_per_byte_s *
                            static_cast<double>(r.wire_size) +
                        costs_.transform_wrapper_s;
  auto emit = [this, thread, records, index]() {
    if (stopped_) return;
    ++events_scored_;
    const broker::Record& rec = (*records)[index];
    const double produce =
        costs_.produce_fixed_s +
        costs_.produce_per_byte_s *
            static_cast<double>(scoring_.model.OutputBatchWireBytes(
                static_cast<int>(rec.batch_size)));
    sim_->Schedule(produce, [this, thread, records, index]() {
      if (stopped_) return;
      TraceMark((*records)[index].batch_id, obs::Stage::kSerialize);
      CRAYFISH_CHECK_OK(EmitScored(
          threads_[static_cast<size_t>(thread)].producer.get(),
          (*records)[index]));
      ProcessRecords(thread, records, index + 1);
    });
  };
  const size_t depth =
      threads_[static_cast<size_t>(thread)].consumer->buffered();
  if (scoring_.external) {
    sim_->Schedule(ingest + scoring_.server->costs().client_overhead_s,
                   [this, records, index, depth, emit]() {
                     if (stopped_) return;
                     InvokeExternalWithStress((*records)[index], depth,
                                              emit);
                   });
    return;
  }
  MaybeRealApply(r);
  const double apply =
      EmbeddedApplySeconds(static_cast<int>(r.batch_size), depth);
  sim_->Schedule(ingest + apply, [this, records, index, emit]() {
    if (stopped_) return;
    TraceMark((*records)[index].batch_id, obs::Stage::kScore);
    emit();
  });
}

EngineTelemetry KafkaStreamsEngine::Telemetry() const {
  EngineTelemetry t;
  for (const StreamThread& thread : threads_) {
    if (!thread.consumer) continue;
    t.consumer_lag += thread.consumer->TotalLag();
    t.max_partition_lag =
        std::max(t.max_partition_lag, thread.consumer->MaxPartitionLag());
    t.queue_depth += static_cast<int64_t>(thread.consumer->buffered());
  }
  return t;
}

void KafkaStreamsEngine::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& t : threads_) {
    if (t.consumer) t.consumer->Close();
  }
}

}  // namespace crayfish::sps
