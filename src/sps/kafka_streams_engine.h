#ifndef CRAYFISH_SPS_KAFKA_STREAMS_ENGINE_H_
#define CRAYFISH_SPS_KAFKA_STREAMS_ENGINE_H_

#include <memory>
#include <vector>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "sps/engine.h"

namespace crayfish::sps {

/// Calibrated per-event costs of the Kafka Streams adapter. Its tight
/// integration with the message broker makes the framework overhead lower
/// than Flink's (~0.33 ms vs ~0.58 ms per event; Table 5: 2054 ev/s with
/// ONNX vs Flink's 1373).
struct KafkaStreamsCosts {
  double record_fixed_s = 150e-6;
  double record_per_byte_s = 30e-9;
  double transform_wrapper_s = 40e-6;
  double produce_fixed_s = 60e-6;
  double produce_per_byte_s = 8e-9;
  /// Offset-commit cost charged once per commit interval.
  double commit_s = 2e-3;
  double commit_interval_s = 30.0;
  double poll_timeout_s = 0.1;
  /// Wake-up cost when a stream thread resumes after idling (task
  /// re-initialization, rebalance checks, buffer replenishment). Charged
  /// once per idle->active transition, so it dominates closed-loop
  /// latency (Fig. 10: KS above Flink at small batches) and vanishes at
  /// sustained rates (§5.3.1: 16.25 ms/event at ir=512).
  double idle_pickup_s = 80e-3;
};

/// Kafka Streams adapter: a pull-based library where every record travels
/// depth-first through the whole DAG before the thread requests the next
/// one (Fig. 4). Vertical scaling = one stream thread per input
/// partition share.
class KafkaStreamsEngine : public StreamEngine {
 public:
  KafkaStreamsEngine(sim::Simulation* sim, sim::Network* network,
                     broker::KafkaCluster* cluster, EngineConfig config,
                     ScoringConfig scoring);
  ~KafkaStreamsEngine() override;

  const char* name() const override { return "kafka-streams"; }
  crayfish::Status Start() override;
  void Stop() override;

  /// Aggregates lag and prefetch-buffer depth over the stream threads'
  /// consumers (pull model: no operator queues, no backpressure stalls).
  EngineTelemetry Telemetry() const override;

  const KafkaStreamsCosts& costs() const { return costs_; }

 protected:
  /// §5.3.3 credits KS's pull model with distributing work across threads
  /// more efficiently than Flink's push model: fetching from partitions
  /// on demand halves the effective core contention (Fig. 11: KS peaks
  /// ~23k ev/s at mp=16 where Flink stops at 13k).
  double EffectiveContentionParallelism() const override {
    return 1.0 + 0.5 * (static_cast<double>(config_.parallelism) - 1.0);
  }

 private:
  struct StreamThread {
    std::unique_ptr<broker::KafkaConsumer> consumer;
    std::unique_ptr<broker::KafkaProducer> producer;
    double last_commit = 0.0;
    bool was_idle = true;
  };

  void PollLoop(int thread);
  void ProcessRecords(int thread,
                      std::shared_ptr<std::vector<broker::Record>> records,
                      size_t index);

  KafkaStreamsCosts costs_;
  std::vector<StreamThread> threads_;
};

}  // namespace crayfish::sps

#endif  // CRAYFISH_SPS_KAFKA_STREAMS_ENGINE_H_
