#include "sps/operator_task.h"

#include "common/logging.h"
#include "obs/registry.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back
#include "obs/timeline.h"  // lint: layering-ok instrumentation hook; obs reads state, never feeds it back

namespace crayfish::sps {

OperatorTask::OperatorTask(sim::Simulation* sim, std::string name,
                           ProcessFn process, size_t max_queue)
    : sim_(sim), name_(std::move(name)), process_(std::move(process)),
      max_queue_(max_queue) {
  CRAYFISH_CHECK_GT(max_queue, 0u);
}

bool OperatorTask::Offer(broker::Record record) {
  if (stopped_) return true;  // swallow records after stop
  if (queue_.size() >= max_queue_) {
    if (!was_full_) {
      stall_started_at_ = sim_->Now();
      if (obs::TimelineSampler* tl = sim_->timeline()) {
        tl->Count("backpressure_events", stall_started_at_);
      }
    }
    was_full_ = true;
    return false;
  }
  if (obs::MetricsRegistry* reg = sim_->metrics()) {
    if (!depth_hist_) {
      depth_hist_ =
          reg->Histogram("operator_queue_depth", {{"operator", name_}});
    }
    depth_hist_->Observe(static_cast<double>(queue_.size()));
  }
  queue_.push_back(std::move(record));
  if (!busy_) StartNext();
  return true;
}

bool OperatorTask::HasCapacity() const {
  return stopped_ || queue_.size() < max_queue_;
}

void OperatorTask::StartNext() {
  if (stopped_ || queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  broker::Record record = std::move(queue_.front());
  queue_.pop_front();
  if (was_full_ && queue_.size() < max_queue_) {
    was_full_ = false;
    const double stalled = sim_->Now() - stall_started_at_;
    stall_time_s_ += stalled;
    if (obs::TimelineSampler* tl = sim_->timeline()) {
      tl->Count("backpressure_stall_s", sim_->Now(), stalled);
    }
    if (space_available_) {
      // Defer to the next instant so the upstream resumes outside our
      // call stack.
      sim_->Schedule(0.0, space_available_);
    }
  }
  process_(std::move(record), [this]() {
    ++processed_;
    StartNext();
  });
}

void OperatorTask::Stop() {
  stopped_ = true;
  queue_.clear();
}

}  // namespace crayfish::sps
