#ifndef CRAYFISH_SPS_OPERATOR_TASK_H_
#define CRAYFISH_SPS_OPERATOR_TASK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "broker/record.h"
#include "sim/simulation.h"

namespace crayfish::obs {
class HistogramMetric;
}  // namespace crayfish::obs

namespace crayfish::sps {

/// One operator task: a logical thread with a bounded input queue that
/// processes records strictly one at a time.
///
/// The processing function receives a `done` continuation; the task stays
/// busy until `done` runs — which is how blocking external RPCs occupy the
/// scoring thread for their full round trip. Bounded queues propagate
/// backpressure: `Offer` fails when full, and the producer side registers
/// a space-available callback to resume (credit-based flow control in the
/// Flink pipeline).
class OperatorTask {
 public:
  using ProcessFn =
      std::function<void(broker::Record record, std::function<void()> done)>;

  OperatorTask(sim::Simulation* sim, std::string name, ProcessFn process,
               size_t max_queue);

  OperatorTask(const OperatorTask&) = delete;
  OperatorTask& operator=(const OperatorTask&) = delete;

  /// Enqueues the record; returns false when the queue is full.
  bool Offer(broker::Record record);

  /// True when another Offer would succeed.
  bool HasCapacity() const;

  size_t queue_depth() const { return queue_.size(); }
  uint64_t processed() const { return processed_; }
  bool busy() const { return busy_; }
  const std::string& name() const { return name_; }
  /// Cumulative simulated seconds this task's queue spent full (from the
  /// first rejected Offer until space freed up) — the backpressure stall
  /// signal sampled by the telemetry timeline.
  double stall_time_s() const { return stall_time_s_; }

  /// Invoked (once per transition to non-full) after space frees up.
  void SetSpaceAvailableCallback(std::function<void()> cb) {
    space_available_ = std::move(cb);
  }

  /// Drops queued records and stops accepting work.
  void Stop();

 private:
  void StartNext();

  sim::Simulation* sim_;
  std::string name_;
  ProcessFn process_;
  size_t max_queue_;
  std::deque<broker::Record> queue_;
  bool busy_ = false;
  bool stopped_ = false;
  bool was_full_ = false;
  uint64_t processed_ = 0;
  /// Start of the current full-queue episode (valid while was_full_).
  double stall_started_at_ = 0.0;
  double stall_time_s_ = 0.0;
  std::function<void()> space_available_;
  /// Lazily resolved queue-depth histogram labeled by operator name.
  obs::HistogramMetric* depth_hist_ = nullptr;
};

}  // namespace crayfish::sps

#endif  // CRAYFISH_SPS_OPERATOR_TASK_H_
