#include "sps/ray_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace crayfish::sps {

RayEngine::RayEngine(sim::Simulation* sim, sim::Network* network,
                     broker::KafkaCluster* cluster, EngineConfig config,
                     ScoringConfig scoring)
    : StreamEngine(sim, network, cluster, std::move(config),
                   std::move(scoring)) {
  costs_.py_record_s = config_.overrides.GetDoubleOr("ray.py_record_s",
                                                     costs_.py_record_s);
}

RayEngine::~RayEngine() { Stop(); }

double RayEngine::PyInferSeconds(int batch_size) const {
  double per_sample;
  if (scoring_.model.name == "ffnn") {
    per_sample = costs_.py_infer_ffnn_s;
  } else {
    per_sample = static_cast<double>(scoring_.model.flops_per_sample) /
                 costs_.py_infer_flops_per_s;
  }
  // Vectorized batch execution: first sample full price, the rest at the
  // amortized batch factor.
  return per_sample *
         (1.0 + costs_.py_infer_batch_factor *
                    static_cast<double>(batch_size - 1));
}

crayfish::Status RayEngine::Start() {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions,
                            cluster_->NumPartitions(config_.input_topic));
  const int n = config_.parallelism;
  const double inflation =
      1.0 + costs_.contention_alpha * static_cast<double>(n - 1);
  for (int i = 0; i < n; ++i) {
    auto chain = std::make_unique<ActorChain>();
    chain->consumer = std::make_unique<broker::KafkaConsumer>(
        cluster_, config_.host, "ray");
    CRAYFISH_RETURN_IF_ERROR(chain->consumer->Assign(
        config_.input_topic,
        broker::KafkaCluster::RangeAssign(partitions, n, i)));
    chain->producer =
        std::make_unique<broker::KafkaProducer>(cluster_, config_.host);

    ActorChain* c = chain.get();
    chain->output_actor = std::make_unique<OperatorTask>(
        sim_, "ray-output-" + std::to_string(i),
        [this, c, inflation](broker::Record r, std::function<void()> done) {
          TraceMark(r.batch_id, obs::Stage::kQueueWait);
          const double t =
              (costs_.actor_msg_s + costs_.output_record_s) * inflation;
          ScheduleOnHost(t, [this, c, r = std::move(r),
                             done = std::move(done)]() {
            if (!stopped_) {
              TraceMark(r.batch_id, obs::Stage::kSerialize);
              CRAYFISH_CHECK_OK(EmitScored(c->producer.get(), r));
            }
            done();
          });
        },
        costs_.actor_queue_capacity);

    chain->scoring_actor = std::make_unique<OperatorTask>(
        sim_, "ray-score-" + std::to_string(i),
        [this, c, inflation](broker::Record r, std::function<void()> done) {
          TraceMark(r.batch_id, obs::Stage::kQueueWait);
          auto deliver = [this, c, r,
                          done = std::move(done)]() mutable {
            if (stopped_) {
              done();
              return;
            }
            ++events_scored_;
            // 1:1 forwarding to the paired output actor; its queue is
            // effectively unbounded relative to scoring throughput.
            c->output_actor->Offer(r);
            done();
          };
          const double base =
              (costs_.actor_msg_s + costs_.py_record_s +
               costs_.py_per_sample_s *
                   static_cast<double>(r.batch_size > 0 ? r.batch_size - 1
                                                        : 0)) *
              inflation;
          if (scoring_.external) {
            const size_t depth = c->scoring_actor
                                     ? c->scoring_actor->queue_depth()
                                     : 0;
            ScheduleOnHost(base + costs_.http_client_s,
                           [this, r, depth,
                            deliver = std::move(deliver)]() mutable {
                             if (stopped_) {
                               deliver();
                               return;
                             }
                             InvokeExternalWithStress(
                                 r, depth, std::move(deliver));
                           });
            return;
          }
          MaybeRealApply(r);
          const uint64_t batch_id = r.batch_id;
          ScheduleOnHost(base + PyInferSeconds(static_cast<int>(
                                    r.batch_size)) *
                                    inflation,
                         [this, batch_id,
                          deliver = std::move(deliver)]() mutable {
                           TraceMark(batch_id, obs::Stage::kScore);
                           deliver();
                         });
        },
        costs_.actor_queue_capacity);

    chains_.push_back(std::move(chain));
  }
  // Python-native model load in each scoring actor (no interop library).
  const double load_delay =
      scoring_.external
          ? 0.0
          : 0.5 + static_cast<double>(scoring_.model.weight_bytes) /
                      (300.0 * 1024 * 1024);
  // The job-start seed confines every actor chain's poll loop (and all
  // work scheduled downstream) to the SPS host.
  ScheduleOnHost(load_delay, [this]() {
    if (stopped_) return;
    for (int i = 0; i < static_cast<int>(chains_.size()); ++i) {
      InputPollLoop(i);
    }
  });
  return crayfish::Status::Ok();
}

void RayEngine::InputPollLoop(int chain) {
  if (stopped_) return;
  ActorChain* c = chains_[static_cast<size_t>(chain)].get();
  c->consumer->Poll(costs_.poll_timeout_s,
                    [this, chain](std::vector<broker::Record> records) {
                      if (stopped_) return;
                      if (records.empty()) {
                        InputPollLoop(chain);
                        return;
                      }
                      auto batch =
                          std::make_shared<std::vector<broker::Record>>(
                              std::move(records));
                      ForwardRecords(chain, std::move(batch), 0);
                    });
}

void RayEngine::ForwardRecords(
    int chain, std::shared_ptr<std::vector<broker::Record>> records,
    size_t index) {
  if (stopped_) return;
  if (index >= records->size()) {
    InputPollLoop(chain);
    return;
  }
  const broker::Record& r = (*records)[index];
  // The input actor takes the record out of the poll buffer.
  TraceMark(r.batch_id, obs::Stage::kQueueWait);
  const double input_time =
      costs_.input_record_s +
      costs_.record_per_byte_s * static_cast<double>(r.wire_size) +
      costs_.actor_msg_s;
  sim_->Schedule(input_time, [this, chain, records, index]() {
    if (stopped_) return;
    ActorChain* ch = chains_[static_cast<size_t>(chain)].get();
    if (ch->scoring_actor->Offer((*records)[index])) {
      ForwardRecords(chain, records, index + 1);
      return;
    }
    // Backpressure: park; resume when the scoring actor frees space.
    ch->input_parked = true;
    ch->scoring_actor->SetSpaceAvailableCallback(
        [this, chain, records, index]() {
          ActorChain* ch2 = chains_[static_cast<size_t>(chain)].get();
          ch2->input_parked = false;
          ForwardRecords(chain, records, index);
        });
  });
}

EngineTelemetry RayEngine::Telemetry() const {
  EngineTelemetry t;
  for (const auto& chain : chains_) {
    if (chain->consumer) {
      t.consumer_lag += chain->consumer->TotalLag();
      t.max_partition_lag =
          std::max(t.max_partition_lag, chain->consumer->MaxPartitionLag());
      t.queue_depth += static_cast<int64_t>(chain->consumer->buffered());
    }
    for (const OperatorTask* actor :
         {chain->scoring_actor.get(), chain->output_actor.get()}) {
      if (actor == nullptr) continue;
      t.queue_depth += static_cast<int64_t>(actor->queue_depth());
      t.backpressure_stall_s += actor->stall_time_s();
    }
  }
  return t;
}

void RayEngine::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& c : chains_) {
    if (c->consumer) c->consumer->Close();
    if (c->scoring_actor) c->scoring_actor->Stop();
    if (c->output_actor) c->output_actor->Stop();
  }
}

}  // namespace crayfish::sps
