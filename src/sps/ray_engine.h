#ifndef CRAYFISH_SPS_RAY_ENGINE_H_
#define CRAYFISH_SPS_RAY_ENGINE_H_

#include <memory>
#include <vector>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "sps/engine.h"
#include "sps/operator_task.h"

namespace crayfish::sps {

/// Calibrated costs of the Ray adapter: Python actors with object-store
/// hops between them. Per-record Python handling dominates (Table 5: Ray
/// sustains only ~157 ev/s embedded / ~122 ev/s external at mp=1), but
/// transport costs per batch are low, so large-batch latency stays
/// competitive (Fig. 10: 169.7 ms at bsz=128 vs Flink's 167.4).
struct RayCosts {
  /// Actor mailbox hop: object-store put/get + Python dispatch.
  double actor_msg_s = 1.2e-3;
  /// Per-record Python handling in the scoring actor.
  double py_record_s = 4.0e-3;
  /// Additional Python per-sample handling for samples beyond the first
  /// (list slicing / array views — cheap relative to the per-record path).
  double py_per_sample_s = 0.15e-3;
  /// Python-side per-byte deserialization in the input actor.
  double record_per_byte_s = 40e-9;
  double input_record_s = 1.0e-3;
  double output_record_s = 0.8e-3;
  /// Native in-process (Python) inference per-sample times — Ray needs no
  /// interoperability library (§3.4.4). Table 5: 157.4 ev/s solves the
  /// scoring-actor occupancy to ~6.35 ms/event.
  double py_infer_ffnn_s = 1.15e-3;
  double py_infer_flops_per_s = 0.8e9;
  /// Batched Python inference vectorizes: samples beyond the first cost
  /// this fraction of the single-sample time (numpy amortization).
  double py_infer_batch_factor = 0.1;
  /// HTTP client call overhead to Ray Serve.
  double http_client_s = 0.05e-3;
  double poll_timeout_s = 0.1;
  size_t actor_queue_capacity = 64;
  /// Service inflation per extra actor chain (GIL/object-store pressure);
  /// Fig. 11: embedded Ray peaks ~1.2k ev/s.
  double contention_alpha = 0.07;
};

/// Ray adapter: `mp` chains of input -> scoring -> output actors with
/// one-to-one forwarding (§4.3). Embedded serving applies the model
/// natively in the scoring actor; external serving calls Ray Serve over
/// HTTP (through its single per-node proxy, modeled in the server).
class RayEngine : public StreamEngine {
 public:
  RayEngine(sim::Simulation* sim, sim::Network* network,
            broker::KafkaCluster* cluster, EngineConfig config,
            ScoringConfig scoring);
  ~RayEngine() override;

  const char* name() const override { return "ray"; }
  crayfish::Status Start() override;
  void Stop() override;

  /// Aggregates lag over chain consumers plus actor mailbox depths and
  /// stall time (actor queues are the Ray backpressure boundary).
  EngineTelemetry Telemetry() const override;

  const RayCosts& costs() const { return costs_; }

 private:
  struct ActorChain {
    std::unique_ptr<broker::KafkaConsumer> consumer;
    std::unique_ptr<OperatorTask> scoring_actor;
    std::unique_ptr<OperatorTask> output_actor;
    std::unique_ptr<broker::KafkaProducer> producer;
    bool input_parked = false;
  };

  void InputPollLoop(int chain);
  void ForwardRecords(int chain,
                      std::shared_ptr<std::vector<broker::Record>> records,
                      size_t index);
  double PyInferSeconds(int batch_size) const;

  RayCosts costs_;
  std::vector<std::unique_ptr<ActorChain>> chains_;
};

}  // namespace crayfish::sps

#endif  // CRAYFISH_SPS_RAY_ENGINE_H_
