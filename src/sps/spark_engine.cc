#include "sps/spark_engine.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace crayfish::sps {

SparkEngine::SparkEngine(sim::Simulation* sim, sim::Network* network,
                         broker::KafkaCluster* cluster, EngineConfig config,
                         ScoringConfig scoring)
    : StreamEngine(sim, network, cluster, std::move(config),
                   std::move(scoring)) {
  costs_.max_offsets_per_trigger = config_.overrides.GetIntOr(
      "spark.max_offsets_per_trigger", costs_.max_offsets_per_trigger);
  costs_.checkpoint_s = config_.overrides.GetDoubleOr(
      "spark.checkpoint_s", costs_.checkpoint_s);
  costs_.driver_record_s = config_.overrides.GetDoubleOr(
      "spark.driver_record_s", costs_.driver_record_s);
  costs_.continuous =
      config_.overrides.GetBoolOr("spark.continuous", costs_.continuous);
}

SparkEngine::~SparkEngine() { Stop(); }

crayfish::Status SparkEngine::Start() {
  CRAYFISH_ASSIGN_OR_RETURN(int partitions,
                            cluster_->NumPartitions(config_.input_topic));
  std::vector<int> all(static_cast<size_t>(partitions));
  for (int p = 0; p < partitions; ++p) all[static_cast<size_t>(p)] = p;
  broker::ConsumerConfig cc;
  // The driver drains whole trigger intervals at once; with a rate limit
  // (maxOffsetsPerTrigger) the poll itself is capped so no prefetched
  // record is ever dropped.
  cc.max_poll_records = costs_.max_offsets_per_trigger > 0
                            ? static_cast<size_t>(
                                  costs_.max_offsets_per_trigger)
                            : 100000;
  cc.fetch_max_records = 2000;
  cc.max_buffered_records = 200000;
  consumer_ = std::make_unique<broker::KafkaConsumer>(cluster_, config_.host,
                                                      "spark", cc);
  CRAYFISH_RETURN_IF_ERROR(consumer_->Assign(config_.input_topic, all));
  producer_ = std::make_unique<broker::KafkaProducer>(cluster_, config_.host);

  double load_delay = 0.0;
  if (!scoring_.external) {
    // Executors load the model once before the query starts.
    load_delay = scoring_.library->LoadTimeSeconds(scoring_.model);
  }
  // The query-start seed confines the trigger loop (and every micro-batch
  // scheduled downstream) to the SPS host.
  ScheduleOnHost(load_delay, [this]() {
    if (!stopped_) TriggerLoop();
  });
  return crayfish::Status::Ok();
}

void SparkEngine::TriggerLoop() {
  if (stopped_) return;
  consumer_->Poll(costs_.poll_timeout_s,
                  [this](std::vector<broker::Record> records) {
                    if (stopped_) return;
                    if (records.empty()) {
                      sim_->Schedule(costs_.continuous ? 0.0
                                                       : costs_.empty_cycle_s,
                                     [this]() { TriggerLoop(); });
                      return;
                    }
                    RunMicroBatch(std::move(records));
                  });
}

void SparkEngine::RunMicroBatch(std::vector<broker::Record> records) {
  ++micro_batches_;
  auto batch = std::make_shared<std::vector<broker::Record>>(
      std::move(records));
  const size_t n = batch->size();
  // Driver cost: micro-batch mode pays the offset WAL checkpoint plus
  // planning and serial per-record bookkeeping; continuous mode only
  // emits an asynchronous epoch marker (§3.4.1's experimental
  // alternative — at-least-once, no per-batch scheduling).
  const double driver_time =
      costs_.continuous
          ? costs_.epoch_marker_s
          : costs_.checkpoint_s + costs_.schedule_s +
                costs_.driver_record_s * static_cast<double>(n);
  sim_->Schedule(driver_time, [this, batch, n]() {
    if (stopped_) return;
    const int chunks = static_cast<int>(std::min<size_t>(
        {n, static_cast<size_t>(costs_.executor_cores),
         static_cast<size_t>(costs_.max_chunks)}));
    auto remaining = std::make_shared<int>(chunks);
    const size_t per_chunk = (n + static_cast<size_t>(chunks) - 1) /
                             static_cast<size_t>(chunks);
    for (int c = 0; c < chunks; ++c) {
      const size_t begin = static_cast<size_t>(c) * per_chunk;
      const size_t end = std::min(n, begin + per_chunk);
      if (begin >= end) {
        if (--*remaining == 0) TriggerLoop();
        continue;
      }
      sim_->Schedule(costs_.task_launch_s, [this, batch, begin, end,
                                            remaining]() {
        RunChunk(batch, begin, end, [this, remaining]() {
          if (--*remaining == 0 && !stopped_) {
            // Batch complete: next trigger immediately (minimum trigger
            // interval).
            TriggerLoop();
          }
        });
      });
    }
  });
}

void SparkEngine::RunChunk(
    std::shared_ptr<std::vector<broker::Record>> records, size_t begin,
    size_t end, std::function<void()> on_done) {
  if (stopped_) return;
  if (begin >= end) {
    on_done();
    return;
  }
  const broker::Record& r = (*records)[begin];
  // The executor task picks the record up: trigger/scheduling wait ends.
  TraceMark(r.batch_id, obs::Stage::kQueueWait);
  const double ingest =
      costs_.record_fixed_s +
      costs_.record_per_byte_s * static_cast<double>(r.wire_size);
  auto emit = [this, records, begin, end,
               on_done = std::move(on_done)]() mutable {
    if (stopped_) return;
    ++events_scored_;
    sim_->Schedule(costs_.produce_fixed_s,
                   [this, records, begin, end,
                    on_done = std::move(on_done)]() mutable {
                     if (stopped_) return;
                     TraceMark((*records)[begin].batch_id,
                               obs::Stage::kSerialize);
                     CRAYFISH_CHECK_OK(
                         EmitScored(producer_.get(), (*records)[begin]));
                     RunChunk(records, begin + 1, end, std::move(on_done));
                   });
  };
  const size_t depth = consumer_->buffered();
  if (scoring_.external) {
    sim_->Schedule(ingest + scoring_.server->costs().client_overhead_s,
                   [this, records, begin, depth,
                    emit = std::move(emit)]() mutable {
                     if (stopped_) return;
                     InvokeExternalWithStress((*records)[begin], depth,
                                              std::move(emit));
                   });
    return;
  }
  MaybeRealApply(r);
  const double apply =
      EmbeddedApplySeconds(static_cast<int>(r.batch_size), depth);
  sim_->Schedule(ingest + apply, [this, records, begin,
                                  emit = std::move(emit)]() mutable {
    if (stopped_) return;
    TraceMark((*records)[begin].batch_id, obs::Stage::kScore);
    emit();
  });
}

EngineTelemetry SparkEngine::Telemetry() const {
  EngineTelemetry t;
  if (consumer_) {
    t.consumer_lag = consumer_->TotalLag();
    t.max_partition_lag = consumer_->MaxPartitionLag();
    t.queue_depth = static_cast<int64_t>(consumer_->buffered());
  }
  return t;
}

void SparkEngine::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (consumer_) consumer_->Close();
}

}  // namespace crayfish::sps
