#ifndef CRAYFISH_SPS_SPARK_ENGINE_H_
#define CRAYFISH_SPS_SPARK_ENGINE_H_

#include <memory>
#include <vector>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "sps/engine.h"

namespace crayfish::sps {

/// Calibrated costs of the Spark Structured Streaming adapter
/// (micro-batch mode, minimum trigger interval, append output mode —
/// §3.4.1/§4.3).
struct SparkCosts {
  /// Driver poll for new offsets when idle.
  double poll_timeout_s = 0.05;
  double empty_cycle_s = 0.02;
  /// Per-micro-batch driver planning/scheduling.
  double schedule_s = 15e-3;
  /// Offset WAL + commit-log checkpoint, paid at batch start (source of
  /// Spark's latency floor; §5.3.1 reports 290.78 ms/event at ir=512).
  double checkpoint_s = 150e-3;
  /// Task launch per chunk.
  double task_launch_s = 2e-3;
  /// Serial driver-side cost per record (offset/plan bookkeeping,
  /// collect) — Spark's throughput asymptote (~23k ev/s, Fig. 11).
  double driver_record_s = 34e-6;
  /// Executor-side per-record deserialization.
  double record_per_byte_s = 25e-9;
  double record_fixed_s = 30e-6;
  double produce_fixed_s = 30e-6;
  /// Executor cores (paper: 60).
  int executor_cores = 60;
  /// Kafka input partitions bound the chunk fan-out.
  int max_chunks = 32;
  /// Rate limit per trigger (spark maxOffsetsPerTrigger); 0 = unbounded.
  int64_t max_offsets_per_trigger = 0;
  /// Continuous processing mode ("spark.continuous"): the experimental
  /// event-at-a-time alternative the paper declined to use (§3.4.1).
  /// Long-running tasks process records as they arrive with only
  /// lightweight asynchronous epoch markers — no per-batch checkpoint,
  /// no per-batch scheduling, at-least-once semantics.
  bool continuous = false;
  double epoch_marker_s = 0.5e-3;
};

/// Spark Structured Streaming adapter: the driver runs a trigger loop;
/// each micro-batch checkpoints offsets, splits the batch into chunks (one
/// per input partition, bounded by executor cores) and executes chunks in
/// parallel; records within a chunk are processed sequentially.
///
/// Because chunk fan-out follows the input partitions, not `mp`, vertical
/// scaling is flat (Fig. 11) while the external-serving path benefits from
/// the wide per-batch fan-out (Table 5's near-identical ONNX/TF-Serving
/// throughput).
class SparkEngine : public StreamEngine {
 public:
  SparkEngine(sim::Simulation* sim, sim::Network* network,
              broker::KafkaCluster* cluster, EngineConfig config,
              ScoringConfig scoring);
  ~SparkEngine() override;

  const char* name() const override { return "spark"; }
  crayfish::Status Start() override;
  void Stop() override;

  /// Lag and buffered records of the driver's consumer (micro-batch model:
  /// in-flight batches live in the driver, not operator queues).
  EngineTelemetry Telemetry() const override;

  const SparkCosts& costs() const { return costs_; }
  uint64_t micro_batches() const { return micro_batches_; }

 private:
  void TriggerLoop();
  void RunMicroBatch(std::vector<broker::Record> records);
  /// Processes chunk records [begin, end) sequentially; calls on_done at
  /// the end.
  void RunChunk(std::shared_ptr<std::vector<broker::Record>> records,
                size_t begin, size_t end, std::function<void()> on_done);

  SparkCosts costs_;
  std::unique_ptr<broker::KafkaConsumer> consumer_;
  std::unique_ptr<broker::KafkaProducer> producer_;
  uint64_t micro_batches_ = 0;
};

}  // namespace crayfish::sps

#endif  // CRAYFISH_SPS_SPARK_ENGINE_H_
