#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace crayfish::tensor {

namespace {

/// Inner GEMM kernel: C(MxN) += A(MxK) * B(KxN), row-major, with a simple
/// k-loop hoist. Not vectorized by hand; the compiler autovectorizes the
/// inner loop.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float aval = a[i * k + p];
      if (aval == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += aval * brow[j];
      }
    }
  }
}

}  // namespace

int64_t ConvOutputSize(int64_t input, int64_t window, int64_t stride,
                       Padding padding) {
  if (padding == Padding::kSame) {
    return (input + stride - 1) / stride;
  }
  return (input - window) / stride + 1;
}

crayfish::StatusOr<Tensor> MatMul(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    return crayfish::Status::InvalidArgument(
        "MatMul requires rank-2 tensors, got " + a.shape().ToString() +
        " and " + b.shape().ToString());
  }
  const int64_t m = a.shape()[0];
  const int64_t k = a.shape()[1];
  const int64_t n = b.shape()[1];
  if (b.shape()[0] != k) {
    return crayfish::Status::InvalidArgument(
        "MatMul inner dimensions differ: " + a.shape().ToString() + " x " +
        b.shape().ToString());
  }
  Tensor c(Shape{m, n});
  Gemm(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

crayfish::StatusOr<Tensor> BiasAdd(const Tensor& x, const Tensor& bias) {
  if (bias.shape().rank() != 1) {
    return crayfish::Status::InvalidArgument("bias must be rank-1");
  }
  const int64_t c = bias.shape()[0];
  if (x.shape().rank() < 1 || x.shape()[x.shape().rank() - 1] != c) {
    return crayfish::Status::InvalidArgument(
        "bias length " + std::to_string(c) + " does not match last axis of " +
        x.shape().ToString());
  }
  Tensor out = x;
  float* d = out.data();
  const float* bp = bias.data();
  const int64_t total = out.NumElements();
  for (int64_t i = 0; i < total; ++i) {
    d[i] += bp[i % c];
  }
  return out;
}

Tensor Relu(const Tensor& x) {
  Tensor out = x;
  float* d = out.data();
  const int64_t n = out.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    d[i] = d[i] > 0.0f ? d[i] : 0.0f;
  }
  return out;
}

crayfish::StatusOr<Tensor> Add(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return crayfish::Status::InvalidArgument(
        "Add shape mismatch: " + a.shape().ToString() + " vs " +
        b.shape().ToString());
  }
  Tensor out = a;
  float* d = out.data();
  const float* s = b.data();
  const int64_t n = out.NumElements();
  for (int64_t i = 0; i < n; ++i) d[i] += s[i];
  return out;
}

Tensor Softmax(const Tensor& x) {
  CRAYFISH_CHECK_GE(x.shape().rank(), 1);
  const int64_t cols = x.shape()[x.shape().rank() - 1];
  const int64_t rows = x.NumElements() / cols;
  Tensor out = x;
  float* d = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    float* row = d + r * cols;
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < cols; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t j = 0; j < cols; ++j) row[j] *= inv;
  }
  return out;
}

crayfish::StatusOr<Tensor> Conv2D(const Tensor& input, const Tensor& filter,
                                  int64_t stride, Padding padding) {
  if (input.shape().rank() != 4) {
    return crayfish::Status::InvalidArgument("Conv2D input must be NHWC");
  }
  if (filter.shape().rank() != 4) {
    return crayfish::Status::InvalidArgument("Conv2D filter must be HWIO");
  }
  if (stride < 1) {
    return crayfish::Status::InvalidArgument("Conv2D stride must be >= 1");
  }
  const int64_t batch = input.shape()[0];
  const int64_t in_h = input.shape()[1];
  const int64_t in_w = input.shape()[2];
  const int64_t in_c = input.shape()[3];
  const int64_t kh = filter.shape()[0];
  const int64_t kw = filter.shape()[1];
  const int64_t fc_in = filter.shape()[2];
  const int64_t out_c = filter.shape()[3];
  if (fc_in != in_c) {
    return crayfish::Status::InvalidArgument(
        "Conv2D channel mismatch: input " + input.shape().ToString() +
        " filter " + filter.shape().ToString());
  }
  const int64_t out_h = ConvOutputSize(in_h, kh, stride, padding);
  const int64_t out_w = ConvOutputSize(in_w, kw, stride, padding);
  int64_t pad_top = 0;
  int64_t pad_left = 0;
  if (padding == Padding::kSame) {
    const int64_t pad_h =
        std::max<int64_t>(0, (out_h - 1) * stride + kh - in_h);
    const int64_t pad_w =
        std::max<int64_t>(0, (out_w - 1) * stride + kw - in_w);
    pad_top = pad_h / 2;
    pad_left = pad_w / 2;
  }

  // im2col: rows = out_h*out_w, cols = kh*kw*in_c, per batch image.
  const int64_t patch = kh * kw * in_c;
  Tensor out(Shape{batch, out_h, out_w, out_c});
  std::vector<float> col(static_cast<size_t>(out_h * out_w * patch));
  const float* in_data = input.data();
  for (int64_t b = 0; b < batch; ++b) {
    std::fill(col.begin(), col.end(), 0.0f);
    const float* img = in_data + b * in_h * in_w * in_c;
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        float* crow = col.data() + (oy * out_w + ox) * patch;
        for (int64_t ky = 0; ky < kh; ++ky) {
          const int64_t iy = oy * stride + ky - pad_top;
          if (iy < 0 || iy >= in_h) continue;
          for (int64_t kx = 0; kx < kw; ++kx) {
            const int64_t ix = ox * stride + kx - pad_left;
            if (ix < 0 || ix >= in_w) continue;
            const float* src = img + (iy * in_w + ix) * in_c;
            float* dst = crow + (ky * kw + kx) * in_c;
            std::copy(src, src + in_c, dst);
          }
        }
      }
    }
    // GEMM: [out_h*out_w, patch] x [patch, out_c].
    Gemm(col.data(), filter.data(),
         out.data() + b * out_h * out_w * out_c, out_h * out_w, patch,
         out_c);
  }
  return out;
}

crayfish::StatusOr<Tensor> MaxPool2D(const Tensor& input, int64_t window,
                                     int64_t stride, Padding padding) {
  if (input.shape().rank() != 4) {
    return crayfish::Status::InvalidArgument("MaxPool2D input must be NHWC");
  }
  const int64_t batch = input.shape()[0];
  const int64_t in_h = input.shape()[1];
  const int64_t in_w = input.shape()[2];
  const int64_t c = input.shape()[3];
  const int64_t out_h = ConvOutputSize(in_h, window, stride, padding);
  const int64_t out_w = ConvOutputSize(in_w, window, stride, padding);
  int64_t pad_top = 0;
  int64_t pad_left = 0;
  if (padding == Padding::kSame) {
    const int64_t pad_h =
        std::max<int64_t>(0, (out_h - 1) * stride + window - in_h);
    const int64_t pad_w =
        std::max<int64_t>(0, (out_w - 1) * stride + window - in_w);
    pad_top = pad_h / 2;
    pad_left = pad_w / 2;
  }
  Tensor out(Shape{batch, out_h, out_w, c});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t oy = 0; oy < out_h; ++oy) {
      for (int64_t ox = 0; ox < out_w; ++ox) {
        for (int64_t ch = 0; ch < c; ++ch) {
          float mx = -std::numeric_limits<float>::infinity();
          for (int64_t ky = 0; ky < window; ++ky) {
            const int64_t iy = oy * stride + ky - pad_top;
            if (iy < 0 || iy >= in_h) continue;
            for (int64_t kx = 0; kx < window; ++kx) {
              const int64_t ix = ox * stride + kx - pad_left;
              if (ix < 0 || ix >= in_w) continue;
              mx = std::max(mx, input.at4(b, iy, ix, ch));
            }
          }
          out.at4(b, oy, ox, ch) = mx;
        }
      }
    }
  }
  return out;
}

crayfish::StatusOr<Tensor> GlobalAvgPool(const Tensor& input) {
  if (input.shape().rank() != 4) {
    return crayfish::Status::InvalidArgument(
        "GlobalAvgPool input must be NHWC");
  }
  const int64_t batch = input.shape()[0];
  const int64_t h = input.shape()[1];
  const int64_t w = input.shape()[2];
  const int64_t c = input.shape()[3];
  Tensor out(Shape{batch, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        const float* px = input.data() + ((b * h + y) * w + x) * c;
        float* dst = out.data() + b * c;
        for (int64_t ch = 0; ch < c; ++ch) dst[ch] += px[ch];
      }
    }
  }
  float* d = out.data();
  for (int64_t i = 0; i < batch * c; ++i) d[i] *= inv;
  return out;
}

crayfish::StatusOr<Tensor> BatchNorm(const Tensor& x, const Tensor& gamma,
                                     const Tensor& beta, const Tensor& mean,
                                     const Tensor& variance, float epsilon) {
  const int64_t rank = x.shape().rank();
  if (rank < 1) {
    return crayfish::Status::InvalidArgument("BatchNorm needs rank >= 1");
  }
  const int64_t c = x.shape()[rank - 1];
  for (const Tensor* p : {&gamma, &beta, &mean, &variance}) {
    if (p->shape().rank() != 1 || p->shape()[0] != c) {
      return crayfish::Status::InvalidArgument(
          "BatchNorm parameter shape mismatch, channels=" +
          std::to_string(c));
    }
  }
  // Precompute scale = gamma / sqrt(var + eps), shift = beta - scale*mean.
  std::vector<float> scale(static_cast<size_t>(c));
  std::vector<float> shift(static_cast<size_t>(c));
  for (int64_t i = 0; i < c; ++i) {
    const float s = gamma.at(i) / std::sqrt(variance.at(i) + epsilon);
    scale[static_cast<size_t>(i)] = s;
    shift[static_cast<size_t>(i)] = beta.at(i) - s * mean.at(i);
  }
  Tensor out = x;
  float* d = out.data();
  const int64_t n = out.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t ch = i % c;
    d[i] = d[i] * scale[static_cast<size_t>(ch)] +
           shift[static_cast<size_t>(ch)];
  }
  return out;
}

crayfish::StatusOr<Tensor> FlattenBatch(const Tensor& x) {
  if (x.shape().rank() < 1) {
    return crayfish::Status::InvalidArgument("FlattenBatch needs rank >= 1");
  }
  const int64_t batch = x.shape()[0];
  const int64_t rest = x.NumElements() / batch;
  return x.Reshape(Shape{batch, rest});
}

crayfish::StatusOr<std::vector<int64_t>> Argmax(const Tensor& x) {
  if (x.shape().rank() != 2) {
    return crayfish::Status::InvalidArgument("Argmax requires rank-2");
  }
  const int64_t rows = x.shape()[0];
  const int64_t cols = x.shape()[1];
  std::vector<int64_t> out(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    int64_t best = 0;
    float best_val = x.at2(r, 0);
    for (int64_t c = 1; c < cols; ++c) {
      const float v = x.at2(r, c);
      if (v > best_val) {
        best_val = v;
        best = c;
      }
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

}  // namespace crayfish::tensor
