#ifndef CRAYFISH_TENSOR_OPS_H_
#define CRAYFISH_TENSOR_OPS_H_

#include "common/status.h"
#include "tensor/tensor.h"

namespace crayfish::tensor {

/// Padding policy for spatial ops, matching TensorFlow semantics:
/// kSame pads so that output size = ceil(input / stride); kValid pads
/// nothing.
enum class Padding { kSame, kValid };

/// C = A(MxK) * B(KxN). Rank-2 inputs required.
crayfish::StatusOr<Tensor> MatMul(const Tensor& a, const Tensor& b);

/// Adds a rank-1 bias along the last axis of `x` (broadcast).
crayfish::StatusOr<Tensor> BiasAdd(const Tensor& x, const Tensor& bias);

/// Elementwise ops.
Tensor Relu(const Tensor& x);
crayfish::StatusOr<Tensor> Add(const Tensor& a, const Tensor& b);

/// Row-wise softmax over the last axis (any rank >= 1).
Tensor Softmax(const Tensor& x);

/// 2D convolution over NHWC input with HWIO filter
/// ([kh, kw, in_channels, out_channels]). Implemented via im2col + GEMM.
crayfish::StatusOr<Tensor> Conv2D(const Tensor& input, const Tensor& filter,
                                  int64_t stride, Padding padding);

/// Max pooling over NHWC input.
crayfish::StatusOr<Tensor> MaxPool2D(const Tensor& input, int64_t window,
                                     int64_t stride, Padding padding);

/// Mean over the spatial axes of an NHWC input: [N,H,W,C] -> [N,C].
crayfish::StatusOr<Tensor> GlobalAvgPool(const Tensor& input);

/// Inference-mode batch normalization along the channel (last) axis:
/// y = gamma * (x - mean) / sqrt(var + eps) + beta. gamma/beta/mean/var are
/// rank-1 of length C.
crayfish::StatusOr<Tensor> BatchNorm(const Tensor& x, const Tensor& gamma,
                                     const Tensor& beta, const Tensor& mean,
                                     const Tensor& variance,
                                     float epsilon = 1e-5f);

/// Flattens all but the leading (batch) axis: [N, ...] -> [N, prod(...)].
crayfish::StatusOr<Tensor> FlattenBatch(const Tensor& x);

/// Index of the maximum element in each row of a rank-2 tensor.
crayfish::StatusOr<std::vector<int64_t>> Argmax(const Tensor& x);

/// Output spatial size for a conv/pool dimension.
int64_t ConvOutputSize(int64_t input, int64_t window, int64_t stride,
                       Padding padding);

}  // namespace crayfish::tensor

#endif  // CRAYFISH_TENSOR_OPS_H_
