#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace crayfish::tensor {

int64_t Shape::dim(int64_t i) const {
  CRAYFISH_CHECK_GE(i, 0);
  CRAYFISH_CHECK_LT(i, rank());
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

Shape Shape::WithDim(int64_t i, int64_t value) const {
  CRAYFISH_CHECK_GE(i, 0);
  CRAYFISH_CHECK_LT(i, rank());
  std::vector<int64_t> dims = dims_;
  dims[static_cast<size_t>(i)] = value;
  return Shape(std::move(dims));
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.NumElements()), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  CRAYFISH_CHECK_EQ(static_cast<int64_t>(data_.size()), shape_.NumElements())
      << "shape " << shape_.ToString() << " vs " << data_.size()
      << " elements";
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::Random(Shape shape, crayfish::Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::HeNormal(Shape shape, crayfish::Rng* rng, int64_t fan_in) {
  CRAYFISH_CHECK_GT(fan_in, 0);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
  return t;
}

float Tensor::at2(int64_t r, int64_t c) const {
  CRAYFISH_CHECK_EQ(shape_.rank(), 2);
  return data_[static_cast<size_t>(r * shape_[1] + c)];
}

float Tensor::at4(int64_t n, int64_t h, int64_t w, int64_t c) const {
  CRAYFISH_CHECK_EQ(shape_.rank(), 4);
  const int64_t idx =
      ((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c;
  return data_[static_cast<size_t>(idx)];
}

float& Tensor::at4(int64_t n, int64_t h, int64_t w, int64_t c) {
  CRAYFISH_CHECK_EQ(shape_.rank(), 4);
  const int64_t idx =
      ((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c;
  return data_[static_cast<size_t>(idx)];
}

crayfish::StatusOr<Tensor> Tensor::Reshape(Shape new_shape) const {
  if (new_shape.NumElements() != shape_.NumElements()) {
    return crayfish::Status::InvalidArgument(
        "reshape " + shape_.ToString() + " -> " + new_shape.ToString() +
        " changes element count");
  }
  return Tensor(std::move(new_shape), data_);
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::Max() const {
  float m = -std::numeric_limits<float>::infinity();
  for (float v : data_) m = std::max(m, v);
  return m;
}

std::string Tensor::DebugString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_.ToString() << " {";
  const int64_t n =
      std::min<int64_t>(max_elements, static_cast<int64_t>(data_.size()));
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (n < static_cast<int64_t>(data_.size())) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace crayfish::tensor
