#ifndef CRAYFISH_TENSOR_TENSOR_H_
#define CRAYFISH_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace crayfish::tensor {

/// Dense tensor shape. Dimensions are ordered outermost-first; image
/// tensors use NHWC layout ([batch, height, width, channels]).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t i) const;
  int64_t operator[](int64_t i) const { return dim(i); }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Product of all dimensions; 1 for a scalar (rank 0).
  int64_t NumElements() const;

  /// Returns a copy with dimension `i` replaced.
  Shape WithDim(int64_t i, int64_t value) const;

  /// "[2, 224, 224, 3]"
  std::string ToString() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<int64_t> dims_;
};

/// Dense float32 tensor with value semantics (copies are deep). The tensor
/// library backs the *real* model execution path used by tests and
/// examples; the simulation path uses only FLOP counts derived from the
/// same model graphs.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  /// Uniform random values in [lo, hi) from the caller's RNG stream.
  static Tensor Random(Shape shape, crayfish::Rng* rng, float lo = 0.0f,
                       float hi = 1.0f);
  /// He-normal initialization (for conv/dense weights in builders/tests).
  static Tensor HeNormal(Shape shape, crayfish::Rng* rng, int64_t fan_in);

  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return shape_.NumElements(); }
  uint64_t ByteSize() const {
    return static_cast<uint64_t>(NumElements()) * sizeof(float);
  }

  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }
  const std::vector<float>& values() const { return data_; }

  float at(int64_t i) const { return data_[static_cast<size_t>(i)]; }
  float& at(int64_t i) { return data_[static_cast<size_t>(i)]; }

  /// Element access for rank-2 tensors ([row, col]).
  float at2(int64_t r, int64_t c) const;
  /// Element access for rank-4 NHWC tensors.
  float at4(int64_t n, int64_t h, int64_t w, int64_t c) const;
  float& at4(int64_t n, int64_t h, int64_t w, int64_t c);

  /// Reshape preserving the number of elements; returns error on mismatch.
  crayfish::StatusOr<Tensor> Reshape(Shape new_shape) const;

  /// True when shapes match and all elements differ by at most `tol`.
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

  /// Sum / maximum over all elements (0 / -inf for empty).
  float Sum() const;
  float Max() const;

  std::string DebugString(int64_t max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace crayfish::tensor

#endif  // CRAYFISH_TENSOR_TENSOR_H_
