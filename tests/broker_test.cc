#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/logging.h"

#include "broker/cluster.h"
#include "broker/consumer.h"
#include "broker/partition.h"
#include "broker/producer.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish::broker {
namespace {

Record MakeRecord(uint64_t id, double create_time = 0.0,
                  uint64_t wire = 1000) {
  Record r;
  r.batch_id = id;
  r.create_time = create_time;
  r.wire_size = wire;
  return r;
}

// ------------------------------------------------------------- partition --

TEST(PartitionTest, AppendAssignsOffsetsAndLogAppendTime) {
  Partition p;
  EXPECT_EQ(p.Append(MakeRecord(1), 1.5), 0);
  EXPECT_EQ(p.Append(MakeRecord(2), 2.5), 1);
  EXPECT_EQ(p.end_offset(), 2);
  std::vector<Record> out;
  ASSERT_TRUE(p.Fetch(0, 10, 1 << 20, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].log_append_time, 1.5);
  EXPECT_DOUBLE_EQ(out[1].log_append_time, 2.5);
  EXPECT_EQ(out[1].batch_id, 2u);
}

TEST(PartitionTest, FetchRespectsMaxRecordsAndBytes) {
  Partition p;
  for (int i = 0; i < 10; ++i) p.Append(MakeRecord(i, 0, 100), 0.0);
  std::vector<Record> out;
  ASSERT_TRUE(p.Fetch(0, 3, 1 << 20, &out).ok());
  EXPECT_EQ(out.size(), 3u);
  out.clear();
  ASSERT_TRUE(p.Fetch(0, 100, 250, &out).ok());
  EXPECT_EQ(out.size(), 2u);  // 100 + 100, third would exceed 250
}

TEST(PartitionTest, FetchAlwaysReturnsAtLeastOneRecord) {
  Partition p;
  p.Append(MakeRecord(1, 0, 5000), 0.0);
  std::vector<Record> out;
  ASSERT_TRUE(p.Fetch(0, 10, 100, &out).ok());  // record bigger than budget
  EXPECT_EQ(out.size(), 1u);
}

TEST(PartitionTest, FetchBelowLogStartIsOutOfRange) {
  Partition p;
  for (int i = 0; i < 5; ++i) p.Append(MakeRecord(i), 0.0);
  p.TrimTo(3);
  EXPECT_EQ(p.log_start_offset(), 3);
  EXPECT_EQ(p.end_offset(), 5);
  std::vector<Record> out;
  EXPECT_EQ(p.Fetch(2, 10, 1 << 20, &out).code(),
            crayfish::StatusCode::kOutOfRange);
}

TEST(PartitionTest, RetentionEvictsOldest) {
  Partition p;
  p.SetRetentionRecords(3);
  for (int i = 0; i < 10; ++i) p.Append(MakeRecord(i), 0.0);
  EXPECT_EQ(p.log_start_offset(), 7);
  EXPECT_EQ(p.end_offset(), 10);
  EXPECT_EQ(p.total_appended(), 10u);
}

// --------------------------------------------------------------- cluster --

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : sim_(1), network_(&sim_), cluster_(&sim_, &network_, {}) {
    CRAYFISH_CHECK_OK(
        network_.AddHost(sim::Host{"client", 4, 1ULL << 30, false}));
    CRAYFISH_CHECK_OK(cluster_.CreateTopic("t", 4));
  }
  sim::Simulation sim_;
  sim::Network network_;
  KafkaCluster cluster_;
};

TEST_F(ClusterTest, TopicManagement) {
  EXPECT_TRUE(cluster_.HasTopic("t"));
  EXPECT_FALSE(cluster_.HasTopic("x"));
  EXPECT_EQ(*cluster_.NumPartitions("t"), 4);
  EXPECT_EQ(cluster_.CreateTopic("t", 2).code(),
            crayfish::StatusCode::kAlreadyExists);
  EXPECT_FALSE(cluster_.CreateTopic("bad", 0).ok());
  EXPECT_FALSE(cluster_.NumPartitions("x").ok());
}

TEST_F(ClusterTest, LeadershipSpreadsAcrossBrokers) {
  std::set<std::string> leaders;
  for (int p = 0; p < 4; ++p) {
    leaders.insert(cluster_.LeaderHost(TopicPartition{"t", p}));
  }
  EXPECT_EQ(leaders.size(), 4u);
}

TEST_F(ClusterTest, ProduceStampsLogAppendTimeAtBroker) {
  bool acked = false;
  cluster_.Produce("client", TopicPartition{"t", 0}, {MakeRecord(7, 0.0)},
                   [&](crayfish::Status s) {
                     EXPECT_TRUE(s.ok());
                     acked = true;
                   });
  sim_.RunUntilIdle();
  EXPECT_TRUE(acked);
  Partition* p = *cluster_.GetPartition(TopicPartition{"t", 0});
  EXPECT_EQ(p->end_offset(), 1);
  std::vector<Record> out;
  ASSERT_TRUE(p->Fetch(0, 1, 1 << 20, &out).ok());
  // Append happened after network + broker processing: strictly positive.
  EXPECT_GT(out[0].log_append_time, 0.0);
}

TEST_F(ClusterTest, ProduceOverMaxRequestSizeFails) {
  Record big = MakeRecord(1, 0.0, 60ULL * 1024 * 1024);
  crayfish::Status got;
  cluster_.Produce("client", TopicPartition{"t", 0}, {big},
                   [&](crayfish::Status s) { got = s; });
  sim_.RunUntilIdle();
  EXPECT_TRUE(got.IsInvalidArgument());
}

TEST_F(ClusterTest, ProduceToUnknownTopicReportsNotFound) {
  crayfish::Status got;
  cluster_.Produce("client", TopicPartition{"nope", 0}, {MakeRecord(1)},
                   [&](crayfish::Status s) { got = s; });
  sim_.RunUntilIdle();
  EXPECT_TRUE(got.IsNotFound());
}

TEST_F(ClusterTest, FetchReturnsAppendedRecords) {
  cluster_.Produce("client", TopicPartition{"t", 1},
                   {MakeRecord(1), MakeRecord(2)}, nullptr);
  std::vector<Record> got;
  sim_.Schedule(0.5, [&] {
    cluster_.Fetch("client", TopicPartition{"t", 1}, 0, 10, 1 << 20, 0.5,
                   [&](std::vector<Record> records) { got = records; });
  });
  sim_.RunUntilIdle();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].offset, 0);
  EXPECT_EQ(got[1].offset, 1);
}

TEST_F(ClusterTest, LongPollWakesOnAppend) {
  std::vector<Record> got;
  double got_at = -1.0;
  cluster_.Fetch("client", TopicPartition{"t", 0}, 0, 10, 1 << 20,
                 /*max_wait=*/10.0, [&](std::vector<Record> records) {
                   got = records;
                   got_at = sim_.Now();
                 });
  // Append arrives at t=1: the parked fetch must answer promptly, far
  // before the 10 s timeout.
  sim_.Schedule(1.0, [&] {
    cluster_.Produce("client", TopicPartition{"t", 0}, {MakeRecord(5)},
                     nullptr);
  });
  sim_.RunUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GT(got_at, 1.0);
  EXPECT_LT(got_at, 1.1);
}

TEST_F(ClusterTest, LongPollTimesOutEmpty) {
  bool answered = false;
  size_t n = 99;
  cluster_.Fetch("client", TopicPartition{"t", 0}, 0, 10, 1 << 20, 0.2,
                 [&](std::vector<Record> records) {
                   answered = true;
                   n = records.size();
                 });
  sim_.RunUntilIdle();
  EXPECT_TRUE(answered);
  EXPECT_EQ(n, 0u);
}

TEST_F(ClusterTest, FetchBelowRetentionAutoResets) {
  ASSERT_TRUE(cluster_.SetTopicRetention("t", 2).ok());
  for (int i = 0; i < 5; ++i) {
    cluster_.Produce("client", TopicPartition{"t", 0}, {MakeRecord(i)},
                     nullptr);
  }
  std::vector<Record> got;
  sim_.Schedule(1.0, [&] {
    cluster_.Fetch("client", TopicPartition{"t", 0}, 0, 10, 1 << 20, 0.1,
                   [&](std::vector<Record> records) { got = records; });
  });
  sim_.RunUntilIdle();
  ASSERT_EQ(got.size(), 2u);  // only the retained tail
  EXPECT_EQ(got[0].offset, 3);
}

TEST_F(ClusterTest, OffsetCommitStore) {
  TopicPartition tp{"t", 2};
  EXPECT_EQ(cluster_.CommittedOffset("g", tp), 0);
  cluster_.CommitOffset("g", tp, 41);
  EXPECT_EQ(cluster_.CommittedOffset("g", tp), 41);
  EXPECT_EQ(cluster_.CommittedOffset("other", tp), 0);
}

TEST(RangeAssignTest, CoversAllPartitionsDisjointly) {
  std::vector<int> seen(32, 0);
  for (int m = 0; m < 5; ++m) {
    for (int p : KafkaCluster::RangeAssign(32, 5, m)) {
      ++seen[static_cast<size_t>(p)];
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

// ---------------------------------------------------------------- clients --

class ClientTest : public ClusterTest {};

TEST_F(ClientTest, ProducerRoundRobinsPartitions) {
  KafkaProducer producer(&cluster_, "client");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(producer.Send("t", MakeRecord(i)).ok());
  }
  producer.Flush();
  sim_.RunUntilIdle();
  for (int p = 0; p < 4; ++p) {
    Partition* part = *cluster_.GetPartition(TopicPartition{"t", p});
    EXPECT_EQ(part->end_offset(), 2) << "partition " << p;
  }
  EXPECT_EQ(producer.records_sent(), 8u);
}

TEST_F(ClientTest, ProducerBatchesSameInstantSends) {
  KafkaProducer producer(&cluster_, "client");
  int acks = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(producer
                    .SendToPartition(TopicPartition{"t", 0}, MakeRecord(i),
                                     [&](crayfish::Status s) {
                                       EXPECT_TRUE(s.ok());
                                       ++acks;
                                     })
                    .ok());
  }
  sim_.RunUntilIdle();
  EXPECT_EQ(acks, 4);
  // 4 records x (1000 + envelope) bytes < 16 KB batch: one request.
  EXPECT_EQ(producer.batches_sent(), 1u);
}

TEST_F(ClientTest, ProducerRejectsOversizeRecord) {
  KafkaProducer producer(&cluster_, "client");
  EXPECT_FALSE(
      producer.Send("t", MakeRecord(1, 0.0, 60ULL * 1024 * 1024)).ok());
}

TEST_F(ClientTest, ProducerRejectsUnknownTopicAndPartition) {
  KafkaProducer producer(&cluster_, "client");
  EXPECT_FALSE(producer.Send("ghost", MakeRecord(1)).ok());
  EXPECT_FALSE(
      producer.SendToPartition(TopicPartition{"t", 9}, MakeRecord(1)).ok());
}

TEST_F(ClientTest, ConsumerReceivesProducedRecords) {
  KafkaProducer producer(&cluster_, "client");
  KafkaConsumer consumer(&cluster_, "client", "g");
  ASSERT_TRUE(consumer.Assign("t", {0, 1, 2, 3}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(producer.Send("t", MakeRecord(i)).ok());
  }
  producer.Flush();
  std::vector<Record> got;
  std::function<void()> poll = [&]() {
    consumer.Poll(0.5, [&](std::vector<Record> records) {
      for (auto& r : records) got.push_back(std::move(r));
      if (got.size() < 10) poll();
    });
  };
  poll();
  sim_.Run(5.0);
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(consumer.records_consumed(), 10u);
}

TEST_F(ClientTest, ConsumerPollTimesOutEmptyTopic) {
  KafkaConsumer consumer(&cluster_, "client", "g");
  ASSERT_TRUE(consumer.Assign("t", {0}).ok());
  bool got = false;
  size_t n = 99;
  consumer.Poll(0.3, [&](std::vector<Record> records) {
    got = true;
    n = records.size();
  });
  sim_.Run(2.0);
  EXPECT_TRUE(got);
  EXPECT_EQ(n, 0u);
}

TEST_F(ClientTest, SubscribeRangeAssignsAmongMembers) {
  KafkaConsumer a(&cluster_, "client", "g");
  KafkaConsumer b(&cluster_, "client", "g");
  ASSERT_TRUE(a.Subscribe("t", 2, 0).ok());
  ASSERT_TRUE(b.Subscribe("t", 2, 1).ok());
  EXPECT_EQ(a.assignment().size(), 2u);
  EXPECT_EQ(b.assignment().size(), 2u);
  std::set<int> all;
  for (const auto& tp : a.assignment()) all.insert(tp.partition);
  for (const auto& tp : b.assignment()) all.insert(tp.partition);
  EXPECT_EQ(all.size(), 4u);
}

TEST_F(ClientTest, ConsumerPositionAdvancesAndCommits) {
  KafkaProducer producer(&cluster_, "client");
  KafkaConsumer consumer(&cluster_, "client", "g");
  ASSERT_TRUE(consumer.Assign("t", {0}).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        producer.SendToPartition(TopicPartition{"t", 0}, MakeRecord(i))
            .ok());
  }
  producer.Flush();
  consumer.Poll(1.0, [&](std::vector<Record>) {});
  sim_.Run(3.0);
  TopicPartition tp{"t", 0};
  EXPECT_EQ(consumer.position(tp), 3);
  consumer.CommitPositions();
  EXPECT_EQ(cluster_.CommittedOffset("g", tp), 3);

  // A new consumer in the same group resumes at the committed offset.
  KafkaConsumer resumed(&cluster_, "client", "g");
  ASSERT_TRUE(resumed.Assign("t", {0}).ok());
  EXPECT_EQ(resumed.position(tp), 3);
}

TEST_F(ClientTest, CloseStopsDelivery) {
  KafkaProducer producer(&cluster_, "client");
  KafkaConsumer consumer(&cluster_, "client", "g");
  ASSERT_TRUE(consumer.Assign("t", {0}).ok());
  consumer.Close();
  ASSERT_TRUE(
      producer.SendToPartition(TopicPartition{"t", 0}, MakeRecord(1)).ok());
  producer.Flush();
  sim_.Run(2.0);
  EXPECT_EQ(consumer.buffered(), 0u);
}

TEST_F(ClientTest, BufferBoundPausesFetching) {
  ConsumerConfig cc;
  cc.max_buffered_records = 5;
  cc.fetch_max_records = 5;
  KafkaProducer producer(&cluster_, "client");
  KafkaConsumer consumer(&cluster_, "client", "g", cc);
  ASSERT_TRUE(consumer.Assign("t", {0}).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        producer.SendToPartition(TopicPartition{"t", 0}, MakeRecord(i))
            .ok());
  }
  producer.Flush();
  sim_.Run(3.0);
  // Without a Poll, the client buffer must stay bounded (prefetch pauses).
  EXPECT_LE(consumer.buffered(), 10u);
}

TEST_F(ClientTest, AssignValidatesPartitions) {
  KafkaConsumer consumer(&cluster_, "client", "g");
  EXPECT_FALSE(consumer.Assign("t", {7}).ok());
  EXPECT_FALSE(consumer.Assign("ghost", {0}).ok());
}

TEST_F(ClientTest, EndToEndLatencyIsCreateToAppend) {
  // Mirrors §3.3: start time at the producer, end time = LogAppendTime.
  KafkaProducer producer(&cluster_, "client");
  Record r = MakeRecord(1, /*create_time=*/0.0);
  ASSERT_TRUE(producer.SendToPartition(TopicPartition{"t", 0}, r).ok());
  producer.Flush();
  sim_.RunUntilIdle();
  std::vector<Record> out;
  ASSERT_TRUE((*cluster_.GetPartition(TopicPartition{"t", 0}))
                  ->Fetch(0, 1, 1 << 20, &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  const double latency = out[0].log_append_time - out[0].create_time;
  // One network hop + broker processing: sub-millisecond but positive.
  EXPECT_GT(latency, 0.0);
  EXPECT_LT(latency, 0.01);
}


// ---------------------------------------------------- group coordinator --

TEST_F(ClientTest, JoinGroupAssignsAllPartitionsToSoleMember) {
  KafkaConsumer consumer(&cluster_, "client", "dyn");
  ASSERT_TRUE(consumer.SubscribeDynamic("t").ok());
  sim_.Run(1.0);
  EXPECT_EQ(consumer.assignment().size(), 4u);
  EXPECT_EQ(consumer.rebalances_seen(), 1u);
  EXPECT_EQ(cluster_.GroupSize("dyn", "t"), 1);
}

TEST_F(ClientTest, SecondMemberTriggersRebalanceSplit) {
  KafkaConsumer a(&cluster_, "client", "dyn");
  ASSERT_TRUE(a.SubscribeDynamic("t").ok());
  sim_.Run(1.0);
  KafkaConsumer b(&cluster_, "client", "dyn");
  ASSERT_TRUE(b.SubscribeDynamic("t").ok());
  sim_.Run(2.0);
  EXPECT_EQ(a.assignment().size(), 2u);
  EXPECT_EQ(b.assignment().size(), 2u);
  EXPECT_EQ(a.rebalances_seen(), 2u);
  std::set<int> all;
  for (const auto& tp : a.assignment()) all.insert(tp.partition);
  for (const auto& tp : b.assignment()) all.insert(tp.partition);
  EXPECT_EQ(all.size(), 4u);
}

TEST_F(ClientTest, LeaveGroupHandsPartitionsToSurvivor) {
  KafkaConsumer a(&cluster_, "client", "dyn");
  auto b = std::make_unique<KafkaConsumer>(&cluster_, "client", "dyn");
  ASSERT_TRUE(a.SubscribeDynamic("t").ok());
  ASSERT_TRUE(b->SubscribeDynamic("t").ok());
  sim_.Run(1.0);
  EXPECT_EQ(a.assignment().size(), 2u);
  b->Close();  // leaves the group
  sim_.Run(2.0);
  EXPECT_EQ(cluster_.GroupSize("dyn", "t"), 1);
  EXPECT_EQ(a.assignment().size(), 4u);
}

TEST_F(ClientTest, RebalanceResumesFromCommittedOffsetsAtLeastOnce) {
  KafkaProducer producer(&cluster_, "client");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(producer.Send("t", MakeRecord(i)).ok());
  }
  producer.Flush();

  KafkaConsumer a(&cluster_, "client", "dyn");
  ASSERT_TRUE(a.SubscribeDynamic("t").ok());
  std::multiset<uint64_t> seen;
  std::function<void(KafkaConsumer*)> drain = [&](KafkaConsumer* c) {
    c->Poll(0.3, [&, c](std::vector<Record> records) {
      for (const Record& r : records) seen.insert(r.batch_id);
      c->CommitPositions();
      if (!c->assignment().empty()) drain(c);
    });
  };
  drain(&a);
  sim_.Run(2.0);
  const size_t before = seen.size();
  EXPECT_GT(before, 0u);

  // A second member joins mid-stream; produce more records afterwards.
  KafkaConsumer b(&cluster_, "client", "dyn");
  ASSERT_TRUE(b.SubscribeDynamic("t").ok());
  sim_.Schedule(0.5, [&]() { drain(&b); });
  sim_.Schedule(1.0, [&]() {
    for (int i = 40; i < 80; ++i) {
      CRAYFISH_CHECK_OK(producer.Send("t", MakeRecord(i)));
    }
    producer.Flush();
  });
  sim_.Run(10.0);
  // Every record id 0..79 delivered at least once.
  for (uint64_t id = 0; id < 80; ++id) {
    EXPECT_GE(seen.count(id), 1u) << "record " << id << " lost";
  }
}

TEST_F(ClientTest, CrashTriggeredRebalanceIsAtLeastOnce) {
  // Crash the group's coordinator broker mid-stream: the dynamic group
  // rebalances, the eager-rebalance offset commit is lost with the
  // coordinator, the crashed broker's partition rejects fetches until
  // restart, and the producer keeps retrying sends into it. At-least-once
  // = every record delivered >= 1 time; the post-crash rewind surfaces as
  // counted duplicates.
  crayfish::RetryPolicy retry;
  retry.max_retries = 8;
  retry.timeout_s = 0.5;
  cluster_.SetClientDefaults(retry, /*auto_commit_interval_s=*/0.0);

  KafkaProducer producer(&cluster_, "client");
  KafkaConsumer consumer(&cluster_, "client", "dyn");
  ASSERT_TRUE(consumer.SubscribeDynamic("t").ok());

  std::multiset<uint64_t> seen;
  std::function<void()> drain = [&]() {
    // Deliberately never commits: with the coordinator down during the
    // crash-triggered rebalance, the eager commit is lost too, so the
    // survivor rewinds to the last durable offsets (none -> earliest).
    consumer.Poll(0.3, [&](std::vector<Record> records) {
      for (const Record& r : records) seen.insert(r.batch_id);
      if (!consumer.assignment().empty()) drain();
    });
  };

  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(producer.Send("t", MakeRecord(i)).ok());
  }
  producer.Flush();
  drain();

  const int coord = cluster_.CoordinatorBroker("dyn");
  sim_.Schedule(2.0, [&]() { cluster_.CrashBroker(coord); });
  sim_.Schedule(3.0, [&]() {
    // Produced mid-outage: sends to the dead broker's partition retry
    // with backoff until the leader is back.
    for (int i = 40; i < 80; ++i) {
      CRAYFISH_CHECK_OK(producer.Send("t", MakeRecord(i)));
    }
    producer.Flush();
  });
  sim_.Schedule(6.0, [&]() { cluster_.RestartBroker(coord); });
  sim_.Run(25.0);

  for (uint64_t id = 0; id < 80; ++id) {
    EXPECT_GE(seen.count(id), 1u) << "record " << id << " lost";
  }
  std::set<uint64_t> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), 80u);
  EXPECT_GT(seen.size(), unique.size()) << "rebalance produced no re-reads";
  EXPECT_GE(consumer.rebalances_seen(), 2u);  // join + crash-triggered
  EXPECT_GT(producer.retries() + consumer.retries(), 0u);
  EXPECT_TRUE(cluster_.IsBrokerUp(coord));  // restarted
}

TEST_F(ClientTest, JoinUnknownTopicFails) {
  KafkaConsumer consumer(&cluster_, "client", "dyn");
  EXPECT_TRUE(consumer.SubscribeDynamic("ghost").IsNotFound());
  EXPECT_TRUE(consumer.SubscribeDynamic("t").ok());
  EXPECT_EQ(consumer.SubscribeDynamic("t").code(),
            crayfish::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace crayfish::broker
