#include "common/json.h"

#include <gtest/gtest.h>

namespace crayfish {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(3.5).is_number());
  EXPECT_TRUE(JsonValue("x").is_string());
  EXPECT_TRUE(JsonValue::MakeArray().is_array());
  EXPECT_TRUE(JsonValue::MakeObject().is_object());
}

TEST(JsonValueTest, DumpScalars) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-3).Dump(), "-3");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonValueTest, IntegralDoublesRenderWithoutFraction) {
  EXPECT_EQ(JsonValue(1000000.0).Dump(), "1000000");
}

TEST(JsonValueTest, DumpNestedStructure) {
  JsonValue obj = JsonValue::MakeObject();
  obj["id"] = 7;
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(1);
  arr.Append(2);
  obj["shape"] = std::move(arr);
  EXPECT_EQ(obj.Dump(), "{\"id\":7,\"shape\":[1,2]}");
}

TEST(JsonValueTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_TRUE(JsonValue::Parse("true")->as_bool());
  EXPECT_FALSE(JsonValue::Parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-1e3")->as_number(), -1000.0);
  EXPECT_EQ(JsonValue::Parse("\"abc\"")->as_string(), "abc");
}

TEST(JsonParseTest, ParsesNestedDocument) {
  auto v = JsonValue::Parse(
      R"({"a": [1, 2, {"b": "c"}], "d": null, "e": true})");
  ASSERT_TRUE(v.ok());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(a->as_array()[2].Find("b")->as_string(), "c");
  EXPECT_TRUE(v->Find("d")->is_null());
  EXPECT_TRUE(v->Find("e")->as_bool());
}

TEST(JsonParseTest, RoundTripsDump) {
  const std::string text =
      R"({"batch":[0.25,0.5],"id":3,"meta":{"kind":"ffnn","ok":true}})";
  auto v = JsonValue::Parse(text);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Dump(), text);
  auto again = JsonValue::Parse(v->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*v == *again);
}

TEST(JsonParseTest, ParsesUnicodeEscapes) {
  auto v = JsonValue::Parse("\"a\\u00e9b\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\xc3\xa9" "b");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} extra").ok());
}

TEST(JsonParseTest, SkipsWhitespaceEverywhere) {
  auto v = JsonValue::Parse("  {  \"a\" :\n [ 1 ,\t2 ]  }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->size(), 2u);
}

TEST(JsonValueTest, TypedLookupsWithDefaults) {
  auto v = JsonValue::Parse(R"({"n": 5, "s": "x", "b": false})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetIntOr("n", -1), 5);
  EXPECT_EQ(v->GetIntOr("missing", -1), -1);
  EXPECT_EQ(v->GetStringOr("s", "d"), "x");
  EXPECT_EQ(v->GetStringOr("n", "d"), "d");  // wrong type -> default
  EXPECT_FALSE(v->GetBoolOr("b", true));
  EXPECT_DOUBLE_EQ(v->GetNumberOr("n", 0.0), 5.0);
}

TEST(JsonValueTest, PrettyPrintContainsNewlinesAndIndent) {
  JsonValue obj = JsonValue::MakeObject();
  obj["k"] = 1;
  const std::string pretty = obj.DumpPretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("  \"k\": 1"), std::string::npos);
}

TEST(JsonValueTest, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(JsonValue(3).Find("x"), nullptr);
  EXPECT_EQ(JsonValue::MakeArray().Find("x"), nullptr);
}

}  // namespace
}  // namespace crayfish
