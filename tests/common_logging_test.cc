#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sim/simulation.h"

namespace crayfish {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelGateControlsEmission) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(internal_logging::LevelEnabled(LogLevel::kDebug));
  EXPECT_FALSE(internal_logging::LevelEnabled(LogLevel::kInfo));
  EXPECT_TRUE(internal_logging::LevelEnabled(LogLevel::kWarning));
  EXPECT_TRUE(internal_logging::LevelEnabled(LogLevel::kError));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(internal_logging::LevelEnabled(LogLevel::kDebug));
}

TEST_F(LoggingTest, DisabledLevelsDoNotEvaluateStreamedExpressions) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  CRAYFISH_LOG(Debug) << expensive();
  CRAYFISH_LOG(Info) << expensive();
  EXPECT_EQ(evaluations, 0);
  CRAYFISH_LOG(Error) << "test-expected error line: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, CheckPassesSilentlyOnTrue) {
  CRAYFISH_CHECK(true) << "never shown";
  CRAYFISH_CHECK_EQ(2 + 2, 4);
  CRAYFISH_CHECK_LT(1, 2);
  CRAYFISH_CHECK_GE(2, 2);
  CRAYFISH_CHECK_OK(Status::Ok());
}

TEST_F(LoggingTest, SinkCapturesFormattedLines) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> lines;
  LogSink prev = SetLogSink([&](LogLevel level, const std::string& line) {
    lines.emplace_back(level, line);
  });
  CRAYFISH_LOG(Info) << "captured line";
  CRAYFISH_LOG(Warning) << "warned";
  SetLogSink(std::move(prev));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, LogLevel::kInfo);
  EXPECT_NE(lines[0].second.find("[INFO"), std::string::npos);
  EXPECT_NE(lines[0].second.find("captured line"), std::string::npos);
  EXPECT_EQ(lines[1].first, LogLevel::kWarning);
  // The previous sink (stderr) is restored: nothing new reaches ours.
  CRAYFISH_LOG(Error) << "test-expected error line: after sink restore";
  EXPECT_EQ(lines.size(), 2u);
}

TEST_F(LoggingTest, SimClockStampsAndRestores) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  LogSink prev_sink = SetLogSink(
      [&](LogLevel, const std::string& line) { lines.push_back(line); });
  LogSimClock prev_clock = SetLogSimClock([]() { return 12.5; });
  CRAYFISH_LOG(Info) << "timed";
  SetLogSimClock(std::move(prev_clock));
  CRAYFISH_LOG(Info) << "untimed";
  SetLogSink(std::move(prev_sink));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("@ 12.500000s"), std::string::npos);
  EXPECT_EQ(lines[1].find(" @ "), std::string::npos);
}

TEST_F(LoggingTest, SimulationRunInstallsItsClock) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  LogSink prev_sink = SetLogSink(
      [&](LogLevel, const std::string& line) { lines.push_back(line); });
  sim::Simulation sim(1);
  sim.Schedule(3.25, []() { CRAYFISH_LOG(Info) << "inside event"; });
  sim.Run(10.0);
  CRAYFISH_LOG(Info) << "outside run";
  SetLogSink(std::move(prev_sink));
  ASSERT_EQ(lines.size(), 2u);
  // Inside Run the log line carries the simulated clock; outside, Run has
  // restored whatever clock was installed before (none).
  EXPECT_NE(lines[0].find("@ 3.250000s"), std::string::npos);
  EXPECT_EQ(lines[1].find(" @ "), std::string::npos);
}

using LoggingDeathTest = LoggingTest;

TEST_F(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CRAYFISH_CHECK(1 == 2) << "boom"; }, "Check failed: 1 == 2");
}

TEST_F(LoggingDeathTest, CheckOkAbortsWithStatusMessage) {
  EXPECT_DEATH({ CRAYFISH_CHECK_OK(Status::NotFound("missing topic")); },
               "missing topic");
}

TEST_F(LoggingDeathTest, ComparisonMacrosAbortWithExpression) {
  EXPECT_DEATH({ CRAYFISH_CHECK_EQ(3, 4); }, "Check failed");
  EXPECT_DEATH({ CRAYFISH_CHECK_GT(1, 5); }, "Check failed");
}

}  // namespace
}  // namespace crayfish
