#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace crayfish {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelGateControlsEmission) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(internal_logging::LevelEnabled(LogLevel::kDebug));
  EXPECT_FALSE(internal_logging::LevelEnabled(LogLevel::kInfo));
  EXPECT_TRUE(internal_logging::LevelEnabled(LogLevel::kWarning));
  EXPECT_TRUE(internal_logging::LevelEnabled(LogLevel::kError));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(internal_logging::LevelEnabled(LogLevel::kDebug));
}

TEST_F(LoggingTest, DisabledLevelsDoNotEvaluateStreamedExpressions) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  CRAYFISH_LOG(Debug) << expensive();
  CRAYFISH_LOG(Info) << expensive();
  EXPECT_EQ(evaluations, 0);
  CRAYFISH_LOG(Error) << "test-expected error line: " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, CheckPassesSilentlyOnTrue) {
  CRAYFISH_CHECK(true) << "never shown";
  CRAYFISH_CHECK_EQ(2 + 2, 4);
  CRAYFISH_CHECK_LT(1, 2);
  CRAYFISH_CHECK_GE(2, 2);
  CRAYFISH_CHECK_OK(Status::Ok());
}

using LoggingDeathTest = LoggingTest;

TEST_F(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CRAYFISH_CHECK(1 == 2) << "boom"; }, "Check failed: 1 == 2");
}

TEST_F(LoggingDeathTest, CheckOkAbortsWithStatusMessage) {
  EXPECT_DEATH({ CRAYFISH_CHECK_OK(Status::NotFound("missing topic")); },
               "missing topic");
}

TEST_F(LoggingDeathTest, ComparisonMacrosAbortWithExpression) {
  EXPECT_DEATH({ CRAYFISH_CHECK_EQ(3, 4); }, "Check failed");
  EXPECT_DEATH({ CRAYFISH_CHECK_GT(1, 5); }, "Check failed");
}

}  // namespace
}  // namespace crayfish
