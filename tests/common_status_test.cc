#include "common/status.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace crayfish {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::NotFound("topic missing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "topic missing");
  EXPECT_EQ(s.ToString(), "NotFound: topic missing");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  const StatusCode codes[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition,
      StatusCode::kResourceExhausted,
      StatusCode::kUnimplemented,
      StatusCode::kInternal,
      StatusCode::kIoError,
      StatusCode::kTimeout,
      StatusCode::kCorruption,
  };
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_STRNE(StatusCodeName(codes[i]), StatusCodeName(codes[j]));
    }
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::IoError("x"));
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::Timeout("").IsTimeout());
  EXPECT_FALSE(Status::Ok().IsNotFound());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v.value_or("fallback"), "hello");
}

TEST(StatusOrTest, MoveOnlyTypesSupported) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperatorAccessesMembers) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsePositive(int x, int* out) {
  CRAYFISH_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesErrors) {
  int out = 0;
  EXPECT_TRUE(UsePositive(5, &out).ok());
  EXPECT_EQ(out, 10);
  Status s = UsePositive(-1, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(out, 10);  // untouched on error
}

Status ChainTwo(bool fail_first) {
  CRAYFISH_RETURN_IF_ERROR(fail_first ? Status::Internal("first")
                                      : Status::Ok());
  return Status::IoError("second");
}

TEST(StatusMacrosTest, ReturnIfErrorShortCircuits) {
  EXPECT_EQ(ChainTwo(true).code(), StatusCode::kInternal);
  EXPECT_EQ(ChainTwo(false).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace crayfish
