#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"

namespace crayfish {
namespace {

// ---------------------------------------------------------------- bytes --

TEST(BytesTest, RoundTripsScalars) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutF32(1.5f);
  w.PutF64(-2.25);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_EQ(*r.GetF32(), 1.5f);
  EXPECT_EQ(*r.GetF64(), -2.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, RoundTripsStringsBlocksArrays) {
  ByteWriter w;
  w.PutString("crayfish");
  const uint8_t blob[] = {1, 2, 3};
  w.PutBlock(blob, sizeof(blob));
  const float floats[] = {0.5f, -0.25f, 3.0f};
  w.PutF32Array(floats, 3);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetString(), "crayfish");
  Bytes block = *r.GetBlock();
  ASSERT_EQ(block.size(), 3u);
  EXPECT_EQ(block[2], 3);
  std::vector<float> arr = *r.GetF32Array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[1], -0.25f);
}

TEST(BytesTest, TruncationYieldsCorruption) {
  ByteWriter w;
  w.PutU64(1);
  ByteReader r(w.bytes().data(), 4);  // cut in half
  auto v = r.GetU64();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, StringLengthBeyondBufferIsCorruption) {
  ByteWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(BytesTest, EmptyStringAndArray) {
  ByteWriter w;
  w.PutString("");
  w.PutF32Array(nullptr, 0);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_TRUE(r.GetF32Array()->empty());
}

// ---------------------------------------------------------------- config --

TEST(ConfigTest, ParsesProperties) {
  auto cfg = Config::FromProperties(
      "# comment\n"
      "bsz = 32\n"
      "engine= flink \n"
      "\n"
      "rate = 1.5\n"
      "gpu = true\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(*cfg->GetInt("bsz"), 32);
  EXPECT_EQ(*cfg->GetString("engine"), "flink");
  EXPECT_DOUBLE_EQ(*cfg->GetDouble("rate"), 1.5);
  EXPECT_TRUE(*cfg->GetBool("gpu"));
}

TEST(ConfigTest, RejectsMalformedLines) {
  EXPECT_FALSE(Config::FromProperties("novalue\n").ok());
  EXPECT_FALSE(Config::FromProperties("= x\n").ok());
}

TEST(ConfigTest, LaterKeysOverrideEarlier) {
  auto cfg = Config::FromProperties("a = 1\na = 2\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(*cfg->GetInt("a"), 2);
}

TEST(ConfigTest, TypeErrorsAreReported) {
  Config cfg;
  cfg.Set("x", "hello");
  EXPECT_FALSE(cfg.GetInt("x").ok());
  EXPECT_FALSE(cfg.GetDouble("x").ok());
  EXPECT_FALSE(cfg.GetBool("x").ok());
  EXPECT_FALSE(cfg.GetString("missing").ok());
}

TEST(ConfigTest, IntegralDoubleReadsAsInt) {
  Config cfg;
  cfg.SetDouble("n", 16.0);
  EXPECT_EQ(*cfg.GetInt("n"), 16);
}

TEST(ConfigTest, DefaultsAndScope) {
  Config cfg;
  cfg.Set("flink.buffer", "32768");
  cfg.Set("spark.trigger", "0.1");
  EXPECT_EQ(cfg.GetIntOr("flink.buffer", 0), 32768);
  EXPECT_EQ(cfg.GetIntOr("missing", 7), 7);
  Config flink = cfg.Scope("flink.");
  EXPECT_EQ(flink.size(), 1u);
  EXPECT_EQ(*flink.GetInt("buffer"), 32768);
}

TEST(ConfigTest, FromJsonFlattensNestedObjects) {
  auto cfg = Config::FromJson(
      R"({"flink": {"parallelism": 4}, "model": "ffnn", "gpu": false})");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(*cfg->GetInt("flink.parallelism"), 4);
  EXPECT_EQ(*cfg->GetString("model"), "ffnn");
  EXPECT_FALSE(*cfg->GetBool("gpu"));
}

TEST(ConfigTest, MergePrefersOther) {
  Config a;
  a.Set("k", "1");
  a.Set("only_a", "x");
  Config b;
  b.Set("k", "2");
  a.Merge(b);
  EXPECT_EQ(*a.GetInt("k"), 2);
  EXPECT_TRUE(a.Has("only_a"));
}

// ----------------------------------------------------------------- stats --

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSetTest, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(95), 95.05, 1e-9);
}

TEST(SampleSetTest, DiscardWarmupDropsPrefix) {
  SampleSet s;
  for (int i = 0; i < 100; ++i) s.Add(i < 25 ? 1000.0 : 1.0);
  s.DiscardWarmup(0.25);
  EXPECT_EQ(s.count(), 75u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(SampleSetTest, StddevOfConstantIsZero) {
  SampleSet s;
  for (int i = 0; i < 10; ++i) s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(HistogramTest, PercentileApproximatesDistribution) {
  Histogram h(0.1, 1000.0, 64);
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.Percentile(50);
  EXPECT_GT(p50, 300.0);
  EXPECT_LT(p50, 800.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(1.0, 100.0, 10);
  h.Add(0.0001);
  h.Add(1e9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 1u);
}

TEST(HistogramTest, MergeIsEquivalentToAddingEverySample) {
  // Partitioning a stream across shards and merging the shard histograms
  // must reproduce the single-histogram result bucket for bucket — the
  // property the telemetry timeline's per-window roll-up relies on.
  Histogram whole(0.1, 1000.0, 64);
  Histogram shard_a(0.1, 1000.0, 64);
  Histogram shard_b(0.1, 1000.0, 64);
  for (int i = 1; i <= 1000; ++i) {
    const double x = static_cast<double>(i);
    whole.Add(x);
    (i % 3 == 0 ? shard_a : shard_b).Add(x);
  }
  shard_a.Merge(shard_b);
  ASSERT_EQ(shard_a.count(), whole.count());
  for (size_t i = 0; i < whole.num_buckets(); ++i) {
    EXPECT_EQ(shard_a.bucket_count(i), whole.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(shard_a.Percentile(50), whole.Percentile(50));
  EXPECT_DOUBLE_EQ(shard_a.Percentile(99), whole.Percentile(99));
}

TEST(HistogramTest, MergeIntoEmptyAndOfEmptyAreIdentities) {
  Histogram a(0.1, 1000.0, 64);
  Histogram b(0.1, 1000.0, 64);
  a.Add(5.0);
  const double p50 = a.Percentile(50);
  a.Merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.Percentile(50), p50);
  b.Merge(a);  // empty lhs: copies the distribution
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.Percentile(50), p50);
}

TEST(HistogramDeathTest, MergeChecksBucketGeometry) {
  Histogram coarse(0.1, 1000.0, 32);
  Histogram fine(0.1, 1000.0, 64);
  Histogram shifted(0.2, 1000.0, 32);
  EXPECT_DEATH(coarse.Merge(fine), "");
  EXPECT_DEATH(coarse.Merge(shifted), "");
}

TEST(WindowedThroughputTest, RatesPerWindow) {
  WindowedThroughput wt(1.0);
  for (int i = 0; i < 10; ++i) wt.Record(0.5);      // 10 in window 0
  for (int i = 0; i < 20; ++i) wt.Record(1.5);      // 20 in window 1
  wt.Record(3.2, 5);                                 // 5 in window 3
  auto rates = wt.RatesPerSecond();
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 20.0);
  EXPECT_DOUBLE_EQ(rates[2], 0.0);
  EXPECT_DOUBLE_EQ(rates[3], 5.0);
}

TEST(WindowedThroughputTest, SteadyStateSkipsWarmup) {
  WindowedThroughput wt(1.0);
  for (int w = 0; w < 10; ++w) {
    const int events = w < 5 ? 1 : 100;
    for (int i = 0; i < events; ++i) {
      wt.Record(w + 0.5);
    }
  }
  EXPECT_NEAR(wt.SteadyStateRate(0.5), 100.0, 1e-9);
}

// ------------------------------------------------------------------- rng --

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedValuesInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(99);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.02);
}

TEST(RngTest, GammaMeanIsShapeTimesScale) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Gamma(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 6.0, 0.3);
  // Gamma(k, theta) variance = k * theta^2 = 12.
  EXPECT_NEAR(s.variance(), 12.0, 1.5);
}

TEST(RngTest, GammaSupportsShapeBelowOne) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Gamma(0.5, 1.0);
    EXPECT_GE(x, 0.0);
    s.Add(x);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.05);
}

TEST(RngTest, LogNormalWithMeanOneMultiplier) {
  Rng rng(21);
  RunningStats s;
  const double sigma = 0.2;
  for (int i = 0; i < 20000; ++i) {
    s.Add(rng.LogNormal(-0.5 * sigma * sigma, sigma));
  }
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng parent_copy(42);
  parent_copy.Fork();
  EXPECT_EQ(a.NextUint64(), parent_copy.NextUint64());
  std::set<uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(child.NextUint64());
  EXPECT_EQ(seen.size(), 32u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(77);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace crayfish
