#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.h"

#include "broker/cluster.h"
#include "core/data_batch.h"
#include "core/generator.h"
#include "core/input_producer.h"
#include "core/metrics.h"
#include "core/output_consumer.h"
#include "common/json.h"
#include "core/report.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish::core {
namespace {

// ------------------------------------------------------------ data batch --

TEST(DataBatchTest, JsonRoundTrip) {
  CrayfishDataBatch batch;
  batch.id = 42;
  batch.created_at = 1.5;
  batch.shape = {2, 2};
  batch.data = {0.125f, 0.25f, 0.5f, 0.75f, 1.0f, 0.0f, 0.5f, 0.25f};
  const std::string json = batch.ToJson();
  auto back = CrayfishDataBatch::FromJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->id, 42u);
  EXPECT_NEAR(back->created_at, 1.5, 1e-6);
  EXPECT_EQ(back->shape, batch.shape);
  EXPECT_EQ(back->batch_size(), 2);
  ASSERT_EQ(back->data.size(), 8u);
  EXPECT_NEAR(back->data[3], 0.75f, 1e-3f);
}

TEST(DataBatchTest, RejectsMalformedJson) {
  EXPECT_FALSE(CrayfishDataBatch::FromJson("{}").ok());
  EXPECT_FALSE(CrayfishDataBatch::FromJson("[1,2]").ok());
  EXPECT_FALSE(
      CrayfishDataBatch::FromJson(R"({"shape":[2],"data":[1,2,3]})").ok());
  EXPECT_FALSE(
      CrayfishDataBatch::FromJson(R"({"shape":["x"],"data":[]})").ok());
}

TEST(DataBatchTest, TensorRoundTrip) {
  crayfish::Rng rng(3);
  tensor::Tensor t = tensor::Tensor::Random(tensor::Shape{3, 4, 4}, &rng);
  CrayfishDataBatch batch = CrayfishDataBatch::FromTensor(9, 2.0, t);
  EXPECT_EQ(batch.batch_size(), 3);
  EXPECT_EQ(batch.shape, (std::vector<int64_t>{4, 4}));
  auto back = batch.ToTensor();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->AllClose(t, 0.0f));
}

TEST(DataBatchTest, WireSizeAccountingTracksRealJson) {
  // The analytic ~4 bytes/element must track a really serialized batch.
  crayfish::Rng rng(5);
  DataGenerator gen({28, 28}, 1, rng);
  CrayfishDataBatch batch = gen.NextMaterialized(0.0);
  const double real = static_cast<double>(batch.ToJson().size());
  const double accounted = static_cast<double>(gen.BatchWireBytes());
  EXPECT_NEAR(accounted, real, real * 0.35);
}

// -------------------------------------------------------------- schedule --

TEST(RateScheduleTest, ConstantRate) {
  RateSchedule s;
  s.base_rate = 100.0;
  EXPECT_DOUBLE_EQ(s.RateAt(0.0), 100.0);
  EXPECT_DOUBLE_EQ(s.RateAt(1000.0), 100.0);
  EXPECT_FALSE(s.InBurst(50.0));
}

TEST(RateScheduleTest, PeriodicBursts) {
  RateSchedule s;
  s.base_rate = 70.0;
  s.bursty = true;
  s.burst_rate = 110.0;
  s.burst_duration_s = 30.0;
  s.time_between_bursts_s = 120.0;
  s.first_burst_at_s = 60.0;
  EXPECT_FALSE(s.InBurst(0.0));
  EXPECT_FALSE(s.InBurst(59.9));
  EXPECT_TRUE(s.InBurst(60.0));
  EXPECT_TRUE(s.InBurst(89.9));
  EXPECT_FALSE(s.InBurst(90.1));
  // Next cycle at 60 + 150.
  EXPECT_TRUE(s.InBurst(210.5));
  EXPECT_DOUBLE_EQ(s.RateAt(75.0), 110.0);
  EXPECT_DOUBLE_EQ(s.RateAt(100.0), 70.0);
}

// ------------------------------------------------------------- generator --

TEST(DataGeneratorTest, MetadataOnlyBatchesHaveIdsAndShape) {
  crayfish::Rng rng(9);
  DataGenerator gen({28, 28}, 4, rng);
  CrayfishDataBatch a = gen.NextMetadataOnly(1.0);
  CrayfishDataBatch b = gen.NextMetadataOnly(2.0);
  EXPECT_EQ(a.id, 0u);
  EXPECT_EQ(b.id, 1u);
  EXPECT_EQ(a.shape, (std::vector<int64_t>{28, 28}));
  EXPECT_TRUE(a.data.empty());
  EXPECT_DOUBLE_EQ(b.created_at, 2.0);
}

TEST(DataGeneratorTest, MaterializedBatchHasCorrectSizeAndRange) {
  crayfish::Rng rng(9);
  DataGenerator gen({4, 4}, 3, rng);
  CrayfishDataBatch batch = gen.NextMaterialized(0.0);
  EXPECT_EQ(batch.data.size(), 48u);
  EXPECT_EQ(batch.batch_size(), 3);
  for (float v : batch.data) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(DataGeneratorTest, WireBytesScaleWithBatchSize) {
  crayfish::Rng rng(1);
  DataGenerator g1({28, 28}, 1, rng);
  DataGenerator g8({28, 28}, 8, rng);
  EXPECT_GT(g8.BatchWireBytes(), 7 * g1.BatchWireBytes());
}

// --------------------------------------------------- producer + consumer --

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : sim_(5), network_(&sim_), cluster_(&sim_, &network_, {}) {
    CRAYFISH_CHECK_OK(cluster_.CreateTopic("crayfish-in", 8));
    CRAYFISH_CHECK_OK(cluster_.CreateTopic("crayfish-out", 8));
  }
  sim::Simulation sim_;
  sim::Network network_;
  broker::KafkaCluster cluster_;
};

TEST_F(PipelineTest, ProducerHonorsConstantRate) {
  crayfish::Rng rng(5);
  InputProducer::Options opts;
  opts.schedule.base_rate = 100.0;
  opts.stop_at_s = 2.0;
  InputProducer producer(&sim_, &cluster_, DataGenerator({28, 28}, 1, rng),
                         opts);
  producer.Start();
  sim_.Run(5.0);
  EXPECT_NEAR(static_cast<double>(producer.events_sent()), 200.0, 3.0);
}

TEST_F(PipelineTest, ProducerStopsAtMaxEvents) {
  crayfish::Rng rng(5);
  InputProducer::Options opts;
  opts.schedule.base_rate = 1000.0;
  opts.max_events = 50;
  InputProducer producer(&sim_, &cluster_, DataGenerator({28, 28}, 1, rng),
                         opts);
  producer.Start();
  sim_.Run(5.0);
  EXPECT_EQ(producer.events_sent(), 50u);
}

TEST_F(PipelineTest, ProducerRecordsStartTimestamps) {
  crayfish::Rng rng(5);
  InputProducer::Options opts;
  opts.schedule.base_rate = 10.0;
  opts.max_events = 5;
  InputProducer producer(&sim_, &cluster_, DataGenerator({28, 28}, 1, rng),
                         opts);
  producer.Start();
  sim_.Run(2.0);
  int64_t total = 0;
  for (int p = 0; p < 8; ++p) {
    broker::Partition* part =
        *cluster_.GetPartition(broker::TopicPartition{"crayfish-in", p});
    std::vector<broker::Record> out;
    CRAYFISH_CHECK_OK(part->Fetch(0, 100, 1 << 30, &out));
    for (const broker::Record& r : out) {
      ++total;
      EXPECT_GE(r.create_time, 0.0);
      EXPECT_GT(r.log_append_time, r.create_time);
      EXPECT_GT(r.wire_size, 3000u);  // ~3 KB FFNN point
    }
  }
  EXPECT_EQ(total, 5);
}

TEST_F(PipelineTest, OutputConsumerComputesLatencies) {
  // Write scored records straight to the output topic and verify the
  // consumer extracts create->append latencies.
  OutputConsumer consumer(&sim_, &cluster_, {});
  consumer.Start();
  broker::KafkaProducer producer(&cluster_, "consumer");
  for (int i = 0; i < 6; ++i) {
    broker::Record r;
    r.batch_id = static_cast<uint64_t>(i);
    r.create_time = 0.0;
    r.batch_size = 2;
    r.wire_size = 200;
    CRAYFISH_CHECK_OK(producer.Send("crayfish-out", std::move(r)));
  }
  producer.Flush();
  sim_.Run(3.0);
  ASSERT_EQ(consumer.count(), 6u);
  for (const Measurement& m : consumer.measurements()) {
    EXPECT_GT(m.latency_s(), 0.0);
    EXPECT_EQ(m.batch_size, 2u);
  }
}

TEST_F(PipelineTest, OutputConsumerStopsAtMaxMeasurements) {
  OutputConsumer::Options opts;
  opts.max_measurements = 3;
  OutputConsumer consumer(&sim_, &cluster_, opts);
  consumer.Start();
  broker::KafkaProducer producer(&cluster_, "consumer");
  for (int i = 0; i < 10; ++i) {
    broker::Record r;
    r.batch_id = static_cast<uint64_t>(i);
    CRAYFISH_CHECK_OK(producer.Send("crayfish-out", std::move(r)));
  }
  producer.Flush();
  sim_.Run(3.0);
  EXPECT_EQ(consumer.count(), 3u);
  EXPECT_TRUE(consumer.done());
}

// --------------------------------------------------------------- metrics --

std::vector<Measurement> SyntheticMeasurements(int n, double latency_s,
                                               double rate) {
  std::vector<Measurement> ms;
  for (int i = 0; i < n; ++i) {
    Measurement m;
    m.batch_id = static_cast<uint64_t>(i);
    m.create_time = i / rate;
    m.append_time = m.create_time + latency_s;
    ms.push_back(m);
  }
  return ms;
}

TEST(MetricsAnalyzerTest, SummarizeComputesThroughputAndLatency) {
  auto ms = SyntheticMeasurements(1000, 0.050, 100.0);
  MetricsSummary s = MetricsAnalyzer::Summarize(ms, 0.25);
  EXPECT_EQ(s.measurements, 750u);
  EXPECT_NEAR(s.latency_mean_ms, 50.0, 1e-6);
  EXPECT_NEAR(s.latency_p99_ms, 50.0, 1e-6);
  EXPECT_NEAR(s.throughput_eps, 100.0, 1.0);
}

TEST(MetricsAnalyzerTest, WarmupDiscardRemovesColdStart) {
  // First quarter (in append-time order) pathologically slow (JVM
  // warmup): events spaced 1 s apart, 500 ms latency early vs 10 ms later.
  std::vector<Measurement> ms;
  for (int i = 0; i < 100; ++i) {
    Measurement m;
    m.create_time = i;
    m.append_time = m.create_time + (i < 25 ? 0.5 : 0.010);
    ms.push_back(m);
  }
  MetricsSummary with = MetricsAnalyzer::Summarize(ms, 0.25);
  EXPECT_NEAR(with.latency_mean_ms, 10.0, 1.0);
  MetricsSummary without = MetricsAnalyzer::Summarize(ms, 0.0);
  EXPECT_GT(without.latency_mean_ms, 100.0);
}

TEST(MetricsAnalyzerTest, EmptyInputYieldsZeroSummary) {
  MetricsSummary s = MetricsAnalyzer::Summarize({}, 0.25);
  EXPECT_EQ(s.measurements, 0u);
  EXPECT_EQ(s.throughput_eps, 0.0);
}

TEST(MetricsAnalyzerTest, ThroughputSeriesBucketsByAppendTime) {
  auto ms = SyntheticMeasurements(100, 0.0, 50.0);  // 2 seconds of data
  auto series = MetricsAnalyzer::ThroughputSeries(ms, 1.0);
  ASSERT_GE(series.size(), 2u);
  EXPECT_NEAR(series[0], 50.0, 1.0);
  EXPECT_NEAR(series[1], 50.0, 1.0);
}

TEST(MetricsAnalyzerTest, BurstRecoveryDetectsStabilization) {
  // Latency 10 ms normally; a burst at t=60..90 drives latency to 500 ms,
  // decaying back by t=130.
  std::vector<Measurement> ms;
  for (int t = 0; t < 300; ++t) {
    for (int k = 0; k < 10; ++k) {
      Measurement m;
      double latency = 0.010;
      if (t >= 60 && t < 90) {
        latency = 0.5;
      } else if (t >= 90 && t < 130) {
        latency = 0.5 * (130 - t) / 40.0 + 0.010;
      }
      m.append_time = t + k * 0.1;
      m.create_time = m.append_time - latency;
      ms.push_back(m);
    }
  }
  RateSchedule schedule;
  schedule.bursty = true;
  schedule.base_rate = 70;
  schedule.burst_rate = 110;
  schedule.burst_duration_s = 30;
  schedule.time_between_bursts_s = 120;
  schedule.first_burst_at_s = 60;
  auto recoveries =
      MetricsAnalyzer::BurstRecoveryTimes(ms, schedule, 300.0);
  ASSERT_GE(recoveries.size(), 1u);
  EXPECT_DOUBLE_EQ(recoveries[0].burst_end_s, 90.0);
  EXPECT_GT(recoveries[0].recovery_s, 20.0);
  EXPECT_LT(recoveries[0].recovery_s, 45.0);
}

TEST(MetricsAnalyzerTest, NonBurstyScheduleYieldsNoRecoveries) {
  auto ms = SyntheticMeasurements(10, 0.01, 10.0);
  RateSchedule schedule;  // not bursty
  EXPECT_TRUE(
      MetricsAnalyzer::BurstRecoveryTimes(ms, schedule, 100.0).empty());
}


TEST(MetricsAnalyzerTest, TimeSeriesBucketsLatencyAndThroughput) {
  auto ms = SyntheticMeasurements(200, 0.020, 100.0);  // 2 s of data
  auto series = MetricsAnalyzer::TimeSeries(ms, 0.5);
  ASSERT_GE(series.size(), 4u);
  // The trailing window is partially filled; check the full ones.
  for (size_t i = 0; i + 1 < series.size(); ++i) {
    const WindowStats& w = series[i];
    EXPECT_NEAR(w.throughput_eps, 100.0, 10.0);
    EXPECT_NEAR(w.latency_mean_ms, 20.0, 1e-6);
    EXPECT_NEAR(w.latency_p95_ms, 20.0, 1e-6);
  }
  EXPECT_DOUBLE_EQ(series[1].window_start_s, 0.5);
}

TEST(MetricsAnalyzerTest, TimeSeriesOmitsEmptyWindows) {
  std::vector<Measurement> ms;
  Measurement a;
  a.create_time = 0.0;
  a.append_time = 0.1;
  ms.push_back(a);
  Measurement b;
  b.create_time = 10.0;
  b.append_time = 10.1;
  ms.push_back(b);
  auto series = MetricsAnalyzer::TimeSeries(ms, 1.0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].window_start_s, 0.0);
  EXPECT_DOUBLE_EQ(series[1].window_start_s, 10.0);
}

TEST(MetricsSummaryTest, JsonRoundTripsThroughParser) {
  auto ms = SyntheticMeasurements(100, 0.015, 50.0);
  MetricsSummary s = MetricsAnalyzer::Summarize(ms);
  auto parsed = crayfish::JsonValue::Parse(s.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetIntOr("measurements", -1),
            static_cast<int64_t>(s.measurements));
  EXPECT_NEAR(parsed->GetNumberOr("latency_mean_ms", 0.0),
              s.latency_mean_ms, 1e-9);
}

TEST(MetricsAnalyzerTest, WritesMeasurementsCsv) {
  auto ms = SyntheticMeasurements(5, 0.010, 100.0);
  const std::string path = ::testing::TempDir() + "/crayfish_meas.csv";
  ASSERT_TRUE(MetricsAnalyzer::WriteMeasurementsCsv(path, ms).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "batch_id,create_time_s,append_time_s,latency_ms,batch_size");
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 5);
  std::filesystem::remove(path);
}

TEST(MetricsSummaryTest, EmptyLogStillProducesValidJson) {
  MetricsSummary s = MetricsAnalyzer::Summarize({}, 0.25);
  auto parsed = crayfish::JsonValue::Parse(s.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetIntOr("measurements", -1), 0);
  EXPECT_DOUBLE_EQ(parsed->GetNumberOr("throughput_eps", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(parsed->GetNumberOr("latency_mean_ms", -1.0), 0.0);
}

TEST(MetricsAnalyzerTest, WriteMeasurementsCsvToUnwritablePathFails) {
  auto ms = SyntheticMeasurements(3, 0.010, 100.0);
  const crayfish::Status s = MetricsAnalyzer::WriteMeasurementsCsv(
      "/nonexistent-dir/crayfish_meas.csv", ms);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("cannot open"), std::string::npos);
}

TEST(MetricsAnalyzerTest, WriteMeasurementsCsvEmptyLogWritesHeaderOnly) {
  const std::string path = ::testing::TempDir() + "/crayfish_empty.csv";
  ASSERT_TRUE(MetricsAnalyzer::WriteMeasurementsCsv(path, {}).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header,
            "batch_id,create_time_s,append_time_s,latency_ms,batch_size");
  std::string rest;
  EXPECT_FALSE(static_cast<bool>(std::getline(in, rest)));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- report --

TEST(ReportTableTest, RendersAlignedTable) {
  ReportTable table("Table 4", {"Tool", "Throughput"});
  table.AddRow({"onnx", ReportTable::Num(1373.07)});
  table.AddRow({"tf-serving", ReportTable::Num(617.2)});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("== Table 4 =="), std::string::npos);
  EXPECT_NE(s.find("onnx"), std::string::npos);
  EXPECT_NE(s.find("1373.07"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(ReportTableTest, NumFormatsPrecision) {
  EXPECT_EQ(ReportTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(ReportTable::Num(3.0, 0), "3");
}

TEST(ReportTableTest, WritesCsvWithEscaping) {
  ReportTable table("t", {"a", "b"});
  table.AddRow({"x,y", "plain"});
  table.AddRow({"quote\"inside", "2"});
  const std::string path = ::testing::TempDir() + "/crayfish_report.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",plain");
  std::getline(in, line);
  EXPECT_EQ(line, "\"quote\"\"inside\",2");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace crayfish::core
