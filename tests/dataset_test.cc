#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/dataset.h"
#include "core/experiment.h"
#include "core/generator.h"

namespace crayfish::core {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/crayfish_dataset_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".jsonl";
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  std::vector<CrayfishDataBatch> MakeBatches(int n, int batch_size = 2) {
    crayfish::Rng rng(7);
    DataGenerator gen({4, 4}, batch_size, rng);
    std::vector<CrayfishDataBatch> batches;
    for (int i = 0; i < n; ++i) {
      batches.push_back(gen.NextMaterialized(static_cast<double>(i)));
    }
    return batches;
  }

  std::string path_;
};

TEST_F(DatasetTest, WriteLoadRoundTrip) {
  auto batches = MakeBatches(5);
  ASSERT_TRUE(WriteDataset(path_, batches).ok());
  auto loaded = LoadDataset(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 5u);
  EXPECT_EQ((*loaded)[3].shape, batches[3].shape);
  EXPECT_EQ((*loaded)[3].batch_size(), batches[3].batch_size());
  EXPECT_NEAR((*loaded)[3].data[7], batches[3].data[7], 1e-3f);
}

TEST_F(DatasetTest, MissingFileIsNotFound) {
  EXPECT_TRUE(LoadDataset("/nonexistent/ds.jsonl").status().IsNotFound());
}

TEST_F(DatasetTest, MalformedLineIsCorruption) {
  std::ofstream out(path_);
  out << MakeBatches(1)[0].ToJson() << "\n";
  out << "{not json\n";
  out.close();
  auto loaded = LoadDataset(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), crayfish::StatusCode::kCorruption);
}

TEST_F(DatasetTest, MixedShapesRejected) {
  auto a = MakeBatches(1)[0];
  crayfish::Rng rng(9);
  DataGenerator other({2, 2}, 2, rng);
  auto b = other.NextMaterialized(0.0);
  ASSERT_TRUE(WriteDataset(path_, {a, b}).ok());
  EXPECT_TRUE(LoadDataset(path_).status().IsInvalidArgument());
}

TEST_F(DatasetTest, EmptyDatasetRejected) {
  std::ofstream out(path_);
  out.close();
  EXPECT_TRUE(LoadDataset(path_).status().IsInvalidArgument());
}

TEST_F(DatasetTest, GeneratorReplayCyclesAndRestamps) {
  auto batches = MakeBatches(3);
  crayfish::Rng rng(11);
  DataGenerator gen(batches, rng);
  EXPECT_TRUE(gen.replaying_dataset());
  EXPECT_EQ(gen.batch_size(), 2);
  EXPECT_EQ(gen.sample_shape(), (std::vector<int64_t>{4, 4}));
  for (int i = 0; i < 7; ++i) {
    CrayfishDataBatch b = gen.NextMaterialized(100.0 + i);
    EXPECT_EQ(b.id, static_cast<uint64_t>(i));
    EXPECT_DOUBLE_EQ(b.created_at, 100.0 + i);
    // Content cycles through the dataset.
    EXPECT_NEAR(b.data[0], batches[static_cast<size_t>(i % 3)].data[0],
                1e-3f);
  }
}

TEST_F(DatasetTest, ReplayWireBytesTrackRealJson) {
  auto batches = MakeBatches(4);
  crayfish::Rng rng(13);
  DataGenerator gen(batches, rng);
  const double real =
      static_cast<double>(batches[0].ToJson().size());
  EXPECT_NEAR(static_cast<double>(gen.BatchWireBytes()), real, real * 0.1);
}

TEST_F(DatasetTest, ExperimentReplaysDatasetEndToEnd) {
  // A whole experiment fed from a file-backed dataset (§3.1's "read real
  // datasets" mode).
  crayfish::Rng rng(17);
  DataGenerator gen({28, 28}, 1, rng);
  std::vector<CrayfishDataBatch> batches;
  for (int i = 0; i < 8; ++i) {
    batches.push_back(gen.NextMaterialized(0.0));
  }
  ASSERT_TRUE(WriteDataset(path_, batches).ok());

  ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "onnx";
  cfg.dataset_path = path_;
  cfg.input_rate = 100.0;
  cfg.duration_s = 5.0;
  cfg.drain_s = 2.0;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->events_sent, 400u);
  EXPECT_EQ(result->events_scored, result->events_sent);
}

TEST_F(DatasetTest, ExperimentWithMissingDatasetFails) {
  ExperimentConfig cfg;
  cfg.dataset_path = "/no/such/file.jsonl";
  cfg.input_rate = 10.0;
  EXPECT_TRUE(RunExperiment(cfg).status().IsNotFound());
}

}  // namespace
}  // namespace crayfish::core
