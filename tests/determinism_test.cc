// Runtime witness for determinism rules R1-R3 (see DESIGN.md "Determinism
// rules"): the same configuration and seed must reproduce a run bit-for-bit
// — measurements, summary, and the full stage trace — while a different
// seed must actually change the stochastic workload.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "core/experiment.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace crayfish::core {
namespace {

ExperimentConfig SmallConfig(uint64_t seed) {
  ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "onnx";
  cfg.model = "ffnn";
  cfg.batch_size = 4;
  cfg.input_rate = 300.0;
  cfg.bursty = true;  // exercise the burst scheduler's RNG paths too
  cfg.burst_rate = 600.0;
  cfg.burst_duration_s = 2.0;
  cfg.time_between_bursts_s = 4.0;
  cfg.first_burst_at_s = 2.0;
  cfg.duration_s = 8.0;
  cfg.drain_s = 4.0;
  cfg.seed = seed;
  cfg.enable_tracing = true;
  return cfg;
}

/// Bit-exact rendering of a double: the decimal round trips of iostreams
/// could mask low-bit drift, which is exactly what this test exists to catch.
void AppendBits(std::ostringstream* os, double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  *os << std::hex << bits << std::dec << ",";
}

std::string Fingerprint(const ExperimentResult& r) {
  std::ostringstream os;
  os << r.events_sent << "|" << r.events_scored << "|"
     << r.sim_events_executed << "|";
  AppendBits(&os, r.sim_end_s);
  os << "\n";
  for (const Measurement& m : r.measurements) {
    os << m.batch_id << ":" << m.batch_size << ":";
    AppendBits(&os, m.create_time);
    AppendBits(&os, m.append_time);
    os << "\n";
  }
  os << r.summary.ToJson() << "\n";
  if (r.has_fault_metrics) {
    const fault::FaultMetrics& f = r.fault_metrics;
    os << "faults:" << f.faults_injected << ":" << f.retries << ":"
       << f.deliveries << ":" << f.unique_deliveries << ":" << f.duplicates
       << ":" << f.losses << ":";
    AppendBits(&os, f.downtime_s);
    AppendBits(&os, f.mean_time_to_recover_s);
    AppendBits(&os, f.goodput_eps);
    os << "\n";
  }
  if (r.has_autoscale) {
    for (const scale::ScalingAction& a : r.autoscale.actions) {
      os << "scale:";
      AppendBits(&os, a.t_s);
      os << a.from << ">" << a.to << ":" << a.reason << "\n";
    }
    os << "scale-ticks:" << r.autoscale.ticks << ":"
       << r.autoscale.peak_replicas << ":" << r.autoscale.final_replicas
       << "\n";
  }
  if (r.trace != nullptr) os << r.trace->ToStageCsv();
  return os.str();
}

TEST(DeterminismTest, SameSeedReproducesByteForByte) {
  auto first = RunExperiment(SmallConfig(1234));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunExperiment(SmallConfig(1234));
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  ASSERT_GT(first->events_scored, 0u);
  const std::string a = Fingerprint(*first);
  const std::string b = Fingerprint(*second);
  ASSERT_FALSE(a.empty());
  // EXPECT_EQ on multi-KB strings prints an unreadable diff; compare and
  // report sizes plus the first divergence instead.
  if (a != b) {
    size_t at = 0;
    while (at < a.size() && at < b.size() && a[at] == b[at]) ++at;
    FAIL() << "runs diverged at byte " << at << " (sizes " << a.size()
           << " vs " << b.size() << "); context: \""
           << a.substr(at > 40 ? at - 40 : 0, 80) << "\" vs \""
           << b.substr(at > 40 ? at - 40 : 0, 80) << "\"";
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentRuns) {
  auto first = RunExperiment(SmallConfig(1234));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunExperiment(SmallConfig(99991));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(Fingerprint(*first), Fingerprint(*second))
      << "two seeds produced identical runs; the seed is not reaching the "
         "workload RNG";
}

/// The bursty workload from SmallConfig against an external serving tool,
/// with a broker crash injected mid-run: the fault path adds timers,
/// retries, and jittered backoff, all of which must stay on the seeded
/// RNG for the run to reproduce.
ExperimentConfig FaultedConfig(uint64_t seed) {
  ExperimentConfig cfg = SmallConfig(seed);
  cfg.serving = "tf-serving";
  cfg.enable_tracing = false;  // faulted runs fingerprint via measurements

  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kBrokerCrash;
  crash.name = "crash0";
  crash.at_s = 3.0;
  crash.until_s = 6.0;
  crash.broker = 0;
  cfg.fault_plan.faults.push_back(crash);
  cfg.fault_plan.retry.timeout_s = 0.3;
  cfg.fault_plan.retry.jitter = 0.2;  // jittered backoff draws from the RNG
  return cfg;
}

TEST(DeterminismTest, FaultedRunReproducesByteForByte) {
  auto first = RunExperiment(FaultedConfig(1234));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunExperiment(FaultedConfig(1234));
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  ASSERT_TRUE(first->has_fault_metrics);
  ASSERT_GT(first->fault_metrics.retries, 0u)
      << "the crash produced no retries; the fault path was not exercised";
  const std::string a = Fingerprint(*first);
  const std::string b = Fingerprint(*second);
  if (a != b) {
    size_t at = 0;
    while (at < a.size() && at < b.size() && a[at] == b[at]) ++at;
    FAIL() << "faulted runs diverged at byte " << at << " (sizes "
           << a.size() << " vs " << b.size() << "); context: \""
           << a.substr(at > 40 ? at - 40 : 0, 80) << "\" vs \""
           << b.substr(at > 40 ? at - 40 : 0, 80) << "\"";
  }
}

TEST(DeterminismTest, FaultedRunsDivergeAcrossSeeds) {
  auto first = RunExperiment(FaultedConfig(1234));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunExperiment(FaultedConfig(99991));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(Fingerprint(*first), Fingerprint(*second))
      << "two seeds produced identical faulted runs; retry jitter is not "
         "reaching the seeded RNG";
}

TEST(DeterminismTest, TimelineDoesNotPerturbTheRun) {
  // The telemetry sampler is driven by the DES clock inside Run() without
  // scheduling events or touching the RNG, so switching it on must leave
  // every core field — including sim_events_executed — byte-identical.
  ExperimentConfig timed = SmallConfig(777);
  timed.enable_tracing = false;
  ExperimentConfig plain = timed;
  timed.timeline_interval_s = 0.5;
  auto with = RunExperiment(timed);
  auto without = RunExperiment(plain);
  ASSERT_TRUE(with.ok() && without.ok());
  ASSERT_NE(with->timeline, nullptr);
  EXPECT_EQ(without->timeline, nullptr);
  EXPECT_EQ(with->sim_events_executed, without->sim_events_executed)
      << "the sampler scheduled simulation events";
  EXPECT_EQ(Fingerprint(*with), Fingerprint(*without));
}

TEST(DeterminismTest, FaultedTimelineDoesNotPerturbTheRun) {
  // Same neutrality through the fault path: lag probes, fetch-retry
  // counters, and fault tagging all read state without feeding it back.
  ExperimentConfig timed = FaultedConfig(1234);
  ExperimentConfig plain = FaultedConfig(1234);
  timed.timeline_interval_s = 1.0;
  auto with = RunExperiment(timed);
  auto without = RunExperiment(plain);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_EQ(with->sim_events_executed, without->sim_events_executed);
  EXPECT_EQ(Fingerprint(*with), Fingerprint(*without));
}

TEST(DeterminismTest, TimelineExportsReproduceByteForByte) {
  ExperimentConfig cfg = FaultedConfig(1234);
  cfg.timeline_interval_s = 1.0;
  auto first = RunExperiment(cfg);
  auto second = RunExperiment(cfg);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_NE(first->timeline, nullptr);
  ASSERT_NE(second->timeline, nullptr);
  const std::string jsonl = first->timeline->ToJsonl();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl, second->timeline->ToJsonl());
  EXPECT_EQ(first->timeline->ToCsv(), second->timeline->ToCsv());
}

// --- Parallel DES (DESIGN.md §4.6): sim_threads is a wall-clock knob, ---
// --- never a semantics knob.                                          ---

/// The faulted workload with timeline + SLO evaluation enabled — the
/// widest export surface a run has. Every byte of it must be independent
/// of the partition count.
ExperimentConfig PartitionedProbeConfig(uint64_t seed, int threads) {
  ExperimentConfig cfg = FaultedConfig(seed);
  cfg.timeline_interval_s = 1.0;
  auto slo = obs::SloConfig::FromJsonText(
      R"({"slos": [{"name": "p95", "metric": "p95_latency_s", "max": 5.0,
                    "error_budget": 0.2},
                   {"metric": "throughput_eps", "min": 1.0}]})");
  CRAYFISH_CHECK(slo.ok());
  cfg.slo = *slo;
  cfg.sim_threads = threads;
  return cfg;
}

/// Fingerprint plus every timeline/SLO export: the full byte surface.
std::string WideFingerprint(const ExperimentResult& r) {
  std::string out = Fingerprint(r);
  if (r.timeline != nullptr) {
    out += r.timeline->ToJsonl();
    out += r.timeline->ToCsv();
  }
  if (r.has_slo_report) out += r.slo_report.ToJson().Dump();
  return out;
}

TEST(DeterminismTest, PartitionedFaultedRunMatchesSerialByteForByte) {
  auto serial = RunExperiment(PartitionedProbeConfig(1234, 1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(serial->has_fault_metrics);
  ASSERT_TRUE(serial->has_slo_report);
  ASSERT_NE(serial->timeline, nullptr);
  const std::string want = WideFingerprint(*serial);
  for (const int threads : {2, 4, 8}) {
    auto parallel = RunExperiment(PartitionedProbeConfig(1234, threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    const std::string got = WideFingerprint(*parallel);
    if (got != want) {
      size_t at = 0;
      while (at < want.size() && at < got.size() && want[at] == got[at]) {
        ++at;
      }
      FAIL() << "sim_threads=" << threads
             << " diverged from serial at byte " << at << " (sizes "
             << want.size() << " vs " << got.size() << "); context: \""
             << want.substr(at > 40 ? at - 40 : 0, 80) << "\" vs \""
             << got.substr(at > 40 ? at - 40 : 0, 80) << "\"";
    }
  }
}

// After the confinement-planner migration (DESIGN.md §4.7) the hot path —
// producer emit loop, broker request/response hops, engine task graphs,
// serving-side work — runs host-confined whenever the experiment arms
// host scheduling. Every engine routes differently through those paths,
// so prove the serial-vs-partitioned equality separately per engine, on
// the same faulted RQ1-style pipeline with the timeline + SLO surface.
TEST(DeterminismTest, ConfinedPipelineMatchesSerialAcrossEngines) {
  for (const char* engine : {"kafka-streams", "spark", "ray"}) {
    ExperimentConfig serial_cfg = PartitionedProbeConfig(1234, 1);
    serial_cfg.engine = engine;
    auto serial = RunExperiment(serial_cfg);
    ASSERT_TRUE(serial.ok()) << engine << ": " << serial.status().ToString();
    ASSERT_GT(serial->events_scored, 0u) << engine;
    const std::string want = WideFingerprint(*serial);
    for (const int threads : {2, 8}) {
      ExperimentConfig cfg = PartitionedProbeConfig(1234, threads);
      cfg.engine = engine;
      auto parallel = RunExperiment(cfg);
      ASSERT_TRUE(parallel.ok())
          << engine << ": " << parallel.status().ToString();
      const std::string got = WideFingerprint(*parallel);
      if (got != want) {
        size_t at = 0;
        while (at < want.size() && at < got.size() && want[at] == got[at]) {
          ++at;
        }
        FAIL() << engine << " sim_threads=" << threads
               << " diverged from serial at byte " << at << " (sizes "
               << want.size() << " vs " << got.size() << "); context: \""
               << want.substr(at > 40 ? at - 40 : 0, 80) << "\" vs \""
               << got.substr(at > 40 ? at - 40 : 0, 80) << "\"";
      }
    }
  }
}

/// An autoscaled flash-crowd run: the control loop executes as exclusive
/// events at global sync points, so every resize decision — and therefore
/// every downstream byte — must be independent of the partition count.
ExperimentConfig AutoscaledProbeConfig(uint64_t seed, int threads) {
  ExperimentConfig cfg;
  cfg.engine = "flink";
  // TorchServe: worker-count-bound capacity, so the control loop actually
  // resizes during the spike instead of idling at min_replicas.
  cfg.serving = "torchserve";
  cfg.model = "ffnn";
  cfg.input_rate = 100.0;
  cfg.parallelism = 4;
  cfg.duration_s = 30.0;
  cfg.drain_s = 8.0;
  cfg.seed = seed;
  cfg.timeline_interval_s = 1.0;
  cfg.sim_threads = threads;
  cfg.workload.enabled = true;
  cfg.workload.shape.kind = scale::ShapeKind::kFlashCrowd;
  cfg.workload.shape.base_rate = 120.0;
  cfg.workload.shape.spike_at_s = 8.0;
  cfg.workload.shape.ramp_up_s = 2.0;
  cfg.workload.shape.hold_s = 8.0;
  cfg.workload.shape.decay_s = 4.0;
  cfg.workload.shape.spike_mult = 5.0;
  cfg.workload.tenants = 2;
  cfg.workload.tenant_partitions = 4;
  cfg.autoscaler.enabled = true;
  cfg.autoscaler.interval_s = 2.0;
  cfg.autoscaler.min_replicas = 1;
  cfg.autoscaler.max_replicas = 4;
  cfg.autoscaler.step = 1;
  cfg.autoscaler.cooldown_s = 4.0;
  cfg.autoscaler.scale_in_hysteresis = 2;
  cfg.autoscaler.scale_up_lag = 60.0;
  cfg.autoscaler.scale_down_lag = 5.0;
  return cfg;
}

TEST(DeterminismTest, AutoscaledRunMatchesSerialByteForByte) {
  auto serial = RunExperiment(AutoscaledProbeConfig(4321, 1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(serial->has_autoscale);
  ASSERT_GE(serial->autoscale.ticks, 1u);
  const std::string want = WideFingerprint(*serial);
  for (const int threads : {2, 4, 8}) {
    auto parallel = RunExperiment(AutoscaledProbeConfig(4321, threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    const std::string got = WideFingerprint(*parallel);
    if (got != want) {
      size_t at = 0;
      while (at < want.size() && at < got.size() && want[at] == got[at]) {
        ++at;
      }
      FAIL() << "autoscaled sim_threads=" << threads
             << " diverged from serial at byte " << at << " (sizes "
             << want.size() << " vs " << got.size() << "); context: \""
             << want.substr(at > 40 ? at - 40 : 0, 80) << "\" vs \""
             << got.substr(at > 40 ? at - 40 : 0, 80) << "\"";
    }
  }
}

TEST(DeterminismTest, PartitionedRunsStillDivergeAcrossSeeds) {
  // Partitioning must not collapse seed sensitivity either — a bug that
  // froze RNG-dependent paths would pass the equality test above while
  // making every seed identical.
  auto first = RunExperiment(PartitionedProbeConfig(1234, 2));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunExperiment(PartitionedProbeConfig(99991, 2));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(WideFingerprint(*first), WideFingerprint(*second))
      << "two seeds produced identical partitioned runs";
}

TEST(DeterminismTest, TracingDoesNotPerturbTheRun) {
  ExperimentConfig traced = SmallConfig(777);
  ExperimentConfig untraced = SmallConfig(777);
  untraced.enable_tracing = false;
  auto with = RunExperiment(traced);
  auto without = RunExperiment(untraced);
  ASSERT_TRUE(with.ok() && without.ok());
  // Trace contents differ (one is empty), so compare observable results.
  EXPECT_EQ(with->events_sent, without->events_sent);
  EXPECT_EQ(with->events_scored, without->events_scored);
  EXPECT_EQ(with->sim_events_executed, without->sim_events_executed);
  EXPECT_EQ(with->summary.ToJson(), without->summary.ToJson());
}

}  // namespace
}  // namespace crayfish::core
