#include <gtest/gtest.h>

#include "core/experiment.h"

namespace crayfish::core {
namespace {

ExperimentConfig QuickConfig(const std::string& engine,
                             const std::string& serving) {
  ExperimentConfig cfg;
  cfg.engine = engine;
  cfg.serving = serving;
  cfg.model = "ffnn";
  cfg.input_rate = 200.0;
  cfg.duration_s = 8.0;
  cfg.drain_s = 4.0;
  return cfg;
}

TEST(ExperimentTest, RejectsInvalidParameters) {
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.batch_size = 0;
  EXPECT_FALSE(RunExperiment(cfg).ok());
  cfg = QuickConfig("flink", "onnx");
  cfg.input_rate = 0.0;
  EXPECT_FALSE(RunExperiment(cfg).ok());
  cfg = QuickConfig("flink", "clipper");
  EXPECT_FALSE(RunExperiment(cfg).ok());
  cfg = QuickConfig("storm", "onnx");
  EXPECT_FALSE(RunExperiment(cfg).ok());
}

TEST(ExperimentTest, SampleShapesFollowModel) {
  ExperimentConfig cfg;
  cfg.model = "ffnn";
  EXPECT_EQ(cfg.SampleShape(), (std::vector<int64_t>{28, 28}));
  cfg.model = "resnet50";
  EXPECT_EQ(cfg.SampleShape(), (std::vector<int64_t>{224, 224, 3}));
}

TEST(ExperimentTest, LabelDescribesConfiguration) {
  ExperimentConfig cfg = QuickConfig("spark", "tf-serving");
  cfg.use_gpu = true;
  const std::string label = cfg.Label();
  EXPECT_NE(label.find("spark"), std::string::npos);
  EXPECT_NE(label.find("tf-serving"), std::string::npos);
  EXPECT_NE(label.find("gpu"), std::string::npos);
}

class EngineServingMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>> {};

TEST_P(EngineServingMatrixTest, PipelineDeliversMeasurements) {
  const auto& [engine, serving] = GetParam();
  ExperimentConfig cfg = QuickConfig(engine, serving);
  // Ray's per-event costs are high; keep its offered load sustainable so
  // the run drains within the horizon.
  if (engine == "ray") cfg.input_rate = 50.0;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->events_sent, 0u);
  EXPECT_GT(result->events_scored, 0u);
  EXPECT_GT(result->summary.measurements, 0u);
  EXPECT_GT(result->summary.latency_mean_ms, 0.0);
  EXPECT_GT(result->summary.throughput_eps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineServingMatrixTest,
    ::testing::Combine(::testing::Values("flink", "kafka-streams", "spark",
                                         "ray"),
                       ::testing::Values("onnx", "tf-serving")),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) + "_" +
                      std::get<1>(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(ExperimentTest, DeterministicUnderSameSeed) {
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.seed = 99;
  auto a = RunExperiment(cfg);
  auto b = RunExperiment(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->events_sent, b->events_sent);
  EXPECT_EQ(a->events_scored, b->events_scored);
  EXPECT_EQ(a->summary.measurements, b->summary.measurements);
  EXPECT_DOUBLE_EQ(a->summary.latency_mean_ms, b->summary.latency_mean_ms);
  EXPECT_EQ(a->sim_events_executed, b->sim_events_executed);
}

TEST(ExperimentTest, DifferentSeedsProduceDifferentJitter) {
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.seed = 1;
  auto a = RunExperiment(cfg);
  cfg.seed = 2;
  auto b = RunExperiment(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->summary.latency_mean_ms, b->summary.latency_mean_ms);
}

TEST(ExperimentTest, SustainableLoadScoresEverythingSent) {
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.input_rate = 100.0;  // far below ONNX/Flink capacity (~1.3k)
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->events_scored, result->events_sent);
  // Well under capacity: latency stays in the low tens of ms.
  EXPECT_LT(result->summary.latency_mean_ms, 50.0);
}

TEST(ExperimentTest, OverloadSaturatesAtSustainableThroughput) {
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.input_rate = 30000.0;
  cfg.duration_s = 10.0;
  cfg.drain_s = 1.0;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok());
  // Paper Table 4: ~1373 ev/s for Flink+ONNX+FFNN.
  EXPECT_GT(result->summary.throughput_eps, 1000.0);
  EXPECT_LT(result->summary.throughput_eps, 1800.0);
  // Overloaded: latency explodes relative to the sustainable case.
  EXPECT_GT(result->summary.latency_mean_ms, 500.0);
}

TEST(ExperimentTest, MaxEventsCapsGeneration) {
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.max_events = 100;
  cfg.input_rate = 1000.0;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->events_sent, 100u);
  EXPECT_EQ(result->events_scored, 100u);
}

TEST(ExperimentTest, BurstyRunProducesRecoveryAnalysis) {
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.bursty = true;
  cfg.input_rate = 900.0;          // ~70% of ST
  cfg.burst_rate = 1500.0;         // ~115% of ST
  cfg.burst_duration_s = 10.0;
  cfg.time_between_bursts_s = 30.0;
  cfg.first_burst_at_s = 20.0;
  cfg.duration_s = 100.0;
  cfg.drain_s = 10.0;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->recoveries.size(), 2u);
  for (const BurstRecovery& r : result->recoveries) {
    EXPECT_GT(r.burst_end_s, r.burst_start_s);
  }
  // At least the first burst must recover within the run.
  EXPECT_GE(result->recoveries[0].recovery_s, 0.0);
}

TEST(ExperimentTest, GpuReducesResNetLatency) {
  ExperimentConfig cpu;
  cpu.engine = "flink";
  cpu.serving = "onnx";
  cpu.model = "resnet50";
  cpu.batch_size = 8;
  cpu.input_rate = 0.2;
  cpu.duration_s = 60.0;
  cpu.drain_s = 15.0;
  ExperimentConfig gpu = cpu;
  gpu.use_gpu = true;
  auto r_cpu = RunExperiment(cpu);
  auto r_gpu = RunExperiment(gpu);
  ASSERT_TRUE(r_cpu.ok());
  ASSERT_TRUE(r_gpu.ok());
  EXPECT_LT(r_gpu->summary.latency_mean_ms, r_cpu->summary.latency_mean_ms);
}

TEST(ExperimentTest, RunRepeatedAggregatesAcrossSeeds) {
  ExperimentConfig cfg = QuickConfig("kafka-streams", "onnx");
  auto results = RunRepeated(cfg, 2);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  Aggregate thr = AggregateThroughput(*results);
  EXPECT_GT(thr.mean, 0.0);
  Aggregate lat = AggregateLatencyMean(*results);
  EXPECT_GT(lat.mean, 0.0);
}

TEST(ExperimentTest, Fig12OperatorParallelismBeatsChained) {
  ExperimentConfig chained = QuickConfig("flink", "onnx");
  chained.input_rate = 30000.0;
  chained.duration_s = 8.0;
  chained.drain_s = 1.0;
  ExperimentConfig unchained = chained;
  unchained.source_parallelism = 32;
  unchained.sink_parallelism = 32;
  auto r_chained = RunExperiment(chained);
  auto r_unchained = RunExperiment(unchained);
  ASSERT_TRUE(r_chained.ok());
  ASSERT_TRUE(r_unchained.ok());
  // Fig. 12: ~3.8x at N=1.
  EXPECT_GT(r_unchained->summary.throughput_eps,
            r_chained->summary.throughput_eps * 2.0);
}


TEST(ExperimentTest, ValidationModeRunsRealInferenceInThePipeline) {
  // Every scored batch triggers a true forward pass inside the scoring
  // operator: JSON payload -> tensor -> model loaded through the
  // library's native format. Simulated metrics stay calibrated.
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.input_rate = 50.0;
  cfg.duration_s = 4.0;
  cfg.drain_s = 2.0;
  cfg.validate_real_inference = true;
  auto r = RunExperiment(cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->events_scored, 0u);
  EXPECT_EQ(r->real_inferences, r->events_scored);
  // Without the flag, no real compute happens.
  cfg.validate_real_inference = false;
  auto plain = RunExperiment(cfg);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->real_inferences, 0u);
}

TEST(ExperimentTest, ValidationModeWorksOnEveryEngineAndLibrary) {
  for (const char* engine : {"flink", "kafka-streams", "spark", "ray"}) {
    for (const char* lib : {"dl4j", "onnx", "savedmodel"}) {
      ExperimentConfig cfg = QuickConfig(engine, lib);
      cfg.input_rate = 20.0;
      cfg.duration_s = 3.0;
      cfg.drain_s = 3.0;
      cfg.validate_real_inference = true;
      auto r = RunExperiment(cfg);
      ASSERT_TRUE(r.ok()) << engine << "/" << lib << ": "
                          << r.status().ToString();
      EXPECT_EQ(r->real_inferences, r->events_scored)
          << engine << "/" << lib;
    }
  }
}

TEST(ExperimentTest, ValidationModeRejectsUnsupportedModels) {
  ExperimentConfig cfg = QuickConfig("flink", "onnx");
  cfg.model = "resnet50";
  cfg.validate_real_inference = true;
  EXPECT_TRUE(RunExperiment(cfg).status().IsInvalidArgument());
}

}  // namespace
}  // namespace crayfish::core
