// Tests for the §7 "future work" extensions: Flink async I/O, server-side
// adaptive batching, multi-model serving with hot version swaps, and the
// queue-depth autoscaler. These features are off in every paper
// experiment (parity with §4.3) and opt-in here.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/experiment.h"
#include "serving/external_server.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish {
namespace {

using serving::CreateExternalServer;
using serving::ExternalServerOptions;
using serving::ExternalServingServer;
using serving::ModelProfile;

// ------------------------------------------------------ Flink async I/O --

TEST(AsyncIoTest, LiftsBlockingExternalThroughput) {
  core::ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "tf-serving";
  cfg.input_rate = 30000.0;
  cfg.duration_s = 6.0;
  cfg.drain_s = 0.5;
  auto blocking = core::RunExperiment(cfg);
  cfg.engine_overrides.SetBool("flink.async_io", true);
  auto async = core::RunExperiment(cfg);
  ASSERT_TRUE(blocking.ok());
  ASSERT_TRUE(async.ok());
  // Overlapping the ~1 ms RPC with processing lifts mp=1 throughput ~4x.
  EXPECT_GT(async->summary.throughput_eps,
            blocking->summary.throughput_eps * 3.0);
}

TEST(AsyncIoTest, LosesNoRecordsUnderCapacityPressure) {
  core::ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "tf-serving";
  cfg.input_rate = 500.0;
  cfg.duration_s = 5.0;
  cfg.drain_s = 5.0;
  cfg.engine_overrides.SetBool("flink.async_io", true);
  cfg.engine_overrides.SetInt("flink.async_capacity", 4);  // tiny window
  auto r = core::RunExperiment(cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->events_scored, r->events_sent);
  EXPECT_EQ(r->measurements.size(), r->events_sent);
}

TEST(AsyncIoTest, NoEffectOnEmbeddedServing) {
  core::ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "onnx";
  cfg.input_rate = 30000.0;
  cfg.duration_s = 5.0;
  cfg.drain_s = 0.5;
  auto plain = core::RunExperiment(cfg);
  cfg.engine_overrides.SetBool("flink.async_io", true);
  auto with_flag = core::RunExperiment(cfg);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with_flag.ok());
  EXPECT_NEAR(with_flag->summary.throughput_eps,
              plain->summary.throughput_eps,
              plain->summary.throughput_eps * 0.02);
}

// --------------------------------------------------- adaptive batching --

class ServerExtensionsTest : public ::testing::Test {
 protected:
  ServerExtensionsTest() : sim_(21), network_(&sim_) {
    CRAYFISH_CHECK_OK(
        network_.AddHost(sim::Host{"client", 64, 1ULL << 30, false}));
  }

  std::unique_ptr<ExternalServingServer> Make(ExternalServerOptions opts,
                                              const std::string& tool =
                                                  "torchserve") {
    auto server = CreateExternalServer(&sim_, &network_, tool, opts);
    CRAYFISH_CHECK(server.ok());
    (*server)->Start();
    return std::move(*server);
  }

  sim::Simulation sim_;
  sim::Network network_;
};

TEST_F(ServerExtensionsTest, AdaptiveBatchingAmortizesOverheads) {
  // 64 simultaneous single-sample requests: batching executes ~2 groups
  // of 32 instead of 64 separate inferences.
  ExternalServerOptions batched;
  batched.model = ModelProfile::Ffnn();
  batched.adaptive_batching = true;
  batched.max_batch = 32;
  auto server = Make(batched);
  int completed = 0;
  double done_at = 0.0;
  sim_.Schedule(3.0, [&]() {
    for (int i = 0; i < 64; ++i) {
      server->Invoke("client", 1, [&]() {
        if (++completed == 64) done_at = sim_.Now();
      });
    }
  });
  sim_.RunUntilIdle();
  EXPECT_EQ(completed, 64);
  EXPECT_LE(server->batches_executed(), 4u);
  // TorchServe per-request overhead is 260 us + 2.58 ms compute; batching
  // pays the overhead twice instead of 64 times.
  const double makespan = done_at - 3.0;
  EXPECT_LT(makespan, 64 * (0.26e-3 + 2.58e-3));
}

TEST_F(ServerExtensionsTest, BatchTimeoutFlushesPartialGroups) {
  ExternalServerOptions batched;
  batched.model = ModelProfile::Ffnn();
  batched.adaptive_batching = true;
  batched.max_batch = 1000;  // never reached
  batched.batch_timeout_s = 0.02;
  auto server = Make(batched);
  bool answered = false;
  double answered_at = 0.0;
  sim_.Schedule(3.0, [&]() {
    server->Invoke("client", 1, [&]() {
      answered = true;
      answered_at = sim_.Now();
    });
  });
  sim_.RunUntilIdle();
  EXPECT_TRUE(answered);
  // Waited the 20 ms batching window, then served.
  EXPECT_GT(answered_at - 3.0, 0.02);
  EXPECT_LT(answered_at - 3.0, 0.04);
}

// ------------------------------------------- multi-model + versioning --

TEST_F(ServerExtensionsTest, ServesMultipleModelsConcurrently) {
  ExternalServerOptions opts;
  opts.model = ModelProfile::Ffnn();
  auto server = Make(opts);
  server->DeployModel(ModelProfile::ResNet50());
  int ok_count = 0;
  sim_.Schedule(10.0, [&]() {  // after both loads
    server->InvokeModel("client", "ffnn", 1, [&](bool ok) {
      if (ok) ++ok_count;
    });
    server->InvokeModel("client", "resnet50", 1, [&](bool ok) {
      if (ok) ++ok_count;
    });
  });
  sim_.RunUntilIdle();
  EXPECT_EQ(ok_count, 2);
  EXPECT_EQ(server->ModelVersion("ffnn"), 1);
  EXPECT_EQ(server->ModelVersion("resnet50"), 1);
}

TEST_F(ServerExtensionsTest, UnknownModelAnswersError) {
  ExternalServerOptions opts;
  opts.model = ModelProfile::Ffnn();
  auto server = Make(opts);
  bool got = false;
  bool ok_flag = true;
  sim_.Schedule(3.0, [&]() {
    server->InvokeModel("client", "bert", 1, [&](bool ok) {
      got = true;
      ok_flag = ok;
    });
  });
  sim_.RunUntilIdle();
  EXPECT_TRUE(got);
  EXPECT_FALSE(ok_flag);
  EXPECT_EQ(server->ModelVersion("bert"), 0);
}

TEST_F(ServerExtensionsTest, HotSwapBumpsVersionWithoutDowntime) {
  ExternalServerOptions opts;
  opts.model = ModelProfile::Ffnn();
  auto server = Make(opts);
  // Redeploy the same model name (fine-tuned weights): version 1 -> 2
  // after the load completes; requests served throughout.
  sim_.Schedule(3.0, [&]() {
    server->DeployModel(ModelProfile::Ffnn());
  });
  int answered = 0;
  sim_.Schedule(3.001, [&]() {
    server->InvokeModel("client", "ffnn", 1, [&](bool ok) {
      EXPECT_TRUE(ok);
      ++answered;
    });
  });
  sim_.Schedule(20.0, [&]() {
    server->InvokeModel("client", "ffnn", 1, [&](bool ok) {
      EXPECT_TRUE(ok);
      ++answered;
    });
  });
  sim_.RunUntilIdle();
  EXPECT_EQ(answered, 2);
  EXPECT_EQ(server->ModelVersion("ffnn"), 2);
}

// -------------------------------------------------------- autoscaling --

TEST_F(ServerExtensionsTest, AutoscalerGrowsUnderLoadAndShrinksWhenIdle) {
  ExternalServerOptions opts;
  opts.model = ModelProfile::Ffnn();
  opts.workers = 1;
  opts.autoscale = true;
  opts.min_workers = 1;
  opts.max_workers = 8;
  opts.scale_up_queue_depth = 8;
  opts.autoscale_interval_s = 0.5;
  auto server = Make(opts);

  // Flood with requests over several seconds: the queue backs up and the
  // autoscaler adds workers.
  int completed = 0;
  std::function<void(int)> flood = [&](int remaining) {
    if (remaining == 0) return;
    for (int i = 0; i < 40; ++i) {
      server->Invoke("client", 1, [&]() { ++completed; });
    }
    sim_.Schedule(0.05, [&, remaining]() { flood(remaining - 1); });
  };
  int peak_workers = 1;
  sim_.Schedule(3.0, [&]() { flood(60); });
  for (int t = 0; t < 40; ++t) {
    sim_.Schedule(3.0 + t * 0.25, [&]() {
      peak_workers = std::max(peak_workers, server->workers());
    });
  }
  sim_.Run(60.0);
  EXPECT_GT(peak_workers, 2);
  // Everything eventually served and the pool shrank back to min.
  sim_.Run(300.0);
  EXPECT_EQ(completed, 60 * 40);
  EXPECT_EQ(server->workers(), 1);
}


// --------------------------------------- checkpointing + continuous mode --

TEST(CheckpointingTest, BarriersCostThroughputAndLatencySpikes) {
  core::ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "onnx";
  cfg.input_rate = 30000.0;
  cfg.duration_s = 8.0;
  cfg.drain_s = 0.5;
  auto off = core::RunExperiment(cfg);
  cfg.engine_overrides.SetDouble("flink.checkpoint_interval_s", 0.2);
  cfg.engine_overrides.SetDouble("flink.checkpoint_stall_s", 0.05);
  auto on = core::RunExperiment(cfg);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(on.ok());
  // 50 ms stall every 200 ms -> ~25% capacity lost to barriers.
  EXPECT_LT(on->summary.throughput_eps,
            off->summary.throughput_eps * 0.85);
  EXPECT_GT(on->summary.throughput_eps,
            off->summary.throughput_eps * 0.60);
}

TEST(CheckpointingTest, NoRecordLossWithBarriers) {
  core::ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = "onnx";
  cfg.input_rate = 300.0;
  cfg.duration_s = 5.0;
  cfg.drain_s = 3.0;
  cfg.engine_overrides.SetDouble("flink.checkpoint_interval_s", 0.5);
  auto r = core::RunExperiment(cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->events_scored, r->events_sent);
}

TEST(SparkContinuousTest, TradesCheckpointFloorForLowLatency) {
  core::ExperimentConfig cfg;
  cfg.engine = "spark";
  cfg.serving = "onnx";
  cfg.input_rate = 1.0;
  cfg.duration_s = 30.0;
  cfg.drain_s = 3.0;
  auto micro = core::RunExperiment(cfg);
  cfg.engine_overrides.SetBool("spark.continuous", true);
  auto continuous = core::RunExperiment(cfg);
  ASSERT_TRUE(micro.ok());
  ASSERT_TRUE(continuous.ok());
  // Micro-batch carries the ~180 ms checkpoint/schedule floor (Fig. 10);
  // continuous mode processes events in single-digit milliseconds.
  EXPECT_GT(micro->summary.latency_mean_ms, 100.0);
  EXPECT_LT(continuous->summary.latency_mean_ms, 20.0);
  EXPECT_EQ(continuous->events_scored, continuous->events_sent);
}

}  // namespace
}  // namespace crayfish
