#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "fault/recovery.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace crayfish {
namespace {

// ---------------------------------------------------------------------------
// RetryPolicy

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.max_retries = 10;
  p.initial_backoff_s = 0.05;
  p.backoff_multiplier = 2.0;
  p.max_backoff_s = 0.5;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.BackoffFor(0, nullptr), 0.05);
  EXPECT_DOUBLE_EQ(p.BackoffFor(1, nullptr), 0.10);
  EXPECT_DOUBLE_EQ(p.BackoffFor(2, nullptr), 0.20);
  EXPECT_DOUBLE_EQ(p.BackoffFor(3, nullptr), 0.40);
  EXPECT_DOUBLE_EQ(p.BackoffFor(4, nullptr), 0.50);  // capped
  EXPECT_DOUBLE_EQ(p.BackoffFor(9, nullptr), 0.50);
}

TEST(RetryPolicyTest, JitterStaysInsideBand) {
  RetryPolicy p;
  p.max_retries = 5;
  p.initial_backoff_s = 0.1;
  p.backoff_multiplier = 1.0;
  p.jitter = 0.2;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double d = p.BackoffFor(0, &rng);
    EXPECT_GE(d, 0.1 * 0.8);
    EXPECT_LE(d, 0.1 * 1.2);
  }
}

TEST(RetryPolicyTest, ValidateRejectsBadFields) {
  RetryPolicy p;
  p.max_retries = 3;
  EXPECT_TRUE(p.Validate().ok());
  p.timeout_s = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = RetryPolicy{};
  p.backoff_multiplier = 0.5;
  EXPECT_FALSE(p.Validate().ok());
  p = RetryPolicy{};
  p.jitter = 1.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(RetryPolicyTest, RetriableCodes) {
  EXPECT_TRUE(RetryPolicy::IsRetriable(Status::Unavailable("down")));
  EXPECT_TRUE(RetryPolicy::IsRetriable(Status::Timeout("slow")));
  EXPECT_FALSE(RetryPolicy::IsRetriable(Status::InvalidArgument("bad")));
  EXPECT_FALSE(RetryPolicy::IsRetriable(Status::Ok()));
}

// ---------------------------------------------------------------------------
// FaultPlan parsing / overrides

constexpr char kPlanJson[] = R"({
  "retry": {"max_retries": 4, "timeout_s": 0.5, "jitter": 0.1},
  "auto_commit_interval_s": 0.25,
  "faults": [
    {"kind": "broker_crash", "name": "crash0", "at_s": 30, "until_s": 45,
     "broker": 1},
    {"kind": "link_degrade", "at_s": 10, "until_s": 20,
     "from": "kafka-0", "latency_mult": 4.0, "bandwidth_mult": 0.25},
    {"kind": "serving_slowdown", "at_s": 5, "until_s": 15, "factor": 3.0},
    {"kind": "task_restart", "at_s": 12, "task_index": 1,
     "restart_delay_s": 2.0}
  ]
})";

TEST(FaultPlanTest, ParsesFullSchema) {
  auto plan = fault::FaultPlan::FromJsonText(kPlanJson);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->active());
  EXPECT_EQ(plan->retry.max_retries, 4);
  EXPECT_DOUBLE_EQ(plan->retry.timeout_s, 0.5);
  EXPECT_DOUBLE_EQ(plan->retry.jitter, 0.1);
  // Unset retry fields keep their defaults.
  EXPECT_DOUBLE_EQ(plan->retry.initial_backoff_s, 0.05);
  EXPECT_DOUBLE_EQ(plan->auto_commit_interval_s, 0.25);
  ASSERT_EQ(plan->faults.size(), 4u);
  EXPECT_EQ(plan->faults[0].kind, fault::FaultKind::kBrokerCrash);
  EXPECT_EQ(plan->faults[0].name, "crash0");
  EXPECT_EQ(plan->faults[0].broker, 1);
  EXPECT_TRUE(plan->faults[0].outage());
  // Unnamed specs get "<kind>-<index>".
  EXPECT_EQ(plan->faults[1].name, "link_degrade-1");
  EXPECT_FALSE(plan->faults[1].outage());  // degrade without drop
  EXPECT_EQ(plan->faults[2].name, "serving_slowdown-2");
  EXPECT_EQ(plan->faults[3].kind, fault::FaultKind::kTaskRestart);
  EXPECT_TRUE(plan->faults[3].outage());
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  EXPECT_FALSE(fault::FaultPlan::FromJsonText("[1,2]").ok());
  EXPECT_FALSE(fault::FaultPlan::FromJsonText(
                   R"({"faults": [{"kind": "meteor", "at_s": 1}]})")
                   .ok());
  // until_s must be after at_s.
  EXPECT_FALSE(
      fault::FaultPlan::FromJsonText(
          R"({"faults": [{"kind": "broker_crash", "at_s": 9, "until_s": 3}]})")
          .ok());
  // Bandwidth must stay strictly positive.
  EXPECT_FALSE(fault::FaultPlan::FromJsonText(
                   R"({"faults": [{"kind": "link_degrade", "at_s": 1,
                       "bandwidth_mult": 0.0}]})")
                   .ok());
  // Duplicate names.
  EXPECT_FALSE(fault::FaultPlan::FromJsonText(
                   R"({"faults": [
                     {"kind": "broker_crash", "name": "x", "at_s": 1},
                     {"kind": "serving_down", "name": "x", "at_s": 2}]})")
                   .ok());
  EXPECT_FALSE(fault::FaultPlan::FromFile("/nonexistent/plan.json").ok());
}

TEST(FaultPlanTest, OverridesAddressRetryNamesAndIndices) {
  auto plan = fault::FaultPlan::FromJsonText(kPlanJson);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->ApplyOverride("retry.max_retries", "7").ok());
  EXPECT_EQ(plan->retry.max_retries, 7);
  ASSERT_TRUE(plan->ApplyOverride("auto_commit_interval_s", "2.5").ok());
  EXPECT_DOUBLE_EQ(plan->auto_commit_interval_s, 2.5);
  // By name.
  ASSERT_TRUE(plan->ApplyOverride("crash0.at_s", "25").ok());
  EXPECT_DOUBLE_EQ(plan->faults[0].at_s, 25.0);
  // By index.
  ASSERT_TRUE(plan->ApplyOverride("2.factor", "8").ok());
  EXPECT_DOUBLE_EQ(plan->faults[2].factor, 8.0);
  EXPECT_FALSE(plan->ApplyOverride("nosuch.at_s", "1").ok());
  EXPECT_FALSE(plan->ApplyOverride("crash0.flux_capacitor", "1").ok());
  EXPECT_FALSE(plan->ApplyOverride("retry.timeout_s", "soon").ok());
}

// ---------------------------------------------------------------------------
// Link degradation (the shared transfer-time helpers)

TEST(LinkDegradationTest, HelpersScaleLatencyAndBandwidth) {
  sim::LinkSpec spec;
  spec.latency_s = 0.001;
  spec.bandwidth_bytes_per_s = 1000.0;
  sim::LinkDegradation none;
  EXPECT_DOUBLE_EQ(sim::PropagationSeconds(spec, none), 0.001);
  EXPECT_DOUBLE_EQ(sim::TransmitSeconds(spec, none, 500), 0.5);
  sim::LinkDegradation deg;
  deg.latency_mult = 3.0;
  deg.bandwidth_mult = 0.5;
  EXPECT_DOUBLE_EQ(sim::PropagationSeconds(spec, deg), 0.003);
  EXPECT_DOUBLE_EQ(sim::TransmitSeconds(spec, deg, 500), 1.0);
}

TEST(LinkDegradationTest, DropPartitionSwallowsTransfers) {
  sim::Simulation sim(1);
  sim::Link link(&sim, sim::LinkSpec{});
  int delivered = 0;
  link.Transfer(100, [&delivered]() { ++delivered; });
  sim::LinkDegradation deg;
  deg.drop = true;
  link.SetDegradation(deg);
  link.Transfer(100, [&delivered]() { ++delivered; });
  link.SetDegradation(sim::LinkDegradation{});
  link.Transfer(100, [&delivered]() { ++delivered; });
  sim.Run(10.0);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.dropped_transfers(), 1u);
}

TEST(LinkDegradationTest, NonPositiveBandwidthMultiplierChecks) {
  sim::Simulation sim(1);
  sim::Link link(&sim, sim::LinkSpec{});
  sim::LinkDegradation deg;
  deg.bandwidth_mult = 0.0;
  EXPECT_DEATH(link.SetDegradation(deg), "Check failed");
}

TEST(LinkDegradationTest, WildcardRulesPreferMostSpecific) {
  sim::Simulation sim(1);
  sim::Network net(&sim);
  sim::LinkDegradation fabric;
  fabric.latency_mult = 2.0;
  net.SetDegradation("", "", fabric);
  sim::LinkDegradation from_kafka;
  from_kafka.latency_mult = 3.0;
  net.SetDegradation("kafka-0", "", from_kafka);
  sim::LinkDegradation exact;
  exact.latency_mult = 5.0;
  net.SetDegradation("kafka-0", "sps", exact);
  EXPECT_DOUBLE_EQ(net.DegradationFor("kafka-0", "sps").latency_mult, 5.0);
  EXPECT_DOUBLE_EQ(net.DegradationFor("kafka-0", "other").latency_mult, 3.0);
  EXPECT_DOUBLE_EQ(net.DegradationFor("a", "b").latency_mult, 2.0);
}

// ---------------------------------------------------------------------------
// RecoveryTracker

fault::FaultSpec OutageSpec(const std::string& name, double at, double until) {
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kBrokerCrash;
  spec.name = name;
  spec.at_s = at;
  spec.until_s = until;
  return spec;
}

TEST(RecoveryTrackerTest, MergesOverlappingOutageWindows) {
  fault::RecoveryTracker tracker;
  tracker.BeginFault(OutageSpec("a", 10, 20), 10.0);
  tracker.BeginFault(OutageSpec("b", 15, 25), 15.0);
  tracker.EndFault("a", 20.0);
  tracker.EndFault("b", 25.0);
  const fault::FaultMetrics m = tracker.Finalize(0, 100.0);
  EXPECT_EQ(m.faults_injected, 2);
  EXPECT_DOUBLE_EQ(m.downtime_s, 15.0);  // [10, 25), not 10 + 10
}

TEST(RecoveryTrackerTest, OpenWindowsExtendToRunEnd) {
  fault::RecoveryTracker tracker;
  tracker.BeginFault(OutageSpec("a", 90, -1), 90.0);
  const fault::FaultMetrics m = tracker.Finalize(0, 100.0);
  EXPECT_DOUBLE_EQ(m.downtime_s, 10.0);
  EXPECT_LT(m.mean_time_to_recover_s, 0.0);  // never recovered
}

TEST(RecoveryTrackerTest, CountsDuplicatesLossesAndRecovery) {
  fault::RecoveryTracker tracker;
  tracker.BeginFault(OutageSpec("a", 10, 20), 10.0);
  tracker.RecordDelivery(1, 5.0);
  tracker.EndFault("a", 20.0);
  tracker.RecordDelivery(1, 21.0);  // duplicate: does not recover
  tracker.RecordDelivery(2, 22.5);  // first fresh delivery after repair
  tracker.RecordDelivery(3, 23.0);
  const fault::FaultMetrics m = tracker.Finalize(/*events_sent=*/5, 100.0);
  EXPECT_EQ(m.deliveries, 4u);
  EXPECT_EQ(m.unique_deliveries, 3u);
  EXPECT_EQ(m.duplicates, 1u);
  EXPECT_EQ(m.losses, 2u);
  EXPECT_DOUBLE_EQ(m.mean_time_to_recover_s, 2.5);
  ASSERT_EQ(m.windows.size(), 1u);
  EXPECT_DOUBLE_EQ(m.windows[0].recovered_at_s, 22.5);
  EXPECT_FALSE(m.ToString().empty());
}

// ---------------------------------------------------------------------------
// End-to-end faulted experiments

core::ExperimentConfig FaultedConfig(const std::string& serving) {
  core::ExperimentConfig cfg;
  cfg.engine = "flink";
  cfg.serving = serving;
  cfg.model = "ffnn";
  cfg.input_rate = 150.0;
  cfg.parallelism = 2;
  cfg.duration_s = 30.0;
  cfg.drain_s = 10.0;
  cfg.seed = 42;
  return cfg;
}

fault::FaultSpec BrokerCrash(double at, double until) {
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kBrokerCrash;
  spec.name = "crash0";
  spec.at_s = at;
  spec.until_s = until;
  spec.broker = 0;
  return spec;
}

TEST(FaultExperimentTest, BrokerCrashRecoversWithoutLoss) {
  core::ExperimentConfig cfg = FaultedConfig("tf-serving");
  cfg.fault_plan.faults.push_back(BrokerCrash(10.0, 18.0));
  auto result = core::RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->has_fault_metrics);
  const fault::FaultMetrics& m = result->fault_metrics;
  EXPECT_EQ(m.faults_injected, 1);
  EXPECT_DOUBLE_EQ(m.downtime_s, 8.0);
  EXPECT_GT(m.retries, 0u);
  EXPECT_GE(m.mean_time_to_recover_s, 0.0);
  // At-least-once end to end: every batch the producer sent reaches the
  // output topic despite the dead broker.
  EXPECT_EQ(m.losses, 0u);
  EXPECT_EQ(m.unique_deliveries, result->events_sent);
  // The scorecard also lands in the metrics registry.
  ASSERT_NE(result->metrics, nullptr);
  EXPECT_DOUBLE_EQ(
      result->metrics->Gauge("fault_downtime_s")->value(), 8.0);
}

TEST(FaultExperimentTest, FaultedRunIsSeedReproducible) {
  core::ExperimentConfig cfg = FaultedConfig("tf-serving");
  cfg.fault_plan.faults.push_back(BrokerCrash(10.0, 18.0));
  auto a = core::RunExperiment(cfg);
  auto b = core::RunExperiment(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->measurements.size(), b->measurements.size());
  for (size_t i = 0; i < a->measurements.size(); ++i) {
    EXPECT_EQ(a->measurements[i].batch_id, b->measurements[i].batch_id);
    EXPECT_EQ(a->measurements[i].append_time,
              b->measurements[i].append_time);
  }
  EXPECT_EQ(a->fault_metrics.retries, b->fault_metrics.retries);
  EXPECT_EQ(a->fault_metrics.ToString(), b->fault_metrics.ToString());

  cfg.seed = 43;
  auto c = core::RunExperiment(cfg);
  ASSERT_TRUE(c.ok());
  bool diverged = c->measurements.size() != a->measurements.size();
  for (size_t i = 0; !diverged && i < a->measurements.size(); ++i) {
    diverged = a->measurements[i].append_time != c->measurements[i].append_time;
  }
  EXPECT_TRUE(diverged) << "seed 43 reproduced seed 42 byte-for-byte";
}

TEST(FaultExperimentTest, TaskRestartResumesFromCommittedOffsets) {
  core::ExperimentConfig cfg = FaultedConfig("tf-serving");
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kTaskRestart;
  spec.name = "restart0";
  spec.at_s = 12.0;
  spec.task_index = 0;
  spec.restart_delay_s = 2.0;
  cfg.fault_plan.faults.push_back(spec);
  auto result = core::RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const fault::FaultMetrics& m = result->fault_metrics;
  // Restart-from-committed-offset re-processes the uncommitted tail:
  // at-least-once means duplicates are possible but losses are not.
  EXPECT_EQ(m.losses, 0u);
  EXPECT_EQ(m.unique_deliveries, result->events_sent);
  EXPECT_GE(m.deliveries, m.unique_deliveries);
}

TEST(FaultExperimentTest, ServingOutageRetriesThroughIt) {
  core::ExperimentConfig cfg = FaultedConfig("tf-serving");
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kServingDown;
  spec.name = "down0";
  spec.at_s = 10.0;
  spec.until_s = 13.0;
  cfg.fault_plan.faults.push_back(spec);
  auto result = core::RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->fault_metrics.retries, 0u);
  EXPECT_EQ(result->fault_metrics.losses, 0u);
  EXPECT_DOUBLE_EQ(result->fault_metrics.downtime_s, 3.0);
}

TEST(FaultExperimentTest, ServingSlowdownStretchesLatency) {
  core::ExperimentConfig cfg = FaultedConfig("tf-serving");
  auto baseline = core::RunExperiment(cfg);
  ASSERT_TRUE(baseline.ok());
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kServingSlowdown;
  spec.name = "slow0";
  spec.at_s = 5.0;
  spec.until_s = 25.0;
  spec.factor = 10.0;
  cfg.fault_plan.faults.push_back(spec);
  auto slowed = core::RunExperiment(cfg);
  ASSERT_TRUE(slowed.ok()) << slowed.status().ToString();
  EXPECT_GT(slowed->summary.latency_mean_ms,
            baseline->summary.latency_mean_ms);
  EXPECT_EQ(slowed->fault_metrics.losses, 0u);
}

TEST(FaultExperimentTest, ServingFaultAgainstEmbeddedToolFails) {
  core::ExperimentConfig cfg = FaultedConfig("onnx");
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kServingSlowdown;
  spec.name = "slow0";
  spec.at_s = 5.0;
  spec.until_s = 10.0;
  cfg.fault_plan.faults.push_back(spec);
  auto result = core::RunExperiment(cfg);
  EXPECT_FALSE(result.ok());
}

TEST(FaultExperimentTest, FaultFreePlanMatchesBaselineByteForByte) {
  // Compiling the subsystem in must not perturb an unfaulted run: a run
  // with an empty plan is bit-equal to one that never saw fault code.
  core::ExperimentConfig cfg = FaultedConfig("tf-serving");
  auto base = core::RunExperiment(cfg);
  ASSERT_TRUE(base.ok());
  core::ExperimentConfig cfg2 = FaultedConfig("tf-serving");
  cfg2.fault_plan = fault::FaultPlan{};  // inactive: no faults scheduled
  auto same = core::RunExperiment(cfg2);
  ASSERT_TRUE(same.ok());
  ASSERT_EQ(base->measurements.size(), same->measurements.size());
  for (size_t i = 0; i < base->measurements.size(); ++i) {
    EXPECT_EQ(base->measurements[i].append_time,
              same->measurements[i].append_time);
  }
}

}  // namespace
}  // namespace crayfish
