#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/executor.h"
#include "model/formats.h"
#include "model/graph.h"
#include "model/repository.h"
#include "tensor/tensor.h"

namespace crayfish::model {
namespace {

using tensor::Shape;
using tensor::Tensor;

class FormatsTest : public ::testing::TestWithParam<ModelFormat> {};

TEST_P(FormatsTest, RoundTripPreservesTopologyAndWeights) {
  ModelGraph g = BuildFfnn();
  crayfish::Rng rng(31);
  g.InitializeWeights(&rng);
  auto bytes = Serialize(g, GetParam());
  ASSERT_TRUE(bytes.ok());
  auto back = Deserialize(*bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), g.name());
  EXPECT_EQ(back->layer_count(), g.layer_count());
  EXPECT_EQ(back->ParamCount(), g.ParamCount());
  for (size_t i = 0; i < g.layer_count(); ++i) {
    const Layer& a = g.layers()[i];
    const Layer& b = back->layers()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.inputs, b.inputs);
    for (const auto& [pname, t] : a.params) {
      ASSERT_TRUE(b.params.count(pname) > 0) << pname;
      EXPECT_TRUE(t.AllClose(b.params.at(pname), 0.0f)) << pname;
    }
  }
}

TEST_P(FormatsTest, RoundTrippedModelExecutesIdentically) {
  ModelGraph g = BuildFfnn();
  crayfish::Rng rng(37);
  g.InitializeWeights(&rng);
  auto bytes = Serialize(g, GetParam());
  ASSERT_TRUE(bytes.ok());
  auto back = Deserialize(*bytes);
  ASSERT_TRUE(back.ok());
  crayfish::Rng input_rng(38);
  Tensor input = Tensor::Random(Shape{2, 28, 28}, &input_rng);
  Executor orig(&g);
  Executor loaded(&*back);
  auto a = orig.Run(input);
  auto b = loaded.Run(input);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->AllClose(*b, 0.0f));
}

TEST_P(FormatsTest, DetectFormatIdentifiesMagic) {
  ModelGraph g = BuildFfnn();
  auto bytes = Serialize(g, GetParam());
  ASSERT_TRUE(bytes.ok());
  auto detected = DetectFormat(*bytes);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(*detected, GetParam());
}

TEST_P(FormatsTest, TruncatedFileIsCorruption) {
  ModelGraph g = BuildFfnn();
  auto bytes = Serialize(g, GetParam());
  ASSERT_TRUE(bytes.ok());
  Bytes cut(bytes->begin(), bytes->begin() +
                                static_cast<long>(bytes->size() / 2));
  auto back = Deserialize(cut);
  EXPECT_FALSE(back.ok());
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatsTest,
                         ::testing::Values(ModelFormat::kOnnx,
                                           ModelFormat::kSavedModel,
                                           ModelFormat::kTorch,
                                           ModelFormat::kH5),
                         [](const auto& info) {
                           return std::string(ModelFormatName(info.param));
                         });

TEST(FormatsTest, UnknownMagicRejected) {
  Bytes junk = {'J', 'U', 'N', 'K', '!', 0, 0, 0};
  EXPECT_FALSE(DetectFormat(junk).ok());
  EXPECT_FALSE(Deserialize(junk).ok());
}

TEST(FormatsTest, SizesReproduceTable2Ordering) {
  // Table 2 (FFNN): ONNX 113 KB < Torch 115 KB < H5 133 KB << SavedModel
  // 508 KB. Our encodings reproduce the ordering and the SavedModel gap.
  ModelGraph g = BuildFfnn();
  crayfish::Rng rng(41);
  g.InitializeWeights(&rng);
  const size_t onnx = Serialize(g, ModelFormat::kOnnx)->size();
  const size_t torch = Serialize(g, ModelFormat::kTorch)->size();
  const size_t h5 = Serialize(g, ModelFormat::kH5)->size();
  const size_t saved = Serialize(g, ModelFormat::kSavedModel)->size();
  EXPECT_LT(onnx, torch);
  EXPECT_LT(torch, h5);
  EXPECT_LT(h5, saved);
  // Raw weights are ~110 KB; ONNX should be close to raw.
  EXPECT_NEAR(static_cast<double>(onnx), 113.0 * 1024, 8 * 1024);
  // SavedModel carries the ~fixed function-library blob: ~500 KB total.
  EXPECT_NEAR(static_cast<double>(saved), 508.0 * 1024, 40 * 1024);
}

TEST(FormatsTest, FormatNamesRoundTrip) {
  for (ModelFormat f :
       {ModelFormat::kOnnx, ModelFormat::kSavedModel, ModelFormat::kTorch,
        ModelFormat::kH5}) {
    auto parsed = ModelFormatFromName(ModelFormatName(f));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_FALSE(ModelFormatFromName("bogus").ok());
}

TEST(FormatsTest, SerializeRequiresInferredShapes) {
  ModelGraph g("raw");
  g.AddInput(Shape{4}, "in");
  g.AddDense(0, 2, "d");
  EXPECT_FALSE(Serialize(g, ModelFormat::kOnnx).ok());
}

class RepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/crayfish_repo_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
  std::string root_;
};

TEST_F(RepositoryTest, SaveLoadRoundTrip) {
  ModelRepository repo(root_);
  ModelGraph g = BuildFfnn();
  crayfish::Rng rng(43);
  g.InitializeWeights(&rng);
  auto path = repo.Save(g, ModelFormat::kOnnx);
  ASSERT_TRUE(path.ok());
  EXPECT_NE(path->find(".onnx"), std::string::npos);
  auto loaded = repo.Load("ffnn", ModelFormat::kOnnx);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ParamCount(), g.ParamCount());
}

TEST_F(RepositoryTest, FileSizeAndList) {
  ModelRepository repo(root_);
  ModelGraph g = BuildFfnn();
  ASSERT_TRUE(repo.Save(g, ModelFormat::kH5).ok());
  auto size = repo.FileSize("ffnn", ModelFormat::kH5);
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 100u * 1024);
  auto names = repo.List();
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "ffnn.h5");
}

TEST_F(RepositoryTest, MissingModelIsNotFound) {
  ModelRepository repo(root_);
  EXPECT_TRUE(repo.Load("ghost", ModelFormat::kOnnx).status().IsNotFound());
  EXPECT_TRUE(
      repo.FileSize("ghost", ModelFormat::kOnnx).status().IsNotFound());
}

TEST_F(RepositoryTest, LoadFromFileAutoDetectsFormat) {
  ModelRepository repo(root_);
  ModelGraph g = BuildFfnn();
  auto path = repo.Save(g, ModelFormat::kTorch);
  ASSERT_TRUE(path.ok());
  auto loaded = ModelRepository::LoadFromFile(*path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name(), "ffnn");
}

}  // namespace
}  // namespace crayfish::model
